"""Ablation: how far does the Lite idea scale?  Sweep the split factor.

The paper picks split=4; this ablation asks what 2-, 8- and 16-way splits
would do to yield, cost, shoreline, cooling headroom, and decode
performance — the "how lite is too lite?" question.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.search import search_best_config
from repro.hardware.cooling import CoolingModel
from repro.hardware.cost import CostModel
from repro.hardware.gpu import H100
from repro.hardware.scaling import LiteScaling, derive_lite_gpu
from repro.hardware.yieldmodel import yield_gain
from repro.workloads.models import LLAMA3_70B

from conftest import emit


def _split_sweep():
    records = []
    h100_decode = search_best_config(LLAMA3_70B, H100, "decode").best_tokens_per_s_per_sm
    cooling = CoolingModel()
    for split in (1, 2, 4, 8):
        gpu = H100 if split == 1 else derive_lite_gpu(
            H100, LiteScaling(split=split), name=f"Lite/{split}"
        )
        decode = search_best_config(LLAMA3_70B, gpu, "decode").best_tokens_per_s_per_sm
        records.append(
            {
                "split": split,
                "yield_gain": yield_gain(814.0, split),
                "cost_saving": CostModel().cost_reduction(814.0, split),
                "overclock_headroom": cooling.overclock_headroom(gpu),
                "decode_vs_h100": decode / h100_decode,
            }
        )
    return records


def test_ablation_split_factor(benchmark):
    records = benchmark.pedantic(_split_sweep, rounds=1, iterations=1)
    rows = [
        [
            r["split"],
            f"{r['yield_gain']:.2f}x",
            f"{r['cost_saving']:.0%}",
            f"{r['overclock_headroom']:.2f}x",
            f"{r['decode_vs_h100']:.2f}",
        ]
        for r in records
    ]
    emit(
        "Ablation: split factor (Llama3-70B decode, base Lite scaling)",
        format_table(
            ["split", "yield gain", "silicon saving", "overclock headroom", "decode vs H100"],
            rows,
        ),
    )
    by_split = {r["split"]: r for r in records}
    # Hardware economics improve monotonically with the split...
    assert by_split[8]["yield_gain"] > by_split[4]["yield_gain"] > by_split[2]["yield_gain"]
    assert by_split[8]["cost_saving"] > by_split[2]["cost_saving"]
    # ...while performance per SM erodes (more devices, more network).
    assert by_split[8]["decode_vs_h100"] <= by_split[2]["decode_vs_h100"] + 1e-9
    # The paper's split=4 keeps decode within ~10% of H100.
    assert by_split[4]["decode_vs_h100"] > 0.85
