"""Section 2 claim: 1/4 die area -> 2x bandwidth-to-compute (shoreline)."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.hardware.die import DieSpec, shoreline_ratio
from repro.hardware.gpu import H100
from repro.hardware.scaling import LiteScaling, group_properties

from conftest import emit


def _shoreline_table():
    die = DieSpec(H100.die.area_mm2)
    rows = []
    for split in (1, 2, 4, 8, 16):
        part = die.split(split)
        rows.append(
            [
                split,
                f"{part.area_mm2:.0f}",
                f"{part.perimeter_mm:.1f}",
                f"{part.perimeter_mm * split:.1f}",
                f"{shoreline_ratio(split):.2f}x",
            ]
        )
    return rows


def test_sec2_shoreline(benchmark):
    rows = benchmark(_shoreline_table)
    emit(
        "Section 2: shoreline vs. split factor (H100-class 814 mm^2 die)",
        format_table(
            ["split", "die mm^2", "perimeter mm", "total perimeter mm", "shoreline gain"],
            rows,
        ),
    )
    assert shoreline_ratio(4) == pytest.approx(2.0)

    group = group_properties(H100, LiteScaling(split=4, mem_bw_boost=2.0))
    emit(
        "Shoreline spent on HBM (Lite+MemBW)",
        f"bandwidth-to-compute gain x{group['bw_to_compute_gain']:.2f} at "
        f"{group['total_mem_bandwidth'] / 1e12:.2f} TB/s aggregate",
    )
    assert group["bw_to_compute_gain"] == pytest.approx(2.0)
