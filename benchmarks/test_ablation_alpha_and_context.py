"""Ablations: collective latency (alpha) and decode context length.

Two modeling knobs the paper leaves unstated; EXPERIMENTS.md records how the
Figure 3b conclusions move as they vary.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.roofline import RooflinePolicy
from repro.core.search import SearchConstraints, search_best_config
from repro.hardware.gpu import H100, LITE_MEMBW
from repro.units import US
from repro.workloads.models import LLAMA3_70B

from conftest import emit


def _alpha_sweep():
    records = []
    for alpha_us in (0.0, 0.5, 1.0, 2.0, 5.0):
        policy = RooflinePolicy(alpha=alpha_us * US)
        h100 = search_best_config(LLAMA3_70B, H100, "decode", policy=policy)
        lite = search_best_config(LLAMA3_70B, LITE_MEMBW, "decode", policy=policy)
        ratio = lite.best_tokens_per_s_per_sm / h100.best_tokens_per_s_per_sm
        records.append((alpha_us, ratio))
    return records


def test_ablation_alpha(benchmark):
    records = benchmark.pedantic(_alpha_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: per-hop latency alpha (Llama3-70B decode, Lite+MemBW vs H100)",
        format_table(
            ["alpha (us)", "Lite+MemBW / H100"],
            [[f"{a:.1f}", f"{r:.3f}"] for a, r in records],
        ),
    )
    ratios = [r for _, r in records]
    # Higher per-hop latency always erodes the high-degree Lite cluster more.
    assert all(b <= a + 1e-9 for a, b in zip(ratios, ratios[1:]))
    # The decode win survives up to ~2 us per hop.
    by_alpha = dict(records)
    assert by_alpha[1.0] > 1.0
    assert by_alpha[0.0] > by_alpha[5.0]


def _context_sweep():
    records = []
    for context in (1000, 1750, 4000, 8000):
        constraints = SearchConstraints(context_len=context)
        h100 = search_best_config(LLAMA3_70B, H100, "decode", constraints)
        lite = search_best_config(LLAMA3_70B, LITE_MEMBW, "decode", constraints)
        ratio = lite.best_tokens_per_s_per_sm / h100.best_tokens_per_s_per_sm
        records.append((context, h100.best.batch, lite.best.batch, ratio))
    return records


def test_ablation_context_length(benchmark):
    records = benchmark.pedantic(_context_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: decode context length (Llama3-70B)",
        format_table(
            ["context", "H100 batch", "Lite+MemBW batch", "Lite+MemBW / H100"],
            [[c, bh, bl, f"{r:.3f}"] for c, bh, bl, r in records],
        ),
    )
    # The Lite+MemBW decode advantage holds across context lengths and
    # grows with context (KV streaming dominates more and more).
    ratios = [r for _, _, _, r in records]
    assert all(r > 1.0 for r in ratios)
    assert ratios == sorted(ratios)
