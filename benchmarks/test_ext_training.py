"""Extension: distributed training on Lite clusters.

Section 3 worries that Lite-GPUs multiply device counts most where clusters
are already huge: training.  The roofline extension quantifies it — Lite
training pays a real collective tax (long sequences make the per-layer
all-reduce payloads large), and buying network bandwidth claws most of it
back.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.training import TrainingConfig, equivalent_lite_training, train_step
from repro.hardware.gpu import H100, LITE, LITE_NETBW
from repro.workloads.models import LLAMA3_70B

from conftest import emit

H100_CFG = TrainingConfig(data_parallel=8, tensor=8, micro_batch=1, global_batch=64)


def _training_matrix():
    lite_cfg = equivalent_lite_training(LLAMA3_70B, H100_CFG, LITE)
    return [
        ("H100", train_step(LLAMA3_70B, H100, H100_CFG)),
        ("Lite", train_step(LLAMA3_70B, LITE, lite_cfg)),
        ("Lite+NetBW", train_step(LLAMA3_70B, LITE_NETBW, lite_cfg)),
    ]


def test_ext_training(benchmark):
    records = benchmark(_training_matrix)
    h100 = records[0][1]
    rows = []
    for name, result in records:
        rows.append(
            [
                name,
                result.config.n_gpus,
                f"dp{result.config.data_parallel} x tp{result.config.tensor}",
                f"{result.tokens_per_s:,.0f}",
                f"{result.mfu:.2f}",
                f"{result.tokens_per_s_per_sm / h100.tokens_per_s_per_sm:.2f}",
                "yes" if result.fits_memory else "no",
            ]
        )
    emit(
        "Extension: Llama3-70B training at equal silicon (BF16, ZeRO-1, seq 4096)",
        format_table(
            ["fleet", "GPUs", "layout", "tok/s", "MFU", "per-SM vs H100", "fits"],
            rows,
        ),
    )
    by_name = dict(records)
    # The training tax is real and larger than the inference one...
    assert by_name["Lite"].tokens_per_s_per_sm < 0.8 * h100.tokens_per_s_per_sm
    # ...and network bandwidth buys most of it back.
    assert by_name["Lite+NetBW"].tokens_per_s_per_sm > by_name["Lite"].tokens_per_s_per_sm * 1.15
    # All layouts converge identically (same global batch) and fit memory.
    assert all(r.fits_memory for _, r in records)
