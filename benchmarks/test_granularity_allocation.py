"""Section 3: finer allocation granularity — stranded-capacity benchmark."""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.cluster.allocator import quantization_waste
from repro.hardware.gpu import H100, LITE
from repro.hardware.scaling import LiteScaling, derive_lite_gpu

from conftest import emit


def _waste_by_unit_size():
    rng = np.random.default_rng(7)
    demands = list(rng.uniform(1.0, 264.0, size=2000))  # up to 2 H100s
    gpus = [
        H100,
        derive_lite_gpu(H100, LiteScaling(split=2), name="Half"),
        LITE,
        derive_lite_gpu(H100, LiteScaling(split=8), name="Lite/8", validate_shoreline=False),
    ]
    return [(gpu.name, gpu.sms, quantization_waste(demands, gpu)) for gpu in gpus]


def test_granularity_allocation(benchmark):
    records = benchmark(_waste_by_unit_size)
    emit(
        "Section 3: stranded capacity vs allocation unit (2000 tenants, uniform demand)",
        format_table(
            ["unit", "SMs/unit", "stranded capacity"],
            [[name, sms, f"{waste:.1%}"] for name, sms, waste in records],
        ),
    )
    wastes = [w for _, _, w in records]
    # Smaller units monotonically reduce stranded capacity.
    assert all(b <= a + 1e-12 for a, b in zip(wastes, wastes[1:]))
    # The headline: Lite strands under half of what H100 strands.
    h100_waste = wastes[0]
    lite_waste = wastes[2]
    assert lite_waste < 0.5 * h100_waste
