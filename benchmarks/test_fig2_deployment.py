"""Figure 2: one H100 replaced by four Lite-GPUs — the deployment math."""

from __future__ import annotations

import pytest

from repro.analysis.figures import fig2_deployment_comparison

from conftest import emit


def test_fig2_deployment(benchmark):
    fig2 = benchmark(fig2_deployment_comparison)
    emit(
        "Figure 2: 1x H100 -> 4x Lite-GPU deployment",
        "\n".join(
            [
                f"yield:                 {fig2['parent_yield']:.3f} -> {fig2['lite_yield']:.3f} "
                f"(x{fig2['yield_gain']:.2f}; paper: 1.8x)",
                f"compute-die cost:      ${fig2['parent_die_cost']:.0f} -> "
                f"${fig2['lite_group_die_cost']:.0f} for 4 dies "
                f"(-{fig2['cost_reduction']:.0%}; paper: ~50%)",
                f"total shoreline:       x{fig2['shoreline_gain']:.2f} (paper: 2x)",
                f"bandwidth-to-compute:  potential x{fig2['bw_to_compute_potential']:.2f}, "
                f"realized by Lite+MemBW x{fig2['bw_to_compute_realized']:.2f}",
                f"power density:         x{fig2['power_density_ratio']:.2f} (unchanged; "
                "cooling is easier per package)",
            ]
        ),
    )
    assert fig2["yield_gain"] == pytest.approx(1.8, abs=0.1)
    assert fig2["cost_reduction"] == pytest.approx(0.5, abs=0.1)
    assert fig2["shoreline_gain"] == pytest.approx(2.0)
    assert fig2["bw_to_compute_realized"] == pytest.approx(2.0, rel=0.01)
