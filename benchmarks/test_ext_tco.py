"""Extension: total cost of operation — the paper's deferred analysis.

"In terms of performance per $-cost, which is the primary metric for cloud
operators, we expect the cost per comparable deployments to decrease with
Lite-GPU" — this bench computes it: $/Mtoken for decode across GPU types,
amortized capex + power at PUE, using each type's best Figure-3b config.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cluster.spec import ClusterSpec
from repro.core.search import search_best_config
from repro.hardware.gpu import H100, LITE, LITE_MEMBW, LITE_MEMBW_NETBW
from repro.hardware.tco import TCOAssumptions, cluster_tco
from repro.workloads.models import LLAMA3_70B, PAPER_MODELS

from conftest import emit

GPUS = (H100, LITE, LITE_MEMBW, LITE_MEMBW_NETBW)


def _unit_economics():
    assumptions = TCOAssumptions()
    records = []
    for model in PAPER_MODELS:
        for gpu in GPUS:
            best = search_best_config(model, gpu, "decode").best
            if best is None:
                continue
            topology = "switched" if gpu.name == "H100" else "circuit"
            breakdown = cluster_tco(ClusterSpec(gpu, best.n_gpus, topology), assumptions)
            records.append(
                (
                    model.name,
                    gpu.name,
                    best.n_gpus,
                    breakdown.total_per_hour,
                    breakdown.usd_per_mtoken(best.result.tokens_per_s),
                )
            )
    return records


def test_ext_tco(benchmark):
    records = benchmark.pedantic(_unit_economics, rounds=1, iterations=1)
    rows = [
        [model, gpu, n, f"${per_hour:.2f}", f"${per_mtok:.4f}"]
        for model, gpu, n, per_hour, per_mtok in records
    ]
    emit(
        "Extension: decode unit economics (amortized capex + power, PUE 1.25)",
        format_table(["model", "gpu", "#GPUs", "$/hour", "$/Mtoken"], rows),
    )
    unit = {(m, g): c for m, g, _, _, c in records}
    # The paper's bottom line holds for 70B and GPT-3: a Lite variant beats
    # H100 on $/Mtoken by a clear margin.
    for model in ("Llama3-70B", "GPT3-175B"):
        h100 = unit[(model, "H100")]
        best_lite = min(
            unit[(model, g.name)] for g in GPUS[1:] if (model, g.name) in unit
        )
        assert best_lite < 0.9 * h100
    # Nuance worth recording: at pod scale (32 GPUs) the 405B Lite cluster's
    # network capex keeps its best variant within ~10% of H100 rather than
    # below it — the paper's own caveat that network cost "can turn into a
    # bottleneck with increased scale", visible already at high TP degrees.
    h100_405 = unit[("Llama3-405B", "H100")]
    best_lite_405 = min(
        unit[("Llama3-405B", g.name)] for g in GPUS[1:]
        if ("Llama3-405B", g.name) in unit
    )
    assert best_lite_405 < 1.10 * h100_405
