"""Executor + engine perf benchmark: parallel sweeps and hot-path wins.

Two claims, each measured against the code path it replaced and asserted
bit-identical:

1. **Parallel sweep** — 32 independent simulation points fanned across a
   4-worker process pool via :func:`repro.exec.runner.run_many` versus the
   same jobs run serially.  The speedup bar scales with the CPUs this
   machine actually exposes: >= 2x where >= 4 cores are available (the
   paper-reproduction target), a proportional floor on 2-3 cores, and
   correctness-only (bit-identical records) on single-core boxes, where a
   process pool cannot beat physics.
2. **Engine hot paths** — the 10-minute trace of
   ``benchmarks/test_perf_simulator.py`` with ``fast_engine=True``
   (incrementally maintained occupancy/context counters, pure-python
   context means) versus ``fast_engine=False`` (the seed's per-event scans
   and numpy round-trips).  Single process, same machine: >= 1.3x locally,
   with a relaxed CI floor against shared-runner noise.

Each run appends its numbers to ``benchmarks/BENCH_sweep.json`` — the
trajectory artifact CI uploads.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig
from repro.exec.runner import Job, effective_workers, run_many
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_trace

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_sweep.json"

# 8 rates x 4 trace seeds = 32 sweep points, each a complete (small)
# colocated simulation — coarse enough that pool dispatch overhead is noise.
SWEEP_RATES = [2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5]
SWEEP_SEEDS = [0, 1, 2, 3]


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _record_artifact(section: str, payload: dict) -> None:
    """Merge one benchmark section into the BENCH_sweep.json trajectory."""
    record = {}
    if ARTIFACT.exists():
        try:
            record = json.loads(ARTIFACT.read_text())
        except (OSError, ValueError):
            record = {}
    record[section] = payload
    record["cores"] = _available_cores()
    ARTIFACT.write_text(json.dumps(record, indent=2, sort_keys=True))


def _bench_point(rate: float, seed: int):
    """One sweep point (module-level: picklable for pool workers)."""
    trace = generate_trace(
        TraceConfig(rate=rate, duration=20.0, output_tokens=80, output_spread=0.5),
        seed=seed,
    )
    pool = ColocatedPool(
        instance=InstanceSpec(LLAMA3_8B, H100, 1), n_instances=1, max_decode_batch=64
    )
    return ColocatedSimulator(pool, SimConfig(max_sim_time=120.0)).run(trace)


def _sweep_jobs():
    return [
        Job(fn=_bench_point, args=(rate, seed), label=f"rate={rate:g} seed={seed}")
        for rate in SWEEP_RATES
        for seed in SWEEP_SEEDS
    ]


def test_parallel_sweep_speedup(benchmark):
    def run():
        start = time.perf_counter()
        serial = run_many(_sweep_jobs(), workers=1)
        t_serial = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_many(_sweep_jobs(), workers=4)
        t_parallel = time.perf_counter() - start
        return serial, t_serial, parallel, t_parallel

    serial, t_serial, parallel, t_parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    cores = _available_cores()
    effective = effective_workers(4)
    # With one effective worker, run_many's clamp routes the "parallel" call
    # through the identical serial path — there is no pool to measure, so the
    # artifact records an exact 1.0x instead of wall-clock noise masquerading
    # as a sub-1.0x "speedup" (the regression this clamp fixes).
    speedup = 1.0 if effective == 1 else t_serial / t_parallel
    # The wall-clock bar honestly tracks the hardware: a pool cannot beat
    # one core, and shared CI runners get slack for scheduler noise.
    relaxed = bool(os.environ.get("CI"))
    if effective >= 4:
        floor = 1.5 if relaxed else 2.0
    elif effective >= 2:
        floor = 1.05 if relaxed else 1.2
    else:
        floor = None
    emit(
        "Parallel sweep: 32 simulation points, 4 workers vs serial",
        f"points:   {len(serial)} (all completed: "
        f"{all(o.ok and o.value.completed > 0 for o in serial)})\n"
        f"serial:   {t_serial:.2f}s wall\n"
        f"4-worker: {t_parallel:.2f}s wall ({effective} effective worker(s))\n"
        f"speedup:  {speedup:.2f}x on {cores} core(s)"
        + ("" if floor else " — serial fallback, only bit-identity is asserted"),
    )
    _record_artifact(
        "parallel_sweep",
        {
            "points": len(serial),
            "workers": 4,
            "effective_workers": effective,
            "serial_fallback": effective == 1,
            "serial_s": t_serial,
            "parallel_s": t_parallel,
            "speedup": speedup,
            "floor": floor,
        },
    )
    # Determinism is asserted unconditionally: fan-out must be bit-exact.
    assert all(o.ok for o in serial) and all(o.ok for o in parallel)
    assert [o.value for o in serial] == [o.value for o in parallel]
    assert speedup >= 1.0 or floor is not None
    if floor is not None:
        assert speedup >= floor, f"expected >={floor}x on {effective} workers, got {speedup:.2f}x"


# The exact scenario of benchmarks/test_perf_simulator.py: a 10-minute
# trace, ~280k decode-iteration events.
HOTPATH_TRACE = generate_trace(
    TraceConfig(rate=3.0, duration=600.0, output_tokens=150, output_spread=0.5), seed=21
)

HOTPATH_POOLS = PhasePools(
    prefill=InstanceSpec(LLAMA3_8B, H100, 1),
    n_prefill=2,
    decode=InstanceSpec(LLAMA3_8B, H100, 1),
    n_decode=2,
    max_prefill_batch=4,
    max_decode_batch=128,
)


def _timed_engine_run(config: SimConfig):
    simulator = ServingSimulator(HOTPATH_POOLS, config)
    start = time.perf_counter()
    report = simulator.run(HOTPATH_TRACE)
    return report, time.perf_counter() - start


def test_engine_hot_path_speedup(benchmark):
    def run():
        legacy = _timed_engine_run(SimConfig(max_sim_time=1800.0, fast_engine=False))
        # Best of two fast runs: a scheduler stall during the (short) fast
        # run is the one noise source that could fake a regression.
        fast = min(
            (_timed_engine_run(SimConfig(max_sim_time=1800.0)) for _ in range(2)),
            key=lambda result: result[1],
        )
        return legacy, fast

    (report_legacy, t_legacy), (report_fast, t_fast) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = t_legacy / t_fast
    emit(
        "Engine hot paths: 10-minute trace, incremental counters vs per-event scans",
        f"trace:  {len(HOTPATH_TRACE)} requests\n"
        f"legacy: {t_legacy:.2f}s wall (per-event occupancy scans + numpy context means)\n"
        f"fast:   {t_fast:.2f}s wall (incremental integer counters)\n"
        f"speedup: {speedup:.2f}x",
    )
    _record_artifact(
        "engine_hot_paths",
        {
            "requests": len(HOTPATH_TRACE),
            "legacy_s": t_legacy,
            "fast_s": t_fast,
            "speedup": speedup,
        },
    )
    # The counters are integer sums of exactly the scanned terms: reports
    # must match float-for-float, not approximately.
    assert report_legacy == report_fast
    assert report_fast.completed == len(HOTPATH_TRACE)
    # Measured ~2.5x locally; the acceptance bar is 1.3x, relaxed on shared
    # CI runners so scheduler noise can't block the matrix.
    floor = 1.1 if os.environ.get("CI") else 1.3
    assert speedup >= floor, f"expected >={floor}x speedup, got {speedup:.2f}x"
