"""Figure 3b: decode — normalized tokens/s/SM across GPU types.

Regenerates the paper's right panel: best configurations under TBT <= 50 ms,
tokens/s/SM normalized to H100.  Expected shape (caption): Lite
underperforms (worse for GPT-3); Lite+MemBW exceeds H100; +NetBW helps more.
"""

from __future__ import annotations

from repro.analysis.figures import FIG3B_GPUS, fig3b_decode_series
from repro.analysis.tables import format_table, render_fig3_panel
from repro.core.search import search_best_config
from repro.workloads.models import PAPER_MODELS

from conftest import emit

MODELS = ("Llama3-70B", "GPT3-175B", "Llama3-405B")


def test_fig3b_decode(benchmark):
    series = benchmark.pedantic(fig3b_decode_series, rounds=3, iterations=1)
    emit("Figure 3b: decode (normalized tokens/s/SM)", render_fig3_panel(series, ""))

    rows = []
    for model in PAPER_MODELS:
        for gpu in FIG3B_GPUS:
            best = search_best_config(model, gpu, "decode").best
            rows.append(
                [model.name, gpu.name, best.n_gpus, best.batch,
                 f"{best.result.latency * 1e3:.1f} ms",
                 f"{best.tokens_per_s_per_sm:.2f}"]
            )
    emit(
        "Figure 3b winning configurations",
        format_table(["model", "gpu", "#GPUs", "batch", "TBT", "tok/s/SM"], rows),
    )

    # Caption shape.
    for model in MODELS:
        assert series[model]["Lite"] < 1.0
    assert series["GPT3-175B"]["Lite"] <= series["Llama3-70B"]["Lite"] + 1e-9
    assert series["Llama3-70B"]["Lite+MemBW"] > 1.0
    assert series["GPT3-175B"]["Lite+MemBW"] > 1.0
    for model in MODELS:
        assert series[model]["Lite+MemBW+NetBW"] >= series[model]["Lite+MemBW"]
    # Documented divergence: 405B Lite+MemBW stays below H100 under our
    # collective model (EXPERIMENTS.md); +NetBW recovers it.
    assert series["Llama3-405B"]["Lite+MemBW+NetBW"] > 1.0
