"""Section 2 claims: yield x1.8 and ~50% manufacturing-cost reduction."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.hardware.cost import CostModel
from repro.hardware.wafer import WaferSpec, dies_per_wafer
from repro.hardware.yieldmodel import YieldModel, murphy_yield, yield_gain

from conftest import emit

H100_AREA = 814.0


def _yield_cost_table():
    """Yield and per-good-die cost across split factors."""
    wafer = WaferSpec()
    ym = YieldModel.murphy()
    rows = []
    base_cost = wafer.cost_per_good_die(H100_AREA, ym)
    for split in (1, 2, 4, 8, 16):
        area = H100_AREA / split
        cost = wafer.cost_per_good_die(area, ym) * split
        rows.append(
            [
                split,
                f"{area:.0f}",
                dies_per_wafer(area),
                f"{murphy_yield(area):.3f}",
                f"{yield_gain(H100_AREA, split):.2f}x",
                f"${cost:.0f}",
                f"{1 - cost / base_cost:.0%}",
            ]
        )
    return rows


def test_sec2_yield_and_cost(benchmark):
    rows = benchmark(_yield_cost_table)
    emit(
        "Section 2: yield and silicon cost vs. split factor (Murphy, D0=0.1/cm^2)",
        format_table(
            ["split", "die mm^2", "dies/wafer", "yield", "yield gain", "cost/equiv", "saving"],
            rows,
        ),
    )
    # The paper's two headline numbers at split=4.
    assert yield_gain(H100_AREA, 4) == pytest.approx(1.8, abs=0.1)
    assert CostModel().cost_reduction(H100_AREA, 4) == pytest.approx(0.5, abs=0.08)


def test_sec2_cost_model_sensitivity(benchmark):
    """The ~50% saving is robust across plausible defect densities."""

    def sweep():
        return {
            d0: CostModel(yield_model=YieldModel.murphy(d0)).cost_reduction(H100_AREA, 4)
            for d0 in (0.05, 0.08, 0.10, 0.15, 0.20)
        }

    savings = benchmark(sweep)
    emit(
        "Section 2: cost saving vs. defect density",
        "\n".join(f"D0={d0:.2f}/cm^2 -> saving {s:.0%}" for d0, s in savings.items()),
    )
    assert all(0.25 < s < 0.75 for s in savings.values())
    # Saving grows with defect density (yield matters more on bad processes).
    values = list(savings.values())
    assert values == sorted(values)
