"""Extension: Mixture-of-Experts serving on Lite clusters.

MoE models (the DeepSeek direction the paper's related work cites) are the
most memory-bound mainstream workload: every expert is resident and — at
serving batch sizes — read every iteration, while only top-k contribute
FLOPs.  That skews the Figure-3b comparison even further toward the
memory-bandwidth-rich Lite variants.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.metrics import normalize_to_baseline
from repro.core.search import search_best_config
from repro.hardware.gpu import H100, LITE, LITE_MEMBW
from repro.workloads.moe import MIXTRAL_8X7B
from repro.workloads.models import LLAMA3_70B

from conftest import emit

GPUS = (H100, LITE, LITE_MEMBW)


def _moe_panel():
    out = {}
    for model in (LLAMA3_70B, MIXTRAL_8X7B):
        series = {}
        for gpu in GPUS:
            for phase in ("prefill", "decode"):
                result = search_best_config(model, gpu, phase)
                series[(gpu.name, phase)] = result.best_tokens_per_s_per_sm
        out[model.name] = series
    return out


def test_ext_moe(benchmark):
    panel = benchmark.pedantic(_moe_panel, rounds=1, iterations=1)
    rows = []
    for model, series in panel.items():
        for phase in ("prefill", "decode"):
            sub = {g.name: series[(g.name, phase)] for g in GPUS}
            norm = normalize_to_baseline(sub, "H100")
            rows.append(
                [model, phase] + [f"{norm[g.name]:.3f}" for g in GPUS]
            )
    emit(
        "Extension: MoE (Mixtral-8x7B) vs dense (Llama3-70B), normalized to H100",
        format_table(["model", "phase"] + [g.name for g in GPUS], rows),
    )
    dense = panel["Llama3-70B"]
    moe = panel["Mixtral-8x7B"]
    dense_gain = dense[("Lite+MemBW", "decode")] / dense[("H100", "decode")]
    moe_gain = moe[("Lite+MemBW", "decode")] / moe[("H100", "decode")]
    # The MemBW advantage is amplified for MoE decode.
    assert moe_gain > dense_gain > 1.0
    # Prefill stays roughly neutral for both.
    assert abs(moe[("Lite", "prefill")] / moe[("H100", "prefill")] - 1.0) < 0.15
