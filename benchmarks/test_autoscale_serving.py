"""Autoscaling benchmark: elastic beats static provisioning on $/Mtoken.

The control plane's headline claim, measured: on a bursty trace (quiet /
burst / quiet), a statically peak-provisioned deployment and a reactive
autoscaler complete the same requests and both hold the paper's P99-TTFT
SLO (<= 1 s) — but the autoscaler drains idle instances through the lulls,
holds fewer provisioned gpu-seconds, and lands a strictly lower $/Mtoken.
That delta is the perf-per-TCO argument of Section 3, produced by the
simulator instead of assumed.

Each run writes ``benchmarks/BENCH_autoscale.json`` — the artifact CI
uploads alongside the sweep and network trajectories.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.report import simulation_table
from repro.cluster.control import ReactiveController, SLOController
from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_piecewise_trace

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_autoscale.json"

#: The paper's TTFT SLO (Splitwise production numbers): P99 <= 1 s.
TTFT_SLO = 1.0

# Quiet / burst / quiet: the shape static provisioning wastes money on.
TRACE = generate_piecewise_trace(
    [(1.0, 60.0), (8.0, 60.0), (1.0, 60.0)],
    TraceConfig(output_tokens=100, output_spread=0.5),
    seed=7,
)


def _peak_provisioned() -> PhasePools:
    """Sized so the burst segment is comfortable — the static baseline."""
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=6,
        max_prefill_batch=4,
        max_decode_batch=32,
    )


def _controllers():
    return {
        "static": None,
        "reactive": ReactiveController(
            epoch=5.0, warmup_s=10.0, calm_epochs=2, queue_high=2.0, max_instances=6
        ),
        "slo": SLOController(
            epoch=5.0, warmup_s=10.0, calm_epochs=2,
            ttft_target=TTFT_SLO, max_instances=6,
        ),
    }


def _run_all():
    config = SimConfig(max_sim_time=1800.0)
    return {
        name: ServingSimulator(_peak_provisioned(), config, controller=ctrl).run(TRACE)
        for name, ctrl in _controllers().items()
    }


def test_autoscale_serving(benchmark):
    reports = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    static, reactive = reports["static"], reports["reactive"]

    labeled = {
        name + (
            f" (+{r.spawned_instances}/-{r.retired_instances})"
            if r.spawned_instances or r.retired_instances else ""
        ): r
        for name, r in reports.items()
    }
    emit(
        "Autoscale serving: Llama3-8B, quiet/burst/quiet at 1/8/1 req/s",
        simulation_table(labeled, title="Static vs elastic provisioning"),
    )

    payload = {
        name: {
            "completed": r.completed,
            "ttft_p99_s": r.ttft_p99,
            "tbt_mean_s": r.tbt_mean,
            "output_tokens_per_s": r.output_tokens_per_s,
            "gpu_seconds": r.gpu_seconds,
            "energy_kwh": r.energy_joules / 3.6e6,
            "usd_cost": r.usd_cost,
            "usd_per_mtoken": r.usd_per_mtoken,
            "spawned": r.spawned_instances,
            "retired": r.retired_instances,
        }
        for name, r in reports.items()
    }
    payload["elastic_saving"] = 1.0 - reactive.usd_per_mtoken / static.usd_per_mtoken
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True))

    # Everyone serves the full trace...
    for name, report in reports.items():
        assert report.completed == len(TRACE), name
        # ...at the paper's P99-TTFT SLO.
        assert report.ttft_p99 <= TTFT_SLO, name
    # The static baseline never scales; the elastic controllers shed idle
    # capacity through the lulls.
    assert static.spawned_instances == 0 and static.retired_instances == 0
    assert reactive.retired_instances > 0
    # The acceptance criterion: reactive strictly cheaper per token than
    # static provisioning at equal SLO, with a meaningful margin.
    assert reactive.usd_per_mtoken < static.usd_per_mtoken * 0.8
    assert reactive.gpu_seconds < static.gpu_seconds
