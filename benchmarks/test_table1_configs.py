"""Table 1: GPU configurations — regenerate and verify verbatim."""

from __future__ import annotations

from repro.analysis.tables import render_table1, table1_rows

from conftest import emit

#: The paper's Table 1, row for row.
EXPECTED = [
    ("H100", 2000, 80, 3352, 450.0, 8),
    ("Lite", 500, 20, 838, 112.5, 32),
    ("Lite+NetBW", 500, 20, 838, 225.0, 32),
    ("Lite+NetBW+FLOPS", 550, 20, 419, 225.0, 32),
    ("Lite+MemBW", 500, 20, 1675, 112.5, 32),
    ("Lite+MemBW+NetBW", 500, 20, 1675, 225.0, 32),
]


def test_table1(benchmark):
    rows = benchmark(table1_rows)
    emit("Table 1: GPU configurations", render_table1())
    got = [
        (
            r["GPU type"],
            r["TFLOPS"],
            r["Cap. GB"],
            r["Mem BW GB/s"],
            r["Net BW GB/s"],
            r["#Max GPUs"],
        )
        for r in rows
    ]
    assert got == EXPECTED
