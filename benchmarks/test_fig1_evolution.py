"""Figure 1: evolution of GPUs in AI clusters — regenerate the trend table."""

from __future__ import annotations

from repro.analysis.figures import fig1_evolution_series
from repro.analysis.tables import format_table
from repro.hardware.die import RETICLE_LIMIT_MM2
from repro.hardware.evolution import evolution_trends

from conftest import emit


def test_fig1_evolution(benchmark):
    rows = benchmark(fig1_evolution_series)
    headers = [
        "name", "year", "dies", "die_area_mm2", "total_area_mm2",
        "transistors_b", "tdp_w", "hbm_gb", "mem_bw_gbs", "packaging",
    ]
    emit(
        "Figure 1: evolution of data-center GPUs",
        format_table(headers, [[r[h] for h in headers] for r in rows]),
    )
    trends = evolution_trends()
    emit(
        "Figure 1 trends",
        (
            f"transistors x{trends['transistor_growth']:.0f}, "
            f"per-die area x{trends['per_die_area_growth']:.2f} (reticle-bound), "
            f"packaged dies x{trends['dies_per_package_growth']:.0f}, "
            f"TDP x{trends['tdp_growth']:.1f}, "
            f"power density x{trends['power_density_growth']:.1f} "
            f"over {trends['years']} years"
        ),
    )
    # The figure's story: dies hit the reticle wall; packaging + power absorb
    # the growth.
    assert all(r["die_area_mm2"] <= RETICLE_LIMIT_MM2 for r in rows)
    assert trends["transistor_growth"] > 10
    assert trends["per_die_area_growth"] < 1.5
    assert trends["dies_per_package_growth"] >= 2
