"""Scale benchmark: constant-memory streaming vs exact at large request counts.

The engine scale-out claim, measured: a trace generated lazily
(:func:`iter_trace`), fed to the engine one arrival ahead of the clock, and
folded into quantile sketches (``metrics="streaming"``) must simulate large
request counts with **flat** peak memory — while the exact path's footprint
grows linearly with the trace (one ``CompletedRequest`` plus latency floats
per request).  Three asserted quantities:

1. **Requests/second** — a throughput floor on the streaming path (timed
   without tracemalloc, which roughly doubles allocation costs).
2. **Peak traced memory** — ``tracemalloc`` peaks for streaming vs exact on
   the *same* trace; the ratio floor scales with the trace (≥10x at 500k+
   requests, where the exact path's linear term dominates; a looser floor
   at the small default so tier-1 stays fast).
3. **Accuracy** — streaming TTFT p50/p99 within 1% relative error of the
   exact percentiles (the acceptance bar).

``REPRO_SCALE_REQUESTS`` picks the trace size (default 12k — tier-1
friendly).  The committed ``BENCH_scale.json`` was generated once at
1,000,000 requests (``REPRO_SCALE_REQUESTS=1000000``); re-running at the
default scale records a separate section and leaves the 1M evidence alone.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

from repro.cluster.scheduler import ColocatedPool, InstanceSpec
from repro.cluster.simulator import ColocatedSimulator, SimConfig
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, iter_trace

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_scale.json"

#: Arrival rate of the scale trace: high enough that decode batches stay
#: full (the engine's per-iteration cost amortizes over the batch).
RATE = 400.0
#: Lazy-generation window: ~2k requests of trace state resident at a time.
WINDOW = 5.0

N_REQUESTS = int(os.environ.get("REPRO_SCALE_REQUESTS", "12000"))


def _trace_config() -> TraceConfig:
    return TraceConfig(
        rate=RATE,
        duration=N_REQUESTS / RATE,
        output_tokens=32,
        output_spread=0.3,
    )


def _pool() -> ColocatedPool:
    return ColocatedPool(
        instance=InstanceSpec(LLAMA3_8B, H100, 1),
        n_instances=8,
        max_decode_batch=256,
    )


def _sim_config(metrics: str) -> SimConfig:
    return SimConfig(max_sim_time=N_REQUESTS / RATE + 300.0, metrics=metrics)


def _lazy_trace():
    return iter_trace(_trace_config(), seed=0, window=WINDOW)


def _record_artifact(section: str, payload: dict) -> None:
    record = {}
    if ARTIFACT.exists():
        try:
            record = json.loads(ARTIFACT.read_text())
        except (OSError, ValueError):
            record = {}
    record[section] = payload
    ARTIFACT.write_text(json.dumps(record, indent=2, sort_keys=True))


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(b), 1e-12)


def test_streaming_scale(benchmark):
    def run():
        # Timed streaming run: lazy trace, sketch metrics, no tracer.
        start = time.perf_counter()
        stream = ColocatedSimulator(_pool(), _sim_config("streaming")).run(_lazy_trace())
        t_stream = time.perf_counter() - start
        # Traced streaming run: same simulation under tracemalloc.
        tracemalloc.start()
        ColocatedSimulator(_pool(), _sim_config("streaming")).run(_lazy_trace())
        _, peak_stream = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Traced exact run: the same requests, materialized (the exact path
        # needs the whole list anyway — that *is* its footprint).
        tracemalloc.start()
        exact = ColocatedSimulator(_pool(), _sim_config("exact")).run(list(_lazy_trace()))
        _, peak_exact = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return stream, t_stream, peak_stream, exact, peak_exact

    stream, t_stream, peak_stream, exact, peak_exact = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    req_per_s = stream.completed / t_stream
    ratio = peak_exact / peak_stream
    ttft_p50_err = _rel(stream.ttft_p50, exact.ttft_p50)
    ttft_p99_err = _rel(stream.ttft_p99, exact.ttft_p99)

    relaxed = bool(os.environ.get("CI"))
    rps_floor = 500.0 if relaxed else 2000.0
    # The exact path's linear term needs requests to dominate its fixed
    # costs: the 10x memory bar applies at scale, a conservative floor below.
    ratio_floor = 10.0 if N_REQUESTS >= 500_000 else 2.5

    emit(
        f"Streaming scale: {stream.completed} requests, sketches vs exact",
        f"throughput: {req_per_s:,.0f} simulated req/s "
        f"({t_stream:.1f}s wall, floor {rps_floor:,.0f})\n"
        f"peak memory: streaming {peak_stream / 1e6:.1f} MB, "
        f"exact {peak_exact / 1e6:.1f} MB ({ratio:.1f}x, floor {ratio_floor:g}x)\n"
        f"TTFT error: p50 {ttft_p50_err:.3%}, p99 {ttft_p99_err:.3%} (bar 1%)",
    )
    _record_artifact(
        "scale_1m" if N_REQUESTS >= 1_000_000 else "scale_default",
        {
            "requests": stream.completed,
            "streaming_wall_s": t_stream,
            "requests_per_s": req_per_s,
            "rps_floor": rps_floor,
            "streaming_peak_bytes": peak_stream,
            "exact_peak_bytes": peak_exact,
            "memory_ratio": ratio,
            "ratio_floor": ratio_floor,
            "ttft_p50_rel_err": ttft_p50_err,
            "ttft_p99_rel_err": ttft_p99_err,
            "under_1gib": peak_stream < 2**30,
        },
    )
    # Same trace, same engine events: the counters must agree exactly.
    assert stream.completed == exact.completed
    assert stream.dropped == exact.dropped == 0
    assert stream.output_tokens_per_s == exact.output_tokens_per_s
    # The acceptance bars.
    assert peak_stream < 2**30, f"streaming peak {peak_stream / 1e6:.0f} MB >= 1 GiB"
    assert ratio >= ratio_floor, f"memory ratio {ratio:.1f}x < {ratio_floor:g}x"
    assert req_per_s >= rps_floor, f"{req_per_s:,.0f} req/s < floor {rps_floor:,.0f}"
    assert ttft_p50_err <= 0.01, f"TTFT p50 error {ttft_p50_err:.3%} > 1%"
    assert ttft_p99_err <= 0.01, f"TTFT p99 error {ttft_p99_err:.3%} > 1%"
