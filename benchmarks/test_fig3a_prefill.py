"""Figure 3a: prompt prefill — normalized tokens/s/SM across GPU types.

Regenerates the paper's left panel: for Llama3-70B, GPT3-175B and
Llama3-405B, the best (batch, #GPUs) configuration per GPU type under
TTFT <= 1 s, plotted as tokens/s/SM normalized to H100.
"""

from __future__ import annotations

from repro.analysis.figures import FIG3A_GPUS, fig3a_prefill_series
from repro.analysis.tables import format_table, render_fig3_panel
from repro.core.search import search_best_config
from repro.workloads.models import PAPER_MODELS

from conftest import emit

MODELS = ("Llama3-70B", "GPT3-175B", "Llama3-405B")


def test_fig3a_prefill(benchmark):
    series = benchmark.pedantic(fig3a_prefill_series, rounds=3, iterations=1)
    emit("Figure 3a: prefill (normalized tokens/s/SM)", render_fig3_panel(series, ""))

    # Winning configurations (the paper notes the search may pick fewer GPUs
    # than the maximum).
    rows = []
    for model in PAPER_MODELS:
        for gpu in FIG3A_GPUS:
            best = search_best_config(model, gpu, "prefill").best
            rows.append(
                [model.name, gpu.name, best.n_gpus, best.batch,
                 f"{best.result.latency * 1e3:.0f} ms",
                 f"{best.tokens_per_s_per_sm:.1f}"]
            )
    emit(
        "Figure 3a winning configurations",
        format_table(["model", "gpu", "#GPUs", "batch", "TTFT", "tok/s/SM"], rows),
    )

    # Caption shape: all similar for the small model; Lite degrades with
    # model size (network); +NetBW compensates; +FLOPS improves further.
    assert abs(series["Llama3-70B"]["Lite"] - 1.0) < 0.1
    lite = [series[m]["Lite"] for m in MODELS]
    assert lite[0] >= lite[2] and lite[2] < 0.9
    assert series["Llama3-405B"]["Lite+NetBW"] > 0.9
    for model in MODELS:
        assert series[model]["Lite+NetBW+FLOPS"] >= series[model]["Lite+NetBW"] - 0.02
