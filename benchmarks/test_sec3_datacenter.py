"""Section 3 data-center management: racks, density, cooling mix, reach."""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cluster.datacenter import lite_vs_h100_floor, plan_racks, reach_check
from repro.hardware.cooling import CoolingKind
from repro.hardware.gpu import H100, LITE
from repro.network.links import COPPER_NVLINK, CPO_OPTICS, PLUGGABLE_OPTICS

from conftest import emit


def test_sec3_datacenter(benchmark):
    comparison = benchmark(lite_vs_h100_floor, 512, H100, LITE)
    h100_plan, lite_plan = comparison["h100"], comparison["lite"]
    rows = [
        [
            p.gpu,
            p.n_gpus,
            p.gpus_per_rack,
            p.n_racks,
            f"{p.rack_power_kw:.0f} kW",
            p.cooling.value,
            f"{p.floor_m2:.0f} m^2",
            f"{p.power_density_kw_m2:.1f} kW/m^2",
        ]
        for p in (h100_plan, lite_plan)
    ]
    emit(
        "Section 3: data-center floor plan at equal compute (512 H100-equivalents)",
        format_table(
            ["gpu", "GPUs", "GPUs/rack", "racks", "rack power", "cooling", "floor", "density"],
            rows,
        ),
    )
    emit(
        "Density/cooling deltas",
        (
            f"devices per m^2: x{comparison['devices_per_m2_ratio']:.2f}, "
            f"power per m^2: x{comparison['power_density_ratio']:.2f}, "
            f"liquid racks eliminated: {comparison['liquid_eliminated']}"
        ),
    )
    # The paper's three sentences, as assertions.
    assert comparison["devices_per_m2_ratio"] > 1.0
    assert comparison["power_density_ratio"] < 1.0
    assert comparison["liquid_eliminated"]
    assert h100_plan.cooling is CoolingKind.LIQUID_COLD_PLATE
    assert lite_plan.cooling is CoolingKind.AIR


def test_sec3_reach(benchmark):
    """Link reach vs deployment size: the CPO enabler."""

    def sweep():
        records = []
        for n in (4, 128, 2048, 8192):
            plan = plan_racks(LITE, n)
            records.append(
                (
                    n,
                    plan.n_racks,
                    reach_check(plan, COPPER_NVLINK),
                    reach_check(plan, CPO_OPTICS),
                    reach_check(plan, PLUGGABLE_OPTICS),
                )
            )
        return records

    records = benchmark(sweep)
    emit(
        "Section 3: which link tech reaches across the deployment",
        format_table(
            ["Lite GPUs", "racks", "copper (3m)", "CPO (50m)", "pluggable (100m)"],
            [[n, r, c, o, p] for n, r, c, o, p in records],
        ),
    )
    by_n = {n: (c, o) for n, _, c, o, _ in records}
    assert by_n[4] == (True, True)  # one rack: anything works
    assert by_n[2048] == (False, True)  # flat Lite cluster needs optics
    assert not by_n[8192][0]
