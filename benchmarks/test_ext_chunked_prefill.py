"""Extension: chunked prefill (SARATHI) vs phase-splitting (Splitwise).

Both papers are cited by the Lite-GPU paper as complementary serving
techniques.  This bench asks which one a Lite operator should pick: how many
prompt tokens can a decode pool smuggle under its 50 ms TBT SLO (chunked),
vs. what a dedicated prefill pool of the same GPUs delivers (split)?
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.chunked import chunked_vs_split_throughput
from repro.hardware.gpu import H100, LITE, LITE_MEMBW
from repro.workloads.models import LLAMA3_70B

from conftest import emit

CASES = (
    ("H100", H100, 2),
    ("Lite", LITE, 8),
    ("Lite+MemBW", LITE_MEMBW, 8),
)


def _study():
    records = []
    for name, gpu, n in CASES:
        result = chunked_vs_split_throughput(
            LLAMA3_70B, gpu, n, decode_batch=64, context_len=1750
        )
        records.append((name, n, result))
    return records


def test_ext_chunked_prefill(benchmark):
    records = benchmark.pedantic(_study, rounds=1, iterations=1)
    rows = []
    for name, n, r in records:
        rows.append(
            [
                f"{n}x {name}",
                r["chunk"],
                f"{r['tbt'] * 1e3:.1f} ms",
                f"{r['piggyback_prefill_tokens_per_s']:,.0f}",
                f"{r['dedicated_prefill_tokens_per_s']:,.0f}",
                f"{r['piggyback_prefill_tokens_per_s'] / r['dedicated_prefill_tokens_per_s']:.0%}",
            ]
        )
    emit(
        "Extension: chunked prefill under the 50 ms TBT SLO (Llama3-70B, decode batch 64)",
        format_table(
            ["pool", "chunk tokens", "mixed TBT", "piggyback tok/s", "dedicated tok/s", "ratio"],
            rows,
        ),
    )
    by_name = {name: r for name, _, r in records}
    # Every pool can piggyback a real chunk within the SLO...
    for name, _, r in records:
        assert r["chunk"] > 0
        assert r["tbt"] <= 0.050 + 1e-6
    # ...but a dedicated pool always moves more prompt tokens, which is why
    # phase-splitting (and phase-specialized Lite-GPUs) wins at scale.
    for name, _, r in records:
        assert r["dedicated_prefill_tokens_per_s"] > r["piggyback_prefill_tokens_per_s"]
    # Faster decode (MemBW) leaves more SLO headroom to piggyback.
    assert (
        by_name["Lite+MemBW"]["piggyback_prefill_tokens_per_s"]
        > by_name["Lite"]["piggyback_prefill_tokens_per_s"]
    )
