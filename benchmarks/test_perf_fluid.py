"""Fluid-backend benchmark: accuracy pins, per-point speedup, two-tier sweep.

Three claims, each measured against the event engine it screens for:

1. **Accuracy** — on the golden configs of
   ``benchmarks/test_serving_simulation.py`` (H100 and specialized-Lite
   phase-split) plus the colocated golden shape, the fluid backend lands
   within pinned relative error bounds of event truth: TTFT/e2e p99 within
   stated bounds, throughput within ~5%, completed counts exact.
2. **Speedup** — on the 10-minute hot-path trace of
   ``benchmarks/test_perf_sweep.py``, one fluid evaluation costs >= 100x
   less wall clock than one event evaluation (relaxed floor on shared CI
   runners; the measured ratio is recorded either way).
3. **Two-tier screening** — on a 5 rates x 5 sizes capacity grid,
   :func:`repro.analysis.screening.screen_then_simulate` recovers the
   full event sweep's argbest while event-simulating <= 25% of the points.

Each run appends its numbers to ``benchmarks/BENCH_fluid.json`` — the
trajectory artifact CI uploads.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from repro.analysis.screening import screen_then_simulate
from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig
from repro.hardware.gpu import H100, LITE_MEMBW, LITE_NETBW_FLOPS
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_fluid.json"

GOLDEN_TRACE = generate_trace(
    TraceConfig(rate=6.0, duration=40.0, output_tokens=150, output_spread=0.5), seed=13
)


def _record_artifact(section: str, payload: dict) -> None:
    """Merge one benchmark section into the BENCH_fluid.json trajectory."""
    record = {}
    if ARTIFACT.exists():
        try:
            record = json.loads(ARTIFACT.read_text())
        except (OSError, ValueError):
            record = {}
    record[section] = payload
    ARTIFACT.write_text(json.dumps(record, indent=2, sort_keys=True))


def _h100_deployment() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, H100, 2),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, H100, 2),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def _lite_deployment() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, LITE_NETBW_FLOPS, 8),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, LITE_MEMBW, 8),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def _colocated_deployment() -> ColocatedPool:
    return ColocatedPool(
        instance=InstanceSpec(LLAMA3_70B, H100, 2),
        n_instances=4,
        max_decode_batch=64,
        chunk_tokens=512,
    )


# Pinned fluid-vs-event relative error bounds on the golden configs.  The
# phase-split bounds are tight (the Erlang residual-wait correction holds
# p99 to ~15% there); colocated chunked-prefill dynamics are harder to
# close analytically, so its bounds are honest rather than flattering.
PHASE_SPLIT_BOUNDS = {
    "ttft_p50": 0.02,
    "ttft_p99": 0.25,
    "tbt_mean": 0.02,
    "tbt_p99": 0.05,
    "e2e_p50": 0.05,
    "e2e_p99": 0.10,
    "output_tokens_per_s": 0.05,
    "prefill_utilization": 0.10,
    "decode_utilization": 0.10,
}
COLOCATED_BOUNDS = {
    "ttft_p50": 0.10,
    "ttft_p99": 0.35,
    "tbt_mean": 0.15,
    "tbt_p99": 0.25,
    "e2e_p50": 0.20,
    "e2e_p99": 0.20,
    "output_tokens_per_s": 0.05,
    "decode_utilization": 0.10,
}


def _error_rows(fluid, event, bounds):
    rows = []
    for name, bound in bounds.items():
        f, e = getattr(fluid, name), getattr(event, name)
        rel = abs(f - e) / max(abs(e), 1e-12)
        rows.append((name, f, e, rel, bound))
    return rows


def test_fluid_accuracy_on_goldens(benchmark):
    def run():
        results = {}
        for name, deployment, simulator_cls, bounds in (
            ("h100_phase_split", _h100_deployment(), ServingSimulator, PHASE_SPLIT_BOUNDS),
            ("lite_phase_split", _lite_deployment(), ServingSimulator, PHASE_SPLIT_BOUNDS),
            ("colocated", _colocated_deployment(), ColocatedSimulator, COLOCATED_BOUNDS),
        ):
            event = simulator_cls(deployment, SimConfig()).run(GOLDEN_TRACE)
            fluid = simulator_cls(deployment, SimConfig(backend="fluid")).run(GOLDEN_TRACE)
            results[name] = (fluid, event, bounds)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact = {}
    lines = []
    failures = []
    for name, (fluid, event, bounds) in results.items():
        assert fluid.backend == "fluid" and event.backend == "event"
        if fluid.completed != event.completed:
            failures.append(f"{name}: completed {fluid.completed} != {event.completed}")
        metrics = {}
        for metric, f, e, rel, bound in _error_rows(fluid, event, bounds):
            metrics[metric] = {"fluid": f, "event": e, "rel_error": rel, "bound": bound}
            lines.append(f"{name:18s} {metric:22s} fluid {f:10.5f}  event {e:10.5f}  "
                         f"rel {rel:+.3f} (bound {bound:.2f})")
            if not rel <= bound:
                failures.append(f"{name}.{metric}: rel {rel:.3f} > bound {bound}")
        artifact[name] = {"completed": event.completed, "metrics": metrics}
    emit("Fluid accuracy vs event truth on the golden configs", "\n".join(lines))
    _record_artifact("accuracy", artifact)
    assert not failures, "; ".join(failures)


# The exact hot-path scenario of benchmarks/test_perf_sweep.py: a
# 10-minute trace, ~280k decode-iteration events for the event engine.
HOTPATH_TRACE = generate_trace(
    TraceConfig(rate=3.0, duration=600.0, output_tokens=150, output_spread=0.5), seed=21
)

HOTPATH_POOLS = PhasePools(
    prefill=InstanceSpec(LLAMA3_8B, H100, 1),
    n_prefill=2,
    decode=InstanceSpec(LLAMA3_8B, H100, 1),
    n_decode=2,
    max_prefill_batch=4,
    max_decode_batch=128,
)


def _timed_point(backend: str):
    """One full sweep-point evaluation: simulator construction + run."""
    start = time.perf_counter()
    report = ServingSimulator(
        HOTPATH_POOLS, SimConfig(max_sim_time=1800.0, backend=backend)
    ).run(HOTPATH_TRACE)
    return report, time.perf_counter() - start


def test_fluid_point_speedup(benchmark):
    def run():
        event = _timed_point("event")
        # Best of five fluid runs: at ~10ms per run a single scheduler
        # stall would otherwise dominate the measurement.
        fluid = min((_timed_point("fluid") for _ in range(5)), key=lambda r: r[1])
        return event, fluid

    (report_event, t_event), (report_fluid, t_fluid) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = t_event / t_fluid
    # Shared CI runners get slack against scheduler noise; the measured
    # ratio lands in the artifact either way.
    floor = 60.0 if os.environ.get("CI") else 100.0
    emit(
        "Fluid fast path: one sweep point on the 10-minute trace",
        f"trace:  {len(HOTPATH_TRACE)} requests\n"
        f"event:  {t_event * 1e3:8.1f} ms wall (discrete-event truth)\n"
        f"fluid:  {t_fluid * 1e3:8.1f} ms wall (analytic ODE, best of 5)\n"
        f"speedup: {speedup:.0f}x (floor {floor:.0f}x)",
    )
    _record_artifact(
        "point_speedup",
        {
            "requests": len(HOTPATH_TRACE),
            "event_s": t_event,
            "fluid_s": t_fluid,
            "speedup": speedup,
            "floor": floor,
        },
    )
    # Both backends must agree the system is healthy before the ratio
    # means anything.
    assert report_event.completed == len(HOTPATH_TRACE)
    assert report_fluid.completed == len(HOTPATH_TRACE)
    rel_tput = abs(
        report_fluid.output_tokens_per_s - report_event.output_tokens_per_s
    ) / report_event.output_tokens_per_s
    assert rel_tput <= 0.05
    assert speedup >= floor, f"expected >={floor:.0f}x, got {speedup:.1f}x"


# --- two-tier screening grid -------------------------------------------
# A capacity-planning grid where the decode pool is the binding resource:
# max rate 16/s saturates 1- and 2-instance decode pools, a 3-instance
# pool rides just under saturation (the true argbest), and 4/6 instances
# buy nothing but idle GPUs.
SCREEN_RATES = (2.0, 4.0, 8.0, 12.0, 16.0)
SCREEN_SIZES = (1, 2, 3, 4, 6)


def _screen_grid_point(backend: str, rate: float, size: int):
    trace = generate_trace(
        TraceConfig(rate=rate, duration=8.0, output_tokens=80, output_spread=0.5),
        seed=11,
    )
    pools = PhasePools(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=size,
        max_prefill_batch=4,
        max_decode_batch=4,
    )
    return ServingSimulator(pools, SimConfig(backend=backend)).run(trace)


def _cost(record):
    """Unit economics: saturated pools are cheap, idle GPUs are not."""
    return record["result"].usd_per_mtoken


def _quality(record):
    return record["result"].output_tokens_per_s


def test_two_tier_screening_recovers_argbest(benchmark):
    def run():
        start = time.perf_counter()
        result = screen_then_simulate(
            _screen_grid_point,
            [{"rate": r, "size": s} for r in SCREEN_RATES for s in SCREEN_SIZES],
            cost=_cost,
            quality=_quality,
            margin=0.05,
        )
        t_screen = time.perf_counter() - start
        # Ground truth: the full event sweep the screen is replacing.
        start = time.perf_counter()
        truth = [
            {"rate": r, "size": s, "result": _screen_grid_point("event", r, s)}
            for r in SCREEN_RATES
            for s in SCREEN_SIZES
        ]
        t_full = time.perf_counter() - start
        return result, truth, t_screen, t_full

    result, truth, t_screen, t_full = benchmark.pedantic(run, rounds=1, iterations=1)
    truth_best = max(truth, key=_quality)
    fraction = result.promotion_fraction
    emit(
        "Two-tier screening: 5 rates x 5 decode-pool sizes",
        result.table(_cost, _quality)
        + f"\nevent argbest (full sweep): rate={truth_best['rate']:g} "
        f"size={truth_best['size']} ({_quality(truth_best):.0f} tok/s)\n"
        f"screen verdict:             rate={result.best['rate']:g} "
        f"size={result.best['size']} ({_quality(result.best):.0f} tok/s)\n"
        f"event simulations: {len(result.promoted)}/{result.n_points} "
        f"({fraction:.0%}); wall {t_screen:.1f}s vs full sweep {t_full:.1f}s",
    )
    _record_artifact(
        "two_tier_screening",
        {
            "grid_points": result.n_points,
            "promoted": len(result.promoted),
            "promotion_fraction": fraction,
            "margin": result.margin,
            "screen_s": t_screen,
            "full_sweep_s": t_full,
            "argbest": {"rate": result.best["rate"], "size": result.best["size"]},
            "argbest_recovered": math.isclose(
                _quality(result.best), _quality(truth_best), rel_tol=1e-9
            ),
        },
    )
    # The headline guarantees: same verdict as the full event sweep, at
    # <= 25% of its event-simulation bill.
    assert _quality(result.best) == _quality(truth_best)
    assert (result.best["rate"], result.best["size"]) == (
        truth_best["rate"], truth_best["size"],
    )
    assert fraction <= 0.25, f"promoted {fraction:.0%} of the grid (> 25%)"
    assert t_screen < t_full
