"""Simulator hot-path micro-benchmark: memoized service times + deque queues.

The seed simulator re-evaluated the full analytical roofline every decode
iteration and popped queues with O(n) ``list.pop(0)``; on long traces that
dominated wall-clock.  The refactored engine memoizes service times in
:class:`repro.cluster.engine.ServiceTimeProvider` (keyed on batch and a
context bucket) and uses ``collections.deque`` throughout.  This benchmark
runs a 10-minute-horizon trace both ways and asserts the ≥3x speedup the
refactor exists to deliver — with the cached run's report staying exact
(``context_bucket=1`` changes nothing but wall-clock).
"""

from __future__ import annotations

import os
import time

from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_trace

from conftest import emit

# A 10-minute-horizon trace: ~1800 requests, ~280k decode-iteration events.
TRACE = generate_trace(
    TraceConfig(rate=3.0, duration=600.0, output_tokens=150, output_spread=0.5), seed=21
)

POOLS = PhasePools(
    prefill=InstanceSpec(LLAMA3_8B, H100, 1),
    n_prefill=2,
    decode=InstanceSpec(LLAMA3_8B, H100, 1),
    n_decode=2,
    max_prefill_batch=4,
    max_decode_batch=128,
)


def _timed_run(config: SimConfig):
    simulator = ServingSimulator(POOLS, config)
    start = time.perf_counter()
    report = simulator.run(TRACE)
    elapsed = time.perf_counter() - start
    return report, elapsed, simulator.decode_provider.cache_info()


def test_cached_service_times_speed_up_long_traces(benchmark):
    def run():
        uncached = _timed_run(SimConfig(max_sim_time=1800.0, cache_service_times=False))
        # Best of two cached runs: a scheduler stall during the (short)
        # cached run is the one noise source that could fake a regression.
        cached = min(
            (_timed_run(SimConfig(max_sim_time=1800.0, context_bucket=1)) for _ in range(2)),
            key=lambda result: result[1],
        )
        return uncached, cached

    (report_u, time_u, info_u), (report_c, time_c, info_c) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = time_u / time_c
    emit(
        "Simulator hot path: 10-minute trace, cached vs uncached service times",
        f"trace: {len(TRACE)} requests\n"
        f"uncached: {time_u:.2f}s wall ({info_u['misses']} roofline evaluations)\n"
        f"cached:   {time_c:.2f}s wall ({info_c['misses']} evaluations, "
        f"{info_c['hits']} cache hits)\n"
        f"speedup:  {speedup:.1f}x",
    )
    # Both runs finish the trace, and exact caching changes nothing but time.
    assert report_u.completed == len(TRACE)
    assert report_c == report_u
    # The acceptance bar locally is >= 3x (measured ~4-5x); shared CI
    # runners get a loose floor so scheduler noise can't block the matrix.
    floor = 1.5 if os.environ.get("CI") else 3.0
    assert speedup >= floor, f"expected >={floor}x speedup, got {speedup:.2f}x"
