"""Ablation: how the collective-charging model changes Figure 3.

DESIGN.md §4 documents that the paper's two captions cannot both be
reproduced under a single textbook flat-ring model; this benchmark sweeps
all three charging models and records where each conclusion holds — the
reproduction's headline sensitivity finding.
"""

from __future__ import annotations

from repro.analysis.figures import fig3b_decode_series
from repro.analysis.tables import format_table
from repro.core.roofline import CommModel, RooflinePolicy

from conftest import emit

MODELS = ("Llama3-70B", "GPT3-175B", "Llama3-405B")


def _decode_by_comm_model():
    out = {}
    for comm in CommModel:
        series = fig3b_decode_series(policy=RooflinePolicy(comm_model=comm))
        out[comm] = {m: series[m] for m in MODELS}
    return out


def test_ablation_comm_model(benchmark):
    results = benchmark.pedantic(_decode_by_comm_model, rounds=1, iterations=1)
    rows = []
    for comm, series in results.items():
        for model in MODELS:
            rows.append(
                [comm.value, model,
                 f"{series[model]['Lite']:.3f}",
                 f"{series[model]['Lite+MemBW']:.3f}",
                 f"{series[model]['Lite+MemBW+NetBW']:.3f}"]
            )
    emit(
        "Ablation: decode panel vs collective charging model (normalized to H100)",
        format_table(["comm model", "model", "Lite", "Lite+MemBW", "Lite+MemBW+NetBW"], rows),
    )

    ring = results[CommModel.FLAT_RING]
    hier = results[CommModel.HIERARCHICAL]
    shard = results[CommModel.SHARDED]
    # Flat-ring is the harshest model for the Lite variants everywhere.
    # (SHARDED is not uniformly above HIERARCHICAL: it shrinks wire volume
    # but keeps flat-ring hop latency, so latency-bound decode collectives
    # — GPT-3's small messages — can fare better hierarchically.)
    for model in MODELS:
        assert ring[model]["Lite+MemBW"] <= hier[model]["Lite+MemBW"] + 1e-9
        assert ring[model]["Lite+MemBW"] <= shard[model]["Lite+MemBW"] + 1e-9
    # The paper's "Lite+MemBW exceeds H100" claim survives the optimistic
    # and default models for 70B, but NOT strict flat-ring physics at 405B.
    assert hier["Llama3-70B"]["Lite+MemBW"] > 1.0
    assert ring["Llama3-405B"]["Lite+MemBW"] < 1.0
