"""Section 3 power management: fine-grained clocking and peak serving."""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.cluster.power_manager import ClusterPowerManager, PeakStrategy, granularity_gain
from repro.hardware.cooling import CoolingModel
from repro.hardware.gpu import H100, LITE
from repro.hardware.power import ClockPolicy, PowerModel, diurnal_load_profile

from conftest import emit

LOADS = diurnal_load_profile(samples=96, low=0.2, high=0.9)
INTERVAL = 900.0  # 15-minute samples


def _policy_matrix():
    records = []
    for name, gpu, count in (("H100", H100, 8), ("Lite", LITE, 32)):
        model = PowerModel(gpu, count)
        for policy in (ClockPolicy.UNIFORM_DVFS, ClockPolicy.POWER_GATE, ClockPolicy.GATE_PLUS_DVFS):
            saving = model.savings_vs_base(LOADS, INTERVAL, policy)
            records.append((name, policy.value, saving))
    return records


def test_sec3_power_granularity(benchmark):
    records = benchmark(_policy_matrix)
    rows = [[fleet, policy, f"{saving:.1%}"] for fleet, policy, saving in records]
    emit(
        "Section 3: energy saving vs always-base over a diurnal day (equal silicon)",
        format_table(["fleet", "policy", "energy saving"], rows),
    )
    by_key = {(f, p): s for f, p, s in records}
    # Finer granularity: the Lite fleet's joint gate+DVFS policy saves at
    # least as much as the H100 fleet's, for every policy.
    for policy in ("uniform", "gate", "gate+dvfs"):
        assert by_key[("Lite", policy)] >= by_key[("H100", policy)] - 1e-9
    gain = granularity_gain(H100, LITE, LOADS, INTERVAL, big_count=8)
    emit("Granularity gain (Lite minus H100, best policy)", f"{gain:.2%}")
    assert gain >= 0.0


def _peak_strategies():
    # One Lite-group (a single H100-equivalent): activating extra devices
    # is a coarse 25% step here, so the overclock-vs-more-GPUs crossover is
    # visible.  Large fleets favour more-GPUs earlier (finer steps).
    mgr = ClusterPowerManager(LITE, 4)
    records = []
    for peak in (1.05, 1.1, 1.2, 1.4):
        strategy, power = mgr.best_peak_strategy(peak, CoolingModel())
        oc = None
        try:
            oc = mgr.overclock_power(peak, CoolingModel())
        except Exception:
            pass
        more, extra = mgr.more_gpus_power(peak)
        records.append((peak, strategy, power, oc, more, extra))
    return records


def test_sec3_peak_serving(benchmark):
    records = benchmark(_peak_strategies)
    rows = [
        [
            f"{peak:.2f}",
            strategy.value,
            f"{power / 1e3:.2f} kW",
            f"{oc / 1e3:.2f} kW" if oc else "thermal limit",
            f"{more / 1e3:.2f} kW (+{extra})",
        ]
        for peak, strategy, power, oc, more, extra in records
    ]
    emit(
        "Section 3: serving peaks on a 4x Lite group — overclock vs more GPUs",
        format_table(["peak load", "best", "power", "overclock", "more GPUs"], rows),
    )
    # Small peaks: overclock in place; large peaks: activate more GPUs
    # (power ~ clock^2.4 makes big overclocks expensive) — the crossover the
    # paper asks for.
    strategies = [s for _, s, *_ in records]
    assert strategies[0] is PeakStrategy.OVERCLOCK
    assert strategies[-1] is PeakStrategy.MORE_GPUS
