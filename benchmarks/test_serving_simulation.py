"""End-to-end serving benchmark: H100 vs phase-specialized Lite deployment.

Brings the whole stack together: trace generation, phase-split scheduling,
the analytical model as service-time oracle, and the discrete-event
simulator — at equal total SMs, comparing a classic H100 deployment against
the paper's Splitwise-style specialized Lite deployment (+FLOPS prefill
pool, +MemBW decode pool).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.hardware.gpu import H100, LITE_MEMBW, LITE_NETBW_FLOPS
from repro.workloads.models import LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace

from conftest import emit

TRACE = generate_trace(
    TraceConfig(rate=6.0, duration=40.0, output_tokens=150, output_spread=0.5), seed=13
)


def _h100_deployment() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, H100, 2),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, H100, 2),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def _lite_deployment() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, LITE_NETBW_FLOPS, 8),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, LITE_MEMBW, 8),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def _run_both():
    config = SimConfig(max_sim_time=600.0)
    h100 = ServingSimulator(_h100_deployment(), config).run(TRACE)
    lite = ServingSimulator(_lite_deployment(), config).run(TRACE)
    return h100, lite


def test_serving_simulation(benchmark):
    h100, lite = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    rows = []
    for name, report in (("8x H100", h100), ("32x Lite (specialized)", lite)):
        rows.append(
            [
                name,
                report.completed,
                f"{report.ttft_p50 * 1e3:.0f}/{report.ttft_p99 * 1e3:.0f} ms",
                f"{report.tbt_mean * 1e3:.1f} ms",
                f"{report.e2e_p50:.1f} s",
                f"{report.output_tokens_per_s:.0f}",
            ]
        )
    emit(
        "Serving simulation: Llama3-70B, equal total SMs",
        format_table(
            ["deployment", "completed", "TTFT p50/p99", "TBT mean", "e2e p50", "out tok/s"],
            rows,
        ),
    )
    assert h100.completed == len(TRACE)
    assert lite.completed == len(TRACE)
    # The specialized Lite deployment meets the same SLOs...
    assert lite.ttft_p99 < 1.0
    assert lite.tbt_mean < 0.050
    # ...with decode iterations at least as fast as H100's (the +MemBW win).
    assert lite.tbt_mean <= h100.tbt_mean * 1.05
