"""End-to-end serving benchmark: H100 vs phase-specialized Lite deployment.

Brings the whole stack together: trace generation, phase-split scheduling,
the analytical model as service-time oracle, and the discrete-event
simulator — at equal total SMs, comparing a classic H100 deployment against
the paper's Splitwise-style specialized Lite deployment (+FLOPS prefill
pool, +MemBW decode pool).
"""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import sweep_1d
from repro.analysis.tables import format_table
from repro.cluster.failures import FailureModel
from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.exec.ensemble import SimulationEnsemble
from repro.hardware.gpu import H100, LITE_MEMBW, LITE_NETBW_FLOPS
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace

from conftest import emit

TRACE = generate_trace(
    TraceConfig(rate=6.0, duration=40.0, output_tokens=150, output_spread=0.5), seed=13
)


def _h100_deployment() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, H100, 2),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, H100, 2),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def _lite_deployment() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, LITE_NETBW_FLOPS, 8),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, LITE_MEMBW, 8),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def _run_both():
    config = SimConfig(max_sim_time=600.0)
    h100 = ServingSimulator(_h100_deployment(), config).run(TRACE)
    lite = ServingSimulator(_lite_deployment(), config).run(TRACE)
    return h100, lite


def test_serving_simulation(benchmark):
    h100, lite = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    rows = []
    for name, report in (("8x H100", h100), ("32x Lite (specialized)", lite)):
        rows.append(
            [
                name,
                report.completed,
                f"{report.ttft_p50 * 1e3:.0f}/{report.ttft_p99 * 1e3:.0f} ms",
                f"{report.tbt_mean * 1e3:.1f} ms",
                f"{report.e2e_p50:.1f} s",
                f"{report.output_tokens_per_s:.0f}",
            ]
        )
    emit(
        "Serving simulation: Llama3-70B, equal total SMs",
        format_table(
            ["deployment", "completed", "TTFT p50/p99", "TBT mean", "e2e p50", "out tok/s"],
            rows,
        ),
    )
    assert h100.completed == len(TRACE)
    assert lite.completed == len(TRACE)
    # The specialized Lite deployment meets the same SLOs...
    assert lite.ttft_p99 < 1.0
    assert lite.tbt_mean < 0.050
    # ...with decode iterations at least as fast as H100's (the +MemBW win).
    assert lite.tbt_mean <= h100.tbt_mean * 1.05


# SimReports of the pre-refactor (seed) simulator on the two scenarios above,
# captured before the engine/policy split.  The layered engine in phase-split
# mode with the default "fcfs" bundle must reproduce them exactly.
_SEED_GOLDEN = {
    "h100": {
        "completed": 231,
        "dropped": 0,
        "duration": 43.46807727969482,
        "ttft_p50": 0.061439550804799126,
        "ttft_p99": 0.09681640739188098,
        "tbt_mean": 0.012127148740850163,
        "tbt_p99": 0.012513364378087961,
        "e2e_p50": 1.9573085965844577,
        "e2e_p99": 4.830885326330978,
        "output_tokens_per_s": 888.4680992789278,
        "prefill_utilization": 0.16325040106516678,
        "decode_utilization": 0.49601396501003325,
        "requeued_on_failure": 0,
    },
    "lite": {
        "completed": 231,
        "dropped": 0,
        "duration": 41.63254386639117,
        "ttft_p50": 0.06293031223931678,
        "ttft_p99": 0.09979793026091628,
        "tbt_mean": 0.005943629215526238,
        "tbt_p99": 0.006085637389295073,
        "e2e_p50": 0.9901322687168452,
        "e2e_p99": 2.406473151656357,
        "output_tokens_per_s": 927.6396879311736,
        "prefill_utilization": 0.1745335306802353,
        "decode_utilization": 0.49514823349265585,
        "requeued_on_failure": 0,
    },
}


def test_refactored_engine_matches_seed_simulator():
    """The layered engine replays the seed simulator float-for-float."""
    h100, lite = _run_both()
    for name, report in (("h100", h100), ("lite", lite)):
        golden = _SEED_GOLDEN[name]
        assert report.completed == golden["completed"]
        assert report.dropped == golden["dropped"]
        assert report.requeued_on_failure == golden["requeued_on_failure"]
        for field, value in golden.items():
            if isinstance(value, float):
                assert getattr(report, field) == pytest.approx(value, rel=1e-6), (name, field)


# --- parallel-executor determinism ------------------------------------------
#
# The exec layer must be invisible to the physics: fanning replicas/points
# across worker processes has to reproduce the in-process run bit-for-bit,
# and both have to keep reproducing the golden numbers below (captured at
# the introduction of repro.exec).

_DET_TRACE = generate_trace(
    TraceConfig(rate=2.0, duration=15.0, output_tokens=80, output_spread=0.5), seed=3
)


def _det_ensemble() -> SimulationEnsemble:
    pools = PhasePools(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=1,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=1,
        max_prefill_batch=4,
        max_decode_batch=64,
    )
    return SimulationEnsemble(
        pools,
        SimConfig(max_sim_time=120.0),
        policies="fcfs",
        failure_model=FailureModel(mtbf=60.0, mttr=10.0),
        base_seed=11,
        n_replicas=4,
    )


def _det_rate_point(rate: float):
    """Module-level sweep callable (picklable for pool workers)."""
    pools = PhasePools(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=1,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=1,
        max_prefill_batch=4,
        max_decode_batch=64,
    )
    trace = generate_trace(
        TraceConfig(rate=rate, duration=10.0, output_tokens=60, output_spread=0.5), seed=5
    )
    return ServingSimulator(pools, SimConfig(max_sim_time=120.0)).run(trace)


_ENSEMBLE_GOLDEN = {
    "mean_completed": 33.0,
    "mean_ttft_p99": 4.832367404628714,
    "mean_output_tokens_per_s": 198.0980961242087,
    "mean_restarted_requests": 0.25,
    "hi_output_tokens_per_s": 220.21634637244972,
}


def test_parallel_execution_is_bit_identical():
    """workers=4 replays workers=1 bit-for-bit — ensembles and sweeps."""
    serial = _det_ensemble().run(_DET_TRACE, workers=1)
    parallel = _det_ensemble().run(_DET_TRACE, workers=4)
    assert serial.reports == parallel.reports
    assert serial.mean == parallel.mean and serial.hi == parallel.hi
    assert serial.mean.completed == _ENSEMBLE_GOLDEN["mean_completed"]
    assert serial.mean.ttft_p99 == pytest.approx(_ENSEMBLE_GOLDEN["mean_ttft_p99"], rel=1e-9)
    assert serial.mean.output_tokens_per_s == pytest.approx(
        _ENSEMBLE_GOLDEN["mean_output_tokens_per_s"], rel=1e-9
    )
    assert serial.mean.restarted_requests == _ENSEMBLE_GOLDEN["mean_restarted_requests"]
    assert serial.hi.output_tokens_per_s == pytest.approx(
        _ENSEMBLE_GOLDEN["hi_output_tokens_per_s"], rel=1e-9
    )

    rates = [1.0, 2.0, 3.0]
    records_serial = sweep_1d(_det_rate_point, rates, name="rate")
    records_parallel = sweep_1d(_det_rate_point, rates, name="rate", workers=4)
    assert records_serial == records_parallel
    assert all("error" not in r for r in records_serial)
