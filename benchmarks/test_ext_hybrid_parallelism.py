"""Extension: hybrid TP x PP — can pipelining fix the Lite network tax?

The paper's search is tensor-parallel only.  This extension adds the
pipeline dimension and answers two questions the Figure 3 analysis raises:

1. prefill: does TP x PP recover plain Lite's 405B degradation?  (Yes:
   halving the all-reduce degree costs only an ~11% bubble.)
2. decode: can PP rescue the 405B Lite+MemBW divergence?  (No: decode TBT
   is latency-bound — a token must traverse every stage — so the search
   correctly collapses to pure TP.)
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.pipeline import search_hybrid_config
from repro.core.search import search_best_config
from repro.hardware.gpu import H100, LITE, LITE_MEMBW
from repro.workloads.models import LLAMA3_405B, LLAMA3_70B

from conftest import emit


def _hybrid_matrix():
    records = []
    for model, gpu, phase in (
        (LLAMA3_405B, LITE, "prefill"),
        (LLAMA3_405B, LITE_MEMBW, "decode"),
        (LLAMA3_70B, LITE, "prefill"),
        (LLAMA3_70B, LITE, "decode"),
    ):
        tp_only = search_best_config(model, gpu, phase).best_tokens_per_s_per_sm
        hybrid = search_hybrid_config(model, gpu, phase)
        h100 = search_best_config(model, H100, phase).best_tokens_per_s_per_sm
        records.append((model.name, gpu.name, phase, tp_only, hybrid, h100))
    return records


def test_ext_hybrid_parallelism(benchmark):
    records = benchmark.pedantic(_hybrid_matrix, rounds=1, iterations=1)
    rows = []
    for model, gpu, phase, tp_only, hybrid, h100 in records:
        rows.append(
            [
                model,
                gpu,
                phase,
                f"{tp_only / h100:.3f}",
                f"{hybrid.tokens_per_s_per_sm / h100:.3f}",
                f"tp{hybrid.tensor} x pp{hybrid.stages}",
                f"{hybrid.bubble_fraction:.0%}",
            ]
        )
    emit(
        "Extension: hybrid TP x PP vs TP-only (normalized to H100 per phase)",
        format_table(
            ["model", "gpu", "phase", "TP-only", "hybrid", "layout", "bubble"],
            rows,
        ),
    )
    by_key = {(m, g, p): (t, h) for m, g, p, t, h, _ in records}
    tp_405_prefill, hy_405_prefill = by_key[("Llama3-405B", "Lite", "prefill")]
    # PP recovers a meaningful chunk of the 405B prefill gap...
    assert hy_405_prefill.stages > 1
    assert hy_405_prefill.tokens_per_s_per_sm > tp_405_prefill * 1.05
    # ...but cannot rescue latency-bound decode.
    _, hy_405_decode = by_key[("Llama3-405B", "Lite+MemBW", "decode")]
    assert hy_405_decode.stages == 1
