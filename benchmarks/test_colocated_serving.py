"""Colocated (SARATHI-style) deployment benchmark.

The second deployment shape the engine supports: one pool of Lite+MemBW
instances interleaving chunked prefill with continuous decode, compared at
equal total SMs against the Splitwise-style phase split — the paper's
"customize hardware per phase" story vs SARATHI's "share one pool" story.
"""

from __future__ import annotations

from repro.analysis.report import simulation_table
from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig
from repro.hardware.gpu import LITE_MEMBW, LITE_NETBW_FLOPS
from repro.workloads.models import LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace

from conftest import emit

TRACE = generate_trace(
    TraceConfig(rate=6.0, duration=40.0, output_tokens=150, output_spread=0.5), seed=13
)


def _phase_split() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, LITE_NETBW_FLOPS, 8),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, LITE_MEMBW, 8),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def _colocated() -> ColocatedPool:
    return ColocatedPool(
        instance=InstanceSpec(LLAMA3_70B, LITE_MEMBW, 8),
        n_instances=4,
        max_decode_batch=256,
        chunk_tokens=512,
    )


def _run_both():
    config = SimConfig(max_sim_time=600.0)
    split = ServingSimulator(_phase_split(), config).run(TRACE)
    colocated = ColocatedSimulator(_colocated(), config, policies="least-loaded").run(TRACE)
    return split, colocated


def test_colocated_serving(benchmark):
    split, colocated = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    emit(
        "Colocated vs phase-split: Llama3-70B, 32 Lite GPUs",
        simulation_table({"phase-split (16+16)": split, "colocated (4x8)": colocated}),
    )
    # Both shapes serve the full trace within the paper's SLOs.
    assert split.completed == len(TRACE)
    assert colocated.completed == len(TRACE)
    assert colocated.ttft_p99 < 1.0
    assert colocated.tbt_mean < 0.050
    # Chunked prefill taxes decode iterations, so the dedicated decode pool
    # keeps a TBT edge — the trade the two papers argue about.
    assert colocated.tbt_mean >= split.tbt_mean
