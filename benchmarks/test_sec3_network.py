"""Section 3 network claims: circuit switching and fabric comparisons."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.network.fabric import compare_fabrics
from repro.network.switches import (
    CIRCUIT_SWITCH_OCS,
    PACKET_SWITCH_TOR,
    circuit_vs_packet_energy_gain,
    path_energy_comparison,
)

from conftest import emit


def test_sec3_circuit_vs_packet(benchmark):
    comparison = benchmark(path_energy_comparison)
    emit(
        "Section 3: circuit vs packet switching",
        "\n".join(
            [
                f"switch-only energy saving: {circuit_vs_packet_energy_gain():.0%} "
                "(paper: >50%)",
                f"path energy: packet {comparison['packet_pj_per_bit']:.1f} pJ/bit vs "
                f"circuit {comparison['circuit_pj_per_bit']:.1f} pJ/bit "
                f"(saving {comparison['saving']:.0%})",
                f"latency: packet {PACKET_SWITCH_TOR.latency * 1e9:.0f} ns vs "
                f"circuit {CIRCUIT_SWITCH_OCS.latency * 1e9:.0f} ns",
                f"ports at high bandwidth: packet {PACKET_SWITCH_TOR.ports} x "
                f"{PACKET_SWITCH_TOR.port_bandwidth / 1e9:.0f} GB/s vs circuit "
                f"{CIRCUIT_SWITCH_OCS.ports} x {CIRCUIT_SWITCH_OCS.port_bandwidth / 1e9:.0f} GB/s",
            ]
        ),
    )
    # The paper's three numbered benefits.
    assert circuit_vs_packet_energy_gain() > 0.5
    assert CIRCUIT_SWITCH_OCS.latency < PACKET_SWITCH_TOR.latency
    assert CIRCUIT_SWITCH_OCS.ports > PACKET_SWITCH_TOR.ports


def test_sec3_fabric_options(benchmark):
    """The three network options Section 3 sketches, at 128 Lite-GPUs."""
    reports = benchmark(compare_fabrics, n_gpus=128, group=4)
    rows = [
        [
            r.name,
            r.n_switches,
            r.n_links,
            f"${r.capex_per_gpu:,.0f}",
            f"{r.power_per_gpu:.0f} W",
            f"{r.bisection_bandwidth / 1e12:.1f} TB/s",
            f"{r.avg_hops:.2f}",
        ]
        for r in reports
    ]
    emit(
        "Section 3: Lite-GPU network options (128 GPUs)",
        format_table(
            ["fabric", "switches", "links", "capex/GPU", "power/GPU", "bisection", "avg hops"],
            rows,
        ),
    )
    direct, packet, circuit = reports
    # Direct-connect: cheapest, weakest bisection (shared-fate groups).
    assert direct.capex_per_gpu < circuit.capex_per_gpu
    assert direct.bisection_bandwidth < circuit.bisection_bandwidth
    # Flat circuit: full bisection at lower power than packet switching.
    assert circuit.power_per_gpu < packet.power_per_gpu
    assert circuit.bisection_bandwidth >= packet.bisection_bandwidth
