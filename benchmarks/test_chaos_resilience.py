"""Chaos harness: blast radius, checkpointed restarts, retry storms.

The paper's resilience argument, measured.  Three scripted-failure
scenarios from :mod:`repro.cluster.chaos`, each asserted on the claim it
exists to demonstrate:

1. **Blast radius** — one 8-GPU rack dies in a big-GPU fleet and in a
   Lite-GPU fleet of equal aggregate capacity.  The Lite fleet's
   per-failure goodput dip must be *measurably smaller* (the rack holds
   1/6 of its decode capacity instead of 2/3).
2. **Checkpointed restarts** — the same rack fault under long constant
   generations.  Checkpointing must beat restart-from-prefill on both
   goodput (tokens inside deadline) and MTTR.
3. **Retry storm** — a 15s burst at ~11x the sustainable rate.  Naive
   fixed backoff must stay metastable (SLO violations and tail latency
   never recover inside the 300s tail) while capped exponential backoff
   with jitter recovers; the no-retry baseline stays healthy.
4. **Bounded retry state** — the re-arrival heap is capped
   (``max_pending_retries``), so a streaming-metrics storm run keeps a
   flat memory profile even under the worst-case naive client.

All scenarios are deterministic (seeded traces, scripted faults), so the
numbers archived in ``BENCH_chaos.json`` reproduce bit-for-bit.
"""

from __future__ import annotations

import json
import os
import tracemalloc
from pathlib import Path

from repro.analysis.tables import format_table
from repro.cluster.chaos import (
    blast_radius_scenario,
    checkpoint_scenario,
    retry_storm_scenario,
)
from repro.cluster.resilience import goodput_dip

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_chaos.json"


def _record_artifact(section: str, payload: dict) -> None:
    record = {}
    if ARTIFACT.exists():
        try:
            record = json.loads(ARTIFACT.read_text())
        except (OSError, ValueError):
            record = {}
    record[section] = payload
    ARTIFACT.write_text(json.dumps(record, indent=2, sort_keys=True))


def _rows(reports) -> str:
    return format_table(
        ["run", "done", "goodput tok/s", "SVR", "miss", "timeout",
         "retries", "e2e p99 s", "MTTR s", "avail"],
        [
            [name, r.completed, f"{r.goodput_tokens_per_s:.0f}",
             f"{r.slo_violation_rate:.3f}", f"{r.deadline_miss_rate:.3f}",
             r.timed_out, r.retries, f"{r.e2e_p99:.1f}", f"{r.mttr_s:.2f}",
             f"{r.availability:.4f}"]
            for name, r in reports.items()
        ],
    )


def test_blast_radius_lite_vs_big(benchmark):
    reports = benchmark.pedantic(
        blast_radius_scenario, rounds=1, iterations=1
    )
    big = goodput_dip(reports["big/base"], reports["big/rack"])
    lite = goodput_dip(reports["lite/base"], reports["lite/rack"])
    emit(
        "Chaos: rack-failure blast radius, big vs Lite fleet",
        _rows(reports)
        + f"\ngoodput dip: big {big:.1%}, lite {lite:.1%}",
    )
    _record_artifact(
        "blast_radius",
        {
            "big_dip": big,
            "lite_dip": lite,
            **{
                name.replace("/", "_"): {
                    "completed": r.completed,
                    "goodput_tokens_per_s": r.goodput_tokens_per_s,
                    "deadline_missed": r.deadline_missed,
                    "failure_hits": r.failure_hits,
                    "mttr_s": r.mttr_s,
                    "availability": r.availability,
                }
                for name, r in reports.items()
            },
        },
    )
    # The rack actually hurt the big fleet...
    assert big > 0.04, f"big-fleet dip {big:.1%} too small to measure"
    assert reports["big/rack"].failure_hits > 0
    assert reports["lite/rack"].failure_hits > 0
    # ...while the Lite fleet, losing 1/6 of decode instead of 2/3 at the
    # same aggregate capacity, barely notices.
    assert lite < 0.02, f"lite-fleet dip {lite:.1%} unexpectedly large"
    assert lite < big / 2, f"lite dip {lite:.1%} not < half of big {big:.1%}"


def test_checkpointed_restarts_beat_prefill_restart(benchmark):
    reports = benchmark.pedantic(checkpoint_scenario, rounds=1, iterations=1)
    plain, ckpt = reports["plain"], reports["ckpt"]
    emit(
        "Chaos: checkpointed restarts vs restart-from-prefill",
        _rows(reports)
        + f"\ngoodput {plain.goodput_tokens:,} -> {ckpt.goodput_tokens:,} "
        f"tokens, MTTR {plain.mttr_s:.2f}s -> {ckpt.mttr_s:.2f}s",
    )
    _record_artifact(
        "checkpoint",
        {
            name: {
                "completed": r.completed,
                "goodput_tokens": r.goodput_tokens,
                "deadline_missed": r.deadline_missed,
                "restarted_requests": r.restarted_requests,
                "mttr_s": r.mttr_s,
            }
            for name, r in reports.items()
        },
    )
    # Victims existed and the fault windows were identical.
    assert plain.restarted_requests > 0 and ckpt.restarted_requests > 0
    assert plain.failure_hits == ckpt.failure_hits > 0
    # The acceptance bars: resuming from the last checkpoint turns redone
    # work into deadline-meeting completions and shortens recovery.
    assert ckpt.goodput_tokens > plain.goodput_tokens, (
        f"checkpoint goodput {ckpt.goodput_tokens} <= plain "
        f"{plain.goodput_tokens}"
    )
    assert ckpt.mttr_s < plain.mttr_s, (
        f"checkpoint MTTR {ckpt.mttr_s:.2f}s >= plain {plain.mttr_s:.2f}s"
    )


def test_retry_storm_metastable_overload(benchmark):
    reports = benchmark.pedantic(retry_storm_scenario, rounds=1, iterations=1)
    none, fixed, expj = reports["none"], reports["fixed"], reports["exp_jitter"]
    emit(
        "Chaos: retry storm, naive fixed backoff vs capped exp+jitter",
        _rows(reports),
    )
    _record_artifact(
        "retry_storm",
        {
            name: {
                "completed": r.completed,
                "goodput_tokens_per_s": r.goodput_tokens_per_s,
                "slo_violation_rate": r.slo_violation_rate,
                "timed_out": r.timed_out,
                "retries": r.retries,
                "abandoned": r.abandoned,
                "e2e_p99_s": r.e2e_p99,
            }
            for name, r in reports.items()
        },
    )
    # No-retry baseline sheds the burst and stays healthy.
    assert none.slo_violation_rate == 0.0
    assert none.e2e_p99 < 10.0
    # Naive fixed backoff re-offers every timeout in lockstep: the queues
    # never drain inside the 300s tail — metastable overload.
    assert fixed.e2e_p99 > 80.0, f"fixed e2e p99 {fixed.e2e_p99:.0f}s recovered?"
    assert fixed.timed_out > 1.5 * expj.timed_out
    assert fixed.slo_violation_rate > 1.5 * expj.slo_violation_rate
    assert fixed.e2e_p99 > 2.0 * expj.e2e_p99
    # Capped exponential backoff with jitter spreads the re-offers, drains
    # the queue, and converts more capacity into inside-SLO completions.
    assert expj.e2e_p99 < 50.0, f"exp_jitter e2e p99 {expj.e2e_p99:.0f}s stuck"
    assert expj.goodput_tokens_per_s > fixed.goodput_tokens_per_s


def test_retry_heap_stays_bounded(benchmark):
    def run():
        tracemalloc.start()
        reports = retry_storm_scenario(metrics="streaming", only=("fixed",))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return reports["fixed"], peak

    report, peak = benchmark.pedantic(run, rounds=1, iterations=1)
    cap_mb = 512.0 if os.environ.get("CI") else 256.0
    emit(
        "Chaos: streaming storm memory (bounded retry heap)",
        f"peak traced memory {peak / 1e6:.1f} MB (cap {cap_mb:g} MB), "
        f"{report.retries} retries, {report.abandoned} abandoned",
    )
    _record_artifact(
        "retry_memory",
        {
            "peak_bytes": peak,
            "cap_bytes": int(cap_mb * 1e6),
            "retries": report.retries,
            "abandoned": report.abandoned,
        },
    )
    # The storm really exercised the retry path...
    assert report.retries > 10_000
    # ...and the capped re-arrival heap (max_pending_retries) plus
    # streaming sketches kept the whole run's footprint flat.
    assert peak < cap_mb * 1e6, f"peak {peak / 1e6:.1f} MB >= {cap_mb:g} MB"
