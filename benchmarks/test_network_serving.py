"""Topology-aware serving benchmark: what placement costs on the fabric.

The placement layer's headline claim, measured: on the same Lite deployment
and the same trace, a scattered placement (every TP group striped across the
whole direct-connect fabric) is strictly worse than a packed one (every TP
group inside one mesh group) once the network model prices the placed
collectives.  And with ``network_model="none"`` the co-simulation layer is
invisible — reports replay the no-topology baseline bit-for-bit.

Each run writes ``benchmarks/BENCH_network.json`` — the artifact CI uploads.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.tables import format_table
from repro.cluster.placement import placement_hop_stats
from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.hardware.gpu import LITE_MEMBW, LITE_NETBW_FLOPS
from repro.network.topology import DirectConnectTopology
from repro.workloads.models import LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace

from conftest import emit

ARTIFACT = Path(__file__).parent / "BENCH_network.json"

TRACE = generate_trace(
    TraceConfig(rate=6.0, duration=40.0, output_tokens=150, output_spread=0.5), seed=13
)

TOPOLOGY = DirectConnectTopology(n_gpus=32, group=8)


def _lite_deployment() -> PhasePools:
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_70B, LITE_NETBW_FLOPS, 8),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, LITE_MEMBW, 8),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=256,
    )


def _run(placer: str, network_model: str = "fabric"):
    config = SimConfig(max_sim_time=600.0)
    simulator = ServingSimulator(
        _lite_deployment(), config,
        topology=TOPOLOGY, placer=placer, network_model=network_model,
    )
    return simulator, simulator.run(TRACE)


def test_network_serving(benchmark):
    def _all():
        baseline = ServingSimulator(_lite_deployment(), SimConfig(max_sim_time=600.0)).run(TRACE)
        none_sim, none = _run("packed", network_model="none")
        packed_sim, packed = _run("packed")
        scattered_sim, scattered = _run("scattered")
        return baseline, none, (packed_sim, packed), (scattered_sim, scattered)

    baseline, none, (packed_sim, packed), (scattered_sim, scattered) = benchmark.pedantic(
        _all, rounds=1, iterations=1
    )

    rows = []
    payload = {}
    for name, sim, report in (
        ("packed", packed_sim, packed),
        ("scattered", scattered_sim, scattered),
    ):
        stats = placement_hop_stats(TOPOLOGY, sim.placement)
        rows.append(
            [
                name,
                f"{stats['mean_hops']:.2f}",
                report.completed,
                f"{report.tbt_mean * 1e3:.1f} ms",
                f"{report.e2e_p50:.2f} s",
                f"{report.output_tokens_per_s:.0f}",
            ]
        )
        payload[name] = {
            "mean_hops": stats["mean_hops"],
            "max_hops": stats["max_hops"],
            "tbt_mean": report.tbt_mean,
            "e2e_p50": report.e2e_p50,
            "output_tokens_per_s": report.output_tokens_per_s,
        }
    emit(
        "Topology-aware serving: 32x Lite on direct-connect groups of 8",
        format_table(
            ["placement", "mean hops", "completed", "TBT mean", "e2e p50", "out tok/s"],
            rows,
        ),
    )
    payload["scattered_tbt_penalty"] = scattered.tbt_mean / packed.tbt_mean
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True))

    # network_model="none" is invisible: bit-identical to the no-topology run.
    assert none == baseline
    # The placement signal: scattered strictly worse than packed everywhere.
    assert scattered.tbt_mean > packed.tbt_mean
    assert scattered.e2e_p50 > packed.e2e_p50
    assert scattered.output_tokens_per_s < packed.output_tokens_per_s
    # And the fabric overlay itself costs something relative to "none".
    assert packed.tbt_mean > none.tbt_mean
