"""Section 3 fault-tolerance: blast radius, hot spares, availability."""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cluster.availability import SparePolicy, simulate_availability
from repro.cluster.failures import BlastRadius, FailureModel, scaled_lite_failure_model
from repro.units import DAY, HOUR

from conftest import emit

#: Aggressive failure regime so differences are visible in a 60-day window.
GPU_MODEL = FailureModel(mtbf=400 * HOUR, mttr=24 * HOUR)
LITE_MODEL = scaled_lite_failure_model(GPU_MODEL, 4)


def _availability_matrix():
    """4 model instances; H100 fleet (8 GPUs/instance) vs Lite fleet
    (32 GPUs/instance, area-scaled reliability), spare sweep."""
    records = []
    for name, size, model, spare_counts in (
        ("H100", 8, GPU_MODEL, (0, 1, 2, 4)),
        ("Lite", 32, LITE_MODEL, (0, 4, 8, 16)),
    ):
        for spares in spare_counts:
            result = simulate_availability(
                4, size, model, SparePolicy(spares=spares), horizon=60 * DAY, seed=11
            )
            records.append((name, size, spares, result))
    return records


def test_sec3_fault_tolerance(benchmark):
    records = benchmark.pedantic(_availability_matrix, rounds=1, iterations=1)
    rows = []
    for name, size, spares, result in records:
        silicon_overhead = spares / (4 * size)
        rows.append(
            [
                name,
                f"4x{size}",
                spares,
                f"{silicon_overhead:.1%}",
                f"{result.instance_availability:.4f}",
                result.failures,
                f"{result.mean_outage:.0f}s",
            ]
        )
    emit(
        "Section 3: availability vs hot spares (60 days, MTBF 400h/GPU-equiv)",
        format_table(
            ["fleet", "instances", "spares", "spare silicon", "availability", "failures", "mean outage"],
            rows,
        ),
    )

    by_key = {(n, s): r for n, _, s, r in records}
    # Spares monotonically improve availability for both fleets.
    assert by_key[("H100", 4)].instance_availability >= by_key[("H100", 0)].instance_availability
    assert by_key[("Lite", 16)].instance_availability >= by_key[("Lite", 0)].instance_availability
    # The paper's proportional-overhead claim: at equal *silicon* overhead
    # (2 H100 spares == 8 Lite spares == 6.25%), the Lite fleet achieves
    # comparable availability.
    h100_at_2 = by_key[("H100", 2)].instance_availability
    lite_at_8 = by_key[("Lite", 8)].instance_availability
    assert lite_at_8 >= h100_at_2 - 0.02


def test_sec3_blast_radius(benchmark):
    def blast():
        return (
            BlastRadius(1, 132).capacity_fraction(8),
            BlastRadius(1, 33).capacity_fraction(32),
        )

    h100_fraction, lite_fraction = benchmark(blast)
    emit(
        "Section 3: hardware blast radius",
        f"one failure removes {h100_fraction:.1%} of an 8x H100 cluster vs "
        f"{lite_fraction:.1%} of a 32x Lite cluster (4x smaller)",
    )
    assert h100_fraction == 4 * lite_fraction
