"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (or one of its
quantitative claims) and *prints the same rows the paper reports* before
asserting the reproduced shape.  Run with::

    pytest benchmarks/ --benchmark-only -s

(-s shows the regenerated tables; EXPERIMENTS.md archives one run.)
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print a regenerated artifact with a recognizable banner."""
    bar = "=" * max(8, len(title))
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
