"""Extension: traffic patterns vs topologies — the congestion caveat.

Section 3 argues AI traffic is predictable enough for cheap topologies but
that "workloads that introduce randomness and congestion" would struggle.
This bench produces the full pattern x topology slowdown matrix at 32
Lite-GPUs and asserts the paper's qualitative split.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.network.traffic import TrafficPattern, pattern_topology_study

from conftest import emit


def test_ext_traffic_patterns(benchmark):
    study = benchmark(pattern_topology_study, n=32, total_bytes=32e9, group=4, seed=7)
    rows = [
        [pattern, f"{s['direct']:.2f}", f"{s['switched']:.2f}", f"{s['circuit']:.2f}"]
        for pattern, s in study.items()
    ]
    emit(
        "Extension: congestion slowdown (completion / port bound; 1.0 = ideal)",
        format_table(["pattern", "direct-connect", "switched", "circuit"], rows),
    )
    # Predictable patterns run clean on the fabric built for them.
    assert study["group_local"]["direct"] < 3.0
    assert study["ring"]["circuit"] < 1.1
    # Random permutations blow up the direct-connect uplinks only.
    assert study["permutation"]["direct"] > 3.0
    assert study["permutation"]["switched"] < 2.0
    assert study["permutation"]["circuit"] < 1.1
    # Hotspots are port-bound everywhere — no topology saves a bad workload.
    for fabric in ("switched", "circuit"):
        assert study["hotspot"][fabric] < 1.5
