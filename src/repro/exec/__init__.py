"""Experiment execution: parallel running, result caching, seed derivation.

The Lite-GPU thesis applied to the harness itself: instead of one big
serial process, fan many small independent jobs — sweep points, search
candidates, failure-seeded simulation replicas — across workers, and never
recompute a point whose inputs haven't changed.

- :mod:`repro.exec.runner` — :class:`Job` / :func:`run_many`, the
  order-preserving multiprocessing executor;
- :mod:`repro.exec.cache` — :class:`ResultCache`, content-hashed JSON
  records under ``.repro_cache/`` with a code-version salt;
- :mod:`repro.exec.seeding` — :func:`derive_seed` / :func:`stable_digest`,
  deterministic per-job seed and key derivation;
- :mod:`repro.exec.ensemble` — :class:`SimulationEnsemble`, replicated
  failure-seeded simulations aggregated with confidence intervals
  (imported lazily to keep the light modules import-cycle-free);
- :mod:`repro.exec.sharding` — :func:`run_sharded`, split one big run
  into per-shard engine runs whose streaming metrics merge into one
  report (also lazy: it pulls in the cluster stack).
"""

from __future__ import annotations

from .cache import MISS, ResultCache
from .runner import Job, JobOutcome, run_many
from .seeding import derive_seed, stable_digest

__all__ = [
    "MISS",
    "ResultCache",
    "Job",
    "JobOutcome",
    "run_many",
    "derive_seed",
    "stable_digest",
    "EnsembleReport",
    "SimulationEnsemble",
    "run_replica",
    "aggregate_reports",
    "run_sharded",
    "shard_requests",
    "shard_deployment",
    "merge_shard_results",
]

_ENSEMBLE_EXPORTS = ("EnsembleReport", "SimulationEnsemble", "run_replica", "aggregate_reports")
_SHARDING_EXPORTS = ("run_sharded", "shard_requests", "shard_deployment", "merge_shard_results")


def __getattr__(name: str):
    # Lazy: repro.exec.ensemble/sharding pull in the whole cluster/simulator
    # stack, which must not load just because core.search imported the runner.
    if name in _ENSEMBLE_EXPORTS:
        from . import ensemble

        return getattr(ensemble, name)
    if name in _SHARDING_EXPORTS:
        from . import sharding

        return getattr(sharding, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
