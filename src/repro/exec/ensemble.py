"""Replicated serving simulations with seed-derived failure schedules.

A single failure-seeded simulation is one draw from a stochastic process;
the paper's availability arguments (Section 3) are about *distributions* —
how much throughput a deployment keeps across many failure realizations.
:class:`SimulationEnsemble` runs ``n_replicas`` copies of one deployment
spec, each with an independent failure seed derived from a base seed
(:func:`repro.exec.seeding.derive_seed`), fans them across workers via
:func:`repro.exec.runner.run_many`, and aggregates the replica
:class:`~repro.cluster.simulator.SimReport` rows into an
:class:`EnsembleReport`: a mean report plus a 95% confidence half-width
per metric.

Replica results are cacheable: give :meth:`SimulationEnsemble.run` a
:class:`~repro.exec.cache.ResultCache` and repeated runs of the same
(spec, trace, seed) skip straight to aggregation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import List, Optional, Sequence, Tuple, Union

from ..cluster.failures import FailureModel
from ..cluster.policies import PolicyBundle
from ..cluster.scheduler import ColocatedPool, PhasePools
from ..cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig, SimReport
from ..errors import SimulationError, SpecError
from ..workloads.traces import Request, trace_fingerprint
from .cache import ResultCache
from .runner import Job, run_many
from .seeding import derive_seed

__all__ = ["EnsembleReport", "SimulationEnsemble", "run_replica"]

# 97.5th normal quantile: two-sided 95% interval on the replica mean.
_Z95 = 1.959963984540054

Deployment = Union[PhasePools, ColocatedPool]


def run_replica(
    deployment: Deployment,
    config: Optional[SimConfig],
    policies: "PolicyBundle | str | None",
    failure_model: Optional[FailureModel],
    failure_seed: int,
    trace: Tuple[Request, ...],
) -> SimReport:
    """Run one failure-seeded replica (module-level: picklable for workers)."""
    if isinstance(deployment, PhasePools):
        simulator = ServingSimulator(
            deployment, config,
            policies=policies, failure_model=failure_model, failure_seed=failure_seed,
        )
    else:
        simulator = ColocatedSimulator(
            deployment, config,
            policies=policies, failure_model=failure_model, failure_seed=failure_seed,
        )
    return simulator.run(list(trace))


@dataclass(frozen=True)
class EnsembleReport:
    """Replica-aggregated outcome: mean metrics with 95% confidence bounds.

    ``mean``/``lo``/``hi`` are :class:`SimReport` rows whose fields are the
    per-metric replica mean and the normal-approximation 95% interval
    endpoints (``mean ± 1.96 · s/√n``; zero-width at one replica).  Count
    fields are means too — fractional values are meaningful there (expected
    restarts per realization).  ``reports`` keeps every replica for
    distribution-level analysis.
    """

    mean: SimReport
    lo: SimReport
    hi: SimReport
    n_replicas: int
    seeds: Tuple[int, ...]
    reports: Tuple[SimReport, ...]

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return (
            f"ensemble of {self.n_replicas} replicas:\n"
            f"  completed {self.mean.completed:.1f} "
            f"[{self.lo.completed:.1f}, {self.hi.completed:.1f}]\n"
            f"  TTFT p99 {self.mean.ttft_p99 * 1e3:.0f} ms "
            f"[{self.lo.ttft_p99 * 1e3:.0f}, {self.hi.ttft_p99 * 1e3:.0f}]\n"
            f"  out tok/s {self.mean.output_tokens_per_s:.0f} "
            f"[{self.lo.output_tokens_per_s:.0f}, {self.hi.output_tokens_per_s:.0f}]\n"
            f"  restarts {self.mean.restarted_requests:.1f} "
            f"[{self.lo.restarted_requests:.1f}, {self.hi.restarted_requests:.1f}]"
        )


def aggregate_reports(reports: Sequence[SimReport], seeds: Sequence[int]) -> EnsembleReport:
    """Fold replica reports into mean / 95%-CI :class:`SimReport` rows."""
    if not reports:
        raise SpecError("cannot aggregate zero replica reports")
    n = len(reports)
    mean_fields, lo_fields, hi_fields = {}, {}, {}
    for spec_field in fields(SimReport):
        if spec_field.name == "backend":
            # Provenance is categorical, not averageable; replicas of one
            # ensemble always share a backend (mixing would be a bug).
            backends = {report.backend for report in reports}
            if len(backends) > 1:
                raise SpecError(f"cannot aggregate mixed backends {sorted(backends)}")
            mean_fields["backend"] = lo_fields["backend"] = hi_fields["backend"] = reports[
                0
            ].backend
            continue
        values = [float(getattr(report, spec_field.name)) for report in reports]
        if all(v == values[0] for v in values):
            # Identical replicas (e.g. failure-free runs): keep the exact
            # value rather than fsum(n·v)/n, whose last ulp can drift.
            mean, half = values[0], 0.0
        elif any(math.isnan(v) for v in values):
            mean = half = float("nan")
        else:
            mean = math.fsum(values) / n
            variance = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
            half = _Z95 * math.sqrt(variance / n)
        mean_fields[spec_field.name] = mean
        lo_fields[spec_field.name] = mean - half
        hi_fields[spec_field.name] = mean + half
    return EnsembleReport(
        mean=SimReport(**mean_fields),
        lo=SimReport(**lo_fields),
        hi=SimReport(**hi_fields),
        n_replicas=n,
        seeds=tuple(seeds),
        reports=tuple(reports),
    )


class SimulationEnsemble:
    """``n_replicas`` runs of one deployment spec under independent failures.

    The deployment may be a :class:`PhasePools` (phase-split) or a
    :class:`ColocatedPool`.  ``policies`` should be a registry *name* when
    replicas run under ``workers > 1`` (names travel to workers cheaply and
    rebuild fresh stateful policies per replica); bundle instances work too
    as long as they pickle.

    >>> # see tests/exec/test_ensemble.py for an end-to-end run
    """

    def __init__(
        self,
        deployment: Deployment,
        config: Optional[SimConfig] = None,
        *,
        policies: "PolicyBundle | str | None" = None,
        failure_model: Optional[FailureModel] = None,
        base_seed: int = 0,
        n_replicas: int = 8,
    ) -> None:
        if not isinstance(deployment, (PhasePools, ColocatedPool)):
            raise SpecError("deployment must be a PhasePools or ColocatedPool")
        if n_replicas < 1:
            raise SpecError("n_replicas must be at least 1")
        self.deployment = deployment
        self.config = config
        self.policies = policies
        self.failure_model = failure_model
        self.base_seed = base_seed
        self.n_replicas = n_replicas

    def replica_seeds(self) -> List[int]:
        """The derived failure seed of every replica, in replica order."""
        return [derive_seed(self.base_seed, "replica", i) for i in range(self.n_replicas)]

    def _policy_tag(self) -> str:
        if isinstance(self.policies, PolicyBundle):
            return self.policies.describe()
        return str(self.policies)

    def run(
        self,
        trace: Sequence[Request],
        workers: int = 1,
        cache: Optional[ResultCache] = None,
    ) -> EnsembleReport:
        """Run every replica (optionally parallel/cached) and aggregate."""
        seeds = self.replica_seeds()
        frozen_trace = tuple(trace)
        fingerprint = trace_fingerprint(frozen_trace) if cache is not None else None
        jobs = []
        for replica, seed in enumerate(seeds):
            key = None
            if cache is not None:
                key = cache.key(
                    "ensemble-replica",
                    repr(self.deployment),
                    repr(self.config),
                    self._policy_tag(),
                    repr(self.failure_model),
                    seed,
                    fingerprint,
                )
            jobs.append(
                Job(
                    fn=run_replica,
                    args=(
                        self.deployment, self.config, self.policies,
                        self.failure_model, seed, frozen_trace,
                    ),
                    key=key,
                    label=f"replica {replica} (seed {seed})",
                )
            )
        outcomes = run_many(jobs, workers=workers, cache=cache)
        failed = [o for o in outcomes if not o.ok]
        if failed:
            raise SimulationError(
                f"{len(failed)}/{len(outcomes)} replicas failed; first: "
                f"{failed[0].label}: {failed[0].error}"
            )
        return aggregate_reports([o.value for o in outcomes], seeds)
