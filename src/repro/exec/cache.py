"""On-disk result cache: content-hashed experiment records under ``.repro_cache/``.

Sweeps and benchmarks re-run the same (spec, trace, seed) points over and
over — across iterations of a notebook, across CI runs, across the serial
and parallel halves of a perf benchmark.  This cache makes repeated points
free: a record is keyed by a :func:`repro.exec.seeding.stable_digest` over
everything that determines the result (deployment spec, trace fingerprint,
seeds, simulator knobs) *plus a code-version salt*, and stored as one JSON
file.  Bump the salt (it defaults to ``repro.__version__``) or delete the
directory to invalidate.

Design points:

- **exact round-trip** — Python's JSON encoder emits shortest-round-trip
  float reprs, so a cache hit returns bit-identical floats to the original
  computation (warm run == cold run, asserted in the tier-1 suite);
- **atomic writes** — records land via ``os.replace`` of a temp file, so
  concurrent workers never expose a torn record;
- **graceful misses** — unreadable/corrupt/foreign records count as misses
  and are recomputed, never raised;
- **observability** — hit/miss/store counters mirror the engine's
  :class:`~repro.cluster.engine.ServiceTimeProvider.cache_info` idiom.

Values are encoded through a small codec registry; anything the codec does
not know (arbitrary objects) is simply not cached — :meth:`ResultCache.put`
returns ``False`` and the caller's result is unaffected.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from ..errors import SpecError
from .seeding import stable_digest

__all__ = ["MISS", "ResultCache", "encode_result", "decode_result"]


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<cache MISS>"


MISS = _Miss()

_JSON_SCALARS = (str, int, float, bool, type(None))


def encode_result(value: Any) -> Dict[str, Any]:
    """Encode a result into a JSON-able ``{"type": ..., "data": ...}`` record.

    Raises ``TypeError`` for values the codec cannot represent faithfully.
    """
    from ..cluster.simulator import SimReport  # local import: keep this module light

    if isinstance(value, SimReport):
        return {"type": "SimReport", "data": value.__dict__.copy()}
    if isinstance(value, _JSON_SCALARS) or isinstance(value, (list, dict)):
        # Round-trip through the encoder to reject nested non-JSON payloads
        # now (inside put()) rather than corrupting the record on disk.
        json.dumps(value, allow_nan=True)
        return {"type": "json", "data": value}
    raise TypeError(f"no cache codec for {type(value).__name__}")


def decode_result(record: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_result`."""
    from ..cluster.simulator import SimReport

    kind = record["type"]
    if kind == "SimReport":
        return SimReport(**record["data"])
    if kind == "json":
        return record["data"]
    raise TypeError(f"unknown cache record type {kind!r}")


class ResultCache:
    """A directory of content-addressed JSON experiment records.

    >>> import tempfile
    >>> cache = ResultCache(tempfile.mkdtemp())
    >>> key = cache.key("demo", 1, 2)
    >>> cache.get(key) is MISS
    True
    >>> cache.put(key, {"answer": 42})
    True
    >>> cache.get(key)
    {'answer': 42}
    >>> cache.cache_info()["hits"]
    1
    """

    def __init__(self, root: str | os.PathLike = ".repro_cache", salt: Optional[str] = None) -> None:
        if salt is None:
            from .. import __version__ as salt  # code-version salt by default
        self.root = Path(root)
        self.salt = str(salt)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(self, *parts: Any) -> str:
        """Content hash of ``parts`` under this cache's code-version salt."""
        return stable_digest(self.salt, *parts)

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise SpecError("cache keys must be hex digests (use ResultCache.key)")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
            if record.get("salt") != self.salt:
                raise ValueError("salt mismatch")
            value = decode_result(record["payload"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key``; ``False`` if the codec declines."""
        try:
            payload = encode_result(value)
        except TypeError:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"key": key, "salt": self.salt, "payload": payload}
        # Atomic publish: a concurrent reader sees the old record or the new
        # one, never a partial write.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, allow_nan=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stores += 1
        return True

    def entries(self) -> int:
        """Number of records currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def size_bytes(self) -> int:
        """Total on-disk size of every record (for the ``repro cache`` CLI)."""
        if not self.root.exists():
            return 0
        total = 0
        for path in self.root.glob("*/*.json"):
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - racing cleaner
                pass
        return total

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing cleaner
                    pass
        return removed

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/store counters plus resident records (for tests/CLI)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": self.entries(),
        }
