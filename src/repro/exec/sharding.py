"""Sharded simulation: split one big run into mergeable per-shard runs.

A 10M-request day against a large deployment is one giant event loop.  But
when the deployment is a pool of independent instances and routing is the
only coupling between them, the run factors: partition the instances into
``shards`` sub-deployments, route each request to a shard up front (with
the same pluggable :data:`~repro.cluster.policies.ROUTING_POLICIES` the
engines use), simulate every shard independently — optionally across
worker processes via :func:`~repro.exec.runner.run_many` — and merge the
shards' streaming sketches and exact counters into one
:class:`~repro.cluster.simulator.SimReport`.

The merge is deterministic: counters are integer sums (bit-exact in any
order), durations take the max, utilizations recombine via busy-time
reconstruction (``util_i * duration_i * n_instances_i``), and latency
percentiles come from merging the shards'
:class:`~repro.analysis.streaming.QuantileSketch` objects — associative up
to the sketch's rank-error bound, so ``shards=N`` agrees with ``shards=1``
within tolerance (property-pinned in ``tests/exec/test_sharding.py``).

What sharding models — and what it gives up: the up-front shard routing
replaces the engine's per-event routing *across* shard boundaries, so a
request can never spill from a hot shard to an idle instance in another
shard.  With a balancing shard policy (the default token-weighted
``"least-loaded"``) the difference is small at scale; it is zero when the
unsharded router is index-blind.  Topology/controller co-simulation is
whole-cluster by nature and is not shardable — those knobs are rejected.

Memory: each shard engine runs with ``metrics="streaming"`` (constant
memory), so the sharded path's footprint is the ``Request`` objects plus
one sketch bundle per shard — never the per-completion lists.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import SpecError
from .runner import Job, run_many
from .seeding import derive_seed

__all__ = [
    "shard_requests",
    "shard_deployment",
    "run_sharded",
    "merge_shard_results",
]


def _resolve_routing(policy: Any):
    """A fresh routing-policy instance from a name or instance."""
    from ..cluster.policies import ROUTING_POLICIES, RoutingPolicy

    if isinstance(policy, str):
        return ROUTING_POLICIES.get(policy)()
    if isinstance(policy, RoutingPolicy):
        return policy
    raise SpecError("shard_policy must be a routing-policy name or instance")


def shard_requests(
    trace: Iterable,
    n_shards: int,
    policy: Any = "least-loaded",
    weights: Optional[Sequence[float]] = None,
) -> List[List[Any]]:
    """Partition an arrival-ordered trace across ``n_shards`` shards.

    ``policy`` is a :data:`~repro.cluster.policies.ROUTING_POLICIES` name
    (or instance) ranking shards by load; each request goes to the policy's
    first choice, where a shard's load is its assigned prompt+output tokens
    divided by its ``weights`` entry (shard capacity — defaults to equal).
    The default ``"least-loaded"`` keeps shards token-balanced;
    ``"round-robin"`` stripes; ``"index-order"`` sends everything to shard
    0 (degenerate, but honest to the policy's semantics).

    Deterministic: a fresh policy instance plus an ordered fold over the
    trace means the same inputs always produce the same partition.  Each
    shard's sub-trace preserves arrival order; request ids are untouched
    (they are globally unique already).
    """
    if n_shards < 1:
        raise SpecError("n_shards must be at least 1")
    if weights is not None and len(weights) != n_shards:
        raise SpecError("weights must have one entry per shard")
    router = _resolve_routing(policy)
    scale = [float(w) for w in weights] if weights is not None else [1.0] * n_shards
    if any(w <= 0 for w in scale):
        raise SpecError("shard weights must be positive")
    shards: List[List[Any]] = [[] for _ in range(n_shards)]
    loads = [0.0] * n_shards
    for request in trace:
        target = router.order(loads)[0]
        shards[target].append(request)
        tokens = request.prompt_tokens + request.output_tokens
        loads[target] += tokens / scale[target]
    return shards


def shard_deployment(deployment: Any, n_shards: int) -> List[Any]:
    """Split a deployment's instances into ``n_shards`` sub-deployments.

    Instances are divided as evenly as possible (earlier shards take the
    remainder).  Every shard must keep at least one instance of each pool,
    so ``n_shards`` is bounded by the smallest pool.
    """
    from ..cluster.scheduler import ColocatedPool, PhasePools

    if n_shards < 1:
        raise SpecError("n_shards must be at least 1")

    def split(count: int) -> List[int]:
        base, rem = divmod(count, n_shards)
        return [base + (1 if i < rem else 0) for i in range(n_shards)]

    if isinstance(deployment, PhasePools):
        if n_shards > min(deployment.n_prefill, deployment.n_decode):
            raise SpecError(
                "n_shards cannot exceed the smallest pool "
                f"(min(n_prefill={deployment.n_prefill}, "
                f"n_decode={deployment.n_decode}))"
            )
        return [
            replace(deployment, n_prefill=p, n_decode=d)
            for p, d in zip(split(deployment.n_prefill), split(deployment.n_decode))
        ]
    if isinstance(deployment, ColocatedPool):
        if n_shards > deployment.n_instances:
            raise SpecError(
                f"n_shards cannot exceed n_instances={deployment.n_instances}"
            )
        return [replace(deployment, n_instances=n) for n in split(deployment.n_instances)]
    raise SpecError("deployment must be a PhasePools or ColocatedPool")


def _pool_weights(deployment: Any) -> Tuple[int, int]:
    """(prefill, decode) instance counts — colocated pools count once each."""
    from ..cluster.scheduler import ColocatedPool

    if isinstance(deployment, ColocatedPool):
        return deployment.n_instances, deployment.n_instances
    return deployment.n_prefill, deployment.n_decode


def _shard_scripted_failures(
    deployment: Any, n_shards: int, failures: Sequence[Tuple[float, str, int, float]]
) -> List[List[Tuple[float, str, int, float]]]:
    """Map whole-deployment scripted failures onto shard-local indices.

    Uses the same even split as :func:`shard_deployment`, so global
    instance ``index`` of ``pool`` lands on exactly the shard that owns
    that instance — a parity prerequisite: ``shards=N`` must hit the same
    hardware at the same times as ``shards=1``.
    """
    from ..cluster.scheduler import ColocatedPool

    def split(count: int) -> List[int]:
        base, rem = divmod(count, n_shards)
        return [base + (1 if i < rem else 0) for i in range(n_shards)]

    if isinstance(deployment, ColocatedPool):
        sizes = {"colocated": split(deployment.n_instances)}
    else:
        sizes = {"prefill": split(deployment.n_prefill), "decode": split(deployment.n_decode)}
    out: List[List[Tuple[float, str, int, float]]] = [[] for _ in range(n_shards)]
    for time, pool, index, duration in failures:
        if pool not in sizes:
            pools = "/".join(f"'{name}'" for name in sizes)
            raise SpecError(f"unknown failure pool '{pool}' (expected {pools})")
        remaining = index
        for shard, size in enumerate(sizes[pool]):
            if remaining < size:
                out[shard].append((time, pool, remaining, duration))
                break
            remaining -= size
        else:
            raise SpecError(f"failure index {index} out of range for pool '{pool}'")
    return out


def _run_shard(
    deployment: Any,
    trace: Tuple,
    config: Any,
    policies: Any,
    failure_model: Any,
    failure_seed: int,
    failures: Sequence[Tuple[float, str, int, float]] = (),
) -> Dict[str, Any]:
    """Simulate one shard; module-level so worker processes can pickle it."""
    from ..cluster.scheduler import ColocatedPool
    from ..cluster.simulator import ColocatedSimulator, ServingSimulator

    sim_cls = (
        ColocatedSimulator if isinstance(deployment, ColocatedPool) else ServingSimulator
    )
    sim = sim_cls(
        deployment,
        config,
        policies=policies,
        failure_model=failure_model,
        failure_seed=failure_seed,
        failures=failures,
    )
    report = sim.run(list(trace))
    prefill_n, decode_n = _pool_weights(deployment)
    return {
        "report": report,
        "metrics": sim.last_metrics,
        "prefill_n": prefill_n,
        "decode_n": decode_n,
    }


def merge_shard_results(parts: Sequence[Dict[str, Any]]) -> Any:
    """Fold per-shard results into one :class:`SimReport`.

    Integer counters (completed/dropped/requeued/restarted/tokens/spawns)
    sum bit-exactly; ``duration`` is the latest shard clock; utilizations
    recombine from reconstructed busy time; latency percentiles come from
    the merged quantile sketches; economics totals sum, with
    ``usd_per_mtoken`` re-amortized over the merged token count.

    Resilience fields follow the same discipline: event counters
    (sheds/retries/goodput tokens/failure hits) are integer sums — valid
    because shard request-id sets are disjoint, so per-shard
    distinct-request counts (``restarted_requests``) sum exactly; the
    rates (goodput/s, SLO-violation, deadline-miss) are recomputed from
    the merged sums; ``mttr_s`` is the failure-hit-weighted mean; and
    ``availability`` is the instance-second-weighted mean.
    """
    from ..analysis.streaming import StreamingMetrics
    from ..cluster.simulator import SimReport

    if not parts:
        raise SpecError("cannot merge zero shard results")
    metrics = StreamingMetrics.merged([p["metrics"] for p in parts])
    reports = [p["report"] for p in parts]
    duration = max(max(r.duration for r in reports), 1e-9)
    prefill_n = sum(p["prefill_n"] for p in parts)
    decode_n = sum(p["decode_n"] for p in parts)
    prefill_busy = sum(
        r.prefill_utilization * r.duration * p["prefill_n"]
        for r, p in zip(reports, parts)
    )
    decode_busy = sum(
        r.decode_utilization * r.duration * p["decode_n"]
        for r, p in zip(reports, parts)
    )
    if metrics.completed:
        ttft_p50, ttft_p99 = metrics.ttft.quantiles((0.5, 0.99))
        e2e_p50, e2e_p99 = metrics.e2e.quantiles((0.5, 0.99))
        tbt_p99 = metrics.tbt.quantile(0.99)
        tbt_mean = metrics.tbt.mean
    else:
        nan = float("nan")
        ttft_p50 = ttft_p99 = tbt_mean = tbt_p99 = e2e_p50 = e2e_p99 = nan
    usd_cost = sum(r.usd_cost for r in reports)
    arrivals = metrics.completed + sum(r.dropped for r in reports)
    goodput_tokens = sum(r.goodput_tokens for r in reports)
    slo_violations = sum(r.slo_violations for r in reports)
    deadline_missed = sum(r.deadline_missed for r in reports)
    failure_hits = sum(r.failure_hits for r in reports)
    # Weighted means: MTTR by each shard's failure hits; availability by
    # instance-seconds (duration × instances — the same scale the shards
    # normalized their own downtime by).
    mttr_s = (
        sum(r.mttr_s * r.failure_hits for r in reports) / failure_hits
        if failure_hits
        else 0.0
    )
    inst_seconds = [
        r.duration * (p["prefill_n"] + p["decode_n"]) for r, p in zip(reports, parts)
    ]
    total_inst_seconds = sum(inst_seconds)
    availability = (
        sum(r.availability * w for r, w in zip(reports, inst_seconds)) / total_inst_seconds
        if total_inst_seconds > 0
        else 1.0
    )
    return SimReport(
        completed=metrics.completed,
        dropped=sum(r.dropped for r in reports),
        duration=duration,
        ttft_p50=float(ttft_p50),
        ttft_p99=float(ttft_p99),
        tbt_mean=float(tbt_mean),
        tbt_p99=float(tbt_p99),
        e2e_p50=float(e2e_p50),
        e2e_p99=float(e2e_p99),
        output_tokens_per_s=metrics.output_tokens / duration,
        prefill_utilization=min(1.0, prefill_busy / (duration * max(prefill_n, 1))),
        decode_utilization=min(1.0, decode_busy / (duration * max(decode_n, 1))),
        requeued_on_failure=sum(r.requeued_on_failure for r in reports),
        restarted_requests=sum(r.restarted_requests for r in reports),
        gpu_seconds=sum(r.gpu_seconds for r in reports),
        energy_joules=sum(r.energy_joules for r in reports),
        usd_cost=usd_cost,
        usd_per_mtoken=(
            usd_cost / (metrics.output_tokens / 1e6) if metrics.output_tokens else 0.0
        ),
        spawned_instances=sum(r.spawned_instances for r in reports),
        retired_instances=sum(r.retired_instances for r in reports),
        deadline_missed=deadline_missed,
        timed_out=sum(r.timed_out for r in reports),
        load_shed=sum(r.load_shed for r in reports),
        truncated=sum(r.truncated for r in reports),
        retries=sum(r.retries for r in reports),
        abandoned=sum(r.abandoned for r in reports),
        goodput_tokens=goodput_tokens,
        goodput_tokens_per_s=goodput_tokens / duration,
        slo_violations=slo_violations,
        slo_violation_rate=slo_violations / metrics.completed if metrics.completed else 0.0,
        deadline_miss_rate=deadline_missed / arrivals if arrivals else 0.0,
        failure_hits=failure_hits,
        mttr_s=mttr_s,
        availability=availability,
    )


def run_sharded(
    deployment: Any,
    trace: Iterable,
    config: Any = None,
    *,
    shards: int,
    policies: Any = None,
    failure_model: Any = None,
    failure_seed: int = 0,
    shard_policy: Union[str, Any] = "least-loaded",
    workers: int = 1,
    failures: Sequence[Tuple[float, str, int, float]] = (),
) -> Any:
    """Simulate ``trace`` as ``shards`` independent sub-runs and merge.

    The deployment's instances and the trace's requests are partitioned
    (see :func:`shard_deployment` / :func:`shard_requests`), each shard
    runs its own engine with ``metrics="streaming"`` and a failure seed
    derived as ``derive_seed(failure_seed, "shard", i)``, and the results
    merge via :func:`merge_shard_results`.  ``workers > 1`` fans shards
    across processes through :func:`~repro.exec.runner.run_many` — results
    are bit-identical to ``workers=1`` because the merge consumes shard
    results in shard order regardless of scheduling.

    ``failures`` accepts the simulators' scripted ``(time, pool, index,
    duration)`` tuples with *whole-deployment* indices; each maps onto the
    shard owning that instance (:func:`_shard_scripted_failures`), so
    restart/retry counters match the unsharded run exactly.  ``trace`` may
    be any iterable (e.g. :func:`~repro.workloads.traces.iter_trace`); it
    is consumed once.  Topology and controller knobs remain whole-cluster
    concerns and are not supported here — use the unsharded simulators.
    """
    from ..cluster.simulator import SimConfig

    if shards < 1:
        raise SpecError("shards must be at least 1")
    config = config or SimConfig()
    if config.backend != "event":
        # The fluid backend is already milliseconds per run; sharding it
        # would only distort the merge (per-shard profiles lose the queue
        # coupling).  There is nothing to win — reject loudly.
        raise SpecError("run_sharded requires backend='event' (fluid needs no sharding)")
    config = replace(config, metrics="streaming")
    sub_deployments = shard_deployment(deployment, shards)
    weights = [d.total_gpus for d in sub_deployments]
    sub_traces = shard_requests(trace, shards, policy=shard_policy, weights=weights)
    sub_failures = _shard_scripted_failures(deployment, shards, failures)
    jobs = [
        Job(
            fn=_run_shard,
            args=(
                sub_deployments[i],
                tuple(sub_traces[i]),
                config,
                policies,
                failure_model,
                derive_seed(failure_seed, "shard", i),
                tuple(sub_failures[i]),
            ),
            label=f"shard-{i}",
        )
        for i in range(shards)
    ]
    outcomes = run_many(jobs, workers=workers)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        raise SpecError(f"shard {failed[0].label} failed: {failed[0].error}")
    return merge_shard_results([o.value for o in outcomes])
