"""Deterministic seed and key derivation for parallel experiment execution.

Every parallel job — a sweep point, a search candidate, a failure-seeded
simulation replica — must behave identically whether it runs in-process or
in a worker, and identically across runs.  That requires two primitives:

- :func:`stable_digest` — a content hash over heterogeneous Python values
  with a canonical encoding, used both for cache keys and seed derivation;
- :func:`derive_seed` — a child seed derived from a base seed plus a label
  path, so replica ``i`` of ensemble ``base_seed`` always gets the same
  (well-mixed, collision-resistant) seed regardless of execution order.

``random``/``numpy`` sequential seeding (``base + i``) is deliberately
avoided: nearby integer seeds correlate in some generators and collide
across experiment families (replica 1 of seed 0 vs replica 0 of seed 1).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from typing import Any

from ..errors import SpecError

__all__ = ["stable_digest", "derive_seed", "SEED_SPACE"]

# Seeds stay below 2**48: comfortably inside every RNG's accepted range
# (numpy, random, torch) and exactly representable as a float if a caller
# round-trips one through JSON.
SEED_SPACE = 2**48


def _encode_part(value: Any) -> Any:
    """Fallback encoder: dataclasses by field dict, enums by value, else repr.

    ``repr`` of the frozen spec dataclasses used throughout this repo is
    deterministic and content-complete, which is all a digest needs.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__, "fields": asdict(value)}
    if hasattr(value, "value") and hasattr(type(value), "__members__"):  # Enum
        return {"__enum__": type(value).__name__, "value": value.value}
    return repr(value)


def stable_digest(*parts: Any) -> str:
    """SHA-256 hex digest over a canonical JSON encoding of ``parts``.

    >>> stable_digest(1, "a") == stable_digest(1, "a")
    True
    >>> stable_digest(1, "a") != stable_digest("a", 1)
    True
    """
    blob = json.dumps(parts, sort_keys=True, separators=(",", ":"), default=_encode_part)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def derive_seed(base_seed: int, *components: Any) -> int:
    """Derive a deterministic child seed from ``base_seed`` and a label path.

    >>> derive_seed(0, "replica", 1) == derive_seed(0, "replica", 1)
    True
    >>> derive_seed(0, "replica", 1) != derive_seed(0, "replica", 2)
    True
    >>> 0 <= derive_seed(123, "x") < SEED_SPACE
    True
    """
    if not isinstance(base_seed, int):
        raise SpecError("base_seed must be an integer")
    return int(stable_digest(base_seed, *components)[:12], 16) % SEED_SPACE
