"""Parallel experiment runner: fan jobs across processes, deterministically.

The sweep/search/ensemble layers all reduce to the same shape of work — a
list of independent pure function calls — so they share one executor:

- :class:`Job` — a picklable unit of work with an optional cache key;
- :func:`run_many` — execute jobs in order-preserving fashion, either
  in-process (``workers=1``, zero overhead, no pickling requirement) or
  across a ``multiprocessing`` pool, consulting a
  :class:`~repro.exec.cache.ResultCache` before dispatch and populating it
  after.

Determinism: results come back in job-list order regardless of worker
scheduling, every job carries its own derived seed (see
:mod:`repro.exec.seeding`), and the simulators themselves are pure
functions of their inputs — so ``workers=4`` is bit-identical to
``workers=1`` (asserted in the tier-1 suite).

Failure isolation: a job that raises is captured as a
:class:`JobOutcome` with ``error`` set instead of aborting its siblings;
callers choose whether to surface or skip errored points.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import SpecError
from .cache import MISS, ResultCache

__all__ = ["Job", "JobOutcome", "effective_workers", "run_many"]


def effective_workers(workers: int) -> int:
    """Clamp a requested worker count to the CPUs this process may use.

    A process pool wider than the available cores cannot speed anything up
    — on a 1-core box it *loses* to the serial path on fork/pickle
    overhead (the 0.9x "speedup" BENCH_sweep.json used to report).  Uses
    the scheduler affinity mask where the platform exposes it (a container
    may be pinned to fewer CPUs than ``os.cpu_count`` reports).

    >>> effective_workers(1)
    1
    """
    if workers < 1:
        raise SpecError("workers must be at least 1")
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        cores = os.cpu_count() or 1
    return max(1, min(workers, cores))


@dataclass(frozen=True)
class Job:
    """One unit of work.

    ``fn`` must be a module-level callable (and ``args``/``kwargs``
    picklable) when the job is to run under ``workers > 1``; in-process
    execution has no such constraint.  ``key`` is the job's cache identity
    (``None`` = never cached); ``label`` is a human tag carried into the
    outcome for tables and logs.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    key: Optional[str] = None
    label: str = ""


@dataclass
class JobOutcome:
    """What happened to one job: a value or an error, and where it came from."""

    value: Any = None
    error: Optional[str] = None
    cached: bool = False
    label: str = ""

    @property
    def ok(self) -> bool:
        """Whether the job produced a value."""
        return self.error is None


def _execute(job: Job) -> Tuple[Any, Optional[str]]:
    """Run one job, capturing any exception as ``(None, "Type: message")``."""
    try:
        return job.fn(*job.args, **job.kwargs), None
    except Exception as exc:  # noqa: BLE001 - isolation is the contract
        return None, f"{type(exc).__name__}: {exc}"


def run_many(
    jobs: Iterable[Job],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[JobOutcome]:
    """Execute ``jobs``; outcomes align 1:1 with the input order.

    With a ``cache``, keyed jobs are looked up first and only the misses
    are dispatched; successful miss results are stored back (values the
    cache codec cannot encode are silently left uncached).  ``workers`` is
    clamped to :func:`effective_workers` (available CPUs) and then to the
    number of pending jobs; when the effective count is 1 the jobs run
    in-process — no pool, no pickling, no fork overhead.

    >>> outcomes = run_many([Job(fn=abs, args=(-3,)), Job(fn=abs, args=(4,))])
    >>> [o.value for o in outcomes]
    [3, 4]
    """
    jobs = list(jobs)
    workers = effective_workers(workers)
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    pending: List[int] = []
    for i, job in enumerate(jobs):
        if cache is not None and job.key is not None:
            value = cache.get(job.key)
            if value is not MISS:
                outcomes[i] = JobOutcome(value=value, cached=True, label=job.label)
                continue
        pending.append(i)
    if pending:
        todo = [jobs[i] for i in pending]
        if workers == 1 or len(todo) == 1:
            results = [_execute(job) for job in todo]
        else:
            # chunksize=1: experiment jobs are coarse (whole simulations),
            # so per-task dispatch overhead is noise and load balance wins.
            with multiprocessing.get_context().Pool(min(workers, len(todo))) as pool:
                results = pool.map(_execute, todo, chunksize=1)
        for i, (value, error) in zip(pending, results):
            outcomes[i] = JobOutcome(value=value, error=error, label=jobs[i].label)
            if error is None and cache is not None and jobs[i].key is not None:
                cache.put(jobs[i].key, value)
    return outcomes  # type: ignore[return-value]  # every slot is filled
