"""Command-line interface: regenerate the paper's artifacts from a shell.

Usage::

    python -m repro table1
    python -m repro fig1 | fig2 | fig3a | fig3b
    python -m repro report                       # everything
    python -m repro search --model Llama3-70B --gpu Lite+MemBW --phase decode
    python -m repro tco --model Llama3-70B
    python -m repro simulate --shape phase-split --policy fcfs
    python -m repro simulate --shape colocated --mtbf-hours 0.5
    python -m repro simulate --topology direct --group 8 --network-model fabric \
        --placer scattered                       # topology-aware serving
    python -m repro sweep --rates 2,4,6 --sizes 1,2 --workers 4
    python -m repro simulate --backend fluid     # millisecond analytic estimate
    python -m repro screen --rates 2,4,6,8 --sizes 1,2,4  # two-tier sweep
    python -m repro topology --gpus 128 --group 4  # fabric comparison table
    python -m repro autoscale --controllers static,reactive,slo \
        --rates 1,8,1 --segment 60               # static-vs-elastic economics
    python -m repro chaos --scenario blast       # rack-failure blast radius
    python -m repro cache stats | clear          # on-disk result cache

All subcommands print plain text and touch neither the network nor disk —
except ``sweep``, which (unless ``--no-cache``) persists finished points
under ``--cache-dir`` (default ``.repro_cache/``) so repeat invocations
skip completed work, and ``cache``, which inspects/clears that directory.
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import List, Optional

from .analysis.figures import (
    fig1_evolution_series,
    fig2_deployment_comparison,
    fig3a_prefill_series,
    fig3b_decode_series,
)
from .analysis.report import experiment_report, simulation_table
from .analysis.tables import format_table, render_fig3_panel, render_table1
from .cluster.chaos import (
    blast_radius_scenario,
    checkpoint_scenario,
    retry_storm_scenario,
)
from .cluster.control import (
    CONTROLLERS,
    ForecastController,
    PowerCapController,
    ReactiveController,
    SLOController,
    StaticController,
)
from .cluster.failures import FailureModel
from .cluster.placement import PLACERS, placement_hop_stats
from .cluster.policies import POLICY_BUNDLES, ROUTING_POLICIES
from .cluster.resilience import goodput_dip
from .cluster.power_manager import ClusterPowerManager
from .cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from .cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig
from .cluster.spec import ClusterSpec
from .analysis.screening import screen_then_simulate
from .analysis.sweeps import argbest
from .core.search import search_best_config
from .errors import LiteGPUError, SimulationError
from .exec.cache import ResultCache
from .exec.runner import Job, run_many
from .exec.sharding import run_sharded
from .hardware.gpu import H100, get_gpu
from .hardware.tco import tokens_per_dollar_comparison
from .network.fabric import compare_fabrics
from .network.topology import (
    DirectConnectTopology,
    FlatCircuitTopology,
    SwitchedTopology,
    Topology,
)
from .units import GB_PER_S, HOUR, KILOWATT
from .workloads.models import get_model
from .workloads.traces import (
    TraceConfig,
    generate_piecewise_trace,
    generate_trace,
    trace_fingerprint,
)


def _csv_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _cmd_table1(_: argparse.Namespace) -> None:
    print(render_table1())


def _cmd_fig1(_: argparse.Namespace) -> None:
    rows = fig1_evolution_series()
    headers = ["name", "year", "dies", "die_area_mm2", "transistors_b", "tdp_w", "mem_bw_gbs", "packaging"]
    print(format_table(headers, [[r[h] for h in headers] for r in rows],
                       title="Figure 1: evolution of data-center GPUs"))


def _cmd_fig2(_: argparse.Namespace) -> None:
    fig2 = fig2_deployment_comparison()
    print(
        "Figure 2 (1x H100 -> 4x Lite): "
        f"yield x{fig2['yield_gain']:.2f}, cost -{fig2['cost_reduction']:.0%}, "
        f"shoreline x{fig2['shoreline_gain']:.2f}, "
        f"bandwidth-to-compute potential x{fig2['bw_to_compute_potential']:.2f}"
    )


def _cmd_fig3a(_: argparse.Namespace) -> None:
    print(render_fig3_panel(fig3a_prefill_series(), "Figure 3a: prefill (normalized tokens/s/SM)"))


def _cmd_fig3b(_: argparse.Namespace) -> None:
    print(render_fig3_panel(fig3b_decode_series(), "Figure 3b: decode (normalized tokens/s/SM)"))


def _cmd_report(_: argparse.Namespace) -> None:
    print(experiment_report())


def _cmd_search(args: argparse.Namespace) -> None:
    model = get_model(args.model)
    gpu = get_gpu(args.gpu)
    result = search_best_config(model, gpu, args.phase)
    print(result.describe())
    if result.best and args.verbose:
        breakdown = result.best.result.breakdown()
        for stage, share in breakdown.items():
            print(f"  {stage:12s} {share:6.1%}")
        print(f"  bound by: {result.best.result.bound_by()}")


def _cmd_tco(args: argparse.Namespace) -> None:
    model = get_model(args.model)
    h100_best = search_best_config(model, H100, "decode").best
    lite = get_gpu(args.gpu)
    lite_best = search_best_config(model, lite, "decode").best
    if h100_best is None or lite_best is None:
        print("no feasible configuration", file=sys.stderr)
        raise SystemExit(1)
    comparison = tokens_per_dollar_comparison(
        ClusterSpec(H100, h100_best.n_gpus, "switched"),
        ClusterSpec(lite, lite_best.n_gpus, "circuit"),
        h100_best.result.tokens_per_s,
        lite_best.result.tokens_per_s,
    )
    print(
        f"{model.name} decode unit economics:\n"
        f"  H100 ({h100_best.n_gpus} GPUs): ${comparison['h100_usd_per_mtoken']:.3f}/Mtok "
        f"(${comparison['h100_per_hour']:.2f}/h)\n"
        f"  {lite.name} ({lite_best.n_gpus} GPUs): ${comparison['lite_usd_per_mtoken']:.3f}/Mtok "
        f"(${comparison['lite_per_hour']:.2f}/h)\n"
        f"  Lite saving: {comparison['lite_saving']:.1%}"
    )


def _build_topology(kind: str, n_gpus: int, group: int) -> Optional[Topology]:
    """Materialize a CLI-selected topology over ``n_gpus`` endpoints.

    Direct-connect fabrics round the GPU count up to a whole number of
    groups (spare endpoints simply stay unplaced).
    """
    if kind == "none":
        return None
    if group <= 0:
        raise SimulationError("--group must be positive")
    if n_gpus <= 0:
        raise SimulationError("--cluster-gpus must be positive")
    if kind == "direct":
        n = ((n_gpus + group - 1) // group) * group
        return DirectConnectTopology(n_gpus=n, group=group)
    if kind == "switched":
        return SwitchedTopology(n_gpus=n_gpus)
    return FlatCircuitTopology(n_gpus=n_gpus)


def _check_topology_flags(args: argparse.Namespace) -> None:
    """Reject placement flags that would be silently ignored without a
    topology (``--network-model fabric`` already fails in the simulator)."""
    if args.topology == "none" and (args.placer != "packed" or args.cluster_gpus):
        raise SimulationError(
            "--placer/--cluster-gpus have no effect without --topology "
            "direct|switched|circuit"
        )


def _cmd_topology(args: argparse.Namespace) -> None:
    reports = compare_fabrics(args.gpus, group=args.group, utilization=args.utilization)
    rows = [
        [
            r.name,
            r.n_switches,
            r.n_links,
            r.n_ports,
            f"{r.capex_usd:,.0f}",
            f"{r.capex_per_gpu:,.0f}",
            f"{r.power_w / KILOWATT:.1f}",
            f"{r.per_gpu_bandwidth / GB_PER_S:.0f}",
            f"{r.bisection_bandwidth / GB_PER_S:,.0f}",
            f"{r.avg_hops:.2f}",
        ]
        for r in reports
    ]
    print(
        format_table(
            ["fabric", "switches", "links", "ports", "capex $", "$/GPU",
             "power kW", "GB/s/GPU", "bisection GB/s", "avg hops"],
            rows,
            title=f"Fabric comparison: {args.gpus} GPUs, group {args.group}",
        )
    )


def _cmd_simulate(args: argparse.Namespace) -> None:
    _check_topology_flags(args)
    model = get_model(args.model)
    trace = generate_trace(
        TraceConfig(
            rate=args.rate,
            duration=args.duration,
            output_tokens=args.output_tokens,
            output_spread=args.output_spread,
        ),
        seed=args.seed,
    )
    if args.backend != "event" and args.shards > 1:
        raise SimulationError("--backend fluid cannot be combined with --shards")
    config = SimConfig(
        max_sim_time=args.max_sim_time,
        context_bucket=args.context_bucket,
        metrics=args.metrics,
        backend=args.backend,
    )
    failure_model = None
    if args.mtbf_hours > 0:
        failure_model = FailureModel(mtbf=args.mtbf_hours * HOUR, mttr=args.mttr_hours * HOUR)
    if args.shape == "phase-split":
        deployment = PhasePools(
            prefill=InstanceSpec(model, get_gpu(args.prefill_gpu), args.gpus_per_instance),
            n_prefill=args.n_prefill,
            decode=InstanceSpec(model, get_gpu(args.decode_gpu), args.gpus_per_instance),
            n_decode=args.n_decode,
            max_prefill_batch=args.max_prefill_batch,
            max_decode_batch=args.max_decode_batch,
        )
        simulator_cls = ServingSimulator
    else:
        deployment = ColocatedPool(
            instance=InstanceSpec(model, get_gpu(args.gpu), args.gpus_per_instance),
            n_instances=args.n_instances,
            max_decode_batch=args.max_decode_batch,
            chunk_tokens=args.chunk_tokens,
        )
        simulator_cls = ColocatedSimulator
    description = deployment.describe()
    if args.shards > 1:
        # Sharded execution factors the run into independent sub-engines —
        # whole-cluster co-simulation (a shared fabric) cannot be split.
        if args.topology != "none":
            raise SimulationError("--shards cannot be combined with --topology")
        report = run_sharded(
            deployment,
            trace,
            config,
            shards=args.shards,
            policies=args.policy,
            failure_model=failure_model,
            failure_seed=args.failure_seed,
            shard_policy=args.shard_policy,
            workers=args.workers,
        )
        topology = None
        simulator = None
    else:
        topology = _build_topology(
            args.topology, args.cluster_gpus or deployment.total_gpus, args.group
        )
        simulator = simulator_cls(
            deployment, config,
            policies=args.policy, failure_model=failure_model, failure_seed=args.failure_seed,
            topology=topology, placer=args.placer, network_model=args.network_model,
        )
        report = simulator.run(trace)
    failure_note = (
        f"stochastic failures MTBF {args.mtbf_hours:g}h / MTTR {args.mttr_hours:g}h "
        f"(seed {args.failure_seed})" if failure_model else "no failures"
    )
    print(f"{description}")
    print(f"policy '{args.policy}', trace {len(trace)} requests @ {args.rate:g}/s, {failure_note}")
    if args.shards > 1:
        print(
            f"sharded x{args.shards} ('{args.shard_policy}' shard routing, "
            f"{args.workers} worker(s), streaming metrics)"
        )
    if topology is not None:
        stats = placement_hop_stats(topology, simulator.placement)
        print(
            f"topology {args.topology} x{topology.n_gpus}, placer '{args.placer}', "
            f"network model '{args.network_model}' "
            f"(intra-instance hops mean {stats['mean_hops']:.2f} max {stats['max_hops']:.0f})"
        )
    print(simulation_table({args.shape: report}))
    print(report.describe())


def _sweep_point(
    shape: str,
    model_name: str,
    prefill_gpu: str,
    decode_gpu: str,
    gpu: str,
    gpus_per_instance: int,
    n_prefill: int,
    size: int,
    max_prefill_batch: int,
    max_decode_batch: int,
    chunk_tokens: int,
    policy: str,
    max_sim_time: float,
    context_bucket: int,
    metrics: str,
    topology_kind: str,
    cluster_gpus: int,
    group: int,
    placer: str,
    network_model: str,
    backend: str,
    trace_config: TraceConfig,
    trace_seed: int,
):
    """Run one sweep point (module-level so worker processes can pickle it).

    The trace regenerates from its config inside the worker — deterministic,
    and far cheaper to ship than thousands of pickled Request objects.  The
    topology/placement/backend arguments are part of the point tuple the
    cache key hashes, so topology sweeps never collide with cached
    non-network runs and fluid screens never alias event truth.
    """
    trace = generate_trace(trace_config, seed=trace_seed)
    model = get_model(model_name)
    config = SimConfig(
        max_sim_time=max_sim_time, context_bucket=context_bucket, metrics=metrics,
        backend=backend,
    )
    if shape == "phase-split":
        deployment = PhasePools(
            prefill=InstanceSpec(model, get_gpu(prefill_gpu), gpus_per_instance),
            n_prefill=n_prefill,
            decode=InstanceSpec(model, get_gpu(decode_gpu), gpus_per_instance),
            n_decode=size,
            max_prefill_batch=max_prefill_batch,
            max_decode_batch=max_decode_batch,
        )
        simulator_cls = ServingSimulator
    else:
        deployment = ColocatedPool(
            instance=InstanceSpec(model, get_gpu(gpu), gpus_per_instance),
            n_instances=size,
            max_decode_batch=max_decode_batch,
            chunk_tokens=chunk_tokens,
        )
        simulator_cls = ColocatedSimulator
    topology = _build_topology(topology_kind, cluster_gpus or deployment.total_gpus, group)
    simulator = simulator_cls(
        deployment, config, policies=policy,
        topology=topology, placer=placer, network_model=network_model,
    )
    return simulator.run(trace)


def _cmd_sweep(args: argparse.Namespace) -> None:
    _check_topology_flags(args)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    trace_configs = {
        rate: TraceConfig(
            rate=rate,
            duration=args.duration,
            output_tokens=args.output_tokens,
            output_spread=args.output_spread,
        )
        for rate in args.rates
    }
    # Fingerprint the actual requests (not just the config) so a change to
    # trace *generation* invalidates cached points even within one version.
    fingerprints = {
        rate: trace_fingerprint(generate_trace(config, seed=args.seed))
        for rate, config in trace_configs.items()
    } if cache is not None else {}
    jobs = []
    for rate in args.rates:
        for size in args.sizes:
            point = (
                args.shape, args.model, args.prefill_gpu, args.decode_gpu, args.gpu,
                args.gpus_per_instance, args.n_prefill, size,
                args.max_prefill_batch, args.max_decode_batch, args.chunk_tokens,
                args.policy, args.max_sim_time, args.context_bucket, args.metrics,
                args.topology, args.cluster_gpus, args.group,
                args.placer, args.network_model, args.backend,
            )
            key = None
            if cache is not None:
                key = cache.key("cli-sweep", point, fingerprints[rate])
            jobs.append(
                Job(
                    fn=_sweep_point,
                    args=point + (trace_configs[rate], args.seed),
                    key=key,
                    label=f"rate={rate:g} size={size}",
                )
            )
    outcomes = run_many(jobs, workers=args.workers, cache=cache)
    print(
        f"sweep: {args.shape} {args.model}, {len(jobs)} points "
        f"({len(args.rates)} rates x {len(args.sizes)} sizes), "
        f"{args.workers} worker(s), policy '{args.policy}'"
    )
    records = []
    reports = {}
    for outcome in outcomes:
        if outcome.ok:
            reports[outcome.label + (" [cached]" if outcome.cached else "")] = outcome.value
            records.append({"point": outcome.label, "result": outcome.value})
        else:
            records.append({"point": outcome.label, "error": outcome.error})
    if reports:
        print(simulation_table(reports, title="Sweep grid"))
    for record in records:
        if "error" in record:
            print(f"  {record['point']}: ERROR {record['error']}")
    if not reports:
        raise SimulationError("no sweep point completed successfully")
    best = argbest(records, key=lambda r: r["result"].output_tokens_per_s)
    print(
        f"best throughput: {best['point']} "
        f"({best['result'].output_tokens_per_s:.0f} out tok/s)"
    )
    if cache is not None:
        info = cache.cache_info()
        print(
            f"cache: {info['hits']} hits, {info['misses']} misses, "
            f"{info['stores']} stored, {info['entries']} on disk ({cache.root})"
        )
    else:
        print("cache: disabled")


def _screen_point(
    backend: str,
    rate: float,
    size: int,
    *,
    shape: str,
    model_name: str,
    prefill_gpu: str,
    decode_gpu: str,
    gpu: str,
    gpus_per_instance: int,
    n_prefill: int,
    max_prefill_batch: int,
    max_decode_batch: int,
    chunk_tokens: int,
    policy: str,
    max_sim_time: float,
    duration: float,
    output_tokens: int,
    output_spread: float,
    trace_seed: int,
):
    """Evaluate one screen grid point under the given backend.

    Module-level with keyword-bound fixed configuration (via
    ``functools.partial``) so it pickles to workers and the backend lands
    in the result-cache key.
    """
    trace_config = TraceConfig(
        rate=rate, duration=duration,
        output_tokens=output_tokens, output_spread=output_spread,
    )
    return _sweep_point(
        shape, model_name, prefill_gpu, decode_gpu, gpu,
        gpus_per_instance, n_prefill, size,
        max_prefill_batch, max_decode_batch, chunk_tokens,
        policy, max_sim_time, 1, "exact",
        "none", 0, 4, "packed", "none", backend,
        trace_config, trace_seed,
    )


def _cmd_screen(args: argparse.Namespace) -> None:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    fn = functools.partial(
        _screen_point,
        shape=args.shape,
        model_name=args.model,
        prefill_gpu=args.prefill_gpu,
        decode_gpu=args.decode_gpu,
        gpu=args.gpu,
        gpus_per_instance=args.gpus_per_instance,
        n_prefill=args.n_prefill,
        max_prefill_batch=args.max_prefill_batch,
        max_decode_batch=args.max_decode_batch,
        chunk_tokens=args.chunk_tokens,
        policy=args.policy,
        max_sim_time=args.max_sim_time,
        duration=args.duration,
        output_tokens=args.output_tokens,
        output_spread=args.output_spread,
        trace_seed=args.seed,
    )
    points = [{"rate": rate, "size": size} for rate in args.rates for size in args.sizes]

    def cost(record):
        return float(record["size"])

    def quality(record):
        return record["result"].output_tokens_per_s

    result = screen_then_simulate(
        fn, points,
        cost=cost, quality=quality,
        margin=args.margin, workers=args.workers, cache=cache,
    )
    print(
        f"screen: {args.shape} {args.model}, {result.n_points} points "
        f"({len(args.rates)} rates x {len(args.sizes)} sizes), "
        f"margin {args.margin:.0%}, policy '{args.policy}'"
    )
    print(result.table(cost, quality))
    best = result.best
    print(
        f"best (event-verified): rate={best['rate']:g} size={best['size']} "
        f"({best['result'].output_tokens_per_s:.0f} out tok/s); "
        f"event simulated {len(result.promoted)}/{result.n_points} points "
        f"({result.promotion_fraction:.0%})"
    )


def _build_controller(name: str, args: argparse.Namespace, deployment):
    """Materialize a named controller from the autoscale CLI knobs."""
    bounds = dict(
        epoch=args.epoch,
        warmup_s=args.warmup,
        min_instances=args.min_instances,
        max_instances=args.max_instances,
    )
    key = name.strip().lower().replace("-", "_")
    if key == "static":
        return StaticController()
    if key == "reactive":
        return ReactiveController(queue_high=args.queue_high, **bounds)
    if key == "slo":
        return SLOController(ttft_target=args.slo_ttft, tbt_target=args.slo_tbt, **bounds)
    if key == "forecast":
        profile = [
            (i * args.segment, rate / args.rates[0]) for i, rate in enumerate(args.rates)
        ]
        return ForecastController(profile=profile, **bounds)
    if key == "power_cap":
        if args.cap is None:
            raise SimulationError("power_cap needs --cap start:end:watts")
        try:
            start, end, watts = (float(p) for p in args.cap.split(":"))
        except ValueError as exc:
            raise SimulationError(
                f"--cap must be start:end:watts (three numbers), got {args.cap!r}"
            ) from exc
        manager = ClusterPowerManager(
            deployment.decode.gpu, deployment.total_gpus
        )
        return PowerCapController(manager=manager, caps=[(start, end, watts)], **bounds)
    raise SimulationError(
        f"unknown controller '{name}' (have {', '.join(CONTROLLERS.names())})"
    )


def _cmd_autoscale(args: argparse.Namespace) -> None:
    if len(args.rates) < 2:
        raise SimulationError("--rates needs at least two segments to be bursty")
    model = get_model(args.model)
    base = TraceConfig(output_tokens=args.output_tokens, output_spread=args.output_spread)
    trace = generate_piecewise_trace(
        [(rate, args.segment) for rate in args.rates], base, seed=args.seed
    )
    deployment = PhasePools(
        prefill=InstanceSpec(model, get_gpu(args.prefill_gpu), args.gpus_per_instance),
        n_prefill=args.n_prefill,
        decode=InstanceSpec(model, get_gpu(args.decode_gpu), args.gpus_per_instance),
        n_decode=args.n_decode,
        max_prefill_batch=args.max_prefill_batch,
        max_decode_batch=args.max_decode_batch,
    )
    config = SimConfig(max_sim_time=args.max_sim_time)
    print(
        f"{deployment.describe()}\n"
        f"bursty trace: {len(trace)} requests, rates "
        f"{'/'.join(f'{r:g}' for r in args.rates)} req/s x {args.segment:g}s segments"
    )
    reports = {}
    records = []
    for name in args.controllers:
        controller = _build_controller(name, args, deployment)
        simulator = ServingSimulator(
            deployment, config, policies=args.policy, controller=controller
        )
        report = simulator.run(trace)
        label = name
        if report.spawned_instances or report.retired_instances:
            label += f" (+{report.spawned_instances}/-{report.retired_instances})"
        reports[label] = report
        records.append({"controller": name, "result": report})
    print(simulation_table(reports, title="Static vs elastic provisioning"))
    meeting_slo = [
        r for r in records
        if r["result"].completed > 0 and r["result"].ttft_p99 <= args.slo_ttft
    ]
    if meeting_slo:
        best = argbest(
            meeting_slo, key=lambda r: r["result"].usd_per_mtoken, maximize=False
        )
        print(
            f"cheapest at P99-TTFT <= {args.slo_ttft:g}s: '{best['controller']}' "
            f"(${best['result'].usd_per_mtoken:.2f}/Mtok, "
            f"{best['result'].gpu_seconds:.0f} gpu-s)"
        )
    else:
        print(f"no controller met the P99-TTFT <= {args.slo_ttft:g}s SLO")


def _resilience_table(reports, title: str) -> str:
    """One row per report, resilience counters only (chaos verdicts)."""
    rows = [
        [
            name,
            r.completed,
            f"{r.goodput_tokens_per_s:.0f}",
            f"{r.slo_violation_rate:.3f}",
            f"{r.deadline_miss_rate:.3f}",
            r.timed_out,
            r.load_shed,
            r.retries,
            r.abandoned,
            f"{r.e2e_p99:.1f}",
            f"{r.mttr_s:.2f}",
            f"{r.availability:.4f}",
        ]
        for name, r in reports.items()
    ]
    headers = [
        "scenario", "done", "goodput tok/s", "SVR", "miss", "timeout",
        "shed", "retries", "abandoned", "e2e p99 s", "MTTR s", "avail",
    ]
    return format_table(headers, rows, title=title)


def _cmd_chaos(args: argparse.Namespace) -> None:
    scenarios = (
        ("blast", "checkpoint", "storm") if args.scenario == "all"
        else (args.scenario,)
    )
    for key in scenarios:
        if key == "blast":
            reports = blast_radius_scenario(metrics=args.metrics)
            print(_resilience_table(
                reports, title="Blast radius: one rack dies for 45s"
            ))
            big = goodput_dip(reports["big/base"], reports["big/rack"])
            lite = goodput_dip(reports["lite/base"], reports["lite/rack"])
            print(
                f"goodput dip from one rack failure: big {big:.1%}, "
                f"lite {lite:.1%} "
                f"({'smaller Lite blast radius' if lite < big else 'no separation'})"
            )
        elif key == "checkpoint":
            reports = checkpoint_scenario(metrics=args.metrics)
            print(_resilience_table(
                reports, title="Checkpointed restarts vs restart-from-prefill"
            ))
            plain, ckpt = reports["plain"], reports["ckpt"]
            print(
                f"checkpointing: goodput {plain.goodput_tokens:,} -> "
                f"{ckpt.goodput_tokens:,} tokens, "
                f"MTTR {plain.mttr_s:.2f}s -> {ckpt.mttr_s:.2f}s"
            )
        else:
            reports = retry_storm_scenario(metrics=args.metrics)
            print(_resilience_table(
                reports, title="Retry storm: 400 req/s burst, three client policies"
            ))
            fixed, expj = reports["fixed"], reports["exp_jitter"]
            recovered = (
                expj.slo_violation_rate < fixed.slo_violation_rate
                and expj.e2e_p99 < fixed.e2e_p99
            )
            print(
                f"storm recovery: fixed backoff SVR {fixed.slo_violation_rate:.3f} "
                f"(e2e p99 {fixed.e2e_p99:.0f}s) vs exp_jitter "
                f"{expj.slo_violation_rate:.3f} ({expj.e2e_p99:.0f}s) — "
                f"{'jittered backoff recovers' if recovered else 'no separation'}"
            )


def _cmd_cache(args: argparse.Namespace) -> None:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} record(s) from {cache.root}")
        return
    entries = cache.entries()
    size = cache.size_bytes()
    if size >= 1 << 20:
        human = f"{size / (1 << 20):.1f} MiB"
    elif size >= 1 << 10:
        human = f"{size / (1 << 10):.1f} KiB"
    else:
        human = f"{size} B"
    print(
        f"cache {cache.root}: {entries} record(s), {human} on disk "
        f"(salt '{cache.salt}')"
    )


def _add_topology_args(parser: argparse.ArgumentParser) -> None:
    """The shared topology co-simulation flags (simulate + sweep)."""
    parser.add_argument("--topology", default="none",
                        choices=("none", "direct", "switched", "circuit"),
                        help="co-simulate a network fabric (none = legacy behaviour)")
    parser.add_argument("--cluster-gpus", type=int, default=0,
                        help="fabric endpoint count (0 = deployment total)")
    parser.add_argument("--group", type=int, default=4,
                        help="direct-connect Lite-group size")
    parser.add_argument("--placer", default="packed", choices=sorted(PLACERS),
                        help="instance-to-GPU placement strategy")
    parser.add_argument("--network-model", default="none", choices=("none", "fabric"),
                        help="service-time network model (fabric = placed collectives)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Lite-GPU paper reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="print Table 1").set_defaults(fn=_cmd_table1)
    sub.add_parser("fig1", help="print the Figure 1 dataset").set_defaults(fn=_cmd_fig1)
    sub.add_parser("fig2", help="print the Figure 2 comparison").set_defaults(fn=_cmd_fig2)
    sub.add_parser("fig3a", help="regenerate Figure 3a").set_defaults(fn=_cmd_fig3a)
    sub.add_parser("fig3b", help="regenerate Figure 3b").set_defaults(fn=_cmd_fig3b)
    sub.add_parser("report", help="full experiment report").set_defaults(fn=_cmd_report)

    search = sub.add_parser("search", help="run the Section 4 configuration search")
    search.add_argument("--model", default="Llama3-70B")
    search.add_argument("--gpu", default="Lite+MemBW")
    search.add_argument("--phase", choices=("prefill", "decode"), default="decode")
    search.add_argument("--verbose", action="store_true")
    search.set_defaults(fn=_cmd_search)

    tco = sub.add_parser("tco", help="decode unit economics vs H100")
    tco.add_argument("--model", default="Llama3-70B")
    tco.add_argument("--gpu", default="Lite+MemBW")
    tco.set_defaults(fn=_cmd_tco)

    simulate = sub.add_parser("simulate", help="run the discrete-event serving simulator")
    simulate.add_argument("--shape", choices=("phase-split", "colocated"), default="phase-split")
    simulate.add_argument("--model", default="Llama3-70B")
    simulate.add_argument("--prefill-gpu", default="Lite+NetBW+FLOPS",
                          help="prefill pool GPU (phase-split)")
    simulate.add_argument("--decode-gpu", default="Lite+MemBW",
                          help="decode pool GPU (phase-split)")
    simulate.add_argument("--gpu", default="Lite+MemBW", help="pool GPU (colocated)")
    simulate.add_argument("--gpus-per-instance", type=int, default=8)
    simulate.add_argument("--n-prefill", type=int, default=2)
    simulate.add_argument("--n-decode", type=int, default=2)
    simulate.add_argument("--n-instances", type=int, default=4,
                          help="pool size (colocated)")
    simulate.add_argument("--max-prefill-batch", type=int, default=4)
    simulate.add_argument("--max-decode-batch", type=int, default=256)
    simulate.add_argument("--chunk-tokens", type=int, default=512,
                          help="prefill chunk per mixed iteration (colocated)")
    simulate.add_argument("--policy", default="fcfs", choices=POLICY_BUNDLES.names(),
                          help="scheduling policy bundle")
    simulate.add_argument("--rate", type=float, default=6.0, help="arrival rate (req/s)")
    simulate.add_argument("--duration", type=float, default=40.0, help="trace length (s)")
    simulate.add_argument("--output-tokens", type=int, default=150)
    simulate.add_argument("--output-spread", type=float, default=0.5)
    simulate.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    simulate.add_argument("--max-sim-time", type=float, default=600.0)
    simulate.add_argument("--context-bucket", type=int, default=1,
                          help="service-time cache granularity (1 = exact)")
    simulate.add_argument("--backend", default="event", choices=("event", "fluid"),
                          help="event = discrete-event truth; fluid = millisecond "
                               "analytic ODE estimate")
    simulate.add_argument("--metrics", default="exact", choices=("exact", "streaming"),
                          help="exact per-request metrics, or constant-memory sketches")
    simulate.add_argument("--shards", type=int, default=1,
                          help="split the run into N independent engine shards (>1 "
                               "implies streaming metrics; excludes --topology)")
    simulate.add_argument("--shard-policy", default="least-loaded",
                          choices=sorted(ROUTING_POLICIES.names()),
                          help="routing policy assigning requests to shards")
    simulate.add_argument("--workers", type=int, default=1,
                          help="process pool width for sharded runs")
    simulate.add_argument("--mtbf-hours", type=float, default=0.0,
                          help="per-GPU MTBF for stochastic failures (0 = off)")
    simulate.add_argument("--mttr-hours", type=float, default=0.25)
    simulate.add_argument("--failure-seed", type=int, default=0)
    _add_topology_args(simulate)
    simulate.set_defaults(fn=_cmd_simulate)

    topology = sub.add_parser(
        "topology", help="compare the three fabric options at a given scale"
    )
    topology.add_argument("--gpus", type=int, default=64, help="cluster GPU count")
    topology.add_argument("--group", type=int, default=4,
                          help="direct-connect Lite-group size")
    topology.add_argument("--utilization", type=float, default=0.5,
                          help="average traffic level for the power rollup")
    topology.set_defaults(fn=_cmd_topology)

    sweep = sub.add_parser(
        "sweep",
        help="sweep a simulation grid in parallel with on-disk result caching",
    )
    sweep.add_argument("--shape", choices=("phase-split", "colocated"), default="colocated")
    sweep.add_argument("--model", default="Llama3-8B")
    sweep.add_argument("--prefill-gpu", default="Lite+NetBW+FLOPS")
    sweep.add_argument("--decode-gpu", default="Lite+MemBW")
    sweep.add_argument("--gpu", default="H100", help="pool GPU (colocated)")
    sweep.add_argument("--gpus-per-instance", type=int, default=1)
    sweep.add_argument("--n-prefill", type=int, default=2,
                       help="prefill pool size (phase-split; fixed across the grid)")
    sweep.add_argument("--rates", type=_csv_floats, default=[2.0, 4.0],
                       help="comma-separated arrival rates (req/s), one grid axis")
    sweep.add_argument("--sizes", type=_csv_ints, default=[1, 2],
                       help="comma-separated pool sizes (decode/colocated instances), "
                            "the other grid axis")
    sweep.add_argument("--max-prefill-batch", type=int, default=4)
    sweep.add_argument("--max-decode-batch", type=int, default=64)
    sweep.add_argument("--chunk-tokens", type=int, default=512)
    sweep.add_argument("--policy", default="fcfs", choices=POLICY_BUNDLES.names())
    sweep.add_argument("--duration", type=float, default=20.0, help="trace length (s)")
    sweep.add_argument("--output-tokens", type=int, default=100)
    sweep.add_argument("--output-spread", type=float, default=0.5)
    sweep.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    sweep.add_argument("--max-sim-time", type=float, default=600.0)
    sweep.add_argument("--context-bucket", type=int, default=1)
    sweep.add_argument("--metrics", default="exact", choices=("exact", "streaming"),
                       help="exact per-request metrics, or constant-memory sketches")
    sweep.add_argument("--backend", default="event", choices=("event", "fluid"),
                       help="simulate every point with the event engine (default) "
                            "or the fluid analytic estimate")
    _add_topology_args(sweep)
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = in-process)")
    sweep.add_argument("--cache-dir", default=".repro_cache",
                       help="result-cache directory")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")
    sweep.set_defaults(fn=_cmd_sweep)

    screen = sub.add_parser(
        "screen",
        help="two-tier sweep: fluid-screen the grid, event-simulate survivors",
    )
    screen.add_argument("--shape", choices=("phase-split", "colocated"), default="colocated")
    screen.add_argument("--model", default="Llama3-8B")
    screen.add_argument("--prefill-gpu", default="Lite+NetBW+FLOPS")
    screen.add_argument("--decode-gpu", default="Lite+MemBW")
    screen.add_argument("--gpu", default="H100", help="pool GPU (colocated)")
    screen.add_argument("--gpus-per-instance", type=int, default=1)
    screen.add_argument("--n-prefill", type=int, default=2,
                        help="prefill pool size (phase-split; fixed across the grid)")
    screen.add_argument("--rates", type=_csv_floats, default=[2.0, 4.0, 6.0],
                        help="comma-separated arrival rates (req/s), one grid axis")
    screen.add_argument("--sizes", type=_csv_ints, default=[1, 2, 4],
                        help="comma-separated pool sizes, the other grid axis")
    screen.add_argument("--max-prefill-batch", type=int, default=4)
    screen.add_argument("--max-decode-batch", type=int, default=64)
    screen.add_argument("--chunk-tokens", type=int, default=512)
    screen.add_argument("--policy", default="fcfs", choices=POLICY_BUNDLES.names())
    screen.add_argument("--duration", type=float, default=20.0, help="trace length (s)")
    screen.add_argument("--output-tokens", type=int, default=100)
    screen.add_argument("--output-spread", type=float, default=0.5)
    screen.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    screen.add_argument("--max-sim-time", type=float, default=600.0)
    screen.add_argument("--margin", type=float, default=0.10,
                        help="relative safety margin widening the fluid Pareto front")
    screen.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = in-process)")
    screen.add_argument("--cache-dir", default=".repro_cache",
                        help="result-cache directory")
    screen.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    screen.set_defaults(fn=_cmd_screen)

    autoscale = sub.add_parser(
        "autoscale",
        help="compare cluster controllers on a bursty trace ($/Mtoken economics)",
    )
    autoscale.add_argument("--model", default="Llama3-8B")
    autoscale.add_argument("--prefill-gpu", default="H100")
    autoscale.add_argument("--decode-gpu", default="H100")
    autoscale.add_argument("--gpus-per-instance", type=int, default=1)
    autoscale.add_argument("--n-prefill", type=int, default=2,
                           help="peak-provisioned prefill pool size")
    autoscale.add_argument("--n-decode", type=int, default=6,
                           help="peak-provisioned decode pool size")
    autoscale.add_argument("--max-prefill-batch", type=int, default=4)
    autoscale.add_argument("--max-decode-batch", type=int, default=32)
    autoscale.add_argument("--policy", default="fcfs", choices=POLICY_BUNDLES.names())
    autoscale.add_argument("--controllers", type=lambda t: [p for p in t.split(",") if p],
                           default=["static", "reactive", "slo"],
                           help="comma-separated controller names to compare")
    autoscale.add_argument("--rates", type=_csv_floats, default=[1.0, 8.0, 1.0],
                           help="per-segment arrival rates (req/s) of the bursty trace")
    autoscale.add_argument("--segment", type=float, default=60.0,
                           help="segment duration (s)")
    autoscale.add_argument("--output-tokens", type=int, default=100)
    autoscale.add_argument("--output-spread", type=float, default=0.5)
    autoscale.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    autoscale.add_argument("--max-sim-time", type=float, default=1800.0)
    autoscale.add_argument("--epoch", type=float, default=5.0,
                           help="controller stepping period (s)")
    autoscale.add_argument("--warmup", type=float, default=15.0,
                           help="instance spawn warm-up delay (s)")
    autoscale.add_argument("--min-instances", type=int, default=1)
    autoscale.add_argument("--max-instances", type=int, default=8)
    autoscale.add_argument("--queue-high", type=float, default=2.0,
                           help="reactive scale-up threshold (queued per instance)")
    autoscale.add_argument("--slo-ttft", type=float, default=1.0,
                           help="P99 TTFT SLO (s) for the slo controller + verdict")
    autoscale.add_argument("--slo-tbt", type=float, default=0.05,
                           help="P99 TBT target (s) for the slo controller")
    autoscale.add_argument("--cap", default=None,
                           help="power_cap window as start:end:watts")
    autoscale.set_defaults(fn=_cmd_autoscale)

    chaos = sub.add_parser(
        "chaos",
        help="replay scripted failures and measure blast radius / recovery",
    )
    chaos.add_argument("--scenario", default="all",
                       choices=("all", "blast", "checkpoint", "storm"),
                       help="which canned chaos scenario(s) to run")
    chaos.add_argument("--metrics", default="exact",
                       choices=("exact", "streaming"),
                       help="exact per-request metrics, or constant-memory sketches")
    chaos.set_defaults(fn=_cmd_chaos)

    cache_cmd = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache_cmd.add_argument("action", choices=("stats", "clear"))
    cache_cmd.add_argument("--cache-dir", default=".repro_cache",
                           help="result-cache directory")
    cache_cmd.set_defaults(fn=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (returns an exit code)."""
    args = build_parser().parse_args(argv)
    try:
        args.fn(args)
    except LiteGPUError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
