"""Exception hierarchy for the litegpu reproduction library.

All library-raised errors derive from :class:`LiteGPUError` so callers can
catch everything from this package with one handler while still being able to
distinguish configuration problems from infeasible model placements.
"""

from __future__ import annotations


class LiteGPUError(Exception):
    """Base class for all errors raised by this library."""


class SpecError(LiteGPUError, ValueError):
    """A hardware / model / network specification is malformed.

    Raised during construction of spec dataclasses when a field is out of its
    physical range (negative bandwidth, zero dies, ...).
    """


class InfeasibleError(LiteGPUError):
    """A requested placement or configuration cannot satisfy its constraints.

    Examples: model weights do not fit the cluster's aggregate memory, no
    tensor-parallel degree divides the attention heads, or a latency SLO is
    unachievable at every swept configuration.
    """


class AllocationError(LiteGPUError):
    """The cluster allocator cannot satisfy a resource request."""


class SimulationError(LiteGPUError):
    """The discrete-event simulator reached an inconsistent state."""


class RegistryError(LiteGPUError, KeyError):
    """Lookup of a named spec (GPU type, model name, link class) failed."""
