"""Batch formation policies for the serving simulator.

The paper's case study sweeps *static* batch sizes; modern serving systems
use *continuous* batching (new requests join a running decode batch every
iteration).  Both are provided so the simulator can show the gap and so that
scheduler experiments exercise realistic queues.

A :class:`Batch` is a lightweight grouping of requests with helpers for the
quantities the performance model needs (total prompt tokens, per-iteration
active sequences, KV footprint).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import SpecError
from .traces import Request


@dataclass
class Batch:
    """A group of requests executed together in one phase."""

    requests: List[Request] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def size(self) -> int:
        """Number of sequences in the batch."""
        return len(self.requests)

    @property
    def prompt_tokens(self) -> int:
        """Total prompt tokens across the batch (prefill work)."""
        return sum(r.prompt_tokens for r in self.requests)

    @property
    def max_prompt_tokens(self) -> int:
        """Longest prompt in the batch (padding-sensitive schedulers)."""
        return max((r.prompt_tokens for r in self.requests), default=0)

    @property
    def max_output_tokens(self) -> int:
        """Longest generation in the batch (static-batch occupancy bound)."""
        return max((r.output_tokens for r in self.requests), default=0)

    def kv_tokens_at(self, decode_step: int) -> int:
        """Total cached tokens after ``decode_step`` decode iterations.

        Sequences stop contributing new tokens once they finish, but their
        cache stays resident until the batch completes (static batching).
        """
        if decode_step < 0:
            raise SpecError("decode_step must be non-negative")
        return sum(
            r.prompt_tokens + min(decode_step, r.output_tokens) for r in self.requests
        )

    def active_at(self, decode_step: int) -> int:
        """Sequences still generating at ``decode_step`` (0-indexed)."""
        return sum(1 for r in self.requests if r.output_tokens > decode_step)


class BatchPolicy(abc.ABC):
    """Interface: fold a queue of requests into executable batches."""

    @abc.abstractmethod
    def form(self, queue: Sequence[Request]) -> List[Batch]:
        """Partition ``queue`` (arrival order) into batches."""


class StaticBatcher(BatchPolicy):
    """Fixed-size batches in arrival order — the paper's sweep semantics.

    A batch runs prefill for all members, then decodes until every member
    finishes.  ``max_batch`` bounds the sequence count; ``max_tokens`` (if
    set) additionally bounds total prompt tokens per batch, which is how
    chunked-prefill systems cap TTFT.
    """

    def __init__(self, max_batch: int, max_tokens: Optional[int] = None) -> None:
        if max_batch <= 0:
            raise SpecError("max_batch must be positive")
        if max_tokens is not None and max_tokens <= 0:
            raise SpecError("max_tokens must be positive when given")
        self.max_batch = max_batch
        self.max_tokens = max_tokens

    def form(self, queue: Sequence[Request]) -> List[Batch]:
        batches: List[Batch] = []
        current = Batch()
        tokens = 0
        for request in queue:
            over_count = current.size >= self.max_batch
            over_tokens = (
                self.max_tokens is not None
                and current.size > 0
                and tokens + request.prompt_tokens > self.max_tokens
            )
            if over_count or over_tokens:
                batches.append(current)
                current = Batch()
                tokens = 0
            current.requests.append(request)
            tokens += request.prompt_tokens
        if current.size:
            batches.append(current)
        return batches


class ContinuousBatcher(BatchPolicy):
    """Continuous (iteration-level) batching admission policy.

    ``form`` groups whatever is admissible *right now* into a single batch;
    the simulator calls it once per scheduling round with the current queue
    and occupancy.  Admission is bounded by free sequence slots and a KV
    token budget.
    """

    def __init__(self, max_batch: int, kv_token_budget: int) -> None:
        if max_batch <= 0 or kv_token_budget <= 0:
            raise SpecError("max_batch and kv_token_budget must be positive")
        self.max_batch = max_batch
        self.kv_token_budget = kv_token_budget

    def admissible(
        self, queue: Sequence[Request], occupied_slots: int, occupied_tokens: int
    ) -> List[Request]:
        """Requests from ``queue`` that fit the remaining slot/KV budget."""
        admitted: List[Request] = []
        slots = self.max_batch - occupied_slots
        tokens = self.kv_token_budget - occupied_tokens
        for request in queue:
            need = request.total_tokens
            if slots <= 0 or tokens < need:
                break
            admitted.append(request)
            slots -= 1
            tokens -= need
        return admitted

    def form(self, queue: Sequence[Request]) -> List[Batch]:
        admitted = self.admissible(queue, occupied_slots=0, occupied_tokens=0)
        return [Batch(list(admitted))] if admitted else []
