"""Synthetic request traces standing in for production inference traces.

The paper takes from the Splitwise production study only two facts: the median
prompt length for the coding workload (1500 tokens, used as a constant) and
the latency SLOs (TTFT <= 1 s, TBT <= 50 ms).  For the serving simulator and
scheduler experiments we need full traces, so this module generates synthetic
ones: Poisson (or uniform) arrivals with configurable prompt / output token
length distributions.  Distributions default to the lognormal shapes commonly
reported for production LLM traffic, with medians pinned to the paper's
numbers.

Determinism: every generator takes an explicit ``numpy`` seed so experiments
are exactly reproducible.
"""

from __future__ import annotations

import enum
import hashlib
import heapq
import math
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import SpecError


class LengthDistribution(enum.Enum):
    """Token-length distribution families for prompts and outputs."""

    CONSTANT = "constant"
    UNIFORM = "uniform"
    LOGNORMAL = "lognormal"


@dataclass(frozen=True)
class Request:
    """One inference request.

    ``arrival`` is in seconds from trace start; ``prompt_tokens`` is the
    prefill length; ``output_tokens`` the number of decode iterations the
    request will run before completing (at least 1 — the simulators assume
    every request decodes at least one token).

    The resilience layer (:mod:`repro.cluster.resilience`) reads two
    optional fields: ``priority`` (0 = most important; brown-out modes
    shed from the highest numbers down) and ``deadline`` — an end-to-end
    budget in seconds from ``arrival``, after which the request is shed
    and counted as a deadline miss.  Both default to inert values and are
    excluded from :func:`trace_fingerprint`.
    """

    request_id: int
    arrival: float
    prompt_tokens: int
    output_tokens: int
    priority: int = 0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise SpecError("arrival must be non-negative")
        if self.prompt_tokens <= 0 or self.output_tokens <= 0:
            raise SpecError("prompt_tokens and output_tokens must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise SpecError("deadline must be positive (seconds from arrival)")

    @property
    def total_tokens(self) -> int:
        """Prompt plus generated tokens (final KV footprint)."""
        return self.prompt_tokens + self.output_tokens


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of a synthetic trace.

    ``rate`` is the mean arrival rate in requests/second.  Prompt lengths
    default to the paper's constant 1500 tokens; outputs default to a
    lognormal with median 250 tokens (a typical production shape), clamped
    to [1, max_output].
    """

    rate: float = 10.0
    duration: float = 60.0
    prompt_dist: LengthDistribution = LengthDistribution.CONSTANT
    prompt_tokens: int = 1500
    prompt_spread: float = 0.5  # lognormal sigma or uniform half-width ratio
    output_dist: LengthDistribution = LengthDistribution.LOGNORMAL
    output_tokens: int = 250
    output_spread: float = 0.7
    max_prompt: int = 8192
    max_output: int = 4096
    poisson_arrivals: bool = True

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.duration <= 0:
            raise SpecError("rate and duration must be positive")
        if self.prompt_tokens <= 0 or self.output_tokens <= 0:
            raise SpecError("token medians must be positive")
        if self.max_prompt < self.prompt_tokens:
            raise SpecError("max_prompt below the prompt median")
        if self.max_output < 1:
            raise SpecError("max_output must be at least 1")


def _sample_lengths(
    rng: np.random.Generator,
    dist: LengthDistribution,
    median: int,
    spread: float,
    maximum: int,
    n: int,
) -> np.ndarray:
    """Sample ``n`` token lengths from the requested family, clamped to
    [1, maximum]; the median of the family equals ``median``."""
    if dist is LengthDistribution.CONSTANT:
        lengths = np.full(n, median, dtype=np.int64)
    elif dist is LengthDistribution.UNIFORM:
        half = max(1, int(median * spread))
        lengths = rng.integers(max(1, median - half), median + half + 1, size=n)
    elif dist is LengthDistribution.LOGNORMAL:
        # For lognormal, exp(mu) is the median.
        lengths = np.ceil(rng.lognormal(math.log(median), spread, size=n)).astype(np.int64)
    else:  # pragma: no cover - exhaustive enum
        raise SpecError(f"unknown distribution {dist}")
    return np.clip(lengths, 1, maximum)


def generate_trace(config: TraceConfig, seed: int = 0) -> List[Request]:
    """Generate a request trace according to ``config``.

    Arrivals are Poisson (exponential gaps) or evenly spaced; the trace is
    truncated at ``config.duration`` seconds.

    >>> trace = generate_trace(TraceConfig(rate=5, duration=10), seed=1)
    >>> all(r.arrival <= 10 for r in trace)
    True
    """
    rng = np.random.default_rng(seed)
    expected = config.rate * config.duration
    # Draw enough inter-arrival gaps to cover the horizon with margin.
    n_draw = max(16, int(expected * 2 + 10 * math.sqrt(expected + 1)))
    if config.poisson_arrivals:
        gaps = rng.exponential(1.0 / config.rate, size=n_draw)
    else:
        gaps = np.full(n_draw, 1.0 / config.rate)
    arrivals = np.cumsum(gaps)
    arrivals = arrivals[arrivals <= config.duration]
    n = len(arrivals)
    prompts = _sample_lengths(
        rng, config.prompt_dist, config.prompt_tokens, config.prompt_spread, config.max_prompt, n
    )
    outputs = _sample_lengths(
        rng, config.output_dist, config.output_tokens, config.output_spread, config.max_output, n
    )
    return [
        Request(request_id=i, arrival=float(arrivals[i]),
                prompt_tokens=int(prompts[i]), output_tokens=int(outputs[i]))
        for i in range(n)
    ]


def iter_trace(
    config: TraceConfig, seed: int = 0, window: float = 60.0
) -> Iterator[Request]:
    """Generate a trace lazily in bounded time windows.

    The streaming counterpart of :func:`generate_trace` for traces too
    large to materialize (a 10M-request day): requests are drawn one
    ``window``-second segment at a time, so peak memory is
    O(``rate * window``) instead of O(``rate * duration``).  Arrivals are
    non-decreasing — exactly what the engines' one-ahead arrival feeding
    requires — and request ids are sequential from 0.

    Each window's RNG seed derives from ``(seed, window index)`` by
    content hash, so the stream is fully deterministic for a given
    ``(config, seed, window)`` — two iterations yield identical requests —
    but it is a *different* (equally distributed) trace than the one-shot
    :func:`generate_trace` draw or another window size.

    >>> config = TraceConfig(rate=5, duration=120)
    >>> lazy = list(iter_trace(config, seed=1, window=30.0))
    >>> lazy == list(iter_trace(config, seed=1, window=30.0))
    True
    >>> all(a.arrival <= b.arrival for a, b in zip(lazy, lazy[1:]))
    True
    >>> [r.request_id for r in lazy] == list(range(len(lazy)))
    True
    """
    from ..exec.seeding import derive_seed  # local: keep the import DAG flat

    if window <= 0:
        raise SpecError("window must be positive")
    next_id = 0
    start = 0.0
    index = 0
    while start < config.duration:
        span = min(window, config.duration - start)
        segment = generate_trace(
            replace(config, duration=span), seed=derive_seed(seed, "window", index)
        )
        for r in segment:
            yield Request(
                request_id=next_id,
                arrival=r.arrival + start,
                prompt_tokens=r.prompt_tokens,
                output_tokens=r.output_tokens,
            )
            next_id += 1
        start += span
        index += 1


def imerge_traces(*traces: Iterable[Request]) -> Iterator[Request]:
    """Merge arrival-ordered request streams lazily with fresh ids.

    The streaming counterpart of :func:`merge_traces`: memory stays
    O(number of streams) regardless of trace length.  Each input must be
    arrival-ordered (as :func:`iter_trace` and :func:`generate_trace`
    outputs are); ties on arrival break deterministically by input stream
    position.

    >>> a = generate_trace(TraceConfig(rate=2, duration=5), seed=0)
    >>> b = generate_trace(TraceConfig(rate=3, duration=5), seed=1)
    >>> lazy = list(imerge_traces(iter(a), iter(b)))
    >>> [r.arrival for r in lazy] == [r.arrival for r in merge_traces(a, b)]
    True
    >>> [r.request_id for r in lazy] == list(range(len(a) + len(b)))
    True
    """
    merged = heapq.merge(*traces, key=lambda r: r.arrival)
    for i, r in enumerate(merged):
        yield replace(r, request_id=i)


def generate_piecewise_trace(
    segments: Sequence[tuple],
    base: TraceConfig | None = None,
    seed: int = 0,
) -> List[Request]:
    """A bursty trace from back-to-back constant-rate segments.

    ``segments`` is a sequence of ``(rate, duration)`` pairs; each segment
    reuses every other knob of ``base`` (token shapes, arrival process)
    and is shifted to start where the previous one ended — the diurnal /
    burst workloads the elastic control plane is judged on.  Segment RNG
    seeds derive from ``seed`` by content hash, so two traces differing
    only in one segment's rate share nothing.

    >>> trace = generate_piecewise_trace([(2.0, 10.0), (8.0, 10.0)], seed=1)
    >>> max(r.arrival for r in trace) <= 20.0
    True
    >>> len([r for r in trace if r.arrival > 10]) > len([r for r in trace if r.arrival <= 10])
    True
    """
    from ..exec.seeding import derive_seed  # local: keep the import DAG flat

    if not segments:
        raise SpecError("segments must be non-empty")
    base = base or TraceConfig()
    pieces: List[List[Request]] = []
    start = 0.0
    for index, (rate, duration) in enumerate(segments):
        config = replace(base, rate=rate, duration=duration)
        segment = generate_trace(config, seed=derive_seed(seed, "segment", index))
        pieces.append(
            [
                Request(
                    request_id=r.request_id,
                    arrival=r.arrival + start,
                    prompt_tokens=r.prompt_tokens,
                    output_tokens=r.output_tokens,
                )
                for r in segment
            ]
        )
        start += duration
    return merge_traces(*pieces)


def merge_traces(*traces: Sequence[Request]) -> List[Request]:
    """Merge traces into one arrival-ordered trace with fresh request ids.

    Used to compose multi-tenant workloads (e.g. a chatty short-output
    tenant plus a long-prompt summarization tenant) for the serving
    simulators, which require unique ``request_id`` values.  Ordering is
    deterministic: ties on arrival break by the original id.

    >>> a = generate_trace(TraceConfig(rate=2, duration=5), seed=0)
    >>> b = generate_trace(TraceConfig(rate=3, duration=5), seed=1)
    >>> merged = merge_traces(a, b)
    >>> len(merged) == len(a) + len(b)
    True
    >>> all(x.arrival <= y.arrival for x, y in zip(merged, merged[1:]))
    True
    >>> sorted({r.request_id for r in merged}) == list(range(len(merged)))
    True
    """
    ordered = sorted(
        (r for trace in traces for r in trace), key=lambda r: (r.arrival, r.request_id)
    )
    return [replace(r, request_id=i) for i, r in enumerate(ordered)]


def trace_fingerprint(trace: Sequence[Request]) -> str:
    """Content hash of a trace, for experiment cache keys.

    Covers the workload-identity fields of every request (id, arrival,
    prompt and output tokens — not the resilience annotations); arrivals
    hash via ``float.hex`` so the fingerprint is exact (two traces collide
    only if identical).

    >>> a = generate_trace(TraceConfig(rate=5, duration=10), seed=1)
    >>> trace_fingerprint(a) == trace_fingerprint(list(a))
    True
    >>> b = generate_trace(TraceConfig(rate=5, duration=10), seed=2)
    >>> trace_fingerprint(a) != trace_fingerprint(b)
    True
    """
    digest = hashlib.sha256()
    for r in trace:
        digest.update(
            f"{r.request_id},{r.arrival.hex()},{r.prompt_tokens},{r.output_tokens};".encode()
        )
    return digest.hexdigest()


def trace_stats(trace: Sequence[Request]) -> dict:
    """Summary statistics of a trace (used by reports and tests)."""
    if not trace:
        return {"requests": 0}
    prompts = np.array([r.prompt_tokens for r in trace])
    outputs = np.array([r.output_tokens for r in trace])
    arrivals = np.array([r.arrival for r in trace])
    duration = float(arrivals.max()) if len(arrivals) else 0.0
    return {
        "requests": len(trace),
        "duration": duration,
        "rate": len(trace) / duration if duration > 0 else float("inf"),
        "prompt_mean": float(prompts.mean()),
        "prompt_p50": float(np.median(prompts)),
        "output_mean": float(outputs.mean()),
        "output_p50": float(np.median(outputs)),
        "total_prompt_tokens": int(prompts.sum()),
        "total_output_tokens": int(outputs.sum()),
    }
