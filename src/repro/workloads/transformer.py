"""Decoder-only transformer geometry: parameters, KV cache, activation sizes.

The paper's roofline study (Section 4) models LLM inference stage by stage;
that requires exact knowledge of each model's layer geometry.  This module
captures the geometry in :class:`ModelSpec` and derives from it everything the
performance model needs:

- parameter counts (attention, MLP, embeddings, total),
- weight bytes under a given numeric format,
- KV-cache bytes per token (the quantity that separates GPT-3-style MHA from
  Llama3-style GQA — the effect Figure 3b hinges on),
- per-token activation sizes used for collective volumes.

FLOP and byte counting *per stage per phase* lives in :mod:`repro.core.stages`
so that the workload description stays independent of the execution model.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..errors import SpecError


class AttentionKind(enum.Enum):
    """Attention variants distinguished by their KV-head count.

    ``MHA``: one KV head per query head (GPT-3); maximal KV cache.
    ``GQA``: KV heads shared by groups of query heads (Llama3); small KV cache.
    ``MQA``: a single KV head shared by all query heads.
    """

    MHA = "mha"
    GQA = "gqa"
    MQA = "mqa"


class MLPKind(enum.Enum):
    """MLP variants distinguished by their weight-matrix count.

    ``PLAIN``: two matrices (up, down) with a pointwise nonlinearity (GPT-3).
    ``GATED``: three matrices (gate, up, down) as in SwiGLU (Llama3).
    """

    PLAIN = "plain"
    GATED = "gated"


@dataclass(frozen=True)
class ModelSpec:
    """Immutable description of a decoder-only transformer.

    Parameters follow standard naming: ``hidden`` is the residual-stream
    width, ``ffn_hidden`` the MLP intermediate width, ``heads`` the query-head
    count and ``kv_heads`` the key/value-head count (equal to ``heads`` for
    MHA).  ``head_dim`` defaults to ``hidden // heads``.

    >>> from repro.workloads import LLAMA3_70B
    >>> round(LLAMA3_70B.param_count / 1e9)  # nominal "70B" (70.6 actual)
    71
    """

    name: str
    layers: int
    hidden: int
    heads: int
    kv_heads: int
    ffn_hidden: int
    vocab: int
    mlp_kind: MLPKind = MLPKind.GATED
    head_dim: int = 0  # 0 -> derived as hidden // heads
    tie_embeddings: bool = False
    max_seq_len: int = 131072

    def __post_init__(self) -> None:
        if self.layers <= 0 or self.hidden <= 0 or self.heads <= 0:
            raise SpecError(f"{self.name}: layers/hidden/heads must be positive")
        if self.kv_heads <= 0 or self.kv_heads > self.heads:
            raise SpecError(f"{self.name}: kv_heads must be in [1, heads]")
        if self.heads % self.kv_heads != 0:
            raise SpecError(f"{self.name}: heads must be a multiple of kv_heads")
        if self.ffn_hidden <= 0 or self.vocab <= 0:
            raise SpecError(f"{self.name}: ffn_hidden/vocab must be positive")
        if self.head_dim == 0:
            if self.hidden % self.heads != 0:
                raise SpecError(
                    f"{self.name}: hidden ({self.hidden}) not divisible by heads "
                    f"({self.heads}); pass head_dim explicitly"
                )
            object.__setattr__(self, "head_dim", self.hidden // self.heads)
        if self.head_dim <= 0:
            raise SpecError(f"{self.name}: head_dim must be positive")

    # --- derived geometry ---------------------------------------------------

    @property
    def attention_kind(self) -> AttentionKind:
        """Classify the attention variant from the KV-head count."""
        if self.kv_heads == self.heads:
            return AttentionKind.MHA
        if self.kv_heads == 1:
            return AttentionKind.MQA
        return AttentionKind.GQA

    @property
    def q_dim(self) -> int:
        """Total query projection width (heads * head_dim)."""
        return self.heads * self.head_dim

    @property
    def kv_dim(self) -> int:
        """Total key (or value) projection width (kv_heads * head_dim)."""
        return self.kv_heads * self.head_dim

    @property
    def gqa_group(self) -> int:
        """Query heads per KV head (1 for MHA)."""
        return self.heads // self.kv_heads

    # --- parameter counting ---------------------------------------------------

    @property
    def attn_params_per_layer(self) -> int:
        """Parameters of one attention block: Q, K, V and output projections."""
        q = self.hidden * self.q_dim
        kv = 2 * self.hidden * self.kv_dim
        out = self.q_dim * self.hidden
        return q + kv + out

    @property
    def mlp_params_per_layer(self) -> int:
        """Parameters of one MLP block (two or three matrices)."""
        matrices = 3 if self.mlp_kind is MLPKind.GATED else 2
        return matrices * self.hidden * self.ffn_hidden

    @property
    def params_per_layer(self) -> int:
        """Parameters of one transformer layer (attention + MLP)."""
        return self.attn_params_per_layer + self.mlp_params_per_layer

    @property
    def embedding_params(self) -> int:
        """Token embedding (+ untied LM head) parameters."""
        table = self.vocab * self.hidden
        return table if self.tie_embeddings else 2 * table

    @property
    def param_count(self) -> int:
        """Total parameter count (ignoring norms/biases, <0.1% of the total)."""
        return self.layers * self.params_per_layer + self.embedding_params

    def weight_bytes(self, bytes_per_param: float = 1.0) -> float:
        """Total weight footprint under ``bytes_per_param`` (default FP8)."""
        if bytes_per_param <= 0:
            raise SpecError("bytes_per_param must be positive")
        return self.param_count * bytes_per_param

    # --- KV cache ---------------------------------------------------------------

    def kv_bytes_per_token_layer(self, bytes_per_elem: float = 1.0) -> float:
        """KV-cache bytes one token adds to one layer (K and V)."""
        return 2.0 * self.kv_dim * bytes_per_elem

    def kv_bytes_per_token(self, bytes_per_elem: float = 1.0) -> float:
        """KV-cache bytes one token adds across all layers.

        This is the number that makes GPT-3 175B (MHA, 96 KV heads) roughly
        12x more KV-hungry per token than Llama3-70B (GQA, 8 KV heads) and
        drives the decode-phase differences in Figure 3b.
        """
        return self.layers * self.kv_bytes_per_token_layer(bytes_per_elem)

    def kv_bytes(self, tokens: int, bytes_per_elem: float = 1.0) -> float:
        """KV-cache bytes for ``tokens`` total cached tokens."""
        if tokens < 0:
            raise SpecError("tokens must be non-negative")
        return tokens * self.kv_bytes_per_token(bytes_per_elem)

    # --- activations ---------------------------------------------------------

    def activation_bytes_per_token(self, bytes_per_elem: float = 2.0) -> float:
        """Residual-stream bytes per token (the tensor-parallel all-reduce
        payload per token, per collective)."""
        return self.hidden * bytes_per_elem

    # --- misc -----------------------------------------------------------------

    def flops_per_token_dense(self) -> float:
        """Classic 2*N FLOPs/token estimate for sanity checks (weights only)."""
        return 2.0 * (self.layers * self.params_per_layer)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.layers}L x {self.hidden}h, "
            f"{self.heads}q/{self.kv_heads}kv heads ({self.attention_kind.value}), "
            f"ffn {self.ffn_hidden} ({self.mlp_kind.value}), vocab {self.vocab}, "
            f"{self.param_count / 1e9:.1f}B params"
        )

    def scaled(self, layer_factor: float, name: str | None = None) -> "ModelSpec":
        """A copy with the layer count scaled (used by sweep utilities)."""
        layers = max(1, math.ceil(self.layers * layer_factor))
        return ModelSpec(
            name=name or f"{self.name}-x{layer_factor:g}",
            layers=layers,
            hidden=self.hidden,
            heads=self.heads,
            kv_heads=self.kv_heads,
            ffn_hidden=self.ffn_hidden,
            vocab=self.vocab,
            mlp_kind=self.mlp_kind,
            head_dim=self.head_dim,
            tie_embeddings=self.tie_embeddings,
            max_seq_len=self.max_seq_len,
        )
