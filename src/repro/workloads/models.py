"""Catalogue of concrete LLMs evaluated by the paper (plus extras).

Section 4 evaluates three models "with different sizes and structures":
Llama3-70B, GPT-3 175B and Llama3-405B.  Their geometries below follow the
published architecture descriptions (Llama 3 herd of models report; GPT-3
paper Table 2.1).  The structural contrast that matters to the study:

- Llama3 models use grouped-query attention with 8 KV heads -> tiny KV cache;
- GPT-3 175B uses multi-head attention (96 KV heads) -> enormous KV cache,
  which the paper calls out as the reason its decode phase degrades most on
  plain Lite-GPUs (Figure 3b caption).

Two extra models are provided for examples and extension studies: Llama3-8B
(a single-GPU-class model, used to illustrate "small models distributed over
multiple Lite-GPUs") and a Mixtral-8x7B-style MoE (future-work material).
"""

from __future__ import annotations

from .._registry import Registry
from .transformer import MLPKind, ModelSpec

MODELS: Registry[ModelSpec] = Registry("model")


def _register(spec: ModelSpec) -> ModelSpec:
    return MODELS.register(spec.name, spec)


#: Llama3-70B — GQA (64 query / 8 KV heads), SwiGLU MLP, 128k vocabulary.
LLAMA3_70B = _register(
    ModelSpec(
        name="Llama3-70B",
        layers=80,
        hidden=8192,
        heads=64,
        kv_heads=8,
        ffn_hidden=28672,
        vocab=128256,
        mlp_kind=MLPKind.GATED,
    )
)

#: GPT-3 175B — classic MHA (96 query = 96 KV heads), plain 4h MLP.
GPT3_175B = _register(
    ModelSpec(
        name="GPT3-175B",
        layers=96,
        hidden=12288,
        heads=96,
        kv_heads=96,
        ffn_hidden=49152,
        vocab=50257,
        mlp_kind=MLPKind.PLAIN,
        tie_embeddings=True,
    )
)

#: Llama3-405B — GQA (128 query / 8 KV heads), SwiGLU MLP.
LLAMA3_405B = _register(
    ModelSpec(
        name="Llama3-405B",
        layers=126,
        hidden=16384,
        heads=128,
        kv_heads=8,
        ffn_hidden=53248,
        vocab=128256,
        mlp_kind=MLPKind.GATED,
    )
)

#: Llama3-8B — fits on a fraction of one H100; used by the resource-granularity
#: examples (a "small model previously served by a single GPU").
LLAMA3_8B = _register(
    ModelSpec(
        name="Llama3-8B",
        layers=32,
        hidden=4096,
        heads=32,
        kv_heads=8,
        ffn_hidden=14336,
        vocab=128256,
        mlp_kind=MLPKind.GATED,
    )
)

#: The three models of the paper's Figure 3, in presentation order.
PAPER_MODELS = (LLAMA3_70B, GPT3_175B, LLAMA3_405B)


def get_model(name: str) -> ModelSpec:
    """Look up a model by name (case / punctuation insensitive).

    >>> get_model("llama3-70b").layers
    80
    """
    return MODELS.get(name)
