"""Workload substrate: transformer model geometry and request generation.

This package describes *what* runs on the cluster:

- :mod:`repro.workloads.transformer` — the :class:`ModelSpec` dataclass with
  exact parameter counting and KV-cache geometry for decoder-only
  transformers (MHA / GQA / MQA, gated or plain MLPs).
- :mod:`repro.workloads.models` — the catalogue of concrete models the paper
  evaluates (Llama3-70B, GPT-3 175B, Llama3-405B) plus extras used by the
  examples and extension studies.
- :mod:`repro.workloads.traces` — synthetic request traces (Poisson arrivals,
  prompt/output length distributions) standing in for production traces.
- :mod:`repro.workloads.batching` — batch formation policies used by the
  serving simulator.
"""

from .transformer import AttentionKind, MLPKind, ModelSpec
from .models import (
    GPT3_175B,
    LLAMA3_8B,
    LLAMA3_70B,
    LLAMA3_405B,
    MODELS,
    PAPER_MODELS,
    get_model,
)
from .traces import (
    LengthDistribution,
    Request,
    TraceConfig,
    generate_trace,
    merge_traces,
    trace_fingerprint,
)
from .batching import Batch, BatchPolicy, ContinuousBatcher, StaticBatcher

__all__ = [
    "AttentionKind",
    "MLPKind",
    "ModelSpec",
    "GPT3_175B",
    "LLAMA3_8B",
    "LLAMA3_70B",
    "LLAMA3_405B",
    "MODELS",
    "PAPER_MODELS",
    "get_model",
    "LengthDistribution",
    "Request",
    "TraceConfig",
    "generate_trace",
    "merge_traces",
    "trace_fingerprint",
    "Batch",
    "BatchPolicy",
    "ContinuousBatcher",
    "StaticBatcher",
]
