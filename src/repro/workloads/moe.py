"""Mixture-of-Experts models: sparse MLPs with expert parallelism.

The paper's related work highlights DeepSeek-style efficient serving on
weaker hardware; MoE models are the canonical case.  They stress exactly
the dimensions Lite-GPUs change: enormous *parameter* footprints (every
expert is resident) with modest *active* compute per token, and all-to-all
dispatch traffic instead of a second tensor-parallel all-reduce.

:class:`MoEModelSpec` extends :class:`~repro.workloads.transformer.ModelSpec`
with an expert count and a top-k routing width; the stage accounting in
:mod:`repro.core.stages` detects it and switches the MLP stage to
expert-parallel costing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpecError
from .models import MODELS
from .transformer import MLPKind, ModelSpec


@dataclass(frozen=True)
class MoEModelSpec(ModelSpec):
    """A decoder-only transformer with MoE MLP blocks.

    ``n_experts`` experts per layer, ``experts_per_token`` activated per
    token (top-k routing).  ``ffn_hidden`` is each *expert's* intermediate
    width.
    """

    n_experts: int = 8
    experts_per_token: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_experts <= 0:
            raise SpecError(f"{self.name}: n_experts must be positive")
        if not 0 < self.experts_per_token <= self.n_experts:
            raise SpecError(f"{self.name}: experts_per_token must be in [1, n_experts]")

    # --- parameter counting (overrides) ---------------------------------------

    @property
    def expert_params(self) -> int:
        """Parameters of ONE expert MLP."""
        matrices = 3 if self.mlp_kind is MLPKind.GATED else 2
        return matrices * self.hidden * self.ffn_hidden

    @property
    def mlp_params_per_layer(self) -> int:
        """All experts plus the router."""
        router = self.hidden * self.n_experts
        return self.n_experts * self.expert_params + router

    @property
    def active_mlp_params_per_layer(self) -> int:
        """Expert parameters touched per token (top-k)."""
        return self.experts_per_token * self.expert_params

    @property
    def active_param_count(self) -> int:
        """Parameters activated per token — what sets per-token FLOPs."""
        per_layer = self.attn_params_per_layer + self.active_mlp_params_per_layer
        return self.layers * per_layer + self.embedding_params

    @property
    def sparsity(self) -> float:
        """Total/active parameter ratio (the MoE 'discount')."""
        return self.param_count / self.active_param_count

    def experts_touched(self, tokens: float) -> float:
        """Expected distinct experts activated by ``tokens`` routed tokens
        (uniform routing; coupon-collector expectation)."""
        if tokens < 0:
            raise SpecError("tokens must be non-negative")
        draws = tokens * self.experts_per_token
        if draws == 0:
            return 0.0
        miss = (1.0 - 1.0 / self.n_experts) ** draws
        return self.n_experts * (1.0 - miss)


#: Mixtral-8x7B-class reference point: ~47B total, ~13B active per token.
MIXTRAL_8X7B = MODELS.register(
    "Mixtral-8x7B",
    MoEModelSpec(
        name="Mixtral-8x7B",
        layers=32,
        hidden=4096,
        heads=32,
        kv_heads=8,
        ffn_hidden=14336,
        vocab=32000,
        mlp_kind=MLPKind.GATED,
        n_experts=8,
        experts_per_token=2,
    ),
)
