"""A tiny named-spec registry used by the GPU / model / link catalogues.

Several subsystems keep a catalogue of named immutable specs (GPU types from
Table 1, the evaluated LLMs, link technologies).  ``Registry`` provides the
shared behaviour: case-insensitive lookup, helpful error messages listing the
known names, and iteration in registration order.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, TypeVar

from .errors import RegistryError

T = TypeVar("T")


class Registry(Generic[T]):
    """An ordered, case-insensitive mapping from names to spec objects."""

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._items: Dict[str, T] = {}
        self._display: Dict[str, str] = {}

    @staticmethod
    def _key(name: str) -> str:
        return name.strip().lower().replace("-", "").replace("_", "").replace(" ", "")

    def register(self, name: str, item: T, overwrite: bool = False) -> T:
        """Register ``item`` under ``name``; returns the item for chaining."""
        key = self._key(name)
        if key in self._items and not overwrite:
            raise RegistryError(f"{self._kind} '{name}' already registered")
        self._items[key] = item
        self._display[key] = name
        return item

    def get(self, name: str) -> T:
        """Look up a spec by name (case / dash / underscore insensitive)."""
        key = self._key(name)
        if key not in self._items:
            known = ", ".join(sorted(self._display.values()))
            raise RegistryError(f"unknown {self._kind} '{name}'; known: {known}")
        return self._items[key]

    def __contains__(self, name: str) -> bool:
        return self._key(name) in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def names(self) -> List[str]:
        """Display names in registration order."""
        return list(self._display.values())
