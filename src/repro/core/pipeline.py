"""Pipeline parallelism and hybrid TP x PP execution.

The paper's workload-management section notes that large models "are already
distributed over many GPUs" and that Lite-GPUs multiply the device count;
tensor parallelism alone then drives collectives to high degrees.  Pipeline
parallelism is the standard escape: split the *layers* across ``stages``
groups, keep tensor parallelism *within* a group, and stream microbatches.

Cost model (GPipe-style synchronous pipeline):

- **prefill**: a batch is split into ``microbatches``; the pass takes
  ``(microbatches + stages - 1) * T_stage`` where ``T_stage`` is one
  microbatch's time through one stage (layers/stages of the usual per-layer
  stage times) — the classic ``(stages - 1) / (microbatches + stages - 1)``
  bubble fraction.
- **decode**: each new token crosses every stage in sequence, so TBT is the
  *sum* of stage times plus ``stages - 1`` activation hand-offs.  Pipelining
  across decode iterations is reflected in throughput, not TBT: with enough
  concurrent load every stage can be kept busy, so the iteration *rate* is
  set by the slowest stage.  We report both (latency-bound and
  throughput-bound views).

Hybrid search: :func:`search_hybrid_config` extends the paper's sweep with a
stage dimension, which is how a 32-GPU Lite cluster can run Llama3-405B as
8-way TP x 4-way PP instead of 32-way TP — cutting the all-reduce degree by
4x at the price of a pipeline bubble.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..errors import InfeasibleError, SpecError
from ..hardware.gpu import GPUSpec
from ..workloads.transformer import ModelSpec
from .inference import DecodeWorkload, Phase, PrefillWorkload
from .parallelism import TensorParallel, valid_tp_degrees
from .roofline import RooflinePolicy
from .search import SearchConstraints
from .stages import decode_stage_costs, prefill_stage_costs
from .inference import _pass_time  # shared stage-timing engine


@dataclass(frozen=True)
class HybridParallel:
    """A TP x PP layout: ``tensor`` ranks per stage, ``stages`` stages."""

    model: ModelSpec
    tensor: int
    stages: int

    def __post_init__(self) -> None:
        if self.tensor <= 0 or self.stages <= 0:
            raise SpecError("tensor and stages must be positive")
        if self.stages > self.model.layers:
            raise InfeasibleError(
                f"{self.stages} stages exceed {self.model.layers} layers"
            )

    @property
    def n_gpus(self) -> int:
        """Total GPUs in the layout."""
        return self.tensor * self.stages

    @property
    def layers_per_stage(self) -> float:
        """Layers hosted by each pipeline stage (fractional allowed: the
        model rounds internally via per-layer costs)."""
        return self.model.layers / self.stages


@dataclass(frozen=True)
class PipelineResult:
    """Evaluation of one hybrid configuration point."""

    phase: Phase
    model: str
    gpu: str
    tensor: int
    stages: int
    microbatches: int
    batch: int
    latency: float  # TTFT or latency-bound TBT
    throughput_latency: float  # 1/rate view for decode (slowest stage)
    tokens_per_s: float
    fits_memory: bool
    bubble_fraction: float
    sms: int

    @property
    def n_gpus(self) -> int:
        """Total GPUs."""
        return self.tensor * self.stages

    @property
    def tokens_per_s_per_sm(self) -> float:
        """The paper's efficiency metric."""
        return self.tokens_per_s / self.sms


def _stage_pass_time(
    model: ModelSpec,
    gpu: GPUSpec,
    tensor: int,
    stages: int,
    batch: int,
    seq: int,
    phase: Phase,
    policy: RooflinePolicy,
):
    """(time of one microbatch through ONE pipeline stage, lm-head time).

    Layer stages scale by layers/stages; the LM head runs on the last stage
    only.
    """
    tp = TensorParallel(model, tensor, policy.kv_placement)
    if phase is Phase.PREFILL:
        costs = prefill_stage_costs(tp, batch, seq, policy)
    else:
        costs = decode_stage_costs(tp, batch, seq, policy)
    total, stage_times = _pass_time(costs, gpu, tensor, policy)
    tail = sum(st.total for st in stage_times[len(costs.layer_stages):])
    per_layer = (total - tail) / costs.layers
    return per_layer * (model.layers / stages), tail, tp


def _interstage_time(batch: int, hidden: int, gpu: GPUSpec, policy: RooflinePolicy, tokens: float) -> float:
    """Point-to-point activation hand-off between adjacent stages."""
    nbytes = tokens * hidden * policy.act_bytes
    return policy.alpha + nbytes / (gpu.net_bandwidth * policy.net_efficiency)


def pipeline_prefill(
    model: ModelSpec,
    gpu: GPUSpec,
    tensor: int,
    stages: int,
    workload: PrefillWorkload,
    policy: RooflinePolicy | None = None,
    microbatches: int | None = None,
) -> PipelineResult:
    """Evaluate a prefill pass under TP x PP.

    ``microbatches`` defaults to ``max(batch, stages)`` capped at 4 * stages
    (deep pipelining with per-request microbatches).
    """
    policy = policy or RooflinePolicy()
    if microbatches is None:
        microbatches = 1 if stages == 1 else max(stages, min(workload.batch, 4 * stages))
    if microbatches <= 0:
        raise SpecError("microbatches must be positive")
    micro_batch = max(1, workload.batch // microbatches)
    stage_time, tail, tp = _stage_pass_time(
        model, gpu, tensor, stages, micro_batch, workload.prompt_len, Phase.PREFILL, policy
    )
    # One pipeline has no hand-offs; deeper ones pay a point-to-point
    # activation transfer per stage boundary.
    hop = 0.0 if stages == 1 else _interstage_time(
        micro_batch, model.hidden, gpu, policy, micro_batch * workload.prompt_len
    )
    slot = stage_time + hop
    latency = (microbatches + stages - 1) * slot + tail
    bubble = (stages - 1) / (microbatches + stages - 1)
    weights = tp.weight_bytes_per_gpu(policy.weight_bytes) / stages
    kv = tp.kv_bytes_per_gpu(workload.tokens, policy.kv_bytes) / stages
    fits = weights + kv <= gpu.mem_capacity * (1.0 - policy.memory_reserve_fraction)
    total_tokens = micro_batch * microbatches * workload.prompt_len
    return PipelineResult(
        phase=Phase.PREFILL,
        model=model.name,
        gpu=gpu.name,
        tensor=tensor,
        stages=stages,
        microbatches=microbatches,
        batch=micro_batch * microbatches,
        latency=latency,
        throughput_latency=slot * microbatches + tail,
        tokens_per_s=total_tokens / latency,
        fits_memory=fits,
        bubble_fraction=bubble,
        sms=tensor * stages * gpu.sms,
    )


def pipeline_decode(
    model: ModelSpec,
    gpu: GPUSpec,
    tensor: int,
    stages: int,
    workload: DecodeWorkload,
    policy: RooflinePolicy | None = None,
) -> PipelineResult:
    """Evaluate one decode iteration under TP x PP.

    Latency view (TBT): token crosses all stages -> sum of stage times plus
    hand-offs.  Throughput view: with saturating load, iterations pipeline
    and the rate is one batch per stage time.
    """
    policy = policy or RooflinePolicy()
    stage_time, tail, tp = _stage_pass_time(
        model, gpu, tensor, stages, workload.batch, workload.context_len, Phase.DECODE, policy
    )
    hop = 0.0 if stages == 1 else _interstage_time(
        workload.batch, model.hidden, gpu, policy, workload.batch
    )
    tbt = stages * stage_time + (stages - 1) * hop + tail
    rate_latency = stage_time + hop + (tail if stages == 1 else max(0.0, tail - stage_time))
    weights = tp.weight_bytes_per_gpu(policy.weight_bytes) / stages
    kv = tp.kv_bytes_per_gpu(workload.cached_tokens, policy.kv_bytes) / stages
    fits = weights + kv <= gpu.mem_capacity * (1.0 - policy.memory_reserve_fraction)
    return PipelineResult(
        phase=Phase.DECODE,
        model=model.name,
        gpu=gpu.name,
        tensor=tensor,
        stages=stages,
        microbatches=1,
        batch=workload.batch,
        latency=tbt,
        throughput_latency=max(rate_latency, 1e-12),
        tokens_per_s=workload.batch / tbt,
        fits_memory=fits,
        bubble_fraction=0.0,
        sms=tensor * stages * gpu.sms,
    )


def valid_stage_counts(model: ModelSpec, max_stages: int) -> List[int]:
    """Stage counts that divide the layer count reasonably (<= max)."""
    if max_stages <= 0:
        raise SpecError("max_stages must be positive")
    return [s for s in range(1, max_stages + 1) if model.layers % s == 0]


def search_hybrid_config(
    model: ModelSpec,
    gpu: GPUSpec,
    phase: Phase | str,
    constraints: SearchConstraints | None = None,
    policy: RooflinePolicy | None = None,
    max_gpus: int | None = None,
) -> Optional[PipelineResult]:
    """Best TP x PP configuration by tokens/s/SM under the paper's SLOs.

    Extends the Section 4 sweep with the pipeline dimension; TP-only is the
    ``stages == 1`` slice, so the result is never worse than the paper's.
    """
    if isinstance(phase, str):
        phase = Phase(phase)
    constraints = constraints or SearchConstraints()
    policy = policy or RooflinePolicy()
    limit = max_gpus or gpu.max_cluster
    slo = constraints.ttft_slo if phase is Phase.PREFILL else constraints.tbt_slo
    best: Optional[PipelineResult] = None
    for stages in valid_stage_counts(model, min(8, limit)):
        for tensor in valid_tp_degrees(model, limit // stages, gpu.scaleup_domain):
            result = _best_batch_for(
                model, gpu, tensor, stages, phase, constraints, policy, slo
            )
            if result and (best is None or result.tokens_per_s_per_sm > best.tokens_per_s_per_sm):
                best = result
    return best


def _evaluate_hybrid(
    model, gpu, tensor, stages, phase, batch, constraints, policy
) -> PipelineResult:
    if phase is Phase.PREFILL:
        return pipeline_prefill(
            model, gpu, tensor, stages, PrefillWorkload(batch, constraints.prompt_len), policy
        )
    return pipeline_decode(
        model, gpu, tensor, stages, DecodeWorkload(batch, constraints.context_len), policy
    )


def _best_batch_for(
    model, gpu, tensor, stages, phase, constraints, policy, slo
) -> Optional[PipelineResult]:
    """Binary-search the largest feasible batch, as in core.search."""

    def feasible(batch: int) -> Optional[PipelineResult]:
        try:
            result = _evaluate_hybrid(
                model, gpu, tensor, stages, phase, batch, constraints, policy
            )
        except (InfeasibleError, SpecError):
            return None
        if result.fits_memory and result.latency <= slo:
            return result
        return None

    lo, hi = 1, constraints.max_batch
    best = feasible(1)
    if best is None:
        return None
    top = feasible(hi)
    if top is not None:
        return top
    while hi - lo > 1:
        mid = (lo + hi) // 2
        candidate = feasible(mid)
        if candidate is not None:
            lo, best = mid, candidate
        else:
            hi = mid
    return best
