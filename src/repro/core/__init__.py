"""Core contribution: the Lite-GPU cluster performance model and search.

This package implements Section 4's methodology — *"We use roofline modeling
to capture important hardware and software characteristics and to model a
Lite-GPU cluster running LLM inference ... The modeling measures compute
stages individually, including projection, MLP, and fused FlashAttention.
Compute, memory I/O, and network I/O can overlap within each stage and tensor
parallelism is used to distribute execution within each cluster."*

Modules:

- :mod:`repro.core.parallelism` — tensor-parallel sharding math and validity.
- :mod:`repro.core.stages` — per-stage FLOP / byte / collective accounting.
- :mod:`repro.core.roofline` — the roofline policy and stage-time engine.
- :mod:`repro.core.inference` — prefill / decode phase models (TTFT, TBT).
- :mod:`repro.core.search` — the paper's batch x cluster-size search.
- :mod:`repro.core.metrics` — tokens/s/SM, normalization, Pareto tools.
"""

from .parallelism import KVPlacement, TensorParallel, valid_tp_degrees
from .pipeline import (
    HybridParallel,
    PipelineResult,
    pipeline_decode,
    pipeline_prefill,
    search_hybrid_config,
)
from .roofline import CommModel, RooflinePolicy, StageTime
from .stages import StageCost, decode_stage_costs, prefill_stage_costs
from .training import TrainingConfig, TrainingResult, equivalent_lite_training, train_step
from .inference import (
    DecodeWorkload,
    PhaseResult,
    PrefillWorkload,
    decode_iteration,
    prefill_pass,
)
from .search import SearchConstraints, SearchResult, SweepPoint, search_best_config
from .metrics import normalize_to_baseline, pareto_front, tokens_per_s_per_sm

__all__ = [
    "KVPlacement",
    "TensorParallel",
    "valid_tp_degrees",
    "HybridParallel",
    "PipelineResult",
    "pipeline_decode",
    "pipeline_prefill",
    "search_hybrid_config",
    "TrainingConfig",
    "TrainingResult",
    "equivalent_lite_training",
    "train_step",
    "CommModel",
    "RooflinePolicy",
    "StageTime",
    "StageCost",
    "decode_stage_costs",
    "prefill_stage_costs",
    "DecodeWorkload",
    "PhaseResult",
    "PrefillWorkload",
    "decode_iteration",
    "prefill_pass",
    "SearchConstraints",
    "SearchResult",
    "SweepPoint",
    "search_best_config",
    "normalize_to_baseline",
    "pareto_front",
    "tokens_per_s_per_sm",
]
