"""Efficiency metrics: tokens/s/SM, normalization, Pareto frontiers.

The paper normalizes each configuration's throughput by its SM count
("throughput per SM ... represents the performance efficiency of that
configuration") and then, in Figure 3, scales every model's series so the
H100 baseline reads 1.0.  These helpers implement that pipeline plus the
Pareto utilities used by the capacity-planning example.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..errors import SpecError
from .inference import PhaseResult


def tokens_per_s_per_sm(result: PhaseResult) -> float:
    """Throughput normalized by the configuration's total SM count."""
    return result.tokens_per_s_per_sm


def normalize_to_baseline(series: Mapping[str, float], baseline: str) -> Dict[str, float]:
    """Scale a {name: value} series so ``series[baseline] == 1.0``.

    >>> normalize_to_baseline({"H100": 4.0, "Lite": 3.0}, "H100")
    {'H100': 1.0, 'Lite': 0.75}
    """
    if baseline not in series:
        raise SpecError(f"baseline '{baseline}' not in series {sorted(series)}")
    base = series[baseline]
    if base <= 0:
        raise SpecError(f"baseline value must be positive, got {base}")
    return {name: value / base for name, value in series.items()}


def pareto_front(
    points: Sequence[Tuple[float, float]],
    maximize_x: bool = False,
    maximize_y: bool = True,
) -> List[Tuple[float, float]]:
    """Pareto-efficient subset of 2-D points.

    Default orientation: minimize x (e.g. cost, latency), maximize y
    (e.g. throughput).  Returned sorted by x.

    >>> pareto_front([(1, 1), (2, 3), (3, 2)])
    [(1, 1), (2, 3)]
    """
    if not points:
        return []
    sign_x = -1.0 if maximize_x else 1.0
    sign_y = -1.0 if maximize_y else 1.0
    ordered = sorted(points, key=lambda p: (sign_x * p[0], sign_y * p[1]))
    front: List[Tuple[float, float]] = []
    best_y = None
    for x, y in ordered:
        key = sign_y * y
        if best_y is None or key < best_y:
            front.append((x, y))
            best_y = key
    return front


def efficiency_summary(results: Iterable[PhaseResult]) -> Dict[str, float]:
    """Aggregate efficiency stats over a set of results."""
    values = [r.tokens_per_s_per_sm for r in results]
    if not values:
        return {"count": 0}
    values.sort()
    n = len(values)
    return {
        "count": n,
        "min": values[0],
        "max": values[-1],
        "median": values[n // 2],
        "mean": sum(values) / n,
    }


def speedup(new: float, old: float) -> float:
    """Simple ratio with validation (``new/old``)."""
    if old <= 0:
        raise SpecError("old value must be positive")
    return new / old
