"""Efficiency metrics: tokens/s/SM, normalization, Pareto frontiers.

The paper normalizes each configuration's throughput by its SM count
("throughput per SM ... represents the performance efficiency of that
configuration") and then, in Figure 3, scales every model's series so the
H100 baseline reads 1.0.  These helpers implement that pipeline plus the
Pareto utilities used by the capacity-planning example.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SpecError
from .inference import PhaseResult


def tokens_per_s_per_sm(result: PhaseResult) -> float:
    """Throughput normalized by the configuration's total SM count."""
    return result.tokens_per_s_per_sm


def normalize_to_baseline(series: Mapping[str, float], baseline: str) -> Dict[str, float]:
    """Scale a {name: value} series so ``series[baseline] == 1.0``.

    >>> normalize_to_baseline({"H100": 4.0, "Lite": 3.0}, "H100")
    {'H100': 1.0, 'Lite': 0.75}
    """
    if baseline not in series:
        raise SpecError(f"baseline '{baseline}' not in series {sorted(series)}")
    base = series[baseline]
    if base <= 0:
        raise SpecError(f"baseline value must be positive, got {base}")
    return {name: value / base for name, value in series.items()}


def pareto_front(
    points: "Sequence[Tuple[float, float]] | Iterable[Dict]",
    cost: Optional[Callable[[Dict], float]] = None,
    quality: Optional[Callable[[Dict], float]] = None,
    *,
    maximize_x: bool = False,
    maximize_y: bool = True,
) -> "List[Tuple[float, float]] | List[Dict]":
    """Pareto-efficient subset of 2-D points — the one frontier helper.

    Two calling modes share this single implementation (it used to be
    duplicated between :mod:`repro.core.metrics` and
    :mod:`repro.analysis.sweeps`; the sweeps module now re-exports this
    object, so ``sweeps.pareto_front is metrics.pareto_front``):

    **Tuple mode** (``cost``/``quality`` omitted): ``points`` are ``(x, y)``
    pairs.  Default orientation: minimize x (e.g. cost, latency), maximize
    y (e.g. throughput); flip with ``maximize_x``/``maximize_y``.  Returned
    sorted by x, duplicate-y points collapsed.

    >>> pareto_front([(1, 1), (2, 3), (3, 2)])
    [(1, 1), (2, 3)]

    **Record mode** (both ``cost`` and ``quality`` given): ``points`` are
    sweep records (dicts); a record survives unless some other record is at
    least as good on both axes and strictly better on one.  Records with an
    ``"error"`` field are skipped; the front returns sorted by ascending
    cost (ties keep input order, duplicates all survive).

    >>> recs = [{"c": 1, "q": 1}, {"c": 2, "q": 3}, {"c": 3, "q": 2}]
    >>> [r["c"] for r in pareto_front(recs, lambda r: r["c"], lambda r: r["q"])]
    [1, 2]
    """
    if (cost is None) != (quality is None):
        raise SpecError("pareto_front needs both cost and quality accessors, or neither")
    if cost is not None and quality is not None:
        candidates = [r for r in points if "error" not in r]
        front_records: List[Dict] = []
        for record in candidates:
            c, q = cost(record), quality(record)
            dominated = any(
                (cost(other) <= c and quality(other) >= q)
                and (cost(other) < c or quality(other) > q)
                for other in candidates
                if other is not record
            )
            if not dominated:
                front_records.append(record)
        return sorted(front_records, key=cost)
    points = list(points)
    if not points:
        return []
    sign_x = -1.0 if maximize_x else 1.0
    sign_y = -1.0 if maximize_y else 1.0
    ordered = sorted(points, key=lambda p: (sign_x * p[0], sign_y * p[1]))
    front: List[Tuple[float, float]] = []
    best_y = None
    for x, y in ordered:
        key = sign_y * y
        if best_y is None or key < best_y:
            front.append((x, y))
            best_y = key
    return front


def efficiency_summary(results: Iterable[PhaseResult]) -> Dict[str, float]:
    """Aggregate efficiency stats over a set of results."""
    values = [r.tokens_per_s_per_sm for r in results]
    if not values:
        return {"count": 0}
    values.sort()
    n = len(values)
    return {
        "count": n,
        "min": values[0],
        "max": values[-1],
        "median": values[n // 2],
        "mean": sum(values) / n,
    }


def speedup(new: float, old: float) -> float:
    """Simple ratio with validation (``new/old``)."""
    if old <= 0:
        raise SpecError("old value must be positive")
    return new / old
