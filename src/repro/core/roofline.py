"""Roofline engine: turn per-stage resource costs into stage times.

Section 4: *"Compute, memory I/O, and network I/O can overlap within each
stage"* — so a stage's time is the **max** of its compute, memory, and
network components (an additive mode is provided for sensitivity studies).

The network component prices the tensor-parallel collectives.  Three
charging models are implemented because the choice materially changes the
Lite-GPU story (see DESIGN.md §4 and the network-charging ablation):

- :attr:`CommModel.FLAT_RING` — textbook ring collectives across all ranks:
  per-GPU wire volume ~ the full activation tensor, priced at per-GPU
  injection bandwidth.  Most pessimistic for large tensor-parallel degrees.
- :attr:`CommModel.HIERARCHICAL` — the library default, matching the paper's
  own deployment model (Figure 2): ranks form direct-connect scale-up
  domains (Lite-groups of 4; the H100's NVLink domain of 8).  Collectives
  reduce-scatter inside the domain over the extra mesh shoreline, run the
  inter-domain phase on 1/group-sized shards concurrently across the group's
  uplinks, then all-gather inside the domain.
- :attr:`CommModel.SHARDED` — optimistic full-bisection charging: per-GPU
  wire volume scales with the activation *shard* (S / degree).  Upper bound;
  reproduces the paper's decode bars most aggressively.

All bandwidths are derated by the policy's efficiency factors; every hop
pays the latency ``alpha``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from ..errors import SpecError
from ..hardware.gpu import GPUSpec
from ..units import US
from .parallelism import KVPlacement


class CommModel(enum.Enum):
    """Collective-communication charging models (see module docstring)."""

    FLAT_RING = "flat_ring"
    HIERARCHICAL = "hierarchical"
    SHARDED = "sharded"


@dataclass(frozen=True)
class RooflinePolicy:
    """Modeling constants of the roofline evaluation.

    ``mfu``: achievable fraction of peak FLOPS within a compute stage;
    ``mem_efficiency`` / ``net_efficiency``: achievable bandwidth fractions;
    ``alpha``: per-hop collective latency; ``overlap``: "max" (paper) or
    "sum"; byte widths: FP8 weights and KV cache, FP16 activations on the
    wire (DESIGN.md §4.1).
    """

    mfu: float = 0.85
    mem_efficiency: float = 0.90
    net_efficiency: float = 0.90
    alpha: float = 1.0 * US
    comm_model: CommModel = CommModel.HIERARCHICAL
    overlap: str = "max"
    weight_bytes: float = 1.0
    kv_bytes: float = 1.0
    act_bytes: float = 2.0
    kv_placement: KVPlacement = KVPlacement.SHARDED
    causal_discount: float = 0.5  # prefill attention FLOPs under causal mask
    memory_reserve_fraction: float = 0.05

    def __post_init__(self) -> None:
        for name in ("mfu", "mem_efficiency", "net_efficiency"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise SpecError(f"{name} must be in (0, 1]")
        if self.alpha < 0:
            raise SpecError("alpha must be non-negative")
        if self.overlap not in ("max", "sum"):
            raise SpecError("overlap must be 'max' or 'sum'")
        if min(self.weight_bytes, self.kv_bytes, self.act_bytes) <= 0:
            raise SpecError("byte widths must be positive")
        if not 0.0 < self.causal_discount <= 1.0:
            raise SpecError("causal_discount must be in (0, 1]")

    @classmethod
    def paper(cls) -> "RooflinePolicy":
        """The configuration used for the Figure 3 reproduction."""
        return cls()

    @classmethod
    def pessimistic(cls) -> "RooflinePolicy":
        """Flat-ring charging — the honest-physics lower bound."""
        return cls(comm_model=CommModel.FLAT_RING)

    @classmethod
    def optimistic(cls) -> "RooflinePolicy":
        """Shard-proportional charging — the full-bisection upper bound."""
        return cls(comm_model=CommModel.SHARDED)


def _ring_time(size: float, ranks: int, bandwidth: float, alpha: float, factor: float) -> float:
    """One ring pass over ``ranks`` moving ``factor * (r-1)/r * size`` bytes
    per rank at ``bandwidth`` (``factor`` = 2 for all-reduce, 1 for
    all-gather / reduce-scatter)."""
    if ranks <= 1:
        return 0.0
    steps = factor * (ranks - 1)
    volume = factor * (ranks - 1) / ranks * size
    return steps * alpha + volume / bandwidth


def _domain_split(degree: int, gpu: GPUSpec) -> Tuple[int, int]:
    """(group size, group count) for hierarchical collectives."""
    g = min(gpu.scaleup_domain, degree)
    if degree % g != 0:
        return degree, 1  # ragged degree: treat as one flat domain
    return g, degree // g


def tp_allreduce_time(size_bytes: float, degree: int, gpu: GPUSpec, policy: RooflinePolicy) -> float:
    """Time of one tensor-parallel all-reduce of ``size_bytes`` (logical).

    >>> from repro.hardware import H100
    >>> tp_allreduce_time(0.0, 8, H100, RooflinePolicy()) >= 0
    True
    """
    if size_bytes < 0:
        raise SpecError("size_bytes must be non-negative")
    if degree <= 0:
        raise SpecError("degree must be positive")
    if degree == 1 or size_bytes == 0.0:
        return 0.0 if degree == 1 else _dispatch_allreduce(size_bytes, degree, gpu, policy)
    return _dispatch_allreduce(size_bytes, degree, gpu, policy)


def _dispatch_allreduce(size: float, degree: int, gpu: GPUSpec, policy: RooflinePolicy) -> float:
    if degree == 1:
        return 0.0
    mesh = gpu.mesh_bandwidth * policy.net_efficiency
    net = gpu.net_bandwidth * policy.net_efficiency
    alpha = policy.alpha
    g, groups = _domain_split(degree, gpu)
    if policy.comm_model is CommModel.FLAT_RING:
        bandwidth = mesh if degree <= gpu.scaleup_domain else net
        return _ring_time(size, degree, bandwidth, alpha, factor=2.0)
    if policy.comm_model is CommModel.SHARDED:
        bandwidth = mesh if degree <= gpu.scaleup_domain else net
        steps = 2 * (degree - 1)
        volume = 2.0 * (degree - 1) / degree * size / degree
        return steps * alpha + volume / bandwidth
    # HIERARCHICAL: reduce-scatter in-domain, all-reduce across domains on
    # 1/g shards (all g uplinks of a domain work concurrently), all-gather
    # in-domain.
    if groups == 1:
        return _ring_time(size, g, mesh, alpha, factor=2.0)
    intra = 2.0 * _ring_time(size, g, mesh, alpha, factor=1.0)  # RS + AG
    inter = _ring_time(size / g, groups, net, alpha, factor=2.0)
    return intra + inter


def tp_allgather_time(size_bytes: float, degree: int, gpu: GPUSpec, policy: RooflinePolicy) -> float:
    """Time of one all-gather whose *gathered* size is ``size_bytes``."""
    if size_bytes < 0:
        raise SpecError("size_bytes must be non-negative")
    if degree <= 1:
        return 0.0
    mesh = gpu.mesh_bandwidth * policy.net_efficiency
    net = gpu.net_bandwidth * policy.net_efficiency
    alpha = policy.alpha
    g, groups = _domain_split(degree, gpu)
    if policy.comm_model is CommModel.FLAT_RING:
        bandwidth = mesh if degree <= gpu.scaleup_domain else net
        return _ring_time(size_bytes, degree, bandwidth, alpha, factor=1.0)
    if policy.comm_model is CommModel.SHARDED:
        bandwidth = mesh if degree <= gpu.scaleup_domain else net
        steps = degree - 1
        volume = (degree - 1) / degree * size_bytes / degree
        return steps * alpha + volume / bandwidth
    if groups == 1:
        return _ring_time(size_bytes, g, mesh, alpha, factor=1.0)
    inter = _ring_time(size_bytes / g, groups, net, alpha, factor=1.0)
    intra = _ring_time(size_bytes, g, mesh, alpha, factor=1.0)
    return inter + intra


def tp_alltoall_time(size_bytes: float, degree: int, gpu: GPUSpec, policy: RooflinePolicy) -> float:
    """Time of one all-to-all whose *global* payload is ``size_bytes``.

    Expert-parallel MoE dispatch/combine: each rank holds ``S/degree`` of
    the tokens and re-sends the ``(degree-1)/degree`` fraction destined for
    other ranks.  Unlike all-reduce, the volume genuinely shrinks with the
    degree, so hierarchical scheduling buys nothing; the inter-domain link
    rate applies beyond one scale-up domain.
    """
    if size_bytes < 0:
        raise SpecError("size_bytes must be non-negative")
    if degree <= 1:
        return 0.0
    mesh = gpu.mesh_bandwidth * policy.net_efficiency
    net = gpu.net_bandwidth * policy.net_efficiency
    bandwidth = mesh if degree <= gpu.scaleup_domain else net
    per_gpu = (degree - 1) / degree * size_bytes / degree
    return (degree - 1) * policy.alpha + per_gpu / bandwidth


@dataclass(frozen=True)
class StageTime:
    """Timed stage: the three roofline components and the composed total."""

    name: str
    compute: float
    memory: float
    network: float
    total: float

    @property
    def bound(self) -> str:
        """Which resource limits this stage ('compute'|'memory'|'network')."""
        components = {"compute": self.compute, "memory": self.memory, "network": self.network}
        return max(components, key=components.get)


def compose_stage_time(
    name: str,
    compute: float,
    memory: float,
    network: float,
    policy: RooflinePolicy,
) -> StageTime:
    """Combine the three components under the policy's overlap mode."""
    if min(compute, memory, network) < 0:
        raise SpecError("stage component times must be non-negative")
    if policy.overlap == "max":
        total = max(compute, memory, network)
    else:
        total = compute + memory + network
    return StageTime(name=name, compute=compute, memory=memory, network=network, total=total)
