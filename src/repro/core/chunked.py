"""Chunked prefill: piggybacking prompt work on decode iterations.

The paper cites SARATHI ("Efficient LLM Inference by Piggybacking Decodes
with Chunked Prefills") among the systems whose techniques complement
Lite-GPUs.  Chunked prefill is the main *alternative* to the Splitwise
phase-split the case study assumes: instead of separate prefill and decode
pools, one pool runs mixed iterations — a decode batch plus a bounded chunk
of prompt tokens — so prefill work rides along in decode's memory-bound
shadow.

Model: a mixed iteration over ``decode_batch`` sequences (context ``L``)
plus a ``chunk`` of prompt tokens:

- projection / MLP stages process ``decode_batch + chunk`` tokens;
- attention reads the decode KV (``decode_batch * L``) plus the chunk's
  causal window (``chunk`` tokens against an average prefix);
- the tensor-parallel all-reduces carry ``(decode_batch + chunk) * hidden``.

Outputs: the mixed iteration's TBT (what decode users feel) and the prefill
throughput smuggled in (chunk tokens per iteration), and
:func:`chunk_for_tbt` — the largest chunk that keeps TBT within the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpecError
from ..hardware.gpu import GPUSpec
from ..workloads.transformer import ModelSpec
from .inference import _pass_time
from .parallelism import TensorParallel
from .roofline import RooflinePolicy
from .stages import PhaseCosts, StageCost, _attention_cost, _lm_head_cost, _mlp_cost, _projection_cost


@dataclass(frozen=True)
class MixedIteration:
    """One chunked-prefill iteration's shape."""

    decode_batch: int
    context_len: int
    chunk: int
    prompt_len: int = 1500

    def __post_init__(self) -> None:
        if self.decode_batch < 0 or self.chunk < 0:
            raise SpecError("decode_batch and chunk must be non-negative")
        if self.decode_batch == 0 and self.chunk == 0:
            raise SpecError("iteration must contain some work")
        if self.context_len <= 0 or self.prompt_len <= 0:
            raise SpecError("context/prompt lengths must be positive")


@dataclass(frozen=True)
class MixedResult:
    """Evaluation of one mixed iteration."""

    iteration_time: float
    decode_tokens_per_s: float
    prefill_tokens_per_s: float
    fits_memory: bool
    tbt: float

    @property
    def total_tokens_per_s(self) -> float:
        """Combined token throughput of the pool."""
        return self.decode_tokens_per_s + self.prefill_tokens_per_s


def mixed_iteration_costs(
    tp: TensorParallel,
    iteration: MixedIteration,
    policy: RooflinePolicy,
) -> PhaseCosts:
    """Stage costs of one mixed decode+chunk iteration (per GPU)."""
    m = tp.model
    tokens = float(iteration.decode_batch + iteration.chunk)
    proj = _projection_cost(tp, tokens, policy)
    # Attention: decode part reads each sequence's full context; the chunk
    # attends causally to its (average half-filled) prefix.
    parts = []
    if iteration.decode_batch:
        parts.append(
            _attention_cost(
                tp, iteration.decode_batch, 1.0, iteration.context_len, policy, causal=False
            )
        )
    if iteration.chunk:
        prefix = max(1, iteration.prompt_len // 2)
        parts.append(
            _attention_cost(tp, 1, float(iteration.chunk), prefix, policy, causal=True)
        )
    attention = StageCost(
        name="attention",
        flops=sum(p.flops for p in parts),
        mem_bytes=sum(p.mem_bytes for p in parts),
    )
    mlp = _mlp_cost(tp, tokens, policy)
    tail = (_lm_head_cost(tp, float(max(1, iteration.decode_batch)), policy),)
    return PhaseCosts(layers=m.layers, layer_stages=(proj, attention, mlp), tail_stages=tail)


def mixed_iteration_time(
    model: ModelSpec,
    gpu: GPUSpec,
    n_gpus: int,
    iteration: MixedIteration,
    policy: RooflinePolicy | None = None,
) -> MixedResult:
    """Evaluate one mixed iteration on a cluster.

    >>> from repro.workloads import LLAMA3_70B
    >>> from repro.hardware import H100
    >>> r = mixed_iteration_time(LLAMA3_70B, H100, 2,
    ...                          MixedIteration(decode_batch=64, context_len=1750, chunk=256))
    >>> r.prefill_tokens_per_s > 0 and r.tbt > 0
    True
    """
    policy = policy or RooflinePolicy()
    tp = TensorParallel(model, n_gpus, policy.kv_placement)
    costs = mixed_iteration_costs(tp, iteration, policy)
    time, _ = _pass_time(costs, gpu, n_gpus, policy)
    kv_tokens = iteration.decode_batch * iteration.context_len
    if iteration.chunk:
        # The in-flight prefill sequence also holds cache (half-filled on
        # average while its prompt is being chunked through).
        kv_tokens += iteration.prompt_len // 2
    weights = tp.weight_bytes_per_gpu(policy.weight_bytes)
    kv = tp.kv_bytes_per_gpu(int(kv_tokens), policy.kv_bytes)
    fits = weights + kv <= gpu.mem_capacity * (1.0 - policy.memory_reserve_fraction)
    return MixedResult(
        iteration_time=time,
        decode_tokens_per_s=iteration.decode_batch / time,
        prefill_tokens_per_s=iteration.chunk / time,
        fits_memory=fits,
        tbt=time,
    )


def chunk_for_tbt(
    model: ModelSpec,
    gpu: GPUSpec,
    n_gpus: int,
    decode_batch: int,
    context_len: int,
    tbt_slo: float = 0.050,
    policy: RooflinePolicy | None = None,
    max_chunk: int = 8192,
) -> int:
    """Largest prefill chunk that keeps the mixed TBT within the SLO.

    Returns 0 if even a pure-decode iteration misses the SLO.
    """
    if tbt_slo <= 0:
        raise SpecError("tbt_slo must be positive")
    policy = policy or RooflinePolicy()

    def tbt(chunk: int) -> float:
        iteration = MixedIteration(decode_batch, context_len, chunk)
        return mixed_iteration_time(model, gpu, n_gpus, iteration, policy).tbt

    if decode_batch > 0 and tbt(0) > tbt_slo:
        return 0
    lo, hi = 0, max_chunk
    if tbt(hi) <= tbt_slo:
        return hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if tbt(mid) <= tbt_slo:
            lo = mid
        else:
            hi = mid
    return lo


def chunked_vs_split_throughput(
    model: ModelSpec,
    gpu: GPUSpec,
    n_gpus: int,
    decode_batch: int,
    context_len: int = 1750,
    tbt_slo: float = 0.050,
    policy: RooflinePolicy | None = None,
) -> dict:
    """Prefill throughput a pool can smuggle under the decode SLO, vs what
    the same GPUs would do as a dedicated prefill pool.

    The comparison behind "Splitwise vs SARATHI at Lite scale": chunked
    prefill reuses decode's memory-bound shadow (good for compute-rich
    GPUs), a dedicated pool runs prefill flat-out (good when you can buy
    prefill-specialized Lite-GPUs).
    """
    policy = policy or RooflinePolicy()
    chunk = chunk_for_tbt(model, gpu, n_gpus, decode_batch, context_len, tbt_slo, policy)
    mixed = None
    if chunk > 0:
        mixed = mixed_iteration_time(
            model, gpu, n_gpus, MixedIteration(decode_batch, context_len, chunk), policy
        )
    from .inference import PrefillWorkload, prefill_pass

    dedicated = prefill_pass(model, gpu, n_gpus, PrefillWorkload(batch=1), policy)
    return {
        "chunk": chunk,
        "piggyback_prefill_tokens_per_s": mixed.prefill_tokens_per_s if mixed else 0.0,
        "dedicated_prefill_tokens_per_s": dedicated.tokens_per_s,
        "decode_tokens_per_s": mixed.decode_tokens_per_s if mixed else 0.0,
        "tbt": mixed.tbt if mixed else None,
    }
