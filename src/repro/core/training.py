"""Distributed training model: DP x TP x PP with gradient synchronization.

Section 3 notes *"AI clusters come at different scales for training and
inference, with training clusters being orders-of-magnitude larger, e.g.,
16,000 vs 8 GPUs for Llama 3.1 405B"*, and worries that Lite-GPUs multiply
the device count.  This module extends the roofline to training so that
claim becomes checkable: at what scale does a Lite training cluster's extra
communication bite?

Model (synchronous mixed-precision training, Megatron/ZeRO conventions):

- **compute**: forward = the prefill pass; backward = 2x forward FLOPs;
- **memory traffic**: forward reads weights once, backward reads weights and
  writes gradients, the optimizer reads/writes its states;
- **memory capacity**: parameters + gradients + Adam states, in mixed
  precision 16 bytes/param over the TP x PP shard, with the optimizer
  portion further sharded ``zero_stage >= 1`` ways across data parallelism;
- **communication**: per-layer TP all-reduces (forward and backward), the
  pipeline bubble, and the data-parallel gradient all-reduce (overlappable
  with the backward pass: charged as ``max(backward, grad_allreduce)``).

Throughput is reported as tokens/s and tokens/s/SM, plus MFU — so H100 and
Lite training clusters can be compared at equal silicon exactly like the
inference study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InfeasibleError, SpecError
from ..hardware.gpu import GPUSpec
from ..workloads.transformer import ModelSpec
from .inference import Phase, _pass_time
from .parallelism import TensorParallel
from .roofline import RooflinePolicy, tp_allreduce_time
from .stages import prefill_stage_costs


@dataclass(frozen=True)
class TrainingConfig:
    """A training parallelization layout and batch recipe."""

    data_parallel: int
    tensor: int
    stages: int = 1
    micro_batch: int = 1
    seq_len: int = 4096
    global_batch: int = 0  # sequences per step; 0 -> one microbatch per DP rank
    zero_stage: int = 1

    def __post_init__(self) -> None:
        if min(self.data_parallel, self.tensor, self.stages, self.micro_batch) <= 0:
            raise SpecError("parallel degrees and micro_batch must be positive")
        if self.seq_len <= 0:
            raise SpecError("seq_len must be positive")
        if self.zero_stage not in (0, 1, 2, 3):
            raise SpecError("zero_stage must be 0..3")
        if self.global_batch == 0:
            object.__setattr__(
                self, "global_batch", self.data_parallel * self.micro_batch
            )
        if self.global_batch % (self.data_parallel * self.micro_batch) != 0:
            raise SpecError("global_batch must divide into DP x micro_batch chunks")

    @property
    def n_gpus(self) -> int:
        """Total devices in the job."""
        return self.data_parallel * self.tensor * self.stages

    @property
    def microbatches_per_rank(self) -> int:
        """Gradient-accumulation steps per data-parallel rank."""
        return self.global_batch // (self.data_parallel * self.micro_batch)

    @property
    def tokens_per_step(self) -> int:
        """Tokens consumed by one optimizer step."""
        return self.global_batch * self.seq_len


@dataclass(frozen=True)
class TrainingResult:
    """One training-step evaluation."""

    model: str
    gpu: str
    config: TrainingConfig
    step_time: float
    tokens_per_s: float
    mfu: float
    fits_memory: bool
    mem_per_gpu: float
    comm_fraction: float

    @property
    def tokens_per_s_per_sm(self) -> float:
        """Efficiency at equal silicon (the paper's normalization)."""
        return self.tokens_per_s / (self.config.n_gpus * _SMS_CACHE[self.gpu])

    def describe(self) -> str:
        """One-line summary."""
        c = self.config
        return (
            f"{self.model} on {c.n_gpus}x {self.gpu} "
            f"(dp{c.data_parallel} x tp{c.tensor} x pp{c.stages}): "
            f"{self.tokens_per_s:,.0f} tok/s, MFU {self.mfu:.2f}, "
            f"step {self.step_time:.2f}s, comm {self.comm_fraction:.0%}"
        )


_SMS_CACHE: dict = {}

#: Mixed-precision training bytes per parameter: BF16 weights + BF16 grads
#: + FP32 master weights + FP32 Adam m and v.
_BYTES_PER_PARAM_FULL = 2 + 2 + 4 + 4 + 4
_BYTES_OPTIMIZER = 4 + 4 + 4  # the ZeRO-shardable portion


def train_step(
    model: ModelSpec,
    gpu: GPUSpec,
    config: TrainingConfig,
    policy: RooflinePolicy | None = None,
) -> TrainingResult:
    """Evaluate one synchronous training step.

    >>> from repro.workloads import LLAMA3_8B
    >>> from repro.hardware import H100
    >>> cfg = TrainingConfig(data_parallel=8, tensor=4, micro_batch=1)
    >>> r = train_step(LLAMA3_8B, H100, cfg)
    >>> r.fits_memory and 0.0 < r.mfu < 1.0
    True
    """
    policy = policy or RooflinePolicy(weight_bytes=2.0, kv_bytes=2.0)  # BF16
    _SMS_CACHE[gpu.name] = gpu.sms
    tp = TensorParallel(model, config.tensor, policy.kv_placement)

    # --- per-microbatch forward over this rank's layer shard ---------------
    costs = prefill_stage_costs(tp, config.micro_batch, config.seq_len, policy)
    full_fwd, _ = _pass_time(costs, gpu, config.tensor, policy)
    fwd = full_fwd / config.stages
    bwd = 2.0 * fwd  # backward: ~2x FLOPs and traffic, same boundedness

    # --- pipeline schedule ----------------------------------------------------
    m = config.microbatches_per_rank
    slots = m + config.stages - 1
    compute_time = slots * (fwd + bwd)

    # --- data-parallel gradient all-reduce --------------------------------------
    grad_bytes = (
        model.param_count / (config.tensor * config.stages) * 2.0
    )  # BF16 grads on this rank
    if config.data_parallel > 1:
        grad_sync = tp_allreduce_time(
            grad_bytes * config.data_parallel,  # logical tensor across DP
            config.data_parallel,
            gpu,
            policy,
        )
    else:
        grad_sync = 0.0
    # Gradient sync overlaps with the tail of backward.
    step_time = max(compute_time, grad_sync + 0.5 * compute_time)
    step_time += 0.02 * step_time  # optimizer step + dataloader overhead

    # --- memory -------------------------------------------------------------------
    shard_params = model.param_count / (config.tensor * config.stages)
    optimizer_shard = config.data_parallel if config.zero_stage >= 1 else 1
    mem = shard_params * (
        (_BYTES_PER_PARAM_FULL - _BYTES_OPTIMIZER) + _BYTES_OPTIMIZER / optimizer_shard
    )
    # Activation memory: checkpointed — one layer of activations per
    # microbatch in flight.
    act = (
        config.micro_batch
        * config.seq_len
        * model.hidden
        * 2.0
        * min(m, config.stages)
        * (model.layers / config.stages)
        * 0.1  # checkpointing keeps ~10% of full activations
    )
    mem += act
    fits = mem <= gpu.mem_capacity * 0.95

    # --- metrics -------------------------------------------------------------------
    tokens = config.tokens_per_step
    tokens_per_s = tokens / step_time
    model_flops = 6.0 * model.param_count * tokens  # fwd + bwd, dense
    cluster_flops = config.n_gpus * gpu.peak_flops
    mfu = model_flops / (step_time * cluster_flops)
    comm_fraction = max(0.0, 1.0 - compute_time / step_time)
    return TrainingResult(
        model=model.name,
        gpu=gpu.name,
        config=config,
        step_time=step_time,
        tokens_per_s=tokens_per_s,
        mfu=mfu,
        fits_memory=fits,
        mem_per_gpu=mem,
        comm_fraction=comm_fraction,
    )


def equivalent_lite_training(
    model: ModelSpec,
    h100_config: TrainingConfig,
    lite_gpu: GPUSpec,
    policy: RooflinePolicy | None = None,
    split: int = 4,
) -> TrainingConfig:
    """The Lite layout replacing an H100 training job at equal silicon.

    Tensor parallelism absorbs the split (each H100 TP rank becomes a
    Lite-group of ``split``); DP and PP are unchanged, so the global batch
    and convergence behaviour are identical.
    """
    if split <= 0:
        raise SpecError("split must be positive")
    tensor = h100_config.tensor * split
    if model.heads % tensor != 0:
        raise InfeasibleError(
            f"lite TP degree {tensor} does not divide {model.heads} heads"
        )
    return TrainingConfig(
        data_parallel=h100_config.data_parallel,
        tensor=tensor,
        stages=h100_config.stages,
        micro_batch=h100_config.micro_batch,
        seq_len=h100_config.seq_len,
        global_batch=h100_config.global_batch,
        zero_stage=h100_config.zero_stage,
    )
