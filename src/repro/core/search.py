"""The paper's configuration search: sweep batch and cluster size.

Section 4: *"We define the search criteria based on Splitwise's latency
requirements, with TTFT <= 1 s and TBT <= 50 ms constraints ... The search
sweeps all possible batch sizes and number of GPUs for each GPU type ...
For each GPU type, we plot the configuration with the highest throughput per
SM. Note that ... the search may return that running a model with less GPUs
than the maximum yields better throughput per SM."*

Implementation: for every valid tensor-parallel degree up to the GPU type's
Table-1 maximum, find the largest feasible batch (binary search — latency
and KV footprint are monotone in batch), evaluate a geometric grid of
batches below it for the frontier, and return the point maximizing
tokens/s/SM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..errors import InfeasibleError, SimulationError, SpecError
from ..exec.runner import Job, run_many
from ..hardware.gpu import GPUSpec
from ..workloads.transformer import ModelSpec
from .inference import (
    DecodeWorkload,
    Phase,
    PhaseResult,
    PrefillWorkload,
    decode_iteration,
    prefill_pass,
)
from .parallelism import valid_tp_degrees
from .roofline import RooflinePolicy


@dataclass(frozen=True)
class SearchConstraints:
    """SLOs and sweep bounds (paper defaults)."""

    ttft_slo: float = 1.0
    tbt_slo: float = 0.050
    prompt_len: int = 1500
    context_len: int = 1750
    max_batch: int = 512

    def __post_init__(self) -> None:
        if self.ttft_slo <= 0 or self.tbt_slo <= 0:
            raise SpecError("SLOs must be positive")
        if self.prompt_len <= 0 or self.context_len <= 0:
            raise SpecError("sequence lengths must be positive")
        if self.max_batch <= 0:
            raise SpecError("max_batch must be positive")


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration with its feasibility verdict."""

    n_gpus: int
    batch: int
    result: PhaseResult
    feasible: bool

    @property
    def tokens_per_s_per_sm(self) -> float:
        """Efficiency of this point."""
        return self.result.tokens_per_s_per_sm


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a search: the winning point and the explored frontier."""

    model: str
    gpu: str
    phase: Phase
    best: Optional[SweepPoint]
    frontier: tuple

    @property
    def feasible(self) -> bool:
        """Whether any feasible configuration exists."""
        return self.best is not None

    @property
    def best_tokens_per_s_per_sm(self) -> float:
        """Winning efficiency, or 0.0 if nothing is feasible."""
        return self.best.tokens_per_s_per_sm if self.best else 0.0

    def describe(self) -> str:
        """One-line summary for reports."""
        if not self.best:
            return f"{self.model} on {self.gpu} [{self.phase.value}]: infeasible"
        b = self.best
        return (
            f"{self.model} on {self.gpu} [{self.phase.value}]: "
            f"{b.tokens_per_s_per_sm:.2f} tok/s/SM at {b.n_gpus} GPUs, batch {b.batch} "
            f"(latency {b.result.latency * 1e3:.1f} ms)"
        )


def _batch_grid(limit: int) -> List[int]:
    """Geometric batch grid up to ``limit`` (the paper sweeps 'all possible
    batch sizes'; a geometric grid plus the exact feasibility boundary is
    equivalent for a monotone objective)."""
    grid: List[int] = []
    value = 1
    while value <= limit:
        grid.append(value)
        nxt = value * 3 // 2
        value = nxt if nxt > value else value + 1
    return grid


def _evaluate(
    phase: Phase,
    model: ModelSpec,
    gpu: GPUSpec,
    n_gpus: int,
    batch: int,
    constraints: SearchConstraints,
    policy: RooflinePolicy,
) -> SweepPoint:
    """Evaluate one point and apply SLO + memory feasibility."""
    if phase is Phase.PREFILL:
        result = prefill_pass(
            model, gpu, n_gpus, PrefillWorkload(batch, constraints.prompt_len), policy
        )
        slo_ok = result.latency <= constraints.ttft_slo
    else:
        result = decode_iteration(
            model, gpu, n_gpus, DecodeWorkload(batch, constraints.context_len), policy
        )
        slo_ok = result.latency <= constraints.tbt_slo
    return SweepPoint(
        n_gpus=n_gpus,
        batch=batch,
        result=result,
        feasible=slo_ok and result.fits_memory,
    )


def _max_feasible_batch(
    phase: Phase,
    model: ModelSpec,
    gpu: GPUSpec,
    n_gpus: int,
    constraints: SearchConstraints,
    policy: RooflinePolicy,
) -> int:
    """Largest feasible batch at this degree (0 if even batch=1 fails).

    Latency and the KV footprint are both nondecreasing in batch, so binary
    search is exact.
    """
    lo, hi = 1, constraints.max_batch
    if not _evaluate(phase, model, gpu, n_gpus, 1, constraints, policy).feasible:
        return 0
    if _evaluate(phase, model, gpu, n_gpus, hi, constraints, policy).feasible:
        return hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _evaluate(phase, model, gpu, n_gpus, mid, constraints, policy).feasible:
            lo = mid
        else:
            hi = mid
    return lo


def search_best_config(
    model: ModelSpec,
    gpu: GPUSpec,
    phase: Phase | str,
    constraints: SearchConstraints | None = None,
    policy: RooflinePolicy | None = None,
    max_gpus: int | None = None,
) -> SearchResult:
    """Run the paper's search for one (model, GPU type, phase).

    >>> from repro.workloads import LLAMA3_70B
    >>> from repro.hardware import H100
    >>> res = search_best_config(LLAMA3_70B, H100, "decode")
    >>> res.feasible
    True
    """
    if isinstance(phase, str):
        phase = Phase(phase)
    constraints = constraints or SearchConstraints()
    policy = policy or RooflinePolicy()
    limit = max_gpus or gpu.max_cluster
    degrees = valid_tp_degrees(model, limit, gpu.scaleup_domain)
    frontier: List[SweepPoint] = []
    best: Optional[SweepPoint] = None
    for degree in degrees:
        try:
            b_max = _max_feasible_batch(phase, model, gpu, degree, constraints, policy)
        except InfeasibleError:
            continue
        if b_max == 0:
            continue
        batches = sorted({b for b in _batch_grid(b_max)} | {b_max})
        for batch in batches:
            point = _evaluate(phase, model, gpu, degree, batch, constraints, policy)
            frontier.append(point)
            if point.feasible and (best is None or point.tokens_per_s_per_sm > best.tokens_per_s_per_sm):
                best = point
    return SearchResult(
        model=model.name,
        gpu=gpu.name,
        phase=phase,
        best=best,
        frontier=tuple(frontier),
    )


def search_many(
    models: Sequence[ModelSpec],
    gpus: Sequence[GPUSpec],
    phase: Phase | str,
    constraints: SearchConstraints | None = None,
    policy: RooflinePolicy | None = None,
    *,
    workers: int = 1,
) -> dict:
    """Search every (model, gpu) pair; returns {(model, gpu): SearchResult}.

    This is the engine behind both Figure 3 panels.  Each (model, gpu)
    search is an independent pure evaluation, so ``workers=N`` fans the
    pairs across a process pool via :func:`repro.exec.runner.run_many`
    with results identical to the serial sweep.
    """
    pairs = [(model, gpu) for model in models for gpu in gpus]
    jobs = [
        Job(
            fn=search_best_config,
            args=(model, gpu, phase, constraints, policy),
            label=f"{model.name}/{gpu.name}",
        )
        for model, gpu in pairs
    ]
    outcomes = run_many(jobs, workers=workers)
    results = {}
    for (model, gpu), outcome in zip(pairs, outcomes):
        if not outcome.ok:
            # Searches handle infeasibility internally; anything escaping
            # a worker is a genuine bug and must not be silently skipped.
            raise SimulationError(f"search failed for {outcome.label}: {outcome.error}")
        results[(model.name, gpu.name)] = outcome.value
    return results
