"""Phase models: prefill (TTFT) and decode (TBT) on a GPU cluster.

This is where the stage accounting, the roofline engine and the memory
system meet.  :func:`prefill_pass` and :func:`decode_iteration` evaluate one
(model, GPU type, cluster size, batch) point and return a
:class:`PhaseResult` with the latency, throughput, per-stage breakdown, and
feasibility flags the search needs:

- **memory feasibility** — weight shard plus KV cache (at the end of prefill
  / at the decode context length) must fit each GPU's HBM;
- **latency** — TTFT for prefill (the batch's prompts complete together),
  TBT for decode (one iteration produces one token per sequence).

Throughput is normalized per SM because the paper compares GPU types of very
different sizes: ``tokens/s/SM`` is Figure 3's y-axis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import SpecError
from ..hardware.gpu import GPUSpec
from ..workloads.transformer import ModelSpec
from .parallelism import TensorParallel
from .roofline import (
    RooflinePolicy,
    StageTime,
    compose_stage_time,
    tp_allgather_time,
    tp_allreduce_time,
    tp_alltoall_time,
)
from .stages import PhaseCosts, StageCost, decode_stage_costs, prefill_stage_costs


class Phase(enum.Enum):
    """The two LLM inference phases the paper studies separately."""

    PREFILL = "prefill"
    DECODE = "decode"


@dataclass(frozen=True)
class PrefillWorkload:
    """A prefill batch: ``batch`` prompts of ``prompt_len`` tokens each.

    The paper fixes ``prompt_len = 1500`` (Splitwise's median coding prompt).
    """

    batch: int
    prompt_len: int = 1500

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.prompt_len <= 0:
            raise SpecError("batch and prompt_len must be positive")

    @property
    def tokens(self) -> int:
        """Prompt tokens processed by the pass."""
        return self.batch * self.prompt_len


@dataclass(frozen=True)
class DecodeWorkload:
    """A decode batch: ``batch`` sequences at ``context_len`` cached tokens.

    ``context_len`` defaults to the paper's 1500-token prompt plus 250
    generated tokens (the midpoint of a 500-token generation).
    """

    batch: int
    context_len: int = 1750

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.context_len <= 0:
            raise SpecError("batch and context_len must be positive")

    @property
    def cached_tokens(self) -> int:
        """Total tokens resident in the KV cache."""
        return self.batch * self.context_len


@dataclass(frozen=True)
class PhaseResult:
    """Evaluation of one configuration point.

    ``latency`` is TTFT (prefill) or TBT (decode); ``stage_times`` holds the
    per-layer breakdown (one entry per stage name, already including the
    layer multiplier for layer stages).
    """

    phase: Phase
    model: str
    gpu: str
    n_gpus: int
    batch: int
    seq_len: int
    latency: float
    tokens_per_s: float
    fits_memory: bool
    hbm_used_bytes: float
    hbm_capacity_bytes: float
    stage_times: Tuple[StageTime, ...]
    sms: int

    @property
    def tokens_per_s_per_sm(self) -> float:
        """The paper's efficiency metric (Figure 3 y-axis)."""
        return self.tokens_per_s / self.sms

    @property
    def memory_utilization(self) -> float:
        """Fraction of HBM used by weights + KV cache."""
        return self.hbm_used_bytes / self.hbm_capacity_bytes

    def breakdown(self) -> Dict[str, float]:
        """Stage name -> share of total latency."""
        total = sum(s.total for s in self.stage_times)
        if total <= 0:
            return {s.name: 0.0 for s in self.stage_times}
        return {s.name: s.total / total for s in self.stage_times}

    def bound_by(self) -> str:
        """The dominant resource of the dominant stage."""
        dominant = max(self.stage_times, key=lambda s: s.total)
        return dominant.bound


def _time_stage(
    cost: StageCost, gpu: GPUSpec, degree: int, policy: RooflinePolicy
) -> StageTime:
    """Roofline-time one stage on one GPU."""
    compute = cost.flops / (gpu.peak_flops * policy.mfu)
    memory = cost.mem_bytes / (gpu.mem_bandwidth * policy.mem_efficiency)
    network = 0.0
    for op, size in cost.comm:
        if op == "all_reduce":
            network += tp_allreduce_time(size, degree, gpu, policy)
        elif op == "all_to_all":
            network += tp_alltoall_time(size, degree, gpu, policy)
        else:
            network += tp_allgather_time(size, degree, gpu, policy)
    return compose_stage_time(cost.name, compute, memory, network, policy)


def _pass_time(
    costs: PhaseCosts, gpu: GPUSpec, degree: int, policy: RooflinePolicy
) -> Tuple[float, Tuple[StageTime, ...]]:
    """Total pass time and the aggregated per-stage timings."""
    stage_times = []
    total = 0.0
    for cost in costs.layer_stages:
        st = _time_stage(cost, gpu, degree, policy)
        scaled = StageTime(
            name=st.name,
            compute=st.compute * costs.layers,
            memory=st.memory * costs.layers,
            network=st.network * costs.layers,
            total=st.total * costs.layers,
        )
        stage_times.append(scaled)
        total += scaled.total
    for cost in costs.tail_stages:
        st = _time_stage(cost, gpu, degree, policy)
        stage_times.append(st)
        total += st.total
    return total, tuple(stage_times)


def _memory_check(
    tp: TensorParallel,
    gpu: GPUSpec,
    cached_tokens: int,
    policy: RooflinePolicy,
) -> Tuple[bool, float]:
    """(fits, bytes used) for weights + KV at ``cached_tokens``."""
    weights = tp.weight_bytes_per_gpu(policy.weight_bytes)
    kv = tp.kv_bytes_per_gpu(cached_tokens, policy.kv_bytes)
    used = weights + kv
    budget = gpu.mem_capacity * (1.0 - policy.memory_reserve_fraction)
    return used <= budget, used


def prefill_pass(
    model: ModelSpec,
    gpu: GPUSpec,
    n_gpus: int,
    workload: PrefillWorkload,
    policy: RooflinePolicy | None = None,
) -> PhaseResult:
    """Evaluate one prefill configuration.

    >>> from repro.workloads import LLAMA3_70B
    >>> from repro.hardware import H100
    >>> r = prefill_pass(LLAMA3_70B, H100, 8, PrefillWorkload(batch=4))
    >>> r.fits_memory and r.latency > 0
    True
    """
    policy = policy or RooflinePolicy()
    tp = TensorParallel(model, n_gpus, policy.kv_placement)
    costs = prefill_stage_costs(tp, workload.batch, workload.prompt_len, policy)
    latency, stage_times = _pass_time(costs, gpu, n_gpus, policy)
    fits, used = _memory_check(tp, gpu, workload.tokens, policy)
    tokens_per_s = workload.tokens / latency if latency > 0 else float("inf")
    return PhaseResult(
        phase=Phase.PREFILL,
        model=model.name,
        gpu=gpu.name,
        n_gpus=n_gpus,
        batch=workload.batch,
        seq_len=workload.prompt_len,
        latency=latency,
        tokens_per_s=tokens_per_s,
        fits_memory=fits,
        hbm_used_bytes=used,
        hbm_capacity_bytes=gpu.mem_capacity,
        stage_times=stage_times,
        sms=n_gpus * gpu.sms,
    )


def decode_iteration(
    model: ModelSpec,
    gpu: GPUSpec,
    n_gpus: int,
    workload: DecodeWorkload,
    policy: RooflinePolicy | None = None,
) -> PhaseResult:
    """Evaluate one decode configuration (one token per sequence).

    >>> from repro.workloads import LLAMA3_70B
    >>> from repro.hardware import H100
    >>> r = decode_iteration(LLAMA3_70B, H100, 8, DecodeWorkload(batch=32))
    >>> r.latency < 0.05  # comfortably within the 50 ms TBT SLO
    True
    """
    policy = policy or RooflinePolicy()
    tp = TensorParallel(model, n_gpus, policy.kv_placement)
    costs = decode_stage_costs(tp, workload.batch, workload.context_len, policy)
    latency, stage_times = _pass_time(costs, gpu, n_gpus, policy)
    fits, used = _memory_check(tp, gpu, workload.cached_tokens, policy)
    tokens_per_s = workload.batch / latency if latency > 0 else float("inf")
    return PhaseResult(
        phase=Phase.DECODE,
        model=model.name,
        gpu=gpu.name,
        n_gpus=n_gpus,
        batch=workload.batch,
        seq_len=workload.context_len,
        latency=latency,
        tokens_per_s=tokens_per_s,
        fits_memory=fits,
        hbm_used_bytes=used,
        hbm_capacity_bytes=gpu.mem_capacity,
        stage_times=stage_times,
        sms=n_gpus * gpu.sms,
    )
