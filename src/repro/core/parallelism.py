"""Tensor-parallel sharding: validity, shard sizes, KV-cache placement.

Tensor parallelism (Megatron-style) shards attention by heads and MLPs by
columns/rows across ``degree`` GPUs; each transformer layer then requires two
all-reduces of the activation tensor.  This module answers:

- which degrees are *valid* for a model (head divisibility; domain alignment
  for hierarchical collectives),
- how large each GPU's weight shard is,
- how the KV cache is placed, which is where grouped-query attention bites:

  * :attr:`KVPlacement.SHARDED` — the cache is partitioned ``degree`` ways
    even when the model has fewer KV heads than GPUs, by additionally
    splitting along the sequence dimension (context-parallel /
    flash-decoding style).  Per-GPU cache = logical / degree.  Library
    default; capacity-neutral.
  * :attr:`KVPlacement.REPLICATED` — classic head-sharding: when
    ``degree > kv_heads`` each KV head is replicated ``degree / kv_heads``
    ways (vLLM/Megatron behaviour), inflating aggregate cache.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..errors import InfeasibleError, SpecError
from ..workloads.transformer import ModelSpec


class KVPlacement(enum.Enum):
    """How the KV cache is distributed across tensor-parallel ranks."""

    SHARDED = "sharded"
    REPLICATED = "replicated"


@dataclass(frozen=True)
class TensorParallel:
    """A tensor-parallel execution of ``model`` over ``degree`` GPUs."""

    model: ModelSpec
    degree: int
    kv_placement: KVPlacement = KVPlacement.SHARDED

    def __post_init__(self) -> None:
        if self.degree <= 0:
            raise SpecError("tensor-parallel degree must be positive")
        if self.model.heads % self.degree != 0:
            raise InfeasibleError(
                f"degree {self.degree} does not divide {self.model.heads} heads "
                f"of {self.model.name}"
            )

    # --- head layout -----------------------------------------------------------

    @property
    def heads_per_gpu(self) -> int:
        """Query heads on each rank."""
        return self.model.heads // self.degree

    @property
    def kv_replication(self) -> int:
        """How many ranks hold a copy of each KV head (1 = fully sharded)."""
        if self.degree <= self.model.kv_heads:
            return 1
        return self.degree // self.model.kv_heads

    @property
    def kv_heads_per_gpu(self) -> float:
        """KV heads materialized on each rank (>= 1 under replication)."""
        return max(1.0, self.model.kv_heads / self.degree)

    @property
    def kv_width_per_gpu(self) -> float:
        """K (or V) columns materialized per rank.

        SHARDED placement partitions K/V evenly (sequence dimension absorbs
        any remainder beyond the head count); REPLICATED placement keeps
        whole heads, replicating them when ``degree > kv_heads``.
        """
        if self.kv_placement is KVPlacement.SHARDED:
            return self.model.kv_dim / self.degree
        return self.model.head_dim * self.kv_heads_per_gpu

    # --- weight shards ---------------------------------------------------------

    def attn_params_per_gpu(self) -> float:
        """Attention weights per rank.  Q and output shard by heads; K/V
        weights follow the KV placement's width."""
        m = self.model
        q_and_out = 2.0 * m.hidden * m.q_dim / self.degree
        kv = 2.0 * m.hidden * self.kv_width_per_gpu
        return q_and_out + kv

    def mlp_params_per_gpu(self) -> float:
        """MLP weights per rank (clean 1/degree column/row split)."""
        return self.model.mlp_params_per_layer / self.degree

    def layer_params_per_gpu(self) -> float:
        """All weights of one layer on one rank."""
        return self.attn_params_per_gpu() + self.mlp_params_per_gpu()

    def weight_bytes_per_gpu(self, bytes_per_param: float = 1.0) -> float:
        """Full-model weight footprint per rank (layers + embeddings/LM head,
        both vocabulary-sharded)."""
        layer = self.layer_params_per_gpu() * self.model.layers
        embed = self.model.embedding_params / self.degree
        return (layer + embed) * bytes_per_param

    # --- KV cache ---------------------------------------------------------------

    def kv_bytes_per_token_per_gpu(self, bytes_per_elem: float = 1.0) -> float:
        """KV-cache bytes per cached token on each rank."""
        logical = self.model.kv_bytes_per_token(bytes_per_elem)
        if self.kv_placement is KVPlacement.SHARDED:
            return logical / self.degree
        return logical * self.kv_replication / self.degree

    def kv_bytes_per_gpu(self, tokens: int, bytes_per_elem: float = 1.0) -> float:
        """KV-cache bytes on each rank for ``tokens`` cached tokens."""
        if tokens < 0:
            raise SpecError("tokens must be non-negative")
        return tokens * self.kv_bytes_per_token_per_gpu(bytes_per_elem)

    def max_cached_tokens(
        self,
        capacity_bytes: float,
        weight_bytes_per_param: float = 1.0,
        reserve_fraction: float = 0.05,
    ) -> int:
        """Largest token count whose KV cache fits next to the weights.

        ``reserve_fraction`` of capacity is held back for activations and
        workspace (CUDA graphs, cuBLAS scratch, fragmentation).
        """
        if capacity_bytes <= 0:
            raise SpecError("capacity must be positive")
        if not 0.0 <= reserve_fraction < 1.0:
            raise SpecError("reserve_fraction must be in [0, 1)")
        usable = capacity_bytes * (1.0 - reserve_fraction)
        free = usable - self.weight_bytes_per_gpu(weight_bytes_per_param)
        if free <= 0:
            return 0
        per_token = self.kv_bytes_per_token_per_gpu()
        return int(free / per_token)

    def fits(self, capacity_bytes: float, weight_bytes_per_param: float = 1.0) -> bool:
        """Whether the weight shard alone fits each rank."""
        return self.weight_bytes_per_gpu(weight_bytes_per_param) <= capacity_bytes * 0.95


def valid_tp_degrees(
    model: ModelSpec,
    max_degree: int,
    scaleup_domain: int = 8,
) -> List[int]:
    """Tensor-parallel degrees the search sweeps for ``model``.

    A degree is valid when it divides the model's query heads, and — for
    degrees beyond one scale-up domain — is a multiple of the domain size so
    hierarchical collectives have whole groups (Figure 2's Lite-groups).

    >>> from repro.workloads import LLAMA3_70B
    >>> valid_tp_degrees(LLAMA3_70B, 8)
    [1, 2, 4, 8]
    >>> valid_tp_degrees(LLAMA3_70B, 32, scaleup_domain=4)
    [1, 2, 4, 8, 16, 32]
    """
    if max_degree <= 0:
        raise SpecError("max_degree must be positive")
    if scaleup_domain <= 0:
        raise SpecError("scaleup_domain must be positive")
    degrees = []
    for t in range(1, max_degree + 1):
        if model.heads % t != 0:
            continue
        if t > scaleup_domain and t % scaleup_domain != 0:
            continue
        degrees.append(t)
    return degrees
