"""Per-stage FLOP / byte / collective accounting for transformer inference.

The paper models three compute stages per transformer layer — projection
(QKV + attention output), fused FlashAttention, and MLP — plus the LM head
at the end of the network.  For each stage this module computes, *per GPU*
under tensor parallelism:

- FLOPs executed,
- bytes moved to/from HBM (weight shards, KV cache, activations), and
- the collectives issued (the two Megatron all-reduces per layer are
  attributed to the projection and MLP stages respectively; the LM head
  gathers vocabulary-sharded logits).

Prefill processes ``batch * prompt_len`` tokens per pass and writes the KV
cache; decode processes ``batch`` tokens per iteration, appends to the KV
cache, and — the crux of Figure 3b — *reads the entire cached context* in
the attention stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import SpecError
from .parallelism import TensorParallel
from .roofline import RooflinePolicy


@dataclass(frozen=True)
class StageCost:
    """Per-GPU resource cost of one stage.

    ``comm`` lists the collectives the stage issues, as ``(op, logical_size)``
    pairs with ``op`` in {"all_reduce", "all_gather"} and ``logical_size`` the
    full (unsharded) tensor size in bytes.
    """

    name: str
    flops: float
    mem_bytes: float
    comm: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.flops < 0 or self.mem_bytes < 0:
            raise SpecError(f"{self.name}: flops/mem_bytes must be non-negative")
        for op, size in self.comm:
            if op not in ("all_reduce", "all_gather", "all_to_all"):
                raise SpecError(f"{self.name}: unknown collective '{op}'")
            if size < 0:
                raise SpecError(f"{self.name}: collective size must be non-negative")


@dataclass(frozen=True)
class PhaseCosts:
    """A full forward pass: per-layer stages (repeated ``layers`` times)
    plus tail stages executed once (LM head)."""

    layers: int
    layer_stages: Tuple[StageCost, ...]
    tail_stages: Tuple[StageCost, ...]

    def all_stage_names(self) -> List[str]:
        """Stage names in execution order (one layer + tail)."""
        return [s.name for s in self.layer_stages] + [s.name for s in self.tail_stages]


def _projection_cost(
    tp: TensorParallel,
    tokens: float,
    policy: RooflinePolicy,
) -> StageCost:
    """QKV projections + attention output projection (+ KV-cache append)."""
    m = tp.model
    t = tp.degree
    kv_width = _kv_width_per_gpu(tp)
    # Q and output projections shard cleanly by heads; K/V projections
    # compute the columns materialized on this rank.
    flops = 2.0 * tokens * m.hidden * (2.0 * m.q_dim / t + 2.0 * kv_width)
    weights = (2.0 * m.hidden * m.q_dim / t + 2.0 * m.hidden * kv_width) * policy.weight_bytes
    act = policy.act_bytes
    activations = tokens * (
        m.hidden  # input read
        + (m.q_dim / t + 2.0 * kv_width)  # QKV write
        + m.q_dim / t  # output-projection input read
        + m.hidden  # output write (all-reduce operand)
    ) * act
    kv_append = tokens * 2.0 * kv_width * policy.kv_bytes
    mem = weights + activations + kv_append
    comm = (("all_reduce", tokens * m.hidden * act),)
    return StageCost(name="projection", flops=flops, mem_bytes=mem, comm=comm)


def _attention_cost(
    tp: TensorParallel,
    batch: int,
    query_len: float,
    context_len: float,
    policy: RooflinePolicy,
    causal: bool,
) -> StageCost:
    """Fused FlashAttention: QK^T and PV over the cached context.

    ``query_len`` is tokens per sequence in this pass (prompt length for
    prefill, 1 for decode); ``context_len`` the KV length attended to.
    """
    m = tp.model
    t = tp.degree
    kv_width = _kv_width_per_gpu(tp)
    discount = policy.causal_discount if causal else 1.0
    flops = 4.0 * batch * query_len * context_len * (m.q_dim / t) * discount
    tokens = batch * query_len
    act = policy.act_bytes
    # Flash kernels stream K/V once and keep the running softmax in SRAM.
    kv_read = batch * context_len * 2.0 * kv_width * policy.kv_bytes
    q_read = tokens * (m.q_dim / t) * act
    out_write = tokens * (m.q_dim / t) * act
    return StageCost(
        name="attention",
        flops=flops,
        mem_bytes=kv_read + q_read + out_write,
    )


def _mlp_cost(tp: TensorParallel, tokens: float, policy: RooflinePolicy) -> StageCost:
    """The MLP block: dense (sharded GEMMs + all-reduce) or MoE
    (expert-parallel: all-to-all dispatch, top-k expert GEMMs, all-to-all
    combine)."""
    from ..workloads.moe import MoEModelSpec  # local: avoid import cycle at init

    m = tp.model
    t = tp.degree
    act = policy.act_bytes
    n_mat = 3 if m.mlp_kind.name == "GATED" else 2
    if isinstance(m, MoEModelSpec):
        # Experts are sharded across the same ranks (EP = TP degree); each
        # token runs top-k experts, so active FLOPs use the routed width.
        flops = 2.0 * tokens * n_mat * m.hidden * m.ffn_hidden * m.experts_per_token / t
        resident = (m.mlp_params_per_layer / t) * policy.weight_bytes
        # Weight traffic: the share of this rank's resident experts that the
        # batch actually activates (all of them once tokens*k >> experts).
        touched_fraction = min(1.0, m.experts_touched(tokens) / m.n_experts)
        weights = resident * touched_fraction
        activations = tokens * (
            m.hidden
            + m.experts_per_token * n_mat * m.ffn_hidden / t
            + m.hidden
        ) * act
        payload = tokens * m.hidden * act * m.experts_per_token
        comm = (("all_to_all", payload), ("all_to_all", payload))
        return StageCost(name="moe_mlp", flops=flops, mem_bytes=weights + activations, comm=comm)
    flops = 2.0 * tokens * n_mat * m.hidden * m.ffn_hidden / t
    weights = (n_mat * m.hidden * m.ffn_hidden / t) * policy.weight_bytes
    activations = tokens * (
        m.hidden  # input read
        + n_mat * m.ffn_hidden / t  # intermediate write/read traffic
        + m.hidden  # output write
    ) * act
    comm = (("all_reduce", tokens * m.hidden * act),)
    return StageCost(name="mlp", flops=flops, mem_bytes=weights + activations, comm=comm)


def _lm_head_cost(tp: TensorParallel, out_tokens: float, policy: RooflinePolicy) -> StageCost:
    """Vocabulary-sharded LM head producing logits for ``out_tokens``."""
    m = tp.model
    t = tp.degree
    flops = 2.0 * out_tokens * m.hidden * m.vocab / t
    weights = (m.hidden * m.vocab / t) * policy.weight_bytes
    act = policy.act_bytes
    activations = out_tokens * (m.hidden + m.vocab / t) * act
    comm = (("all_gather", out_tokens * m.vocab * act),)
    return StageCost(name="lm_head", flops=flops, mem_bytes=weights + activations, comm=comm)


def _kv_width_per_gpu(tp: TensorParallel) -> float:
    """K (or V) columns materialized per rank under the KV placement."""
    return tp.kv_width_per_gpu


def prefill_stage_costs(
    tp: TensorParallel,
    batch: int,
    prompt_len: int,
    policy: RooflinePolicy | None = None,
) -> PhaseCosts:
    """Stage costs of one prefill pass over ``batch`` prompts.

    The prefill processes ``batch * prompt_len`` tokens, builds the KV cache,
    and emits logits for the last position of each sequence.

    >>> from repro.workloads import LLAMA3_70B
    >>> costs = prefill_stage_costs(TensorParallel(LLAMA3_70B, 8), 4, 1500)
    >>> [s.name for s in costs.layer_stages]
    ['projection', 'attention', 'mlp']
    """
    policy = policy or RooflinePolicy()
    _check_batch_and_len(batch, prompt_len)
    tokens = float(batch * prompt_len)
    layer_stages = (
        _projection_cost(tp, tokens, policy),
        _attention_cost(tp, batch, prompt_len, prompt_len, policy, causal=True),
        _mlp_cost(tp, tokens, policy),
    )
    tail = (_lm_head_cost(tp, float(batch), policy),)
    return PhaseCosts(layers=tp.model.layers, layer_stages=layer_stages, tail_stages=tail)


def decode_stage_costs(
    tp: TensorParallel,
    batch: int,
    context_len: int,
    policy: RooflinePolicy | None = None,
) -> PhaseCosts:
    """Stage costs of one decode iteration (one new token per sequence).

    ``context_len`` is the KV length attended to (prompt + tokens generated
    so far); the attention stage reads the whole cached context, which is
    what makes decode memory-bound.
    """
    policy = policy or RooflinePolicy()
    _check_batch_and_len(batch, context_len)
    tokens = float(batch)
    layer_stages = (
        _projection_cost(tp, tokens, policy),
        _attention_cost(tp, batch, 1.0, context_len, policy, causal=False),
        _mlp_cost(tp, tokens, policy),
    )
    tail = (_lm_head_cost(tp, tokens, policy),)
    return PhaseCosts(layers=tp.model.layers, layer_stages=layer_stages, tail_stages=tail)


def phase_totals(costs: PhaseCosts) -> dict:
    """Aggregate FLOPs / bytes / collective volume of a pass (per GPU)."""
    flops = 0.0
    mem = 0.0
    comm = 0.0
    for stage in costs.layer_stages:
        flops += stage.flops * costs.layers
        mem += stage.mem_bytes * costs.layers
        comm += sum(size for _, size in stage.comm) * costs.layers
    for stage in costs.tail_stages:
        flops += stage.flops
        mem += stage.mem_bytes
        comm += sum(size for _, size in stage.comm)
    return {"flops": flops, "mem_bytes": mem, "comm_logical_bytes": comm}


def _check_batch_and_len(batch: int, length: int) -> None:
    if batch <= 0:
        raise SpecError("batch must be positive")
    if length <= 0:
        raise SpecError("sequence length must be positive")
