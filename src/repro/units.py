"""Unit constants and conversion helpers used across the library.

Everything internal is SI: seconds, bytes, FLOPs (floating point operations),
watts, joules, metres, square millimetres for die areas (the one deliberate
exception, because die areas are universally quoted in mm^2).

The constants below exist so that model parameters can be written the way the
paper (and vendor datasheets) quote them::

    peak_flops = 2000 * TFLOPS          # 2000 TFLOPS, FP8 dense
    mem_bw     = 3352 * GB_PER_S        # HBM3 bandwidth
    capacity   = 80 * GB                # HBM capacity
    ttft_slo   = 1.0                    # seconds
    tbt_slo    = 50 * MS                # 50 ms

Decimal (SI) prefixes are used for rates and capacities, matching vendor
marketing numbers (1 GB = 1e9 bytes); binary prefixes are provided for the
rare places that need them.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
YEAR = 365.25 * DAY

# --- data (decimal, as vendors quote) ---------------------------------------
BYTE = 1
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12
PB = 1e15

# --- data (binary) -----------------------------------------------------------
KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

# --- rates -------------------------------------------------------------------
GB_PER_S = 1e9
TB_PER_S = 1e12
GBIT_PER_S = 1e9 / 8.0  # bytes/s corresponding to 1 Gbit/s
TBIT_PER_S = 1e12 / 8.0
PBIT_PER_S = 1e15 / 8.0

# --- compute -----------------------------------------------------------------
GFLOPS = 1e9
TFLOPS = 1e12
PFLOPS = 1e15

# --- power / energy ----------------------------------------------------------
MILLIWATT = 1e-3
WATT = 1.0
KILOWATT = 1e3
MEGAWATT = 1e6
PJ = 1e-12  # picojoule, the natural unit for per-bit link energy
NJ = 1e-9

# --- geometry ----------------------------------------------------------------
MM = 1e-3  # metre
CM = 1e-2
MM2_PER_CM2 = 100.0  # mm^2 in one cm^2


def to_unit(value: float, unit: float) -> float:
    """Convert an SI ``value`` into multiples of ``unit``.

    >>> to_unit(2e12, TFLOPS)
    2.0
    """
    return value / unit


def from_unit(value: float, unit: float) -> float:
    """Convert ``value`` expressed in ``unit`` into SI.

    >>> from_unit(2.0, TFLOPS)
    2000000000000.0
    """
    return value * unit


def fmt_bytes(n: float) -> str:
    """Human-readable decimal byte count (``3.35e12 -> '3.35 TB'``)."""
    for threshold, suffix in ((PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(n) >= threshold:
            return f"{n / threshold:.2f} {suffix}"
    return f"{n:.0f} B"


def fmt_rate(bytes_per_s: float) -> str:
    """Human-readable data rate (``4.5e11 -> '450.00 GB/s'``)."""
    return fmt_bytes(bytes_per_s) + "/s"


def fmt_flops(flops_per_s: float) -> str:
    """Human-readable compute rate (``2e15 -> '2.00 PFLOPS'``)."""
    for threshold, suffix in ((PFLOPS, "PFLOPS"), (TFLOPS, "TFLOPS"), (GFLOPS, "GFLOPS")):
        if abs(flops_per_s) >= threshold:
            return f"{flops_per_s / threshold:.2f} {suffix}"
    return f"{flops_per_s:.0f} FLOP/s"


def fmt_time(seconds: float) -> str:
    """Human-readable duration (``0.0021 -> '2.10 ms'``)."""
    if abs(seconds) >= 1.0:
        return f"{seconds:.2f} s"
    if abs(seconds) >= MS:
        return f"{seconds / MS:.2f} ms"
    if abs(seconds) >= US:
        return f"{seconds / US:.2f} us"
    return f"{seconds / NS:.2f} ns"
