"""Cluster network topologies for Lite-GPU deployments.

Section 3 ("Network management") sketches the options this module implements:

- :class:`DirectConnectTopology` — *"as the traffic across Lite-GPUs that
  replace one large GPU is predictable, we can build a direct-connect
  topology within that group ... and leave the remaining network as is"*.
  Full mesh inside each group, a group-level uplink outside.  Cheap, but the
  group is a shared fate domain (it "eliminates the benefits of the smaller
  blast radius").
- :class:`SwitchedTopology` — a flat or two-level (leaf-spine) packet-
  switched fabric over the whole cluster: flexible, fault-tolerant, pricier.
- :class:`FlatCircuitTopology` — a single stage of optical circuit switches
  across the entire cluster (Sirius-style), the paper's favoured endpoint:
  OCS port counts "allow for larger and flatter networks" at low cost/power.

Each topology reports the metrics the comparison benchmarks need: switch and
link inventories, per-GPU injection bandwidth, bisection bandwidth, hop
counts, cost, and power.  Graphs are materialized through networkx on demand
(see :mod:`repro.network.routing`).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

import networkx as nx

from ..errors import SpecError
from .links import CPO_OPTICS, LinkSpec
from .switches import CIRCUIT_SWITCH_OCS, PACKET_SWITCH_TOR, SwitchSpec


@dataclass(frozen=True)
class Topology(abc.ABC):
    """Base class: a network connecting ``n_gpus`` endpoints."""

    n_gpus: int
    link: LinkSpec = CPO_OPTICS

    def __post_init__(self) -> None:
        if self.n_gpus <= 0:
            raise SpecError("n_gpus must be positive")

    # --- inventory ------------------------------------------------------------

    @property
    @abc.abstractmethod
    def n_switches(self) -> int:
        """Number of switches in the fabric."""

    @property
    @abc.abstractmethod
    def n_links(self) -> int:
        """Number of cables/links (each with two ports)."""

    @property
    @abc.abstractmethod
    def per_gpu_bandwidth(self) -> float:
        """Injection bandwidth each GPU gets into the fabric (bytes/s)."""

    @property
    @abc.abstractmethod
    def bisection_bandwidth(self) -> float:
        """Worst-case bandwidth across a balanced cut (bytes/s)."""

    @abc.abstractmethod
    def hop_count(self, a: int, b: int) -> int:
        """Network hops (links traversed) between GPUs ``a`` and ``b``."""

    @abc.abstractmethod
    def graph(self) -> nx.Graph:
        """Materialize the topology as a networkx graph.  GPU nodes are
        ``("gpu", i)``, switch nodes ``("sw", j)``."""

    # --- derived ---------------------------------------------------------------

    @property
    def avg_hops(self) -> float:
        """Mean hop count over distinct GPU pairs (analytic where easy,
        otherwise sampled from the definition)."""
        if self.n_gpus == 1:
            return 0.0
        total = 0
        pairs = 0
        step = max(1, self.n_gpus // 64)  # sample for very large fabrics
        idx = range(0, self.n_gpus, step)
        for a in idx:
            for b in idx:
                if a < b:
                    total += self.hop_count(a, b)
                    pairs += 1
        return total / pairs if pairs else 0.0

    def latency(self, a: int, b: int, switch_latency: float = 0.0) -> float:
        """One-way latency between two GPUs (link + switch traversals)."""
        hops = self.hop_count(a, b)
        switches = max(0, hops - 1)
        return hops * self.link.latency + switches * switch_latency

    def _check_gpu(self, idx: int) -> None:
        if not 0 <= idx < self.n_gpus:
            raise SpecError(f"GPU index {idx} out of range [0, {self.n_gpus})")


@dataclass(frozen=True)
class DirectConnectTopology(Topology):
    """Full mesh inside fixed-size groups; one uplink per group outside.

    ``group`` is the Lite-group size (4 in Figure 2).  Each GPU has
    ``group - 1`` mesh links; each group shares ``uplinks_per_group`` links
    to the outside network (abstracted as a single hub node).
    """

    group: int = 4
    uplinks_per_group: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.group <= 0:
            raise SpecError("group size must be positive")
        if self.n_gpus % self.group != 0:
            raise SpecError("n_gpus must be a multiple of the group size")
        if self.uplinks_per_group <= 0:
            raise SpecError("uplinks_per_group must be positive")

    @property
    def n_groups(self) -> int:
        """Number of Lite-groups."""
        return self.n_gpus // self.group

    @property
    def n_switches(self) -> int:
        """Direct-connect groups need no switches; the external network is
        represented by one hub (not counted as fabric inventory here)."""
        return 0

    @property
    def n_links(self) -> int:
        mesh = self.n_groups * (self.group * (self.group - 1) // 2)
        uplinks = self.n_groups * self.uplinks_per_group
        return mesh + uplinks

    @property
    def per_gpu_bandwidth(self) -> float:
        """Each GPU's aggregate injection: its mesh links (intra-group)."""
        return (self.group - 1) * self.link.bandwidth if self.group > 1 else self.link.bandwidth

    @property
    def bisection_bandwidth(self) -> float:
        """Cutting between groups crosses only uplinks — the weak spot."""
        crossing_groups = self.n_groups / 2.0
        return crossing_groups * self.uplinks_per_group * self.link.bandwidth

    def hop_count(self, a: int, b: int) -> int:
        self._check_gpu(a)
        self._check_gpu(b)
        if a == b:
            return 0
        if a // self.group == b // self.group:
            return 1  # mesh neighbour
        # Cross-group: mesh hop to the group's uplink holder (GPU 0 of the
        # group) unless the endpoint *is* the holder, then up and over.
        extra = (a % self.group != 0) + (b % self.group != 0)
        return 2 + extra

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        hub = ("sw", 0)
        g.add_node(hub, kind="hub")
        for i in range(self.n_gpus):
            g.add_node(("gpu", i), kind="gpu")
        for grp in range(self.n_groups):
            members = range(grp * self.group, (grp + 1) * self.group)
            for a in members:
                for b in members:
                    if a < b:
                        g.add_edge(("gpu", a), ("gpu", b), kind="mesh")
            g.add_edge(("gpu", grp * self.group), hub, kind="uplink")
        return g


@dataclass(frozen=True)
class SwitchedTopology(Topology):
    """Packet-switched fabric: flat (one tier) or leaf-spine (two tiers).

    ``oversubscription`` applies to the leaf uplink stage (1.0 = full
    bisection).  Switch radix comes from the switch spec; if one switch can
    host every GPU, the fabric is flat.
    """

    switch: SwitchSpec = PACKET_SWITCH_TOR
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.oversubscription < 1.0:
            raise SpecError("oversubscription must be >= 1.0")

    @property
    def is_flat(self) -> bool:
        """Whether a single switch suffices."""
        return self.n_gpus <= self.switch.ports

    @property
    def n_leaves(self) -> int:
        """Leaf switches (half the radix faces down in two-tier mode)."""
        if self.is_flat:
            return 1
        down = self.switch.ports // 2
        return math.ceil(self.n_gpus / down)

    @property
    def n_spines(self) -> int:
        """Spine switches sized for the (possibly oversubscribed) uplinks."""
        if self.is_flat:
            return 0
        down = self.switch.ports // 2
        up_per_leaf = math.ceil(down / self.oversubscription)
        return max(1, math.ceil(self.n_leaves * up_per_leaf / self.switch.ports))

    @property
    def n_switches(self) -> int:
        return self.n_leaves + self.n_spines

    @property
    def n_links(self) -> int:
        gpu_links = self.n_gpus
        if self.is_flat:
            return gpu_links
        down = self.switch.ports // 2
        up_per_leaf = math.ceil(down / self.oversubscription)
        return gpu_links + self.n_leaves * up_per_leaf

    @property
    def per_gpu_bandwidth(self) -> float:
        return min(self.link.bandwidth, self.switch.port_bandwidth)

    @property
    def bisection_bandwidth(self) -> float:
        if self.is_flat:
            return self.n_gpus / 2.0 * self.per_gpu_bandwidth
        return self.n_gpus / 2.0 * self.per_gpu_bandwidth / self.oversubscription

    def hop_count(self, a: int, b: int) -> int:
        self._check_gpu(a)
        self._check_gpu(b)
        if a == b:
            return 0
        if self.is_flat:
            return 2
        down = self.switch.ports // 2
        if a // down == b // down:
            return 2  # same leaf
        return 4  # leaf -> spine -> leaf

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        for i in range(self.n_gpus):
            g.add_node(("gpu", i), kind="gpu")
        if self.is_flat:
            g.add_node(("sw", 0), kind="leaf")
            for i in range(self.n_gpus):
                g.add_edge(("gpu", i), ("sw", 0), kind="access")
            return g
        down = self.switch.ports // 2
        for leaf in range(self.n_leaves):
            g.add_node(("sw", leaf), kind="leaf")
        for spine in range(self.n_spines):
            g.add_node(("sw", self.n_leaves + spine), kind="spine")
        for i in range(self.n_gpus):
            g.add_edge(("gpu", i), ("sw", i // down), kind="access")
        for leaf in range(self.n_leaves):
            for spine in range(self.n_spines):
                g.add_edge(("sw", leaf), ("sw", self.n_leaves + spine), kind="uplink")
        return g


@dataclass(frozen=True)
class FlatCircuitTopology(Topology):
    """One stage of optical circuit switches over the whole cluster.

    Every GPU connects to an OCS plane; circuits are reconfigured between
    traffic phases (the paper: AI traffic is predictable enough).  ``planes``
    parallel OCS planes multiply per-GPU bandwidth and fault tolerance.
    """

    switch: SwitchSpec = CIRCUIT_SWITCH_OCS
    planes: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.planes <= 0:
            raise SpecError("planes must be positive")

    @property
    def switches_per_plane(self) -> int:
        """OCS count per plane (port-limited)."""
        return math.ceil(self.n_gpus / self.switch.ports)

    @property
    def n_switches(self) -> int:
        return self.planes * self.switches_per_plane

    @property
    def n_links(self) -> int:
        return self.planes * self.n_gpus

    @property
    def per_gpu_bandwidth(self) -> float:
        return self.planes * min(self.link.bandwidth, self.switch.port_bandwidth)

    @property
    def bisection_bandwidth(self) -> float:
        """Circuits can realize any matching: full bisection."""
        return self.n_gpus / 2.0 * self.per_gpu_bandwidth

    def hop_count(self, a: int, b: int) -> int:
        self._check_gpu(a)
        self._check_gpu(b)
        return 0 if a == b else 2  # gpu -> OCS -> gpu, regardless of scale

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        for i in range(self.n_gpus):
            g.add_node(("gpu", i), kind="gpu")
        sw_id = 0
        for _plane in range(self.planes):
            plane_switches = []
            for _ in range(self.switches_per_plane):
                node = ("sw", sw_id)
                g.add_node(node, kind="ocs")
                plane_switches.append(node)
                sw_id += 1
            for i in range(self.n_gpus):
                g.add_edge(("gpu", i), plane_switches[i % len(plane_switches)], kind="access")
        return g

    def reconfiguration_penalty(self, phases_per_second: float) -> float:
        """Fraction of time lost to circuit reconfiguration at a given
        traffic-phase change rate."""
        if phases_per_second < 0:
            raise SpecError("phases_per_second must be non-negative")
        return min(1.0, phases_per_second * self.switch.reconfig_time)
