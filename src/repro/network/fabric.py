"""Whole-fabric rollups: cost, power, and capacity of a cluster network.

Section 2 closes its economics with: *"the networking costs are only a small
fraction compared to the GPU costs today"* — and Section 4 warns the network
cost "can turn into a bottleneck with increased scale".  :class:`Fabric`
makes both ends of that argument computable: given a topology, a link
technology and a switch model, it reports capital cost, power, and the
cost/power *per GPU* so deployments of H100s and Lite-GPUs can be compared
at equal total compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpecError
from ..units import GB_PER_S, KILOWATT
from .switches import SwitchKind, SwitchSpec
from .topology import DirectConnectTopology, FlatCircuitTopology, SwitchedTopology, Topology


@dataclass(frozen=True)
class FabricReport:
    """Inventory, economics, and capacity summary of one fabric."""

    name: str
    n_gpus: int
    n_switches: int
    n_links: int
    n_ports: int
    capex_usd: float
    power_w: float
    per_gpu_bandwidth: float
    bisection_bandwidth: float
    avg_hops: float

    @property
    def capex_per_gpu(self) -> float:
        """Network capital cost per endpoint."""
        return self.capex_usd / self.n_gpus

    @property
    def power_per_gpu(self) -> float:
        """Network power per endpoint (W)."""
        return self.power_w / self.n_gpus

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return (
            f"{self.name}: {self.n_gpus} GPUs, {self.n_switches} switches, "
            f"{self.n_links} links ({self.n_ports} ports)\n"
            f"  capex ${self.capex_usd:,.0f} (${self.capex_per_gpu:,.0f}/GPU), "
            f"power {self.power_w / KILOWATT:.1f} kW ({self.power_per_gpu:.0f} W/GPU)\n"
            f"  per-GPU {self.per_gpu_bandwidth / GB_PER_S:.0f} GB/s, "
            f"bisection {self.bisection_bandwidth / GB_PER_S:,.0f} GB/s, "
            f"avg hops {self.avg_hops:.2f}"
        )


@dataclass(frozen=True)
class Fabric:
    """A topology bound to concrete switch hardware for costing.

    The topology's own ``switch`` spec (when it has one) drives switching
    cost/power; link transceiver cost and energy come from the topology's
    link spec.  ``utilization`` sets the average traffic level for power.
    """

    topology: Topology
    utilization: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization <= 1.0:
            raise SpecError("utilization must be in [0, 1]")

    @property
    def _switch_spec(self) -> SwitchSpec | None:
        return getattr(self.topology, "switch", None)

    @property
    def n_ports(self) -> int:
        """Transceiver ports (two per link)."""
        return 2 * self.topology.n_links

    def capex(self) -> float:
        """Capital cost: switches + transceivers."""
        cost = self.n_ports * self.topology.link.cost_per_port_usd
        switch = self._switch_spec
        if switch is not None and self.topology.n_switches > 0:
            cost += self.topology.n_switches * switch.cost_usd
        return cost

    def power(self) -> float:
        """Operating power: link ports at utilization + switch power."""
        port_power = self.n_ports * self.topology.link.watts_at_line_rate() * self.utilization
        switch = self._switch_spec
        if switch is None or self.topology.n_switches == 0:
            return port_power
        return port_power + self.topology.n_switches * switch.power_at_utilization(self.utilization)

    def report(self, name: str | None = None) -> FabricReport:
        """Produce the full :class:`FabricReport`."""
        topo = self.topology
        return FabricReport(
            name=name or type(topo).__name__,
            n_gpus=topo.n_gpus,
            n_switches=topo.n_switches,
            n_links=topo.n_links,
            n_ports=self.n_ports,
            capex_usd=self.capex(),
            power_w=self.power(),
            per_gpu_bandwidth=topo.per_gpu_bandwidth,
            bisection_bandwidth=topo.bisection_bandwidth,
            avg_hops=topo.avg_hops,
        )


def compare_fabrics(n_gpus: int, group: int = 4, utilization: float = 0.5) -> list[FabricReport]:
    """Build the Section 3 three-way comparison at a given scale.

    Returns reports for direct-connect groups, a leaf-spine packet fabric,
    and a flat circuit-switched fabric over the same ``n_gpus``.
    """
    if n_gpus % group != 0:
        raise SpecError("n_gpus must be a multiple of the group size")
    candidates: list[tuple[str, Topology]] = [
        ("direct-connect", DirectConnectTopology(n_gpus=n_gpus, group=group)),
        ("packet-switched", SwitchedTopology(n_gpus=n_gpus)),
        ("flat-circuit", FlatCircuitTopology(n_gpus=n_gpus)),
    ]
    return [Fabric(topo, utilization).report(name) for name, topo in candidates]
