"""Network substrate: links, switches, topologies, collectives, fabrics.

Implements the communication side of the paper:

- :mod:`repro.network.links` — copper / pluggable-optics / co-packaged-optics
  link technologies with bandwidth, reach, latency, and pJ/bit energy.
- :mod:`repro.network.switches` — electrical packet switches vs. optical
  circuit switches (the Section 3 ">50% better energy efficiency" claim).
- :mod:`repro.network.collectives` — alpha-beta cost models for ring / tree
  all-reduce, all-gather, reduce-scatter, all-to-all.
- :mod:`repro.network.topology` — direct-connect Lite-groups, two-level
  switched fabrics, and flat circuit-switched networks.
- :mod:`repro.network.routing` — path computation and hop counting.
- :mod:`repro.network.fabric` — whole-fabric rollups: cost, power, bisection.
"""

from .links import COPPER_NVLINK, CPO_OPTICS, LINK_TYPES, PLUGGABLE_OPTICS, LinkSpec, get_link
from .switches import (
    CIRCUIT_SWITCH_OCS,
    PACKET_SWITCH_TOR,
    SwitchKind,
    SwitchSpec,
    circuit_vs_packet_energy_gain,
)
from .collectives import (
    Collective,
    CollectiveCost,
    all_gather_cost,
    all_reduce_cost,
    all_to_all_cost,
    broadcast_cost,
    reduce_scatter_cost,
)
from .topology import (
    DirectConnectTopology,
    FlatCircuitTopology,
    SwitchedTopology,
    Topology,
)
from .routing import graph_hop_count, hop_count_matrix, hop_matrix_cache_info, path_between
from .fabric import Fabric, FabricReport, compare_fabrics

__all__ = [
    "COPPER_NVLINK",
    "CPO_OPTICS",
    "LINK_TYPES",
    "PLUGGABLE_OPTICS",
    "LinkSpec",
    "get_link",
    "CIRCUIT_SWITCH_OCS",
    "PACKET_SWITCH_TOR",
    "SwitchKind",
    "SwitchSpec",
    "circuit_vs_packet_energy_gain",
    "Collective",
    "CollectiveCost",
    "all_gather_cost",
    "all_reduce_cost",
    "all_to_all_cost",
    "broadcast_cost",
    "reduce_scatter_cost",
    "DirectConnectTopology",
    "FlatCircuitTopology",
    "SwitchedTopology",
    "Topology",
    "graph_hop_count",
    "hop_count_matrix",
    "hop_matrix_cache_info",
    "path_between",
    "Fabric",
    "FabricReport",
    "compare_fabrics",
]
