"""Traffic matrices and congestion: which workloads distribute well.

Section 3 warns: *"There are workloads that would be challenging to
distribute further using Lite-GPUs, such as workloads that introduce
randomness and congestion to the network traffic"* — while AI collectives
are predictable and schedule cleanly.  This module makes the distinction
computable:

- :func:`traffic_matrix` builds canonical demand patterns (ring-neighbour
  collectives, uniform all-to-all, random permutations, group-local,
  many-to-one hotspots);
- :func:`completion_time` bounds how long each topology takes to deliver a
  matrix (per-link-class bottleneck analysis; circuit switches additionally
  pay one reconfiguration per matching, approximated by the demand graph's
  maximum degree);
- :func:`congestion_slowdown` normalizes by the port-limited lower bound, so
  1.0 means "the network is not the problem".

The punchline the paper wants: predictable patterns (ring, group-local) run
at ~1.0 on the cheap topologies; random/hotspot traffic exposes the
direct-connect groups' thin uplinks, and only the switched/circuit fabrics
keep slowdowns bounded.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from ..errors import SpecError
from .topology import DirectConnectTopology, FlatCircuitTopology, SwitchedTopology, Topology


class TrafficPattern(enum.Enum):
    """Canonical demand patterns."""

    RING = "ring"  # each GPU -> next GPU (collective-like)
    ALL_TO_ALL = "all_to_all"  # uniform (MoE dispatch-like)
    PERMUTATION = "permutation"  # random one-to-one
    GROUP_LOCAL = "group_local"  # uniform within groups (Figure-2 traffic)
    HOTSPOT = "hotspot"  # everyone -> GPU 0 (parameter-server-like)


def traffic_matrix(
    pattern: TrafficPattern,
    n: int,
    total_bytes: float,
    group: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """An ``n x n`` demand matrix moving ``total_bytes`` in aggregate.

    >>> m = traffic_matrix(TrafficPattern.RING, 8, 8e9)
    >>> float(m.sum())
    8000000000.0
    """
    if n <= 1:
        raise SpecError("n must be at least 2")
    if total_bytes <= 0:
        raise SpecError("total_bytes must be positive")
    if group <= 0 or n % group:
        raise SpecError("group must divide n")
    matrix = np.zeros((n, n))
    if pattern is TrafficPattern.RING:
        for i in range(n):
            matrix[i, (i + 1) % n] = 1.0
    elif pattern is TrafficPattern.ALL_TO_ALL:
        matrix[:] = 1.0
        np.fill_diagonal(matrix, 0.0)
    elif pattern is TrafficPattern.PERMUTATION:
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        while np.any(perm == np.arange(n)):  # avoid self-loops
            perm = rng.permutation(n)
        for i in range(n):
            matrix[i, perm[i]] = 1.0
    elif pattern is TrafficPattern.GROUP_LOCAL:
        for g in range(n // group):
            lo, hi = g * group, (g + 1) * group
            matrix[lo:hi, lo:hi] = 1.0
        np.fill_diagonal(matrix, 0.0)
    elif pattern is TrafficPattern.HOTSPOT:
        matrix[1:, 0] = 1.0
    else:  # pragma: no cover - exhaustive enum
        raise SpecError(f"unknown pattern {pattern}")
    return matrix * (total_bytes / matrix.sum())


def port_lower_bound(matrix: np.ndarray, port_bandwidth: float) -> float:
    """The LP lower bound: no network beats the busiest port.

    Every byte leaves a source port and enters a destination port, so
    completion time >= max(max row-sum, max col-sum) / port bandwidth.
    """
    if port_bandwidth <= 0:
        raise SpecError("port bandwidth must be positive")
    out = matrix.sum(axis=1).max()
    inbound = matrix.sum(axis=0).max()
    return max(out, inbound) / port_bandwidth


def completion_time(topo: Topology, matrix: np.ndarray) -> float:
    """Time for ``topo`` to deliver ``matrix`` (bottleneck analysis)."""
    n = topo.n_gpus
    if matrix.shape != (n, n):
        raise SpecError(f"matrix shape {matrix.shape} != ({n}, {n})")
    link_bw = topo.link.bandwidth

    if isinstance(topo, DirectConnectTopology):
        g = topo.group
        groups = np.arange(n) // g
        # Mesh links are dedicated per pair: the slowest pair bounds them.
        same = groups[:, None] == groups[None, :]
        mesh_demand = (matrix * same).max(initial=0.0)
        mesh_time = mesh_demand / link_bw
        # Cross-group traffic funnels through each group's uplinks, twice
        # (source uplink, destination uplink) plus the hub.
        cross = matrix * ~same
        per_group_out = np.array([cross[groups == k].sum() for k in range(n // g)])
        per_group_in = np.array([cross[:, groups == k].sum() for k in range(n // g)])
        uplink_bytes = np.maximum(per_group_out, per_group_in).max(initial=0.0)
        uplink_time = uplink_bytes / (topo.uplinks_per_group * link_bw)
        return max(mesh_time, uplink_time)

    if isinstance(topo, SwitchedTopology):
        port = min(link_bw, topo.switch.port_bandwidth)
        base = port_lower_bound(matrix, port)
        if topo.is_flat:
            return base
        down = topo.switch.ports // 2
        leaves = np.arange(n) // down
        cross = 0.0
        for leaf in range(topo.n_leaves):
            mask = leaves == leaf
            cross = max(cross, matrix[mask][:, ~mask].sum(), matrix[~mask][:, mask].sum())
        uplink_bw = down * port / topo.oversubscription
        return max(base, cross / uplink_bw)

    if isinstance(topo, FlatCircuitTopology):
        port = topo.per_gpu_bandwidth
        base = port_lower_bound(matrix, port)
        # A circuit plane serves one matching at a time; a demand graph of
        # maximum degree d needs ~d matchings (Vizing), each paying one
        # reconfiguration.
        degree = int(max((matrix > 0).sum(axis=1).max(), (matrix > 0).sum(axis=0).max()))
        matchings = max(1, degree)
        return base + matchings * topo.switch.reconfig_time

    raise SpecError(f"unsupported topology {type(topo).__name__}")


def congestion_slowdown(topo: Topology, matrix: np.ndarray) -> float:
    """completion time / the port-limited lower bound (>= 1.0)."""
    ideal = port_lower_bound(matrix, topo.per_gpu_bandwidth)
    if ideal <= 0:
        raise SpecError("degenerate traffic matrix")
    return completion_time(topo, matrix) / ideal


def pattern_topology_study(
    n: int = 32,
    total_bytes: float = 32e9,
    group: int = 4,
    seed: int = 0,
) -> dict:
    """The Section 3 matrix: slowdown of each pattern on each topology."""
    topologies = {
        "direct": DirectConnectTopology(n_gpus=n, group=group),
        "switched": SwitchedTopology(n_gpus=n),
        "circuit": FlatCircuitTopology(n_gpus=n),
    }
    out: dict = {}
    for pattern in TrafficPattern:
        matrix = traffic_matrix(pattern, n, total_bytes, group, seed)
        out[pattern.value] = {
            name: congestion_slowdown(topo, matrix) for name, topo in topologies.items()
        }
    return out
