"""Latency masking by prefetching — the Section 3 workload argument.

*"AI workloads are highly predictable and pipelined so extra latency can be
masked through pre-fetching."*  Moving previously in-silicon traffic onto an
optical network adds microseconds of latency; this module models the classic
prefetch pipeline that hides it.

Model: a consumer processes a stream of equal chunks, each needing
``compute_time`` of work on data that takes ``fetch_latency`` to request
plus ``transfer_time`` on the wire; ``depth`` requests may be outstanding.
Steady-state throughput is limited by the slowest of: compute, the wire, and
the latency amortized over the outstanding window:

    t_chunk = max(compute, transfer, (latency + transfer) / depth)

``efficiency`` is compute / t_chunk (1.0 = fully hidden), and
:func:`required_depth` inverts the model: how many outstanding prefetches
hide a given fabric latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SpecError


@dataclass(frozen=True)
class PrefetchPipeline:
    """A prefetch stream: chunked compute fed over a link."""

    compute_time: float  # seconds of work per chunk
    transfer_time: float  # serialization per chunk (bytes / bandwidth)
    fetch_latency: float  # request-to-first-byte latency
    depth: int = 2  # outstanding prefetches

    def __post_init__(self) -> None:
        if self.compute_time <= 0:
            raise SpecError("compute_time must be positive")
        if self.transfer_time < 0 or self.fetch_latency < 0:
            raise SpecError("transfer_time and fetch_latency must be non-negative")
        if self.depth <= 0:
            raise SpecError("depth must be positive")

    @property
    def chunk_time(self) -> float:
        """Steady-state time per chunk."""
        latency_bound = (self.fetch_latency + self.transfer_time) / self.depth
        return max(self.compute_time, self.transfer_time, latency_bound)

    @property
    def efficiency(self) -> float:
        """Fraction of peak compute achieved (1.0 = latency fully hidden)."""
        return self.compute_time / self.chunk_time

    @property
    def bound(self) -> str:
        """What limits the pipeline: 'compute', 'bandwidth', or 'latency'."""
        latency_bound = (self.fetch_latency + self.transfer_time) / self.depth
        worst = max(self.compute_time, self.transfer_time, latency_bound)
        if worst == self.compute_time:
            return "compute"
        if worst == self.transfer_time:
            return "bandwidth"
        return "latency"


def required_depth(compute_time: float, transfer_time: float, fetch_latency: float) -> int:
    """Smallest prefetch depth that fully hides the fetch latency.

    >>> required_depth(compute_time=10e-6, transfer_time=2e-6, fetch_latency=30e-6)
    4
    """
    if compute_time <= 0:
        raise SpecError("compute_time must be positive")
    if transfer_time < 0 or fetch_latency < 0:
        raise SpecError("times must be non-negative")
    floor = max(compute_time, transfer_time)
    return max(1, math.ceil((fetch_latency + transfer_time) / floor))


def kv_stream_efficiency(
    kv_bytes_per_iteration: float,
    iteration_compute_time: float,
    link_bandwidth: float,
    link_latency: float,
    chunks: int = 16,
    depth: int = 4,
) -> float:
    """Efficiency of streaming a KV cache over the fabric during decode.

    The disaggregated-memory scenario: each decode iteration streams its KV
    reads from a pool in ``chunks`` pipelined pieces while computing.  With
    microsecond-class CPO latency and millisecond-class iterations, small
    depths suffice — the quantitative backing for the paper's prefetch
    claim.
    """
    if kv_bytes_per_iteration < 0 or iteration_compute_time <= 0:
        raise SpecError("sizes/times must be positive")
    if link_bandwidth <= 0 or chunks <= 0:
        raise SpecError("bandwidth and chunks must be positive")
    per_chunk_bytes = kv_bytes_per_iteration / chunks
    pipeline = PrefetchPipeline(
        compute_time=iteration_compute_time / chunks,
        transfer_time=per_chunk_bytes / link_bandwidth,
        fetch_latency=link_latency,
        depth=depth,
    )
    return pipeline.efficiency
