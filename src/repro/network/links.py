"""Link technologies: copper, pluggable optics, co-packaged optics.

The paper's enabling technology bet (Section 1): *"driven by recent advances
in co-packaged optics ... off-package communication bandwidth [will] improve
by 1-2 orders of magnitude with much better reach (10s of meters)"*, at much
better energy per bit than pluggable optics because the electrical signalling
distance shrinks to millimetres.

:class:`LinkSpec` captures the envelope numbers that matter to the models:
usable bandwidth per link/port, one-way latency, reach, energy per bit, and
cost per port.  Three representative technologies are registered; envelope
values follow the surveys the paper cites (Minkenberg et al., Tan et al.).
"""

from __future__ import annotations

from dataclasses import dataclass

from .._registry import Registry
from ..errors import SpecError
from ..units import GB_PER_S, NS, PJ, US


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link technology.

    ``bandwidth`` bytes/s per port (one direction), ``latency`` seconds of
    one-way propagation + SerDes, ``reach_m`` maximum cable run, ``pj_per_bit``
    end-to-end link energy, ``cost_per_port_usd`` transceiver economics.
    """

    name: str
    bandwidth: float
    latency: float
    reach_m: float
    pj_per_bit: float
    cost_per_port_usd: float

    def __post_init__(self) -> None:
        if min(self.bandwidth, self.latency, self.reach_m) <= 0:
            raise SpecError(f"{self.name}: bandwidth, latency, reach must be positive")
        if self.pj_per_bit < 0 or self.cost_per_port_usd < 0:
            raise SpecError(f"{self.name}: energy and cost must be non-negative")

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over the link (latency + serialization)."""
        if nbytes < 0:
            raise SpecError("nbytes must be non-negative")
        return self.latency + nbytes / self.bandwidth

    def energy(self, nbytes: float) -> float:
        """Joules to move ``nbytes``."""
        if nbytes < 0:
            raise SpecError("nbytes must be non-negative")
        return nbytes * 8.0 * self.pj_per_bit * PJ

    def watts_at_line_rate(self) -> float:
        """Power draw of one port running at full rate."""
        return self.bandwidth * 8.0 * self.pj_per_bit * PJ


LINK_TYPES: Registry[LinkSpec] = Registry("link type")


def _register(spec: LinkSpec) -> LinkSpec:
    return LINK_TYPES.register(spec.name, spec)


#: NVLink-class copper: very fast, very short (in-chassis only).
COPPER_NVLINK = _register(
    LinkSpec(
        name="copper-nvlink",
        bandwidth=450 * GB_PER_S,
        latency=300 * NS,
        reach_m=3.0,
        pj_per_bit=5.0,
        cost_per_port_usd=40.0,
    )
)

#: Pluggable optics (OSFP-class): rack-to-rack reach, power hungry.
PLUGGABLE_OPTICS = _register(
    LinkSpec(
        name="pluggable-optics",
        bandwidth=100 * GB_PER_S,
        latency=600 * NS,
        reach_m=100.0,
        pj_per_bit=15.0,
        cost_per_port_usd=550.0,
    )
)

#: Co-packaged optics: the paper's enabler — high bandwidth, tens of metres
#: of reach, and far better energy than pluggables because the electrical
#: path is millimetres.
CPO_OPTICS = _register(
    LinkSpec(
        name="cpo-optics",
        bandwidth=450 * GB_PER_S,
        latency=350 * NS,
        reach_m=50.0,
        pj_per_bit=4.0,
        cost_per_port_usd=220.0,
    )
)


def get_link(name: str) -> LinkSpec:
    """Look up a link technology by name.

    >>> get_link("cpo-optics").reach_m
    50.0
    """
    return LINK_TYPES.get(name)


def cpo_vs_pluggable_energy_gain() -> float:
    """Energy-per-bit advantage of co-packaged over pluggable optics."""
    return PLUGGABLE_OPTICS.pj_per_bit / CPO_OPTICS.pj_per_bit
