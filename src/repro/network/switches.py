"""Switch models: electrical packet switches vs. optical circuit switches.

Section 3 lists the benefits of circuit switching the paper leans on (citing
Sirius): *"(i) more than 50% better energy efficiency, (ii) lower latency,
and (iii) more ports at high bandwidth, which allows for larger and flatter
networks"*.  :class:`SwitchSpec` captures the parameters; the registered
instances encode representative published numbers for a 51.2T-class packet
ASIC and a large optical circuit switch (OCS).

An OCS passes light through without O-E-O conversion: its energy is per-port
(MEMS/actuation) rather than per-bit, its latency is near zero, and its port
bandwidth is bounded by the transceivers, not the switch — hence "more ports
at high bandwidth".  The price is reconfiguration time and no statistical
multiplexing, which the paper argues AI collectives tolerate because traffic
is predictable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SpecError
from ..units import GB_PER_S, NS, PJ, US, WATT


class SwitchKind(enum.Enum):
    """Switching technologies."""

    PACKET = "packet"
    CIRCUIT = "circuit"


@dataclass(frozen=True)
class SwitchSpec:
    """A switch model.

    ``pj_per_bit`` is the per-bit switching energy (0 for pure optical
    paths); ``static_w`` covers fans/control/actuation; ``reconfig_time``
    is the time to change the circuit mapping (packet switches: 0).
    """

    name: str
    kind: SwitchKind
    ports: int
    port_bandwidth: float
    latency: float
    pj_per_bit: float
    static_w: float
    reconfig_time: float
    cost_usd: float

    def __post_init__(self) -> None:
        if self.ports <= 0 or self.port_bandwidth <= 0:
            raise SpecError(f"{self.name}: ports and bandwidth must be positive")
        if self.latency < 0 or self.pj_per_bit < 0 or self.static_w < 0:
            raise SpecError(f"{self.name}: latency/energy must be non-negative")
        if self.reconfig_time < 0 or self.cost_usd < 0:
            raise SpecError(f"{self.name}: reconfig/cost must be non-negative")

    @property
    def aggregate_bandwidth(self) -> float:
        """Total switching capacity (bytes/s)."""
        return self.ports * self.port_bandwidth

    def power_at_utilization(self, utilization: float) -> float:
        """Power (W) at a traffic level of ``utilization`` of capacity."""
        if not 0.0 <= utilization <= 1.0:
            raise SpecError("utilization must be in [0, 1]")
        dynamic = self.aggregate_bandwidth * utilization * 8.0 * self.pj_per_bit * PJ
        return self.static_w + dynamic

    def energy_per_byte(self, utilization: float = 0.6) -> float:
        """Joules per byte switched at a given utilization (amortizing the
        static power over the carried traffic)."""
        if utilization <= 0:
            raise SpecError("utilization must be positive to carry traffic")
        carried = self.aggregate_bandwidth * utilization
        return self.power_at_utilization(utilization) / carried

    def cost_per_gbps(self) -> float:
        """USD per GB/s of switching capacity."""
        return self.cost_usd / (self.aggregate_bandwidth / GB_PER_S)


#: 51.2T-class electrical packet switch (Tomahawk-5-generation envelope).
PACKET_SWITCH_TOR = SwitchSpec(
    name="packet-51.2T",
    kind=SwitchKind.PACKET,
    ports=64,
    port_bandwidth=100 * GB_PER_S,
    latency=600 * NS,
    pj_per_bit=8.0,
    static_w=350.0 * WATT,
    reconfig_time=0.0,
    cost_usd=28000.0,
)

#: Large optical circuit switch (MEMS/OCS; Sirius-class envelope). Per-bit
#: energy is zero (light passes through); power is static actuation/control.
CIRCUIT_SWITCH_OCS = SwitchSpec(
    name="ocs-300",
    kind=SwitchKind.CIRCUIT,
    ports=300,
    port_bandwidth=450 * GB_PER_S,
    latency=30 * NS,
    pj_per_bit=0.0,
    static_w=180.0 * WATT,
    reconfig_time=10 * US,
    cost_usd=45000.0,
)


def circuit_vs_packet_energy_gain(
    circuit: SwitchSpec = CIRCUIT_SWITCH_OCS,
    packet: SwitchSpec = PACKET_SWITCH_TOR,
    utilization: float = 0.6,
) -> float:
    """Fractional energy saving of circuit over packet switching per byte,
    comparing the switches alone.

    With the registered envelopes this is ~0.99 at healthy utilization: an
    OCS never touches the bits, so its energy per byte is just amortized
    actuation power.  See :func:`path_energy_comparison` for the fairer
    end-to-end comparison (the paper's ">50%" claim).

    >>> circuit_vs_packet_energy_gain() > 0.5
    True
    """
    e_circuit = circuit.energy_per_byte(utilization)
    e_packet = packet.energy_per_byte(utilization)
    if e_packet <= 0:
        raise SpecError("packet switch energy per byte must be positive")
    return 1.0 - e_circuit / e_packet


def path_energy_comparison(
    link_pj_per_bit: float = 4.0,
    circuit: SwitchSpec = CIRCUIT_SWITCH_OCS,
    packet: SwitchSpec = PACKET_SWITCH_TOR,
    utilization: float = 0.6,
) -> dict:
    """End-to-end per-bit energy of a GPU-to-GPU hop through one switch.

    Each path pays two transceivers (``link_pj_per_bit`` each) plus the
    switch's per-bit energy at the given utilization.  This is the Sirius-
    style network-level comparison behind Section 3's *"more than 50%
    better energy efficiency"*: with CPO transceivers at 4 pJ/bit the packet
    path costs ~16-17 pJ/bit and the circuit path ~8 pJ/bit.

    Returns {"packet_pj_per_bit", "circuit_pj_per_bit", "saving"}.

    >>> path_energy_comparison()["saving"] > 0.5
    True
    """
    if link_pj_per_bit < 0:
        raise SpecError("link_pj_per_bit must be non-negative")
    transceivers = 2.0 * link_pj_per_bit
    packet_pj = transceivers + packet.energy_per_byte(utilization) / 8.0 * 1e12
    circuit_pj = transceivers + circuit.energy_per_byte(utilization) / 8.0 * 1e12
    return {
        "packet_pj_per_bit": packet_pj,
        "circuit_pj_per_bit": circuit_pj,
        "saving": 1.0 - circuit_pj / packet_pj,
    }
