"""Path computation and hop statistics over topology graphs.

Thin utilities over networkx used by tests and the fabric report: shortest
paths between GPUs, hop-count matrices, and a consistency check that a
topology's analytic :meth:`~repro.network.topology.Topology.hop_count`
agrees with graph-based shortest paths (used as a property test).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

from ..errors import SpecError
from .topology import Topology

#: Above this size an un-bounded dense matrix is O(n^2) hop evaluations and
#: tens of MB; callers must opt in by passing ``max_gpus`` explicitly.
MATRIX_HARD_CAP = 4096


def path_between(topo: Topology, a: int, b: int) -> List[Tuple[str, int]]:
    """Shortest path (node list) between GPUs ``a`` and ``b``.

    >>> from repro.network import FlatCircuitTopology
    >>> path = path_between(FlatCircuitTopology(8), 0, 5)
    >>> path[0], path[-1]
    (('gpu', 0), ('gpu', 5))
    """
    g = topo.graph()
    src, dst = ("gpu", a), ("gpu", b)
    if src not in g or dst not in g:
        raise SpecError(f"GPU index out of range: {a} or {b}")
    return nx.shortest_path(g, src, dst)


def graph_hop_count(topo: Topology, a: int, b: int) -> int:
    """Hop count from the materialized graph (edges on the shortest path)."""
    return len(path_between(topo, a, b)) - 1


def hop_count_matrix(topo: Topology, max_gpus: Optional[int] = None) -> np.ndarray:
    """Dense hop-count matrix over the topology's GPUs (read-only, memoized).

    Uses the topology's analytic hop counts (cheap); the graph-based variant
    exists as a cross-check in the test-suite.

    By default the matrix covers **all** ``topo.n_gpus`` endpoints — the old
    behaviour of silently clipping to the first 64 GPUs made large Lite-GPU
    clusters quietly compute a truncated matrix.  Truncation is now explicit:
    pass ``max_gpus`` to bound the matrix, and an un-bounded request beyond
    :data:`MATRIX_HARD_CAP` raises instead of allocating a giant array.

    Topologies are frozen/hashable, so results up to 1024 endpoints are
    memoized per ``(topology, size)`` (bigger matrices are MBs each and are
    recomputed rather than pinned); the returned array is marked read-only —
    ``.copy()`` it before mutating.
    """
    if max_gpus is None:
        if topo.n_gpus > MATRIX_HARD_CAP:
            raise SpecError(
                f"hop_count_matrix over {topo.n_gpus} GPUs exceeds the "
                f"{MATRIX_HARD_CAP}-GPU cap; pass max_gpus explicitly to truncate"
            )
        n = topo.n_gpus
    else:
        if max_gpus <= 0:
            raise SpecError("max_gpus must be positive")
        n = min(topo.n_gpus, max_gpus)
    if n > _MEMO_MAX_GPUS:
        # Above the memo bound a cached entry would pin MBs per topology for
        # the process lifetime; compute fresh instead of caching.
        return _build_hop_matrix(topo, n)
    return _cached_hop_matrix(topo, n)


#: Matrices up to this size are memoized (int64: ≤ ~8 MiB per entry).
_MEMO_MAX_GPUS = 1024


def _build_hop_matrix(topo: Topology, n: int) -> np.ndarray:
    mat = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        for j in range(i + 1, n):
            mat[i, j] = mat[j, i] = topo.hop_count(i, j)
    mat.setflags(write=False)
    return mat


@lru_cache(maxsize=8)
def _cached_hop_matrix(topo: Topology, n: int) -> np.ndarray:
    return _build_hop_matrix(topo, n)


def hop_matrix_cache_info():
    """Hit/miss statistics of the hop-matrix memo (for tests/benchmarks)."""
    return _cached_hop_matrix.cache_info()


def verify_hop_counts(topo: Topology, samples: int = 16, seed: int = 0) -> bool:
    """Check analytic vs. graph hop counts on random pairs.

    Analytic counts may be conservative upper bounds for topologies whose
    abstract external network is modeled as a single hub; this function
    asserts analytic >= graph and equality for intra-fabric pairs.
    """
    rng = np.random.default_rng(seed)
    n = topo.n_gpus
    for _ in range(samples):
        a, b = int(rng.integers(n)), int(rng.integers(n))
        analytic = topo.hop_count(a, b)
        actual = graph_hop_count(topo, a, b)
        if analytic < actual:
            return False
    return True


def diameter(topo: Topology) -> int:
    """Largest GPU-to-GPU hop count (analytic)."""
    n = topo.n_gpus
    if n == 1:
        return 0
    # Hop counts of the implemented topologies depend only on group/leaf
    # co-location; probing first-vs-others plus one intra-group pair covers
    # all cases, but fall back to a sampled scan for safety.
    worst = 0
    step = max(1, n // 64)
    for a in range(0, n, step):
        worst = max(worst, topo.hop_count(0, a))
    worst = max(worst, topo.hop_count(0, n - 1))
    return worst
