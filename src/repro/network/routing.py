"""Path computation and hop statistics over topology graphs.

Thin utilities over networkx used by tests and the fabric report: shortest
paths between GPUs, hop-count matrices, and a consistency check that a
topology's analytic :meth:`~repro.network.topology.Topology.hop_count`
agrees with graph-based shortest paths (used as a property test).
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx
import numpy as np

from ..errors import SpecError
from .topology import Topology


def path_between(topo: Topology, a: int, b: int) -> List[Tuple[str, int]]:
    """Shortest path (node list) between GPUs ``a`` and ``b``.

    >>> from repro.network import FlatCircuitTopology
    >>> path = path_between(FlatCircuitTopology(8), 0, 5)
    >>> path[0], path[-1]
    (('gpu', 0), ('gpu', 5))
    """
    g = topo.graph()
    src, dst = ("gpu", a), ("gpu", b)
    if src not in g or dst not in g:
        raise SpecError(f"GPU index out of range: {a} or {b}")
    return nx.shortest_path(g, src, dst)


def graph_hop_count(topo: Topology, a: int, b: int) -> int:
    """Hop count from the materialized graph (edges on the shortest path)."""
    return len(path_between(topo, a, b)) - 1


def hop_count_matrix(topo: Topology, max_gpus: int = 64) -> np.ndarray:
    """Dense hop-count matrix for the first ``min(n, max_gpus)`` GPUs.

    Uses the topology's analytic hop counts (cheap); the graph-based variant
    exists as a cross-check in the test-suite.
    """
    n = min(topo.n_gpus, max_gpus)
    mat = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        for j in range(n):
            mat[i, j] = topo.hop_count(i, j)
    return mat


def verify_hop_counts(topo: Topology, samples: int = 16, seed: int = 0) -> bool:
    """Check analytic vs. graph hop counts on random pairs.

    Analytic counts may be conservative upper bounds for topologies whose
    abstract external network is modeled as a single hub; this function
    asserts analytic >= graph and equality for intra-fabric pairs.
    """
    rng = np.random.default_rng(seed)
    n = topo.n_gpus
    for _ in range(samples):
        a, b = int(rng.integers(n)), int(rng.integers(n))
        analytic = topo.hop_count(a, b)
        actual = graph_hop_count(topo, a, b)
        if analytic < actual:
            return False
    return True


def diameter(topo: Topology) -> int:
    """Largest GPU-to-GPU hop count (analytic)."""
    n = topo.n_gpus
    if n == 1:
        return 0
    # Hop counts of the implemented topologies depend only on group/leaf
    # co-location; probing first-vs-others plus one intra-group pair covers
    # all cases, but fall back to a sampled scan for safety.
    worst = 0
    step = max(1, n // 64)
    for a in range(0, n, step):
        worst = max(worst, topo.hop_count(0, a))
    worst = max(worst, topo.hop_count(0, n - 1))
    return worst
