"""Alpha-beta cost models for the collectives tensor parallelism uses.

The paper's workload discussion (Sections 3-4): large models communicate
"through highly efficient collectives to minimize the amount of data
exchanged, e.g., through tensor parallelism".  The performance model charges
each Megatron-style tensor-parallel layer two all-reduces; this module
provides their cost.

The classic alpha-beta model: sending ``S`` bytes over one hop costs
``alpha + S / BW``.  For ring algorithms over ``p`` ranks each with injection
bandwidth ``BW``:

- **ring all-reduce**  : ``2 (p-1) alpha + 2 (p-1)/p * S / BW``
- **ring all-gather**  : ``(p-1) alpha + (p-1)/p * S / BW``
- **ring reduce-scatter**: same as all-gather
- **tree all-reduce**  : ``2 ceil(log2 p) (alpha + S / BW)`` — latency-optimal
  for small messages
- **all-to-all**       : ``(p-1) alpha + (p-1)/p * S / BW`` (full bisection)

``S`` is the *logical* tensor size (all-reduce input; all-gather output).
The per-GPU wire traffic is also reported so fabric power/energy rollups can
integrate it.  A key property the Lite-GPU study hinges on: the bandwidth
term ``(p-1)/p * S / BW`` is nearly independent of ``p``, so quadrupling the
GPU count while quartering per-GPU bandwidth roughly quadruples all-reduce
time — the "Lite" series' network bottleneck in Figure 3a.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import SpecError
from ..units import US


class Collective(enum.Enum):
    """Collective operations with cost models in this module."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_TO_ALL = "all_to_all"
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class CollectiveCost:
    """Result of a collective cost evaluation.

    ``time``: completion time (s); ``wire_bytes_per_gpu``: bytes each rank
    injects into the fabric; ``algorithm``: which schedule produced the time.
    """

    time: float
    wire_bytes_per_gpu: float
    algorithm: str

    @property
    def total_wire_bytes(self) -> float:
        """Aggregate fabric traffic given the per-GPU injection — requires
        the world size, so only meaningful via :func:`total_traffic`."""
        return self.wire_bytes_per_gpu  # per-GPU view; see total_traffic()


def _validate(size_bytes: float, world: int, bw_per_gpu: float, alpha: float) -> None:
    if size_bytes < 0:
        raise SpecError("collective size must be non-negative")
    if world <= 0:
        raise SpecError("world size must be positive")
    if bw_per_gpu <= 0:
        raise SpecError("per-GPU bandwidth must be positive")
    if alpha < 0:
        raise SpecError("alpha must be non-negative")


def all_reduce_cost(
    size_bytes: float,
    world: int,
    bw_per_gpu: float,
    alpha: float = 1.0 * US,
    algorithm: str = "auto",
) -> CollectiveCost:
    """All-reduce of a ``size_bytes`` tensor over ``world`` ranks.

    ``algorithm``: "ring", "tree", or "auto" (best of both — what NCCL's
    tuner effectively does: trees for small/latency-bound messages, rings
    for large/bandwidth-bound ones).

    >>> c = all_reduce_cost(1e6, 8, 450e9)
    >>> c.algorithm
    'ring'
    """
    _validate(size_bytes, world, bw_per_gpu, alpha)
    if world == 1:
        return CollectiveCost(0.0, 0.0, "local")
    ring_time = 2 * (world - 1) * alpha + 2 * (world - 1) / world * size_bytes / bw_per_gpu
    depth = math.ceil(math.log2(world))
    tree_time = 2 * depth * (alpha + size_bytes / bw_per_gpu)
    ring_wire = 2 * (world - 1) / world * size_bytes
    tree_wire = 2 * size_bytes  # up and down the tree
    if algorithm == "ring":
        return CollectiveCost(ring_time, ring_wire, "ring")
    if algorithm == "tree":
        return CollectiveCost(tree_time, tree_wire, "tree")
    if algorithm == "auto":
        if ring_time <= tree_time:
            return CollectiveCost(ring_time, ring_wire, "ring")
        return CollectiveCost(tree_time, tree_wire, "tree")
    raise SpecError(f"unknown all-reduce algorithm '{algorithm}'")


def all_gather_cost(
    size_bytes: float, world: int, bw_per_gpu: float, alpha: float = 1.0 * US
) -> CollectiveCost:
    """Ring all-gather; ``size_bytes`` is the *gathered* (output) size."""
    _validate(size_bytes, world, bw_per_gpu, alpha)
    if world == 1:
        return CollectiveCost(0.0, 0.0, "local")
    time = (world - 1) * alpha + (world - 1) / world * size_bytes / bw_per_gpu
    wire = (world - 1) / world * size_bytes
    return CollectiveCost(time, wire, "ring")


def reduce_scatter_cost(
    size_bytes: float, world: int, bw_per_gpu: float, alpha: float = 1.0 * US
) -> CollectiveCost:
    """Ring reduce-scatter; ``size_bytes`` is the *input* (full) size."""
    _validate(size_bytes, world, bw_per_gpu, alpha)
    if world == 1:
        return CollectiveCost(0.0, 0.0, "local")
    time = (world - 1) * alpha + (world - 1) / world * size_bytes / bw_per_gpu
    wire = (world - 1) / world * size_bytes
    return CollectiveCost(time, wire, "ring")


def all_to_all_cost(
    size_bytes: float, world: int, bw_per_gpu: float, alpha: float = 1.0 * US
) -> CollectiveCost:
    """All-to-all (each rank holds ``size_bytes``, sends (p-1)/p of it).

    Assumes full-bisection fabric (true for the paper's flat optical
    networks); expert-parallel MoE dispatch is the canonical user.
    """
    _validate(size_bytes, world, bw_per_gpu, alpha)
    if world == 1:
        return CollectiveCost(0.0, 0.0, "local")
    time = (world - 1) * alpha + (world - 1) / world * size_bytes / bw_per_gpu
    wire = (world - 1) / world * size_bytes
    return CollectiveCost(time, wire, "direct")


def broadcast_cost(
    size_bytes: float, world: int, bw_per_gpu: float, alpha: float = 1.0 * US
) -> CollectiveCost:
    """Binomial-tree broadcast of ``size_bytes`` from one root."""
    _validate(size_bytes, world, bw_per_gpu, alpha)
    if world == 1:
        return CollectiveCost(0.0, 0.0, "local")
    depth = math.ceil(math.log2(world))
    time = depth * (alpha + size_bytes / bw_per_gpu)
    return CollectiveCost(time, size_bytes, "tree")


def total_traffic(cost: CollectiveCost, world: int) -> float:
    """Aggregate bytes injected into the fabric by all ranks."""
    if world <= 0:
        raise SpecError("world size must be positive")
    return cost.wire_bytes_per_gpu * world


def cost_for(
    op: Collective,
    size_bytes: float,
    world: int,
    bw_per_gpu: float,
    alpha: float = 1.0 * US,
) -> CollectiveCost:
    """Dispatch by :class:`Collective` member."""
    dispatch = {
        Collective.ALL_REDUCE: all_reduce_cost,
        Collective.ALL_GATHER: all_gather_cost,
        Collective.REDUCE_SCATTER: reduce_scatter_cost,
        Collective.ALL_TO_ALL: all_to_all_cost,
        Collective.BROADCAST: broadcast_cost,
    }
    return dispatch[op](size_bytes, world, bw_per_gpu, alpha)
