"""Two-tier design-space screening: fluid over everything, event on survivors.

The fluid backend (:mod:`repro.cluster.fluid`) evaluates one deployment
point in ~10 ms where the event engines take seconds — but it is an
approximation with known relative error.  :func:`screen_then_simulate`
turns that asymmetry into a sweep strategy:

1. **Screen** — run the *fluid* backend over the full grid (milliseconds
   per point, so the whole grid is cheap).
2. **Keep** — the fluid Pareto front (min cost, max quality) widened by a
   relative safety ``margin`` sized to the fluid backend's error bound: a
   point is pruned only if some other point weakly dominates it AND beats
   it by more than the margin on at least one axis.  At ``margin=0`` this
   reduces exactly to the weak Pareto front
   (:func:`repro.core.metrics.pareto_front` record mode).
3. **Promote** — re-run only the survivors under the *event* backend, the
   ground truth the sweep's verdict is read from.

The net effect on the paper's lite-vs-big capacity grids: the event engine
simulates a quarter (or less) of the points while the argbest decision
matches the full event sweep — see ``benchmarks/test_perf_fluid.py`` for
the pinned recovery guarantee.

Errored points (infeasible configs) are carried through with their
``"error"`` field, never promoted, and never abort the screen — matching
:mod:`repro.analysis.sweeps` fault isolation.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.metrics import pareto_front
from ..errors import SpecError
from ..exec.cache import ResultCache
from .sweeps import _run_points, argbest
from .tables import format_table

__all__ = ["ScreeningResult", "screen_then_simulate", "pareto_front"]


def _margin_dominated(
    record: Dict,
    candidates: Sequence[Dict],
    cost: Callable[[Dict], float],
    quality: Callable[[Dict], float],
    margin: float,
) -> bool:
    """Is ``record`` beaten by more than the safety margin by any candidate?

    Weak dominance alone is not enough to prune: the dominating point must
    also be better by a relative ``margin`` on at least one axis, so fluid
    estimation error of up to ~``margin`` cannot evict the true optimum.
    Margins are relative — axes are assumed non-negative (costs, latencies,
    throughputs all are).
    """
    c, q = cost(record), quality(record)
    for other in candidates:
        if other is record:
            continue
        co, qo = cost(other), quality(other)
        if co > c or qo < q:
            continue  # not even weakly dominating
        if margin <= 0.0:
            if co < c or qo > q:
                return True
        elif c > co * (1.0 + margin) or qo > q * (1.0 + margin):
            return True
    return False


@dataclass(frozen=True)
class ScreeningResult:
    """Outcome of a two-tier screen: what was screened, kept, and promoted.

    ``screened`` holds every fluid record (grid order, errored points
    included); ``promoted`` holds the event-backend records of the
    survivors, in screened order.  ``best`` is the event record with the
    best quality — the sweep's verdict, read from ground truth only.
    """

    screened: Tuple[Dict, ...]
    promoted: Tuple[Dict, ...]
    best: Dict
    margin: float
    point_names: Tuple[str, ...]

    @property
    def n_points(self) -> int:
        return len(self.screened)

    @property
    def promotion_fraction(self) -> float:
        """Share of the grid that paid for an event simulation."""
        return len(self.promoted) / max(1, len(self.screened))

    def table(
        self,
        cost: Callable[[Dict], float],
        quality: Callable[[Dict], float],
    ) -> str:
        """Aligned per-point table: fluid estimates, verdict, event truth."""
        promoted_by_point = {
            tuple(r[n] for n in self.point_names): r for r in self.promoted
        }
        best_point = tuple(self.best[n] for n in self.point_names)
        headers = [*self.point_names, "fluid cost", "fluid quality", "tier", "event quality"]
        rows = []
        for record in self.screened:
            point = tuple(record[n] for n in self.point_names)
            event_record = promoted_by_point.get(point)
            if "error" in record:
                rows.append([*point, "error", record["error"][:40], "screened", ""])
                continue
            tier = "promoted" if event_record is not None else "screened"
            if point == best_point:
                tier = "best"
            rows.append(
                [
                    *point,
                    cost(record),
                    quality(record),
                    tier,
                    quality(event_record) if event_record is not None else "",
                ]
            )
        title = (
            f"two-tier screen: {len(self.promoted)}/{len(self.screened)} points promoted "
            f"(margin {self.margin:.0%})"
        )
        return format_table(headers, rows, title=title)


def screen_then_simulate(
    fn: Callable,
    points: Sequence[Dict],
    *,
    cost: Callable[[Dict], float],
    quality: Callable[[Dict], float],
    margin: float = 0.10,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> ScreeningResult:
    """Fluid-screen a grid, event-simulate only the near-Pareto survivors.

    ``fn(backend, *point_values)`` evaluates one grid point under the given
    backend (``"fluid"`` or ``"event"``) — typically a module-level function
    so it pickles under ``workers > 1`` and caches under ``cache``.  Each
    element of ``points`` is an ordered point dict, as produced by the
    :mod:`repro.analysis.sweeps` helpers; values are passed positionally
    after the backend.  ``cost``/``quality`` read the two Pareto axes off a
    finished record (min cost, max quality).

    Returns a :class:`ScreeningResult`; raises
    :class:`~repro.errors.SpecError` when the grid is empty, the margin is
    negative, or every point errors.
    """
    if not points:
        raise SpecError("points must be non-empty")
    if margin < 0.0:
        raise SpecError(f"margin must be non-negative, got {margin}")
    point_names = tuple(points[0].keys())
    screened = _run_points(functools.partial(fn, "fluid"), list(points), workers, cache)
    candidates = [r for r in screened if "error" not in r]
    if not candidates:
        raise SpecError("every screened point errored; nothing to promote")
    survivors = [
        r for r in candidates if not _margin_dominated(r, candidates, cost, quality, margin)
    ]
    promote_points = [{name: r[name] for name in point_names} for r in survivors]
    promoted = _run_points(functools.partial(fn, "event"), promote_points, workers, cache)
    return ScreeningResult(
        screened=tuple(screened),
        promoted=tuple(promoted),
        best=argbest(promoted, quality),
        margin=margin,
        point_names=point_names,
    )
