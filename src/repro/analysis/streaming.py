"""Constant-memory streaming metrics: quantile sketches and reservoirs.

The exact simulation path materializes every completed request and latency
sample before computing percentiles — O(requests) memory, which caps how
long a trace the engine can replay.  This module provides the bounded
accumulators behind ``SimConfig(metrics="streaming")``:

- :class:`QuantileSketch` — a mergeable t-digest-style sketch (Dunning &
  Ertl, arXiv 1902.04023): centroids sized by a ``q·(1-q)`` scale bound,
  so tail quantiles (P99 TTFT/TBT) keep high resolution while the middle
  compresses.  Deterministic (no RNG) and associative under :meth:`merge`
  up to floating-point tolerance — the property sharded simulation needs.
- :class:`ReservoirSampler` — a seeded, mergeable uniform sample of an
  unbounded stream, for distribution-level analysis (histograms, QQ plots)
  where a sketch's centroids are too coarse.
- :class:`StreamingMetrics` — the engine-facing bundle: one sketch per
  latency metric (TTFT, mean TBT, E2E) plus exact integer counters.
  Counters merge bit-exactly across shards; sketch quantiles are estimates
  (≤1% relative error on P50/P99 at 10k+ samples, property-pinned in
  ``tests/analysis/test_streaming.py``).

Everything here is plain Python + numpy, picklable, and free of imports
from the cluster layer, so worker processes can ship sketches back for a
deterministic merge.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SpecError

__all__ = ["QuantileSketch", "ReservoirSampler", "StreamingMetrics"]

#: Unsorted values buffered before a compression pass.  Larger buffers
#: amortize sorting; the sketch's memory bound is ``O(compression + buffer)``.
_BUFFER_LIMIT = 512


class QuantileSketch:
    """Mergeable t-digest-style quantile sketch with bounded memory.

    ``compression`` bounds the resident centroid count (and so the rank
    error, roughly ``q·(1-q)/compression``); 200 keeps P50/P99 within 1%
    relative error on the latency-shaped distributions the simulator
    produces while holding ~2 KiB of state.  ``add`` is amortized O(1);
    ``quantile`` interpolates linearly between centroid midpoints with the
    exact stream min/max as anchors, so Q0/Q1 are exact.

    >>> sketch = QuantileSketch()
    >>> for value in range(1, 10001):
    ...     sketch.add(float(value))
    >>> abs(sketch.quantile(0.5) - 5000.5) / 5000.5 < 0.01
    True
    """

    __slots__ = ("compression", "count", "_sum", "_min", "_max",
                 "_means", "_weights", "_buffer")

    def __init__(self, compression: int = 200) -> None:
        if compression < 20:
            raise SpecError("compression must be at least 20")
        self.compression = int(compression)
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._means: List[float] = []
        self._weights: List[float] = []
        self._buffer: List[float] = []

    @property
    def mean(self) -> float:
        """Exact running mean of the stream (NaN when empty)."""
        return self._sum / self.count if self.count else float("nan")

    def add(self, value: float) -> None:
        """Absorb one observation."""
        value = float(value)
        self.count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._buffer.append(value)
        if len(self._buffer) >= _BUFFER_LIMIT:
            self._flush()

    def extend(self, values: Sequence[float]) -> None:
        """Absorb a batch of observations."""
        for value in values:
            self.add(value)

    def _flush(self) -> None:
        if not self._buffer:
            return
        items = sorted(
            list(zip(self._means, self._weights))
            + [(value, 1.0) for value in self._buffer]
        )
        self._buffer.clear()
        self._set_compressed(items)

    def _set_compressed(self, items: List[Tuple[float, float]]) -> None:
        """Compress ``items`` into the resident centroids, enforcing the cap.

        One pass usually suffices; when tail singletons keep the count above
        ``4·compression`` (they can never pair under a weight limit of 1),
        further passes double the allowed cluster weight until the hard cap
        holds — so memory is strictly bounded, not just bounded-in-practice.
        """
        means, weights = self._compress(items)
        scale = 1.0
        while len(means) > 4 * self.compression:
            scale *= 2.0
            means, weights = self._compress(list(zip(means, weights)), scale)
        self._means, self._weights = means, weights

    def _compress(
        self, items: List[Tuple[float, float]], scale: float = 1.0
    ) -> Tuple[List[float], List[float]]:
        """One merge pass over mean-sorted ``(mean, weight)`` centroids.

        A centroid at mid-quantile ``q`` may hold at most
        ``scale · max(1, 4·total·q·(1-q)/compression)`` weight — small near
        the tails, so extreme quantiles stay sharp (the t-digest size
        bound).
        """
        total = math.fsum(weight for _, weight in items)
        means: List[float] = []
        weights: List[float] = []
        cur_mean, cur_weight = items[0]
        before = 0.0
        for mean, weight in items[1:]:
            q = (before + cur_weight + weight / 2.0) / total
            limit = scale * max(1.0, 4.0 * total * q * (1.0 - q) / self.compression)
            if cur_weight + weight <= limit:
                cur_mean += (mean - cur_mean) * (weight / (cur_weight + weight))
                cur_weight += weight
            else:
                means.append(cur_mean)
                weights.append(cur_weight)
                before += cur_weight
                cur_mean, cur_weight = mean, weight
        means.append(cur_mean)
        weights.append(cur_weight)
        return means, weights

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile of the stream seen so far.

        >>> QuantileSketch().quantile(0.5)  # empty stream
        nan
        """
        if not 0.0 <= q <= 1.0:
            raise SpecError("q must be in [0, 1]")
        self._flush()
        if self.count == 0:
            return float("nan")
        if self.count == 1 or q <= 0.0:
            return self._min if q <= 0.5 or self.count > 1 else self._max
        if q >= 1.0:
            return self._max
        weights = np.asarray(self._weights)
        # Centroid midpoint ranks, anchored by the exact stream extremes at
        # ranks 0 and count: linear interpolation between them.
        mids = np.concatenate(([0.0], np.cumsum(weights) - weights / 2.0, [float(self.count)]))
        means = np.concatenate(([self._min], np.asarray(self._means), [self._max]))
        return float(np.interp(q * self.count, mids, means))

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Vectorized :meth:`quantile` over several ranks."""
        return [self.quantile(q) for q in qs]

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place; returns ``self``).

        Deterministic: merging the same sketches in the same order always
        yields the same centroids; different merge orders agree within the
        sketch's rank-error bound (property-pinned).
        """
        if not isinstance(other, QuantileSketch):
            raise SpecError("can only merge another QuantileSketch")
        other._flush()
        if other.count == 0:
            return self
        self._flush()
        items = sorted(
            list(zip(self._means, self._weights)) + list(zip(other._means, other._weights))
        )
        self.count += other.count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._set_compressed(items)
        return self

    def centroid_count(self) -> int:
        """Resident centroids (the memory bound; for tests/benchmarks)."""
        self._flush()
        return len(self._means)

    def __getstate__(self):
        self._flush()
        return {
            "compression": self.compression, "count": self.count, "sum": self._sum,
            "min": self._min, "max": self._max,
            "means": self._means, "weights": self._weights,
        }

    def __setstate__(self, state) -> None:
        self.compression = state["compression"]
        self.count = state["count"]
        self._sum = state["sum"]
        self._min = state["min"]
        self._max = state["max"]
        self._means = state["means"]
        self._weights = state["weights"]
        self._buffer = []


class ReservoirSampler:
    """Uniform fixed-capacity sample of an unbounded stream (Algorithm R).

    Seeded and therefore deterministic: the same stream under the same seed
    always yields the same sample.  :meth:`merge` draws a capacity-bounded
    sample of the *combined* stream by picking each slot from one side with
    probability proportional to how many items that side has seen.

    >>> r = ReservoirSampler(capacity=8, seed=1)
    >>> for value in range(1000):
    ...     r.add(float(value))
    >>> r.seen, len(r.sample)
    (1000, 8)
    """

    __slots__ = ("capacity", "seen", "sample", "_rng")

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity < 1:
            raise SpecError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.seen = 0
        self.sample: List[float] = []
        self._rng = np.random.default_rng(seed)

    def add(self, value: float) -> None:
        """Absorb one observation, keeping a uniform sample."""
        self.seen += 1
        if len(self.sample) < self.capacity:
            self.sample.append(float(value))
            return
        slot = int(self._rng.integers(0, self.seen))
        if slot < self.capacity:
            self.sample[slot] = float(value)

    def merge(self, other: "ReservoirSampler") -> "ReservoirSampler":
        """Fold ``other`` into this reservoir (in place; returns ``self``)."""
        if not isinstance(other, ReservoirSampler):
            raise SpecError("can only merge another ReservoirSampler")
        if other.seen == 0:
            return self
        if self.seen == 0:
            self.seen, self.sample = other.seen, list(other.sample)
            return self
        total = self.seen + other.seen
        mine = list(self.sample)
        theirs = list(other.sample)
        merged: List[float] = []
        for _ in range(min(self.capacity, total)):
            take_mine = bool(mine) and (
                not theirs or self._rng.random() < self.seen / total
            )
            source = mine if take_mine else theirs
            merged.append(source.pop(int(self._rng.integers(0, len(source)))))
            if not mine and not theirs:
                break
        self.sample = merged
        self.seen = total
        return self

    def percentile(self, q: float) -> float:
        """``numpy.percentile`` over the resident sample (NaN when empty)."""
        if not self.sample:
            return float("nan")
        return float(np.percentile(np.asarray(self.sample), q * 100.0))


class StreamingMetrics:
    """Constant-memory accumulator behind ``SimConfig(metrics="streaming")``.

    One :class:`QuantileSketch` per latency metric plus exact integer
    counters.  Counters merge bit-exactly (integer sums commute); sketch
    quantiles are estimates.  Picklable, so shard workers can return one.
    """

    __slots__ = ("ttft", "tbt", "e2e", "completed", "output_tokens")

    def __init__(self, compression: int = 200) -> None:
        self.ttft = QuantileSketch(compression)
        self.tbt = QuantileSketch(compression)
        self.e2e = QuantileSketch(compression)
        self.completed = 0
        self.output_tokens = 0

    def record(self, ttft: float, mean_tbt: float, e2e: float, output_tokens: int) -> None:
        """Absorb one completed request."""
        self.ttft.add(ttft)
        self.tbt.add(mean_tbt)
        self.e2e.add(e2e)
        self.completed += 1
        self.output_tokens += int(output_tokens)

    def merge(self, other: "StreamingMetrics") -> "StreamingMetrics":
        """Fold another shard's metrics into this one (in place)."""
        if not isinstance(other, StreamingMetrics):
            raise SpecError("can only merge another StreamingMetrics")
        self.ttft.merge(other.ttft)
        self.tbt.merge(other.tbt)
        self.e2e.merge(other.e2e)
        self.completed += other.completed
        self.output_tokens += other.output_tokens
        return self

    @staticmethod
    def merged(parts: Sequence["StreamingMetrics"],
               compression: Optional[int] = None) -> "StreamingMetrics":
        """Merge shard metrics into a fresh accumulator (inputs untouched)."""
        if not parts:
            raise SpecError("cannot merge zero StreamingMetrics")
        out = StreamingMetrics(compression or parts[0].ttft.compression)
        for part in parts:
            out.merge(part)
        return out

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
