"""Analysis helpers: figure/table builders shared by benchmarks and examples.

- :mod:`repro.analysis.figures` — compute every Figure 1/2/3 data series.
- :mod:`repro.analysis.tables` — plain-text table rendering (no plotting
  dependencies; benches print the same rows the paper's figures encode).
- :mod:`repro.analysis.sweeps` — parameter-sweep utilities for ablations.
- :mod:`repro.analysis.screening` — two-tier sweeps: fluid-backend screen
  over the full grid, event-backend promotion of near-Pareto survivors.
- :mod:`repro.analysis.report` — textual experiment reports.
- :mod:`repro.analysis.streaming` — constant-memory metric accumulators
  (quantile sketches, reservoirs) behind ``SimConfig(metrics="streaming")``.
"""

from .figures import (
    fig1_evolution_series,
    fig2_deployment_comparison,
    fig3_series,
    fig3a_prefill_series,
    fig3b_decode_series,
)
from .tables import format_table, table1_rows
from .sweeps import pareto_front, sweep_1d, sweep_grid
from .screening import ScreeningResult, screen_then_simulate
from .report import experiment_report
from .streaming import QuantileSketch, ReservoirSampler, StreamingMetrics

__all__ = [
    "QuantileSketch",
    "ReservoirSampler",
    "StreamingMetrics",
    "fig1_evolution_series",
    "fig2_deployment_comparison",
    "fig3_series",
    "fig3a_prefill_series",
    "fig3b_decode_series",
    "format_table",
    "table1_rows",
    "pareto_front",
    "sweep_1d",
    "sweep_grid",
    "ScreeningResult",
    "screen_then_simulate",
    "experiment_report",
]
