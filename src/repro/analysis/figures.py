"""Builders for every figure's data series.

Each function returns plain dict/list structures so benchmarks can print the
exact rows/series the paper plots, and tests can assert the shapes (who wins,
by roughly what factor, where crossovers fall) without any plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.inference import Phase
from ..core.metrics import normalize_to_baseline
from ..core.roofline import RooflinePolicy
from ..core.search import SearchConstraints, search_best_config
from ..errors import SpecError
from ..hardware.die import DieSpec
from ..hardware.evolution import GPU_GENERATIONS
from ..hardware.gpu import (
    GPUSpec,
    H100,
    LITE,
    LITE_MEMBW,
    LITE_MEMBW_NETBW,
    LITE_NETBW,
    LITE_NETBW_FLOPS,
)
from ..hardware.scaling import LiteScaling, group_properties
from ..hardware.wafer import WaferSpec
from ..hardware.yieldmodel import YieldModel
from ..workloads.models import PAPER_MODELS
from ..workloads.transformer import ModelSpec

#: GPU types in each Figure 3 panel, in the paper's legend order.
FIG3A_GPUS = (H100, LITE, LITE_NETBW, LITE_NETBW_FLOPS)
FIG3B_GPUS = (H100, LITE, LITE_MEMBW, LITE_MEMBW_NETBW)


def fig1_evolution_series() -> List[Dict]:
    """Figure 1: the GPU-generation evolution rows."""
    rows = []
    for gen in GPU_GENERATIONS:
        rows.append(
            {
                "name": gen.name,
                "year": gen.year,
                "dies": gen.compute_dies,
                "die_area_mm2": gen.die_area_mm2,
                "total_area_mm2": gen.total_die_area_mm2,
                "transistors_b": gen.transistors_b,
                "tdp_w": gen.tdp_w,
                "hbm_gb": gen.hbm_gb,
                "mem_bw_gbs": gen.mem_bw_gbs,
                "power_density": gen.power_density_w_mm2,
                "bw_per_area": gen.bw_per_area,
                "packaging": gen.packaging,
            }
        )
    return rows


def fig2_deployment_comparison(
    split: int = 4,
    defect_density: float = 0.10,
) -> Dict:
    """Figure 2: one H100 vs. its Lite-group — yield, cost, shoreline,
    bandwidth-to-compute, power density."""
    if split <= 0:
        raise SpecError("split must be positive")
    scaling = LiteScaling(split=split, mem_bw_boost=1.0, net_bw_boost=1.0)
    group = group_properties(H100, scaling)
    ym = YieldModel.murphy(defect_density)
    wafer = WaferSpec()
    area = H100.die.area_mm2
    lite_area = area / split
    parent_yield = ym(area)
    lite_yield = ym(lite_area)
    parent_cost = wafer.cost_per_good_die(area, ym)
    lite_cost = wafer.cost_per_good_die(lite_area, ym) * split
    return {
        "split": split,
        "parent": H100.name,
        "parent_yield": parent_yield,
        "lite_yield": lite_yield,
        "yield_gain": lite_yield / parent_yield,
        "parent_die_cost": parent_cost,
        "lite_group_die_cost": lite_cost,
        "cost_reduction": 1.0 - lite_cost / parent_cost,
        "shoreline_gain": group["shoreline_gain"],
        # Shoreline scales with sqrt(split); bandwidth-to-compute can rise by
        # the same factor when the surplus is spent on HBM (the paper's "2x"
        # at split=4) — realized by the Lite+MemBW variant.
        "bw_to_compute_potential": group["shoreline_gain"],
        "bw_to_compute_realized": (
            LITE_MEMBW.mem_bytes_per_flop / H100.mem_bytes_per_flop if split == 4 else None
        ),
        "power_density_ratio": group["power_density_ratio"],
        "lite": group["lite"],
    }


def fig3_series(
    phase: Phase | str,
    gpus: Sequence[GPUSpec],
    models: Sequence[ModelSpec] = PAPER_MODELS,
    constraints: SearchConstraints | None = None,
    policy: RooflinePolicy | None = None,
    baseline: str = "H100",
) -> Dict[str, Dict[str, float]]:
    """Generic Figure 3 panel: {model: {gpu: normalized tokens/s/SM}}.

    Values are normalized per model so the baseline GPU reads 1.0, exactly
    as the paper plots.  Raw values are included under the key
    ``"__raw__"`` -> {model: {gpu: tokens/s/SM}}.
    """
    raw: Dict[str, Dict[str, float]] = {}
    for model in models:
        series = {}
        for gpu in gpus:
            result = search_best_config(model, gpu, phase, constraints, policy)
            series[gpu.name] = result.best_tokens_per_s_per_sm
        raw[model.name] = series
    normalized: Dict[str, Dict[str, float]] = {}
    for model_name, series in raw.items():
        normalized[model_name] = normalize_to_baseline(series, baseline)
    normalized["__raw__"] = raw
    return normalized


def fig3a_prefill_series(
    constraints: SearchConstraints | None = None,
    policy: RooflinePolicy | None = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 3a: prompt prefill, normalized tokens/s/SM.

    Legend order: H100, Lite, Lite+NetBW, Lite+NetBW+FLOPS.
    """
    return fig3_series(Phase.PREFILL, FIG3A_GPUS, constraints=constraints, policy=policy)


def fig3b_decode_series(
    constraints: SearchConstraints | None = None,
    policy: RooflinePolicy | None = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 3b: decode, normalized tokens/s/SM.

    Legend order: H100, Lite, Lite+MemBW, Lite+MemBW+NetBW.
    """
    return fig3_series(Phase.DECODE, FIG3B_GPUS, constraints=constraints, policy=policy)
