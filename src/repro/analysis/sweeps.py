"""Parameter-sweep helpers for ablation benchmarks.

Thin, dependency-free utilities: evaluate a callable over one- or
two-dimensional parameter grids and return records suitable for table
rendering or numpy post-processing.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from ..errors import SpecError


def sweep_1d(
    fn: Callable[[object], object],
    values: Sequence,
    name: str = "x",
) -> List[Dict]:
    """Evaluate ``fn`` at each value; returns [{name: v, "result": fn(v)}].

    >>> sweep_1d(lambda x: x * x, [1, 2, 3])
    [{'x': 1, 'result': 1}, {'x': 2, 'result': 4}, {'x': 3, 'result': 9}]
    """
    if not values:
        raise SpecError("values must be non-empty")
    return [{name: v, "result": fn(v)} for v in values]


def sweep_grid(
    fn: Callable[[object, object], object],
    xs: Sequence,
    ys: Sequence,
    x_name: str = "x",
    y_name: str = "y",
) -> List[Dict]:
    """Evaluate ``fn`` over the cross product of ``xs`` and ``ys``."""
    if not xs or not ys:
        raise SpecError("grids must be non-empty")
    records = []
    for x in xs:
        for y in ys:
            records.append({x_name: x, y_name: y, "result": fn(x, y)})
    return records


def argbest(records: Iterable[Dict], key: Callable[[Dict], float], maximize: bool = True) -> Dict:
    """The record with the best ``key`` value."""
    records = list(records)
    if not records:
        raise SpecError("records must be non-empty")
    return max(records, key=key) if maximize else min(records, key=key)
