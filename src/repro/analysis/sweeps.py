"""Parameter-sweep helpers for ablation benchmarks.

Evaluate a callable over one- or two-dimensional parameter grids and return
records suitable for table rendering or numpy post-processing.  Sweeps
route through :func:`repro.exec.runner.run_many`, so they gain three
properties for free:

- **parallelism** — ``workers=N`` fans points across a process pool with
  bit-identical records to the serial run (the callable must then be a
  module-level function or a ``functools.partial`` of one, so it pickles);
- **caching** — pass a :class:`repro.exec.cache.ResultCache` and repeated
  points are read from disk instead of recomputed;
- **fault isolation** — an infeasible point no longer aborts the sweep: its
  record carries an ``"error"`` field (exception type + message) alongside
  the point's coordinates, and :func:`argbest` skips errored records.
"""

from __future__ import annotations

import functools
import hashlib
import types
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.metrics import pareto_front
from ..errors import SpecError
from ..exec.cache import ResultCache
from ..exec.runner import Job, run_many

__all__ = ["sweep_1d", "sweep_grid", "argbest", "pareto_front"]


def _code_fingerprint(code: types.CodeType) -> bytes:
    """Process-stable behavior fingerprint of a code object.

    ``repr(co_consts)`` is NOT stable across processes when a constant is a
    nested code object (its repr embeds a memory address), which would make
    the on-disk cache silently miss on every run for any function containing
    a lambda/inner def — so nested code objects are fingerprinted
    recursively instead of repr'd.
    """
    consts = []
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            consts.append(("code", _code_fingerprint(const)))
        else:
            consts.append(repr(const))
    return code.co_code + repr((consts, code.co_names, code.co_varnames)).encode()


def _callable_id(fn: Callable) -> str:
    """Cache identity of the swept callable: name plus behavior fingerprint.

    Module + qualname alone would alias every same-scope lambda (all are
    ``<lambda>``) and silently hit the wrong cached results, so the key
    also folds in the bytecode/constants fingerprint, closure cell values,
    and defaults.  Unstable ``repr`` content (memory addresses) can only
    make keys miss, never collide — the safe direction for a cache.
    """
    if isinstance(fn, functools.partial):
        return (
            f"partial({_callable_id(fn.func)}, args={fn.args!r}, "
            f"kwargs={sorted((fn.keywords or {}).items())!r})"
        )
    module = getattr(fn, "__module__", "?")
    name = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", None) or repr(fn)
    parts = [f"{module}.{name}"]
    code = getattr(fn, "__code__", None)
    if code is not None:
        parts.append(hashlib.sha256(_code_fingerprint(code)).hexdigest()[:16])
    closure = getattr(fn, "__closure__", None)
    if closure:
        parts.append(repr([cell.cell_contents for cell in closure]))
    defaults = getattr(fn, "__defaults__", None)
    if defaults:
        parts.append(repr(defaults))
    return "|".join(parts)


def _run_points(
    fn: Callable,
    points: List[Dict],
    workers: int,
    cache: Optional[ResultCache],
) -> List[Dict]:
    """Evaluate ``fn`` at each point dict; merge outcomes into records."""
    jobs = []
    for point in points:
        key = None
        if cache is not None:
            # Insertion order, not sorted(): points are passed positionally
            # (fn(*point.values())), so axis-swapped sweeps of the same
            # callable are different computations and must not share keys.
            key = cache.key("sweep", _callable_id(fn), list(point.items()))
        jobs.append(Job(fn=fn, args=tuple(point.values()), key=key, label=repr(point)))
    outcomes = run_many(jobs, workers=workers, cache=cache)
    records = []
    for point, outcome in zip(points, outcomes):
        record = dict(point)
        if outcome.ok:
            record["result"] = outcome.value
        else:
            record["error"] = outcome.error
        records.append(record)
    return records


def sweep_1d(
    fn: Callable[[object], object],
    values: Sequence,
    name: str = "x",
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Dict]:
    """Evaluate ``fn`` at each value; returns [{name: v, "result": fn(v)}].

    A point that raises contributes ``{name: v, "error": "Type: msg"}``
    instead of aborting the sweep.

    >>> sweep_1d(lambda x: x * x, [1, 2, 3])
    [{'x': 1, 'result': 1}, {'x': 2, 'result': 4}, {'x': 3, 'result': 9}]
    """
    if not values:
        raise SpecError("values must be non-empty")
    return _run_points(fn, [{name: v} for v in values], workers, cache)


def sweep_grid(
    fn: Callable[[object, object], object],
    xs: Sequence,
    ys: Sequence,
    x_name: str = "x",
    y_name: str = "y",
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Dict]:
    """Evaluate ``fn`` over the cross product of ``xs`` and ``ys``.

    Row-major point order (``xs`` outer, ``ys`` inner), matching the seed
    helper; errored points carry an ``"error"`` field like :func:`sweep_1d`.
    """
    if not xs or not ys:
        raise SpecError("grids must be non-empty")
    points = [{x_name: x, y_name: y} for x in xs for y in ys]
    return _run_points(fn, points, workers, cache)


def argbest(records: Iterable[Dict], key: Callable[[Dict], float], maximize: bool = True) -> Dict:
    """The non-errored record with the best ``key`` value."""
    records = [r for r in records if "error" not in r]
    if not records:
        raise SpecError("records must contain at least one successful evaluation")
    return max(records, key=key) if maximize else min(records, key=key)
