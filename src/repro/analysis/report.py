"""Textual experiment reports tying model outputs to the paper's claims.

:func:`experiment_report` runs the full reproduction (Table 1, Figures 1-3,
Section 2-3 claims) and renders one document — handy for EXPERIMENTS.md
regeneration and for eyeballing a full run without pytest.
"""

from __future__ import annotations

from typing import Dict, List

from ..cluster.simulator import SimReport
from ..core.roofline import RooflinePolicy
from ..hardware.evolution import evolution_trends
from ..hardware.yieldmodel import yield_gain
from ..hardware.cost import CostModel
from ..network.switches import circuit_vs_packet_energy_gain
from .figures import fig1_evolution_series, fig2_deployment_comparison, fig3a_prefill_series, fig3b_decode_series
from .tables import format_table, render_fig3_panel, render_table1


def simulation_table(reports: Dict[str, SimReport], title: str = "Serving simulation") -> str:
    """Render one row per named :class:`SimReport` (CLI / example output).

    The shared format for comparing deployments or policy bundles: SLO
    metrics (TTFT, TBT), throughput, the failure-recovery counters, and —
    when any report carries cost accounting — the $/Mtoken unit economics.
    A ``backend`` provenance column appears whenever any row came from a
    non-default backend, so fluid estimates are never mistaken for
    event-engine truth.
    """
    with_cost = any(r.usd_cost > 0 for r in reports.values())
    with_backend = any(r.backend != "event" for r in reports.values())
    rows = []
    for name, report in reports.items():
        row = [
            name,
            report.completed,
            f"{report.ttft_p50 * 1e3:.0f}/{report.ttft_p99 * 1e3:.0f}",
            f"{report.tbt_mean * 1e3:.1f}",
            f"{report.e2e_p50:.2f}",
            f"{report.output_tokens_per_s:.0f}",
            report.requeued_on_failure,
            report.restarted_requests,
        ]
        if with_backend:
            row.append(report.backend)
        if with_cost:
            row.append(f"{report.gpu_seconds:.0f}")
            row.append(f"{report.usd_per_mtoken:.2f}")
        rows.append(row)
    headers = [
        "deployment", "done", "TTFT p50/p99 ms", "TBT ms", "e2e p50 s",
        "out tok/s", "requeued", "restarted",
    ]
    if with_backend:
        headers.append("backend")
    if with_cost:
        headers += ["gpu-s", "$/Mtok"]
    return format_table(headers, rows, title=title)


def experiment_report(policy: RooflinePolicy | None = None) -> str:
    """Run every experiment and return the combined text report."""
    policy = policy or RooflinePolicy()
    sections: List[str] = []

    sections.append(render_table1())

    rows = fig1_evolution_series()
    headers = ["name", "year", "dies", "die_area_mm2", "transistors_b", "tdp_w", "mem_bw_gbs"]
    sections.append(
        format_table(
            headers,
            [[r[h] for h in headers] for r in rows],
            title="Figure 1: evolution of data-center GPUs",
        )
    )
    trends = evolution_trends()
    sections.append(
        "trends: transistors x{transistor_growth:.0f}, per-die area x{per_die_area_growth:.2f}, "
        "TDP x{tdp_growth:.1f} over {years} years".format(**trends)
    )

    fig2 = fig2_deployment_comparison()
    sections.append(
        "Figure 2 (1x H100 -> 4x Lite): yield {parent_yield:.3f} -> {lite_yield:.3f} "
        "(x{yield_gain:.2f}), die cost ${parent_die_cost:.0f} -> ${lite_group_die_cost:.0f} "
        "(-{cost_reduction:.0%}), shoreline x{shoreline_gain:.2f}, "
        "bandwidth-to-compute potential x{bw_to_compute_potential:.2f} "
        "(realized by Lite+MemBW: x{bw_to_compute_realized:.2f})".format(**fig2)
    )

    sections.append(render_fig3_panel(fig3a_prefill_series(policy=policy), "Figure 3a: prefill (normalized tokens/s/SM)"))
    sections.append(render_fig3_panel(fig3b_decode_series(policy=policy), "Figure 3b: decode (normalized tokens/s/SM)"))

    sections.append(
        f"Section 2 claims: yield gain at 1/4 area = {yield_gain(814.0, 4):.2f}x (paper: 1.8x); "
        f"silicon cost reduction = {CostModel().cost_reduction():.0%} (paper: ~50%)"
    )
    sections.append(
        f"Section 3 claim: circuit vs packet switching energy saving = "
        f"{circuit_vs_packet_energy_gain():.0%} (paper: >50%)"
    )
    return "\n\n".join(sections)
