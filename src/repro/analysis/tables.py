"""Plain-text table rendering and the Table 1 rows.

Benchmarks print these tables so the regenerated numbers are directly
comparable with the paper; no plotting dependency is required offline.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import SpecError
from ..hardware.gpu import TABLE1_ORDER
from ..units import GB, GB_PER_S, TFLOPS


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned plain-text table.

    >>> lines = format_table(["a", "b"], [[1, 2.5]]).splitlines()
    >>> lines[0].rstrip(), lines[2].rstrip()
    ('a  b', '1  2.5')
    """
    if not headers:
        raise SpecError("headers must be non-empty")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise SpecError("row width does not match headers")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e15:
            return str(int(cell))
        return f"{cell:.4g}" if abs(cell) < 10000 else f"{cell:,.0f}"
    return str(cell)


def table1_rows() -> List[Dict]:
    """The paper's Table 1, regenerated from the GPU registry.

    >>> rows = table1_rows()
    >>> rows[0]["GPU type"], rows[0]["TFLOPS"]
    ('H100', 2000)
    """
    rows = []
    for gpu in TABLE1_ORDER:
        rows.append(
            {
                "GPU type": gpu.name,
                "TFLOPS": round(gpu.peak_flops / TFLOPS),
                "Cap. GB": round(gpu.mem_capacity / GB),
                "Mem BW GB/s": round(gpu.mem_bandwidth / GB_PER_S),
                "Net BW GB/s": gpu.net_bandwidth / GB_PER_S,
                "#Max GPUs": gpu.max_cluster,
            }
        )
    return rows


def render_table1() -> str:
    """Table 1 as printable text."""
    rows = table1_rows()
    headers = list(rows[0].keys())
    return format_table(headers, [[row[h] for h in headers] for row in rows], title="Table 1: GPU configurations")


def render_fig3_panel(series: Dict[str, Dict[str, float]], title: str) -> str:
    """Render a Figure 3 panel's normalized series as a table."""
    models = [k for k in series if k != "__raw__"]
    if not models:
        raise SpecError("series has no model entries")
    gpus = list(series[models[0]].keys())
    rows = []
    for model in models:
        rows.append([model] + [f"{series[model][g]:.3f}" for g in gpus])
    return format_table(["model"] + gpus, rows, title=title)
