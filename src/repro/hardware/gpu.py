"""GPU specifications, including the paper's Table 1 catalogue.

:class:`GPUSpec` holds the capabilities the roofline model consumes (peak
FLOPS, memory capacity/bandwidth, network bandwidth, SM count) plus physical
attributes used by the hardware-economics models (die, TDP).

The module defines all six Table 1 configurations exactly as printed:

======================  ======  ====  =======  ======  =====
GPU type                TFLOPS  Cap.  Mem BW   Net BW  #Max
                                GB    GB/s     GB/s    GPUs
======================  ======  ====  =======  ======  =====
H100                    2000    80    3352     450     8
Lite                    500     20    838      112.5   32
Lite+NetBW              500     20    838      225     32
Lite+NetBW+FLOPS        550     20    419      225     32
Lite+MemBW              500     20    1675     112.5   32
Lite+MemBW+NetBW        500     20    1675     225     32
======================  ======  ====  =======  ======  =====

H100's 2000 TFLOPS corresponds to the FP8 dense datasheet figure; the library
therefore defaults to one byte per weight/KV element (see DESIGN.md §4.1).
Lite variants trade shoreline between memory and network bandwidth and may
overclock ("+FLOPS": 10% higher clock enabled by easier cooling).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .._registry import Registry
from ..errors import SpecError
from ..units import GB, GB_PER_S, TFLOPS, WATT
from .die import DieSpec


@dataclass(frozen=True)
class GPUSpec:
    """A GPU type: performance envelope plus physical attributes.

    All rates are SI (FLOP/s, bytes/s, bytes); ``sms`` is the streaming
    multiprocessor count used for the paper's tokens/s/SM normalization;
    ``max_cluster`` is Table 1's "#Max GPUs" search bound.
    """

    name: str
    peak_flops: float
    mem_capacity: float
    mem_bandwidth: float
    net_bandwidth: float
    sms: int
    max_cluster: int
    die: DieSpec
    tdp: float
    base_clock_ghz: float = 1.98
    #: Size of the tightly-coupled scale-up domain: the NVLink domain for an
    #: H100 (8) or the direct-connect Lite-group of Figure 2 (4 for Lite
    #: variants).  Collectives inside the domain run at ``mesh_bandwidth``;
    #: across domains they use ``net_bandwidth`` per GPU.
    scaleup_domain: int = 8
    #: Per-GPU bandwidth on intra-domain links (bytes/s).  0 means "same as
    #: net_bandwidth" (H100: NVLink *is* the network).  Lite-GPUs get extra
    #: direct-connect shoreline inside their group: one link to each of the
    #: (group-1) neighbours at the network link rate.
    mesh_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if min(self.peak_flops, self.mem_capacity, self.mem_bandwidth, self.net_bandwidth) <= 0:
            raise SpecError(f"{self.name}: rates and capacities must be positive")
        if self.sms <= 0 or self.max_cluster <= 0:
            raise SpecError(f"{self.name}: sms and max_cluster must be positive")
        if self.tdp <= 0 or self.base_clock_ghz <= 0:
            raise SpecError(f"{self.name}: tdp and clock must be positive")
        if self.scaleup_domain <= 0:
            raise SpecError(f"{self.name}: scaleup_domain must be positive")
        if self.mesh_bandwidth < 0:
            raise SpecError(f"{self.name}: mesh_bandwidth must be non-negative")
        if self.mesh_bandwidth == 0.0:
            object.__setattr__(self, "mesh_bandwidth", self.net_bandwidth)

    # --- per-SM and ratio metrics -------------------------------------------

    @property
    def flops_per_sm(self) -> float:
        """Peak FLOP/s per streaming multiprocessor."""
        return self.peak_flops / self.sms

    @property
    def mem_bw_per_sm(self) -> float:
        """Memory bandwidth per SM (bytes/s)."""
        return self.mem_bandwidth / self.sms

    @property
    def net_bw_per_sm(self) -> float:
        """Network bandwidth per SM (bytes/s)."""
        return self.net_bandwidth / self.sms

    @property
    def mem_bytes_per_flop(self) -> float:
        """Memory bandwidth-to-compute ratio (bytes/FLOP); the paper's
        headline Lite-GPU advantage when shoreline is spent on HBM."""
        return self.mem_bandwidth / self.peak_flops

    @property
    def net_bytes_per_flop(self) -> float:
        """Network bandwidth-to-compute ratio (bytes/FLOP)."""
        return self.net_bandwidth / self.peak_flops

    @property
    def ridge_intensity(self) -> float:
        """Roofline ridge point (FLOP/byte): arithmetic intensity above which
        the GPU is compute-bound."""
        return self.peak_flops / self.mem_bandwidth

    @property
    def power_density_w_mm2(self) -> float:
        """TDP per die area (W/mm^2) — the cooling-difficulty proxy."""
        return self.tdp / self.die.area_mm2

    @property
    def hbm_seconds(self) -> float:
        """Time to read the entire HBM once (capacity / bandwidth)."""
        return self.mem_capacity / self.mem_bandwidth

    def with_clock_factor(self, factor: float, name: str | None = None) -> "GPUSpec":
        """A copy with compute clock scaled by ``factor`` (FLOPS scale
        linearly; memory/network bandwidths are unaffected)."""
        if factor <= 0:
            raise SpecError("clock factor must be positive")
        return replace(
            self,
            name=name or f"{self.name}@x{factor:g}",
            peak_flops=self.peak_flops * factor,
            base_clock_ghz=self.base_clock_ghz * factor,
        )

    def describe(self) -> str:
        """One-line summary in Table 1's units."""
        return (
            f"{self.name}: {self.peak_flops / TFLOPS:.0f} TFLOPS, "
            f"{self.mem_capacity / GB:.0f} GB, {self.mem_bandwidth / GB_PER_S:.0f} GB/s mem, "
            f"{self.net_bandwidth / GB_PER_S:.1f} GB/s net, {self.sms} SMs, "
            f"max {self.max_cluster} GPUs"
        )


GPU_TYPES: Registry[GPUSpec] = Registry("GPU type")


def _register(spec: GPUSpec) -> GPUSpec:
    return GPU_TYPES.register(spec.name, spec)


_H100_DIE = DieSpec(area_mm2=814.0)
_LITE_DIE = _H100_DIE.split(4)

#: Baseline: NVIDIA H100 (SXM), FP8 dense numbers as in Table 1.
H100 = _register(
    GPUSpec(
        name="H100",
        peak_flops=2000 * TFLOPS,
        mem_capacity=80 * GB,
        mem_bandwidth=3352 * GB_PER_S,
        net_bandwidth=450 * GB_PER_S,
        sms=132,
        max_cluster=8,
        die=_H100_DIE,
        tdp=700 * WATT,
    )
)

#: Basic Lite-GPU: every H100 capability divided by four.  Lite variants form
#: direct-connect groups of four (Figure 2): three extra mesh links at the
#: network link rate, paid for by the split's 2x shoreline surplus.
LITE = _register(
    GPUSpec(
        name="Lite",
        peak_flops=500 * TFLOPS,
        mem_capacity=20 * GB,
        mem_bandwidth=838 * GB_PER_S,
        net_bandwidth=112.5 * GB_PER_S,
        sms=33,
        max_cluster=32,
        die=_LITE_DIE,
        tdp=175 * WATT,
        scaleup_domain=4,
        mesh_bandwidth=3 * 112.5 * GB_PER_S,
    )
)

#: Lite with doubled network bandwidth (shoreline spent on the network).
LITE_NETBW = _register(
    GPUSpec(
        name="Lite+NetBW",
        peak_flops=500 * TFLOPS,
        mem_capacity=20 * GB,
        mem_bandwidth=838 * GB_PER_S,
        net_bandwidth=225 * GB_PER_S,
        sms=33,
        max_cluster=32,
        die=_LITE_DIE,
        tdp=175 * WATT,
        scaleup_domain=4,
        mesh_bandwidth=3 * 225 * GB_PER_S,
    )
)

#: Lite with doubled network bandwidth and a 10% overclock, trading memory
#: bandwidth away (Table 1 halves it to 419 GB/s) — a prefill specialist.
LITE_NETBW_FLOPS = _register(
    GPUSpec(
        name="Lite+NetBW+FLOPS",
        peak_flops=550 * TFLOPS,
        mem_capacity=20 * GB,
        mem_bandwidth=419 * GB_PER_S,
        net_bandwidth=225 * GB_PER_S,
        sms=33,
        max_cluster=32,
        die=_LITE_DIE,
        tdp=190 * WATT,
        base_clock_ghz=1.98 * 1.1,
        scaleup_domain=4,
        mesh_bandwidth=3 * 225 * GB_PER_S,
    )
)

#: Lite with doubled memory bandwidth (shoreline spent on HBM) — a decode
#: specialist.
LITE_MEMBW = _register(
    GPUSpec(
        name="Lite+MemBW",
        peak_flops=500 * TFLOPS,
        mem_capacity=20 * GB,
        mem_bandwidth=1675 * GB_PER_S,
        net_bandwidth=112.5 * GB_PER_S,
        sms=33,
        max_cluster=32,
        die=_LITE_DIE,
        tdp=175 * WATT,
        scaleup_domain=4,
        mesh_bandwidth=3 * 112.5 * GB_PER_S,
    )
)

#: Decode specialist with doubled network bandwidth as well.
LITE_MEMBW_NETBW = _register(
    GPUSpec(
        name="Lite+MemBW+NetBW",
        peak_flops=500 * TFLOPS,
        mem_capacity=20 * GB,
        mem_bandwidth=1675 * GB_PER_S,
        net_bandwidth=225 * GB_PER_S,
        sms=33,
        max_cluster=32,
        die=_LITE_DIE,
        tdp=175 * WATT,
        scaleup_domain=4,
        mesh_bandwidth=3 * 225 * GB_PER_S,
    )
)

#: Table 1 presentation order.
TABLE1_ORDER = (H100, LITE, LITE_NETBW, LITE_NETBW_FLOPS, LITE_MEMBW, LITE_MEMBW_NETBW)


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU type by name (case / punctuation insensitive).

    >>> get_gpu("lite+membw").mem_bandwidth / 1e9
    1675.0
    """
    return GPU_TYPES.get(name)
