"""Die geometry: area, perimeter ("shoreline"), and their scaling.

Section 2 of the paper rests on a simple geometric fact: *"as the die gets
larger, its area increases faster than its perimeter"*.  The perimeter — the
paper's "shoreline" — bounds how many I/O lanes (HBM PHYs, NVLink SerDes,
optical engines) a die can expose, so area-proportional compute outruns
perimeter-proportional bandwidth.  Conversely, cutting an H100-class die into
four quarters doubles the total perimeter for the same total area, which is
the paper's "2x bandwidth-to-compute" claim.

:class:`DieSpec` models a rectangular die; :func:`shoreline_ratio` computes
the total-perimeter gain of splitting a die into ``n`` equal parts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SpecError

#: Single-exposure lithography reticle limit (mm^2).  Dies above this cannot
#: be manufactured as a single exposure — the hard wall that motivates both
#: multi-die packages (Blackwell) and, in this paper, Lite-GPUs.
RETICLE_LIMIT_MM2 = 858.0


@dataclass(frozen=True)
class DieSpec:
    """A rectangular compute die.

    ``area_mm2`` and ``aspect`` (width/height ratio, >= 1) determine the
    geometry.  H100's die is about 814 mm^2 at roughly 4:3.
    """

    area_mm2: float
    aspect: float = 4.0 / 3.0

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0:
            raise SpecError("die area must be positive")
        if self.aspect < 1.0:
            raise SpecError("aspect is width/height and must be >= 1")

    @property
    def width_mm(self) -> float:
        """Die width in mm (the longer side)."""
        return math.sqrt(self.area_mm2 * self.aspect)

    @property
    def height_mm(self) -> float:
        """Die height in mm (the shorter side)."""
        return math.sqrt(self.area_mm2 / self.aspect)

    @property
    def perimeter_mm(self) -> float:
        """Shoreline: the die perimeter in mm."""
        return 2.0 * (self.width_mm + self.height_mm)

    @property
    def shoreline_per_area(self) -> float:
        """Perimeter-to-area ratio (mm / mm^2); higher favours I/O-rich dies."""
        return self.perimeter_mm / self.area_mm2

    @property
    def within_reticle(self) -> bool:
        """Whether the die fits a single lithography exposure."""
        return self.area_mm2 <= RETICLE_LIMIT_MM2

    def split(self, parts: int) -> "DieSpec":
        """The die of one part when this die is divided into ``parts`` equal
        dies of the same aspect ratio.

        >>> DieSpec(814.0).split(4).area_mm2
        203.5
        """
        if parts <= 0:
            raise SpecError("parts must be positive")
        return DieSpec(area_mm2=self.area_mm2 / parts, aspect=self.aspect)

    def max_shoreline_bandwidth(self, gbps_per_mm: float) -> float:
        """Aggregate off-die bandwidth (bytes/s) the shoreline can host given
        an I/O density in GB/s per mm of die edge.

        Beachfront densities of 100-500 GB/s/mm are representative of modern
        HBM + SerDes escape routing; co-packaged optics pushes this up.
        """
        if gbps_per_mm <= 0:
            raise SpecError("gbps_per_mm must be positive")
        return self.perimeter_mm * gbps_per_mm * 1e9


def shoreline_ratio(parts: int) -> float:
    """Total-perimeter gain from splitting one die into ``parts`` equal dies.

    Each part has area A/n, hence linear dimensions scaled by 1/sqrt(n) and
    perimeter P/sqrt(n); n parts give a total perimeter of sqrt(n) * P.
    Splitting into 4 therefore doubles the total shoreline — the paper's
    "2x the bandwidth-to-compute ratio" for the four-way Lite-H100.

    >>> shoreline_ratio(4)
    2.0
    """
    if parts <= 0:
        raise SpecError("parts must be positive")
    return math.sqrt(parts)
