"""Derive Lite-GPUs from a parent GPU: the Figure 2 construction.

Figure 2 replaces each H100 with four Lite-GPUs.  :func:`derive_lite_gpu`
generalizes the construction to any split factor and shoreline allocation:

- compute, capacity and SMs divide by the split factor;
- each Lite die is the parent die split geometrically, so the *group* of
  Lite dies has ``sqrt(split)`` times the parent's total shoreline;
- that shoreline surplus is allocated between extra memory bandwidth and
  extra network bandwidth via :class:`LiteScaling`;
- an optional overclock (enabled by the lower power density of small dies)
  scales FLOPS.

The exact Table 1 rows are pre-registered in :mod:`repro.hardware.gpu`; this
module exists to *generate* such rows, and to let the ablation benchmarks
sweep split factors and shoreline allocations continuously.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SpecError
from .die import shoreline_ratio
from .gpu import GPUSpec


@dataclass(frozen=True)
class LiteScaling:
    """How to build a Lite-GPU from a parent.

    ``split``: how many Lite-GPUs replace one parent.
    ``mem_bw_boost`` / ``net_bw_boost``: per-GPU bandwidth multipliers applied
    *after* the 1/split division.  The physically available total boost is
    bounded by the shoreline gain ``sqrt(split)``; :meth:`validate` enforces
    a (configurable) budget so that derived GPUs remain buildable.
    ``clock_factor``: compute overclock (1.0 = none).
    """

    split: int = 4
    mem_bw_boost: float = 1.0
    net_bw_boost: float = 1.0
    clock_factor: float = 1.0
    shoreline_budget_slack: float = 1.05  # allow 5% engineering slack

    def __post_init__(self) -> None:
        if self.split <= 0:
            raise SpecError("split must be positive")
        if min(self.mem_bw_boost, self.net_bw_boost) <= 0:
            raise SpecError("bandwidth boosts must be positive")
        if self.clock_factor <= 0:
            raise SpecError("clock_factor must be positive")

    @property
    def shoreline_gain(self) -> float:
        """Per-GPU shoreline gain relative to a 1/split share of the parent:
        each of the ``split`` dies has ``sqrt(split)``x the per-area
        perimeter of the parent."""
        return shoreline_ratio(self.split)

    def shoreline_demand(self, parent: GPUSpec) -> float:
        """Fraction of the per-Lite-GPU shoreline budget this scaling uses.

        Shoreline is consumed proportionally to bandwidth.  A Lite-GPU's
        budget is ``shoreline_gain`` times the parent's per-quarter I/O; the
        demand is the bandwidth-weighted sum of the boosts.
        """
        base_mem = parent.mem_bandwidth / self.split
        base_net = parent.net_bandwidth / self.split
        demanded = base_mem * self.mem_bw_boost + base_net * self.net_bw_boost
        budget = (base_mem + base_net) * self.shoreline_gain
        return demanded / budget

    def validate(self, parent: GPUSpec) -> None:
        """Raise :class:`SpecError` if the scaling over-subscribes shoreline."""
        demand = self.shoreline_demand(parent)
        if demand > self.shoreline_budget_slack:
            raise SpecError(
                f"shoreline over-subscribed: demand {demand:.2f}x of budget "
                f"(split={self.split}, mem x{self.mem_bw_boost:g}, net x{self.net_bw_boost:g})"
            )


def derive_lite_gpu(
    parent: GPUSpec,
    scaling: LiteScaling,
    name: str | None = None,
    validate_shoreline: bool = True,
) -> GPUSpec:
    """Construct a Lite-GPU spec from ``parent`` under ``scaling``.

    >>> from repro.hardware import H100
    >>> lite = derive_lite_gpu(H100, LiteScaling(split=4))
    >>> lite.peak_flops / 1e12
    500.0
    >>> round(lite.mem_bandwidth / 1e9)
    838
    """
    if validate_shoreline:
        scaling.validate(parent)
    split = scaling.split
    sms = max(1, round(parent.sms / split))
    # TDP scales with compute share and (superlinearly) with clock.
    tdp = (parent.tdp / split) * scaling.clock_factor**2
    net_bandwidth = (parent.net_bandwidth / split) * scaling.net_bw_boost
    # The Lite group replacing one parent is a direct-connect mesh
    # (Figure 2): one extra link to each of the (split - 1) neighbours at
    # the network link rate — same convention as the registered Table 1
    # Lite variants.
    mesh_bandwidth = max(1, split - 1) * net_bandwidth if split > 1 else 0.0
    return GPUSpec(
        name=name or f"{parent.name}-Lite/{split}",
        peak_flops=(parent.peak_flops / split) * scaling.clock_factor,
        mem_capacity=parent.mem_capacity / split,
        mem_bandwidth=(parent.mem_bandwidth / split) * scaling.mem_bw_boost,
        net_bandwidth=net_bandwidth,
        sms=sms,
        max_cluster=parent.max_cluster * split,
        die=parent.die.split(split),
        tdp=tdp,
        base_clock_ghz=parent.base_clock_ghz * scaling.clock_factor,
        scaleup_domain=split if split > 1 else parent.scaleup_domain,
        mesh_bandwidth=mesh_bandwidth,
    )


def group_properties(parent: GPUSpec, scaling: LiteScaling) -> dict:
    """Aggregate properties of the Lite group replacing one parent GPU.

    Returns the cluster-level Figure 2 comparison: total FLOPS, total memory
    bandwidth, total shoreline, power density, bandwidth-to-compute gain.
    """
    lite = derive_lite_gpu(parent, scaling, validate_shoreline=False)
    n = scaling.split
    return {
        "lite": lite,
        "count": n,
        "total_flops": lite.peak_flops * n,
        "total_mem_bandwidth": lite.mem_bandwidth * n,
        "total_net_bandwidth": lite.net_bandwidth * n,
        "total_capacity": lite.mem_capacity * n,
        "total_shoreline_mm": lite.die.perimeter_mm * n,
        "parent_shoreline_mm": parent.die.perimeter_mm,
        "shoreline_gain": (lite.die.perimeter_mm * n) / parent.die.perimeter_mm,
        "bw_to_compute_gain": (lite.mem_bytes_per_flop / parent.mem_bytes_per_flop),
        "power_density_ratio": lite.power_density_w_mm2 / parent.power_density_w_mm2,
        "total_tdp": lite.tdp * n,
    }


def max_overclock_from_power_density(parent: GPUSpec, split: int, power_exponent: float = 2.0) -> float:
    """Clock factor at which a Lite-GPU reaches the parent's power density.

    Small dies start at the parent's power density (TDP and area both divide
    by ``split``); headroom comes from easier heat *extraction* per package,
    modeled as the clock factor that keeps per-package power within the
    parent's per-quarter envelope scaled by the perimeter advantage.
    """
    if split <= 0:
        raise SpecError("split must be positive")
    if power_exponent <= 0:
        raise SpecError("power_exponent must be positive")
    headroom = shoreline_ratio(split)  # heat escapes through more edge per area
    return headroom ** (1.0 / power_exponent)
