"""Die-yield models: Poisson, Murphy, Seeds, negative binomial.

The paper claims (Section 2): *"the yield rate can be increased by 1.8x when
a H100-like compute die area is reduced by 1/4th, corresponding to almost 50%
reduction in manufacturing cost"*, citing an online die-yield calculator.
Such calculators implement the standard closed-form defect-limited yield
models reproduced here.  All take the die area ``A`` (mm^2) and a defect
density ``D0`` (defects/cm^2); the dimensionless product ``lambda = A * D0``
drives every model:

- **Poisson**: ``Y = exp(-lambda)`` — pessimistic for large dies (assumes
  perfectly random defects).
- **Murphy**: ``Y = ((1 - exp(-lambda)) / lambda)^2`` — the classic industry
  compromise; this is what reproduces the paper's 1.8x at D0 ~ 0.1/cm^2.
- **Seeds**: ``Y = 1 / (1 + lambda)`` — optimistic (strong clustering).
- **Negative binomial**: ``Y = (1 + lambda/alpha)^(-alpha)`` — generalizes
  the above via the clustering parameter ``alpha`` (alpha -> inf: Poisson;
  alpha = 1: Seeds).

Defect densities are quoted per cm^2 in industry; areas per mm^2.  The
functions handle the conversion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..errors import SpecError
from ..units import MM2_PER_CM2

#: Representative defect density for a mature 4nm/5nm-class process, /cm^2.
DEFAULT_DEFECT_DENSITY = 0.10


def _lambda(area_mm2: float, defect_density_cm2: float) -> float:
    """Expected defect count on a die: area (cm^2) * density (/cm^2)."""
    if area_mm2 <= 0:
        raise SpecError("die area must be positive")
    if defect_density_cm2 < 0:
        raise SpecError("defect density must be non-negative")
    return (area_mm2 / MM2_PER_CM2) * defect_density_cm2


def poisson_yield(area_mm2: float, defect_density_cm2: float = DEFAULT_DEFECT_DENSITY) -> float:
    """Poisson yield ``exp(-A*D0)``."""
    return math.exp(-_lambda(area_mm2, defect_density_cm2))


def murphy_yield(area_mm2: float, defect_density_cm2: float = DEFAULT_DEFECT_DENSITY) -> float:
    """Murphy's yield ``((1 - e^-l)/l)^2`` — the industry-standard model.

    Uses ``expm1`` for numerical accuracy at tiny defect counts, where the
    naive form rounds slightly above 1.0.
    """
    lam = _lambda(area_mm2, defect_density_cm2)
    if lam == 0.0:
        return 1.0
    return min(1.0, (-math.expm1(-lam) / lam) ** 2)


def seeds_yield(area_mm2: float, defect_density_cm2: float = DEFAULT_DEFECT_DENSITY) -> float:
    """Seeds yield ``1/(1+l)`` — optimistic, heavy defect clustering."""
    return 1.0 / (1.0 + _lambda(area_mm2, defect_density_cm2))


def negative_binomial_yield(
    area_mm2: float,
    defect_density_cm2: float = DEFAULT_DEFECT_DENSITY,
    alpha: float = 3.0,
) -> float:
    """Negative-binomial yield ``(1 + l/alpha)^-alpha``.

    ``alpha`` is the defect clustering parameter; 2-4 is typical for modern
    logic processes.
    """
    if alpha <= 0:
        raise SpecError("alpha must be positive")
    lam = _lambda(area_mm2, defect_density_cm2)
    return (1.0 + lam / alpha) ** (-alpha)


@dataclass(frozen=True)
class YieldModel:
    """A named yield model bound to a defect density.

    >>> ym = YieldModel.murphy(defect_density_cm2=0.1)
    >>> round(ym(814.0), 3)   # H100-class die
    0.468
    >>> round(ym(814.0 / 4), 3)
    0.819
    """

    name: str
    fn: Callable[[float], float]
    defect_density_cm2: float

    def __call__(self, area_mm2: float) -> float:
        y = self.fn(area_mm2)
        if not 0.0 <= y <= 1.0:  # pragma: no cover - models guarantee this
            raise SpecError(f"yield model produced {y} outside [0, 1]")
        return y

    @classmethod
    def poisson(cls, defect_density_cm2: float = DEFAULT_DEFECT_DENSITY) -> "YieldModel":
        """Poisson model at the given defect density."""
        return cls("poisson", lambda a: poisson_yield(a, defect_density_cm2), defect_density_cm2)

    @classmethod
    def murphy(cls, defect_density_cm2: float = DEFAULT_DEFECT_DENSITY) -> "YieldModel":
        """Murphy model at the given defect density (library default)."""
        return cls("murphy", lambda a: murphy_yield(a, defect_density_cm2), defect_density_cm2)

    @classmethod
    def seeds(cls, defect_density_cm2: float = DEFAULT_DEFECT_DENSITY) -> "YieldModel":
        """Seeds model at the given defect density."""
        return cls("seeds", lambda a: seeds_yield(a, defect_density_cm2), defect_density_cm2)

    @classmethod
    def negative_binomial(
        cls, defect_density_cm2: float = DEFAULT_DEFECT_DENSITY, alpha: float = 3.0
    ) -> "YieldModel":
        """Negative-binomial model with clustering parameter ``alpha``."""
        return cls(
            f"negbin(alpha={alpha:g})",
            lambda a: negative_binomial_yield(a, defect_density_cm2, alpha),
            defect_density_cm2,
        )


def yield_gain(
    area_mm2: float,
    split: int,
    model: YieldModel | None = None,
) -> float:
    """Yield improvement factor from splitting a die into ``split`` parts.

    This is the paper's headline number: with Murphy at D0 = 0.1/cm^2 and an
    814 mm^2 H100-class die, a 4-way split yields a gain of ~1.75 ("1.8x").

    >>> round(yield_gain(814.0, 4), 2)
    1.75
    """
    if split <= 0:
        raise SpecError("split must be positive")
    model = model or YieldModel.murphy()
    big = model(area_mm2)
    small = model(area_mm2 / split)
    if big == 0.0:
        raise SpecError("parent die yield is zero; gain undefined")
    return small / big
