"""Hardware substrate: dies, yield, wafers, cost, GPUs, power, cooling.

This package makes Section 2's hardware arguments executable:

- :mod:`repro.hardware.die` — die geometry and the area-vs-perimeter
  ("shoreline") scaling at the heart of the bandwidth-to-compute argument.
- :mod:`repro.hardware.yieldmodel` — Poisson / Murphy / Seeds /
  negative-binomial die-yield models (the paper's 1.8x claim).
- :mod:`repro.hardware.wafer` — dies-per-wafer geometry and wafer pricing.
- :mod:`repro.hardware.cost` — manufacturing + packaging cost rollup
  (the paper's ~50% cost-reduction claim).
- :mod:`repro.hardware.gpu` — :class:`GPUSpec` and the Table 1 catalogue.
- :mod:`repro.hardware.scaling` — derive Lite-GPUs from a parent GPU.
- :mod:`repro.hardware.power` — power / DVFS / energy models.
- :mod:`repro.hardware.cooling` — thermal limits, air vs. liquid cooling.
- :mod:`repro.hardware.evolution` — the GPU-generation dataset of Figure 1.
"""

from .die import DieSpec, RETICLE_LIMIT_MM2, shoreline_ratio
from .yieldmodel import (
    YieldModel,
    murphy_yield,
    negative_binomial_yield,
    poisson_yield,
    seeds_yield,
    yield_gain,
)
from .wafer import WaferSpec, dies_per_wafer, good_dies_per_wafer
from .cost import CostBreakdown, CostModel, PackagingTier
from .gpu import (
    GPU_TYPES,
    GPUSpec,
    H100,
    LITE,
    LITE_MEMBW,
    LITE_MEMBW_NETBW,
    LITE_NETBW,
    LITE_NETBW_FLOPS,
    TABLE1_ORDER,
    get_gpu,
)
from .scaling import LiteScaling, derive_lite_gpu
from .power import ClockPolicy, DVFSCurve, PowerModel
from .cooling import CoolingKind, CoolingModel, ThermalEnvironment
from .evolution import GPU_GENERATIONS, GPUGeneration

__all__ = [
    "DieSpec",
    "RETICLE_LIMIT_MM2",
    "shoreline_ratio",
    "YieldModel",
    "murphy_yield",
    "negative_binomial_yield",
    "poisson_yield",
    "seeds_yield",
    "yield_gain",
    "WaferSpec",
    "dies_per_wafer",
    "good_dies_per_wafer",
    "CostBreakdown",
    "CostModel",
    "PackagingTier",
    "GPU_TYPES",
    "GPUSpec",
    "H100",
    "LITE",
    "LITE_MEMBW",
    "LITE_MEMBW_NETBW",
    "LITE_NETBW",
    "LITE_NETBW_FLOPS",
    "TABLE1_ORDER",
    "get_gpu",
    "LiteScaling",
    "derive_lite_gpu",
    "ClockPolicy",
    "DVFSCurve",
    "PowerModel",
    "CoolingKind",
    "CoolingModel",
    "ThermalEnvironment",
    "GPU_GENERATIONS",
    "GPUGeneration",
]
