"""Manufacturing-cost rollup: silicon + packaging + memory + test.

Quantifies Section 2's economics: *"we expect the cost of Lite-GPUs to be
substantially lower due to better hardware yield and lower packaging costs.
While the cost of networking should increase, we expect the net gains to be
positive."*

The model composes:

- **silicon** — wafer cost amortized over *good* dies (:mod:`.wafer` +
  :mod:`.yieldmodel`);
- **packaging** — tiered: advanced 2.5D/CoWoS-class packaging for big
  multi-die parts is disproportionately expensive and has its own assembly
  yield; small single-die packages are cheap and high-yield;
- **memory** — HBM stacks priced per GB (dominant BOM item, scales with
  capacity so it is roughly neutral between one H100 and four Lite-GPUs);
- **test/misc** — flat per-package cost.

Networking cost (optics, switches) is accounted separately in
:mod:`repro.network.fabric` so cluster-level comparisons can include it.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..errors import SpecError
from .wafer import WaferSpec
from .yieldmodel import YieldModel


class PackagingTier(enum.Enum):
    """Packaging technology classes with very different cost/yield points."""

    #: Standard organic-substrate flip-chip; cheap, mature, high yield.
    STANDARD = "standard"
    #: 2.5D silicon interposer (CoWoS-class), required for HBM integration.
    INTERPOSER_2_5D = "2.5d"
    #: Multi-die advanced packaging (CoWoS-L-class, Blackwell-style).
    ADVANCED_MULTI_DIE = "advanced"


#: (base_usd, usd_per_mm2, usd_per_mm2_squared, assembly_yield_area_scale_mm2)
#: Cost grows superlinearly with packaged area (large interposers are
#: disproportionately expensive) and assembly yield decays with area
#: (``exp(-area / scale)``) — both effects favour small packages, which is
#: the paper's "lower packaging costs" argument.
_PACKAGING_PARAMS = {
    PackagingTier.STANDARD: (15.0, 0.05, 0.0, 50_000.0),
    PackagingTier.INTERPOSER_2_5D: (40.0, 0.18, 2.2e-4, 8_000.0),
    PackagingTier.ADVANCED_MULTI_DIE: (100.0, 0.30, 4.0e-4, 5_000.0),
}


@dataclass(frozen=True)
class CostBreakdown:
    """Per-package cost components (USD) and the resulting total."""

    silicon: float
    packaging: float
    memory: float
    test: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.silicon + self.packaging + self.memory + self.test

    def scaled(self, factor: float) -> "CostBreakdown":
        """All components multiplied by ``factor`` (e.g. per-cluster rollup)."""
        return CostBreakdown(
            self.silicon * factor,
            self.packaging * factor,
            self.memory * factor,
            self.test * factor,
        )

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.silicon + other.silicon,
            self.packaging + other.packaging,
            self.memory + other.memory,
            self.test + other.test,
        )


@dataclass(frozen=True)
class CostModel:
    """Composable GPU-package cost model.

    >>> cm = CostModel()
    >>> h100 = cm.package_cost(die_area_mm2=814, hbm_gb=80,
    ...                        tier=PackagingTier.INTERPOSER_2_5D)
    >>> lite = cm.package_cost(die_area_mm2=814 / 4, hbm_gb=20,
    ...                        tier=PackagingTier.INTERPOSER_2_5D)
    >>> lite.silicon * 4 < h100.silicon   # 4 Lite dies cost less silicon
    True
    """

    wafer: WaferSpec = field(default_factory=WaferSpec)
    yield_model: YieldModel = field(default_factory=YieldModel.murphy)
    hbm_usd_per_gb: float = 12.0
    test_usd: float = 40.0

    def silicon_cost(self, die_area_mm2: float) -> float:
        """Silicon cost per good die."""
        return self.wafer.cost_per_good_die(die_area_mm2, self.yield_model)

    def packaging_cost(self, die_area_mm2: float, tier: PackagingTier) -> float:
        """Packaging cost for a package hosting ``die_area_mm2`` of compute
        silicon, including the assembly-yield markup (scrapped assemblies
        waste their inputs)."""
        base, linear, quadratic, yield_scale = _PACKAGING_PARAMS[tier]
        raw = base + linear * die_area_mm2 + quadratic * die_area_mm2**2
        assembly_yield = math.exp(-die_area_mm2 / yield_scale)
        return raw / assembly_yield

    def package_cost(
        self,
        die_area_mm2: float,
        hbm_gb: float,
        tier: PackagingTier = PackagingTier.INTERPOSER_2_5D,
        compute_dies: int = 1,
    ) -> CostBreakdown:
        """Full cost of one GPU package.

        ``compute_dies`` > 1 models Blackwell-style multi-die packages: each
        die pays silicon cost and the whole assembly uses the (more
        expensive) multi-die tier.
        """
        if compute_dies <= 0:
            raise SpecError("compute_dies must be positive")
        if hbm_gb < 0:
            raise SpecError("hbm_gb must be non-negative")
        silicon = compute_dies * self.silicon_cost(die_area_mm2)
        packaging = self.packaging_cost(die_area_mm2 * compute_dies, tier)
        memory = hbm_gb * self.hbm_usd_per_gb
        return CostBreakdown(silicon=silicon, packaging=packaging, memory=memory, test=self.test_usd)

    def equivalent_compute_cost(
        self,
        parent_area_mm2: float,
        split: int,
        parent_hbm_gb: float,
        parent_tier: PackagingTier = PackagingTier.INTERPOSER_2_5D,
        lite_tier: PackagingTier = PackagingTier.INTERPOSER_2_5D,
    ) -> tuple[CostBreakdown, CostBreakdown]:
        """Cost of one parent GPU vs. ``split`` Lite-GPUs of equal total
        compute/memory.  Returns ``(parent, lite_total)`` breakdowns.

        This is the Figure 2 / Section 2 comparison: same aggregate silicon
        area and HBM, very different yield and packaging economics.
        """
        if split <= 0:
            raise SpecError("split must be positive")
        parent = self.package_cost(parent_area_mm2, parent_hbm_gb, parent_tier)
        lite_each = self.package_cost(parent_area_mm2 / split, parent_hbm_gb / split, lite_tier)
        return parent, lite_each.scaled(split)

    def cost_reduction(
        self,
        parent_area_mm2: float = 814.0,
        split: int = 4,
        parent_hbm_gb: float = 80.0,
        silicon_only: bool = True,
    ) -> float:
        """Fractional cost reduction of the Lite option (0.5 = half price).

        With ``silicon_only`` (the paper's framing: "manufacturing cost" of
        the compute die), Murphy at D0=0.1 and a 4-way split of an 814 mm^2
        die gives ~0.52 — the paper's "almost 50% reduction".
        """
        parent, lite = self.equivalent_compute_cost(parent_area_mm2, split, parent_hbm_gb)
        if silicon_only:
            return 1.0 - lite.silicon / parent.silicon
        return 1.0 - lite.total / parent.total
