"""Historical GPU-generation dataset behind Figure 1.

Figure 1 ("Evolution of GPUs in AI clusters") illustrates how data-center
GPUs have scaled: single dies grew to the reticle limit, then packaging
absorbed the growth (HBM stacks, dual-die Blackwell), with power and cooling
following.  This module encodes the public datasheet series so the Figure 1
benchmark can regenerate the trend table, and so tests can assert the trends
the paper's argument depends on (die area saturates; transistors, power and
packaged silicon keep climbing; perimeter-per-area falls).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import SpecError
from .die import DieSpec


@dataclass(frozen=True)
class GPUGeneration:
    """One data-center GPU generation (public datasheet numbers)."""

    name: str
    year: int
    compute_dies: int
    die_area_mm2: float  # per compute die
    transistors_b: float  # billions, whole package
    tdp_w: float
    hbm_gb: float
    mem_bw_gbs: float
    process_nm: float
    packaging: str

    def __post_init__(self) -> None:
        if self.compute_dies <= 0 or self.die_area_mm2 <= 0:
            raise SpecError(f"{self.name}: dies and area must be positive")
        if min(self.transistors_b, self.tdp_w, self.hbm_gb, self.mem_bw_gbs) <= 0:
            raise SpecError(f"{self.name}: datasheet fields must be positive")

    @property
    def total_die_area_mm2(self) -> float:
        """Packaged compute silicon (all dies)."""
        return self.compute_dies * self.die_area_mm2

    @property
    def die(self) -> DieSpec:
        """Geometry of one compute die."""
        return DieSpec(self.die_area_mm2)

    @property
    def power_density_w_mm2(self) -> float:
        """TDP per mm^2 of compute silicon."""
        return self.tdp_w / self.total_die_area_mm2

    @property
    def transistor_density_m_mm2(self) -> float:
        """Million transistors per mm^2 of compute silicon."""
        return self.transistors_b * 1e3 / self.total_die_area_mm2

    @property
    def bw_per_area(self) -> float:
        """Memory bandwidth (GB/s) per mm^2 of compute silicon — falls as
        dies grow (the shoreline squeeze Figure 1 illustrates)."""
        return self.mem_bw_gbs / self.total_die_area_mm2


#: NVIDIA data-center GPU line, public datasheet numbers.
GPU_GENERATIONS: List[GPUGeneration] = [
    GPUGeneration("P100", 2016, 1, 610.0, 15.3, 300.0, 16.0, 732.0, 16.0, "CoWoS + HBM2"),
    GPUGeneration("V100", 2017, 1, 815.0, 21.1, 300.0, 32.0, 900.0, 12.0, "CoWoS + HBM2"),
    GPUGeneration("A100", 2020, 1, 826.0, 54.2, 400.0, 80.0, 2039.0, 7.0, "CoWoS + HBM2e"),
    GPUGeneration("H100", 2022, 1, 814.0, 80.0, 700.0, 80.0, 3352.0, 4.0, "CoWoS + HBM3"),
    GPUGeneration("B200", 2024, 2, 800.0, 208.0, 1000.0, 192.0, 8000.0, 4.0, "CoWoS-L dual-die + HBM3e"),
]


def generation(name: str) -> GPUGeneration:
    """Look up a generation by name."""
    for gen in GPU_GENERATIONS:
        if gen.name.lower() == name.lower():
            return gen
    known = ", ".join(g.name for g in GPU_GENERATIONS)
    raise SpecError(f"unknown GPU generation '{name}'; known: {known}")


def evolution_trends() -> dict:
    """Summary trends across the generation series (Figure 1's story).

    Returns first/last ratios for the quantities the paper's argument uses:
    transistor growth far outpacing die-area growth, power density rising,
    per-area bandwidth pressure.
    """
    first, last = GPU_GENERATIONS[0], GPU_GENERATIONS[-1]
    years = last.year - first.year
    return {
        "years": years,
        "transistor_growth": last.transistors_b / first.transistors_b,
        "total_area_growth": last.total_die_area_mm2 / first.total_die_area_mm2,
        "per_die_area_growth": last.die_area_mm2 / first.die_area_mm2,
        "tdp_growth": last.tdp_w / first.tdp_w,
        "power_density_growth": last.power_density_w_mm2 / first.power_density_w_mm2,
        "mem_bw_growth": last.mem_bw_gbs / first.mem_bw_gbs,
        "dies_per_package_growth": last.compute_dies / first.compute_dies,
    }
