"""Total cost of operation: the analysis the paper defers.

Section 4: *"Further analysis on performance and total cost of operation is
vital for the viability of deploying Lite-GPUs at scale, though it is
out-of-scope for this paper."*  This module builds that analysis from the
pieces the library already has:

- **capex**: GPU packages (yield/packaging cost model, with a street-price
  multiplier), network fabric, and facility cost per provisioned kW;
- **opex**: IT power at a datacenter PUE and electricity price, plus a
  maintenance fraction of capex per year;
- amortization over a service life, producing $/hour and — combined with a
  throughput — $/Mtoken, the operator's actual unit economics.

Everything is explicit and overridable; defaults are representative public
numbers (PUE 1.25, $0.08/kWh, 4-year life).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ..cluster.spec import ClusterSpec
from ..errors import SpecError
from ..units import HOUR, KILOWATT, YEAR
from .cost import CostModel


@dataclass(frozen=True)
class TCOAssumptions:
    """Operator-side economic assumptions."""

    electricity_usd_per_kwh: float = 0.08
    pue: float = 1.25
    amortization_years: float = 4.0
    maintenance_fraction_per_year: float = 0.03
    facility_usd_per_kw: float = 10_000.0  # building + power + cooling plant
    gpu_price_multiplier: float = 4.0  # BOM -> street price
    utilization: float = 0.6  # average fabric/GPU duty

    def __post_init__(self) -> None:
        if min(self.electricity_usd_per_kwh, self.amortization_years) <= 0:
            raise SpecError("electricity price and amortization must be positive")
        if self.pue < 1.0:
            raise SpecError("PUE cannot be below 1.0")
        if not 0.0 <= self.maintenance_fraction_per_year < 1.0:
            raise SpecError("maintenance fraction must be in [0, 1)")
        if self.facility_usd_per_kw < 0 or self.gpu_price_multiplier <= 0:
            raise SpecError("facility cost must be >= 0, price multiplier > 0")
        if not 0.0 < self.utilization <= 1.0:
            raise SpecError("utilization must be in (0, 1]")


@dataclass(frozen=True)
class TCOBreakdown:
    """Amortized hourly cost components (USD/hour)."""

    gpu_capex: float
    network_capex: float
    facility_capex: float
    power_opex: float
    maintenance_opex: float

    @property
    def capex_per_hour(self) -> float:
        """All amortized capital components."""
        return self.gpu_capex + self.network_capex + self.facility_capex

    @property
    def opex_per_hour(self) -> float:
        """All operating components."""
        return self.power_opex + self.maintenance_opex

    @property
    def total_per_hour(self) -> float:
        """Full hourly cost of the deployment."""
        return self.capex_per_hour + self.opex_per_hour

    def usd_per_mtoken(self, tokens_per_s: float) -> float:
        """Unit economics given a sustained throughput."""
        if tokens_per_s <= 0:
            raise SpecError("tokens_per_s must be positive")
        tokens_per_hour = tokens_per_s * 3600.0
        return self.total_per_hour / tokens_per_hour * 1e6


def cluster_tco(
    cluster: ClusterSpec,
    assumptions: TCOAssumptions | None = None,
    cost_model: CostModel | None = None,
) -> TCOBreakdown:
    """Amortized hourly TCO of a cluster.

    >>> from repro.hardware.gpu import H100
    >>> bd = cluster_tco(ClusterSpec(H100, 8))
    >>> bd.total_per_hour > 0
    True
    """
    assumptions = assumptions or TCOAssumptions()
    cost_model = cost_model or CostModel()
    hours = assumptions.amortization_years * YEAR / HOUR

    gpu_capex_usd = cluster.gpu_capex(cost_model, assumptions.gpu_price_multiplier)
    fabric = cluster.fabric_report(assumptions.utilization)
    it_power_w = cluster.gpu_power * assumptions.utilization + fabric.power_w
    wall_power_kw = it_power_w * assumptions.pue / KILOWATT
    facility_usd = (cluster.gpu_power + fabric.power_w) / KILOWATT * assumptions.facility_usd_per_kw

    power_per_hour = wall_power_kw * assumptions.electricity_usd_per_kwh
    maintenance_per_hour = (
        (gpu_capex_usd + fabric.capex_usd)
        * assumptions.maintenance_fraction_per_year
        * (YEAR / HOUR) ** -1
    )
    return TCOBreakdown(
        gpu_capex=gpu_capex_usd / hours,
        network_capex=fabric.capex_usd / hours,
        facility_capex=facility_usd / hours,
        power_opex=power_per_hour,
        maintenance_opex=maintenance_per_hour,
    )


@lru_cache(maxsize=256)
def gpu_hour_rate(
    gpu,
    n_gpus: int,
    assumptions: TCOAssumptions | None = None,
    topology_kind: str = "circuit",
    group: int = 4,
    include_power: bool = False,
) -> float:
    """Amortized USD per GPU-hour of a cluster of ``n_gpus`` of ``gpu``.

    The serving simulator's economics bridge: multiply by the gpu-hours a
    deployment actually *held* (elastic pools hold fewer in the lulls) to
    get its amortized capital cost.  By default the rate covers capex
    (GPU + fabric + facility) and maintenance only — energy is charged
    separately from the simulated joules, so a throttled or drained
    cluster pays less.  ``include_power=True`` folds the TCO model's
    utilization-assumption power back in instead (the static view).

    >>> from repro.hardware.gpu import H100
    >>> gpu_hour_rate(H100, 8) > 0
    True
    """
    assumptions = assumptions or TCOAssumptions()
    n = max(2, int(n_gpus))  # every fabric model needs at least two endpoints
    if topology_kind == "direct":
        n = math.ceil(n / group) * group
    breakdown = cluster_tco(ClusterSpec(gpu, n, topology_kind, group), assumptions)
    per_hour = breakdown.capex_per_hour + breakdown.maintenance_opex
    if include_power:
        per_hour += breakdown.power_opex
    return per_hour / n


def tokens_per_dollar_comparison(
    h100_cluster: ClusterSpec,
    lite_cluster: ClusterSpec,
    h100_tokens_per_s: float,
    lite_tokens_per_s: float,
    assumptions: TCOAssumptions | None = None,
) -> dict:
    """Head-to-head unit economics of two deployments.

    Returns $/Mtoken for each plus the Lite saving fraction — the number the
    paper says decides viability.
    """
    assumptions = assumptions or TCOAssumptions()
    h100 = cluster_tco(h100_cluster, assumptions)
    lite = cluster_tco(lite_cluster, assumptions)
    h100_unit = h100.usd_per_mtoken(h100_tokens_per_s)
    lite_unit = lite.usd_per_mtoken(lite_tokens_per_s)
    return {
        "h100_usd_per_mtoken": h100_unit,
        "lite_usd_per_mtoken": lite_unit,
        "lite_saving": 1.0 - lite_unit / h100_unit,
        "h100_per_hour": h100.total_per_hour,
        "lite_per_hour": lite.total_per_hour,
    }
