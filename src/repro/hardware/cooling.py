"""Thermal and cooling models: air vs. liquid, throttling, overclock headroom.

Section 2: *"smaller packages also greatly reduce complexity of cooling ...
smaller single-die GPUs can be air-cooled separately and even sustain higher
clock frequencies"*; Section 3 adds that lighter per-rack cooling "can
eliminate the need for liquid cooling racks".

The model is a standard thermal-resistance abstraction: junction temperature
``Tj = T_ambient + P * R_theta`` where the junction-to-ambient resistance
``R_theta`` falls with die area (more spreading) and depends on the cooling
technology.  From it we derive: whether a GPU needs liquid cooling, how much
it must throttle under a given ambient, and the sustainable overclock of a
Lite-GPU.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import SpecError
from .gpu import GPUSpec


class CoolingKind(enum.Enum):
    """Cooling technologies with representative thermal performance."""

    AIR = "air"
    LIQUID_COLD_PLATE = "liquid"
    IMMERSION = "immersion"


#: Base junction-to-ambient thermal resistance (K/W) for a reference
#: 800 mm^2-class package under each technology.
_BASE_RESISTANCE_K_PER_W = {
    CoolingKind.AIR: 0.085,
    CoolingKind.LIQUID_COLD_PLATE: 0.040,
    CoolingKind.IMMERSION: 0.030,
}

#: Reference die area for the base resistances above (mm^2).
_REFERENCE_AREA_MM2 = 800.0


@dataclass(frozen=True)
class ThermalEnvironment:
    """Ambient conditions and junction limit for thermal calculations."""

    ambient_c: float = 35.0
    junction_limit_c: float = 90.0

    def __post_init__(self) -> None:
        if self.junction_limit_c <= self.ambient_c:
            raise SpecError("junction limit must exceed ambient")

    @property
    def budget_k(self) -> float:
        """Allowed junction temperature rise (K)."""
        return self.junction_limit_c - self.ambient_c


@dataclass(frozen=True)
class CoolingModel:
    """Thermal model for one GPU package under a cooling technology.

    Thermal resistance scales with 1/sqrt(area): heat spreading improves
    with die size, but sub-linearly — which is exactly why halving die area
    four-fold (area/4, resistance x2) still wins on *power*: TDP drops 4x
    while resistance only doubles, halving the temperature rise.
    """

    kind: CoolingKind = CoolingKind.AIR
    env: ThermalEnvironment = ThermalEnvironment()

    def thermal_resistance(self, die_area_mm2: float) -> float:
        """Junction-to-ambient resistance (K/W) for a die of this area."""
        if die_area_mm2 <= 0:
            raise SpecError("die area must be positive")
        base = _BASE_RESISTANCE_K_PER_W[self.kind]
        return base * math.sqrt(_REFERENCE_AREA_MM2 / die_area_mm2)

    def junction_temp(self, gpu: GPUSpec, power_w: float | None = None) -> float:
        """Steady-state junction temperature (C) at ``power_w`` (default TDP)."""
        power = gpu.tdp if power_w is None else power_w
        if power < 0:
            raise SpecError("power must be non-negative")
        return self.env.ambient_c + power * self.thermal_resistance(gpu.die.area_mm2)

    def max_power(self, gpu: GPUSpec) -> float:
        """Largest dissipation (W) that keeps the junction within limits."""
        return self.env.budget_k / self.thermal_resistance(gpu.die.area_mm2)

    def can_cool(self, gpu: GPUSpec) -> bool:
        """Whether this cooling sustains the GPU at full TDP."""
        return self.max_power(gpu) >= gpu.tdp

    def throttle_factor(self, gpu: GPUSpec, dvfs_exponent: float = 2.4) -> float:
        """Clock factor forced by thermal limits (1.0 = no throttling).

        If TDP exceeds the coolable power, the clock is reduced until power
        (~ clock^exponent) fits the envelope.
        """
        limit = self.max_power(gpu)
        if limit >= gpu.tdp:
            return 1.0
        return (limit / gpu.tdp) ** (1.0 / dvfs_exponent)

    def overclock_headroom(self, gpu: GPUSpec, dvfs_exponent: float = 2.4) -> float:
        """Sustainable overclock factor (>= 1.0) within the thermal envelope.

        This quantifies the paper's "+FLOPS" variants: small dies under the
        same cooling can clock higher before hitting the junction limit.
        """
        limit = self.max_power(gpu)
        if limit <= 0:
            raise SpecError("non-positive cooling limit")
        factor = (limit / gpu.tdp) ** (1.0 / dvfs_exponent)
        return max(1.0, factor)


def rack_cooling_requirement(
    gpu: GPUSpec,
    gpus_per_rack: int,
    air_limit_kw: float = 40.0,
) -> CoolingKind:
    """Decide the rack-level cooling technology.

    Racks above ``air_limit_kw`` of IT load need liquid cooling (the
    GB200-NVL72-style racks the paper says Lite-GPUs could avoid); below it,
    air suffices if each package is individually air-coolable.
    """
    if gpus_per_rack <= 0:
        raise SpecError("gpus_per_rack must be positive")
    rack_kw = gpu.tdp * gpus_per_rack / 1e3
    if rack_kw > air_limit_kw:
        return CoolingKind.LIQUID_COLD_PLATE
    if CoolingModel(CoolingKind.AIR).can_cool(gpu):
        return CoolingKind.AIR
    return CoolingKind.LIQUID_COLD_PLATE
