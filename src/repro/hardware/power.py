"""GPU power and DVFS models.

Section 3's power-management opportunity: a big GPU down-clocks *all* its SMs
together, while a cluster of Lite-GPUs can down-clock (or power-gate) each
small GPU independently — "akin to down-clocking only a portion of SMs in a
larger GPU" — and conversely over-clock a few Lite-GPUs to absorb peaks.

The models here are first-order but standard:

- dynamic power scales as ``f * V^2`` with voltage roughly linear in
  frequency over the DVFS range, so dynamic power ~ f^3 (configurable
  exponent, default 2.4 which matches measured GPU DVFS curves better than
  the cubic ideal);
- static (leakage) power is a constant fraction of TDP and is eliminated
  only by power-gating the whole device — which Lite-GPUs can do at 1/split
  granularity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import SpecError
from .gpu import GPUSpec


class ClockPolicy(enum.Enum):
    """Cluster clocking policies compared in the Section 3 experiments."""

    #: All devices at base clock at all times.
    ALWAYS_BASE = "base"
    #: Scale every device's clock together to match load (big-GPU behaviour).
    UNIFORM_DVFS = "uniform"
    #: Run ceil(load * n) devices at base clock, power-gate the rest
    #: (Lite-GPU behaviour: per-device granularity).
    POWER_GATE = "gate"
    #: Jointly choose the active-device count and their shared clock to
    #: minimize power (gate the rest).  This is the true granularity
    #: advantage: with superlinear DVFS there is an optimal per-device
    #: clock (~0.55 of base for the default curve), and only a fleet of
    #: many small devices can track it closely.
    GATE_PLUS_DVFS = "gate+dvfs"


@dataclass(frozen=True)
class DVFSCurve:
    """Frequency-to-power mapping for one device.

    ``static_fraction`` of TDP is leakage/baseline, burnt whenever the device
    is on; the dynamic remainder scales as ``clock_ratio ** exponent``.
    ``min_clock_ratio`` bounds how far DVFS can go down.
    """

    exponent: float = 2.4
    static_fraction: float = 0.25
    min_clock_ratio: float = 0.4

    def __post_init__(self) -> None:
        if self.exponent < 1.0:
            raise SpecError("DVFS exponent below 1 is unphysical")
        if not 0.0 <= self.static_fraction < 1.0:
            raise SpecError("static_fraction must be in [0, 1)")
        if not 0.0 < self.min_clock_ratio <= 1.0:
            raise SpecError("min_clock_ratio must be in (0, 1]")

    def power_ratio(self, clock_ratio: float) -> float:
        """Power as a fraction of TDP at ``clock_ratio`` of base clock."""
        if clock_ratio == 0.0:
            return 0.0  # power-gated
        if clock_ratio < 0.0:
            raise SpecError("clock_ratio must be non-negative")
        c = max(clock_ratio, self.min_clock_ratio)
        return self.static_fraction + (1.0 - self.static_fraction) * c**self.exponent

    def clock_for_power(self, power_fraction: float) -> float:
        """Largest clock ratio whose power fits ``power_fraction`` of TDP.

        The inverse of :meth:`power_ratio` over the DVFS range: returns a
        clock in ``[min_clock_ratio, 1]`` when the budget is reachable and
        ``0.0`` when even the DVFS floor exceeds it (the caller must then
        power-gate devices instead — exactly the granularity trade the
        power-cap controller makes).

        >>> curve = DVFSCurve()
        >>> curve.clock_for_power(1.0)
        1.0
        >>> curve.clock_for_power(0.0)
        0.0
        """
        if power_fraction < 0:
            raise SpecError("power_fraction must be non-negative")
        if power_fraction >= self.power_ratio(1.0):
            return 1.0
        if power_fraction < self.power_ratio(self.min_clock_ratio):
            return 0.0
        clock = (
            (power_fraction - self.static_fraction) / (1.0 - self.static_fraction)
        ) ** (1.0 / self.exponent)
        return min(1.0, max(self.min_clock_ratio, clock))

    def clock_for_throughput(self, throughput_ratio: float) -> float:
        """Clock ratio needed for ``throughput_ratio`` of base throughput
        (throughput assumed linear in clock, compute-bound)."""
        if not 0.0 <= throughput_ratio <= 1.0:
            raise SpecError("throughput_ratio must be in [0, 1]")
        if throughput_ratio == 0.0:
            return 0.0
        return max(self.min_clock_ratio, throughput_ratio)


@dataclass(frozen=True)
class PowerModel:
    """Power accounting for a homogeneous group of GPUs under a load level.

    ``load`` is the fraction of the group's aggregate base-clock throughput
    demanded (0..1 for the normal range; >1 requires overclocking).
    """

    gpu: GPUSpec
    count: int
    curve: DVFSCurve = DVFSCurve()

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise SpecError("count must be positive")

    @property
    def peak_power(self) -> float:
        """Aggregate TDP of the group (W)."""
        return self.count * self.gpu.tdp

    def power_at_load(self, load: float, policy: ClockPolicy) -> float:
        """Group power (W) serving ``load`` under ``policy``.

        Loads above 1.0 are served by uniform overclocking (all policies),
        with power following the DVFS exponent — valid only for GPU types
        whose cooling admits it (small dies; see :mod:`.cooling`).
        """
        if load < 0:
            raise SpecError("load must be non-negative")
        tdp = self.gpu.tdp
        if load > 1.0:
            return self.count * tdp * self.curve.power_ratio(load)
        if policy is ClockPolicy.ALWAYS_BASE:
            return self.count * tdp * self.curve.power_ratio(1.0)
        if policy is ClockPolicy.UNIFORM_DVFS:
            clock = self.curve.clock_for_throughput(load)
            return self.count * tdp * self.curve.power_ratio(clock)
        active_exact = load * self.count
        if policy is ClockPolicy.POWER_GATE:
            active = int(np.ceil(active_exact))
            return active * tdp * self.curve.power_ratio(1.0)
        if policy is ClockPolicy.GATE_PLUS_DVFS:
            if load == 0.0:
                return 0.0
            # Joint optimum over (active count, shared clock): throughput
            # active * clock must cover load * count; clock in
            # [min_clock, 1].  O(count) scan — exact, and naturally finer
            # for fleets of many small devices.
            best = float("inf")
            lowest = max(1, int(np.ceil(active_exact)))
            for active in range(lowest, self.count + 1):
                clock = max(active_exact / active, self.curve.min_clock_ratio)
                best = min(best, active * tdp * self.curve.power_ratio(clock))
            return best
        raise SpecError(f"unknown policy {policy}")  # pragma: no cover

    def energy_over_profile(self, loads: np.ndarray, interval_s: float, policy: ClockPolicy) -> float:
        """Energy (J) over a load profile sampled every ``interval_s``."""
        if interval_s <= 0:
            raise SpecError("interval_s must be positive")
        return float(sum(self.power_at_load(float(l), policy) for l in loads) * interval_s)

    def savings_vs_base(self, loads: np.ndarray, interval_s: float, policy: ClockPolicy) -> float:
        """Fractional energy saving of ``policy`` vs. ALWAYS_BASE."""
        base = self.energy_over_profile(loads, interval_s, ClockPolicy.ALWAYS_BASE)
        this = self.energy_over_profile(loads, interval_s, policy)
        return 1.0 - this / base if base > 0 else 0.0


def diurnal_load_profile(
    samples: int = 96,
    low: float = 0.25,
    high: float = 0.95,
    peak_hour: float = 14.0,
    seed: int | None = None,
    noise: float = 0.02,
) -> np.ndarray:
    """A smooth 24h load profile (fraction of peak) for power experiments.

    Sinusoidal day/night swing between ``low`` and ``high`` peaking at
    ``peak_hour``, with optional Gaussian noise, clipped to [0, 1].
    """
    if samples <= 0:
        raise SpecError("samples must be positive")
    if not 0.0 <= low <= high <= 1.0:
        raise SpecError("need 0 <= low <= high <= 1")
    hours = np.linspace(0.0, 24.0, samples, endpoint=False)
    phase = (hours - peak_hour) / 24.0 * 2.0 * np.pi
    mid = (low + high) / 2.0
    amp = (high - low) / 2.0
    profile = mid + amp * np.cos(phase)
    if seed is not None and noise > 0:
        rng = np.random.default_rng(seed)
        profile = profile + rng.normal(0.0, noise, size=samples)
    return np.clip(profile, 0.0, 1.0)
