"""Wafer geometry and economics: dies per wafer, good dies, cost per die.

Combines with :mod:`repro.hardware.yieldmodel` to produce the paper's
manufacturing-cost argument.  The standard dies-per-wafer approximation is

    DPW = pi * (d/2)^2 / A  -  pi * d / sqrt(2 * A)

(first term: area ratio; second: edge loss).  Smaller dies waste less wafer
edge, so a 4-way split yields slightly *more* than 4x the dies — another
small advantage compounding the yield gain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SpecError
from .yieldmodel import YieldModel


def dies_per_wafer(area_mm2: float, wafer_diameter_mm: float = 300.0) -> int:
    """Gross dies per wafer by the standard area/edge-loss approximation.

    >>> dies_per_wafer(814.0)
    63
    >>> dies_per_wafer(814.0 / 4)
    300
    """
    if area_mm2 <= 0:
        raise SpecError("die area must be positive")
    if wafer_diameter_mm <= 0:
        raise SpecError("wafer diameter must be positive")
    radius = wafer_diameter_mm / 2.0
    gross = math.pi * radius * radius / area_mm2
    edge_loss = math.pi * wafer_diameter_mm / math.sqrt(2.0 * area_mm2)
    return max(0, int(gross - edge_loss))


def good_dies_per_wafer(
    area_mm2: float,
    yield_model: YieldModel,
    wafer_diameter_mm: float = 300.0,
) -> float:
    """Expected defect-free dies per wafer."""
    return dies_per_wafer(area_mm2, wafer_diameter_mm) * yield_model(area_mm2)


@dataclass(frozen=True)
class WaferSpec:
    """A processed wafer: diameter and foundry price.

    ~17k USD is representative of leading-edge (4nm/5nm-class) 300 mm wafer
    pricing in the paper's timeframe; the absolute number cancels in the
    relative comparisons the paper makes.
    """

    diameter_mm: float = 300.0
    cost_usd: float = 17000.0

    def __post_init__(self) -> None:
        if self.diameter_mm <= 0:
            raise SpecError("wafer diameter must be positive")
        if self.cost_usd < 0:
            raise SpecError("wafer cost must be non-negative")

    def dies(self, area_mm2: float) -> int:
        """Gross dies from one wafer."""
        return dies_per_wafer(area_mm2, self.diameter_mm)

    def good_dies(self, area_mm2: float, yield_model: YieldModel) -> float:
        """Expected good dies from one wafer."""
        return good_dies_per_wafer(area_mm2, yield_model, self.diameter_mm)

    def cost_per_good_die(self, area_mm2: float, yield_model: YieldModel) -> float:
        """Silicon cost (USD) per defect-free die."""
        good = self.good_dies(area_mm2, yield_model)
        if good <= 0:
            raise SpecError("no good dies at this area/yield; cost undefined")
        return self.cost_usd / good
