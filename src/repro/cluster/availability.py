"""Monte-Carlo availability simulation with hot spares.

Section 3: *"One approach to dealing with such rigid, software-imposed GPU
configurations is to include hot spares ... Lite-GPUs can suit this approach
particularly well as a cluster of Lite-GPUs are larger with each additional
Lite-GPU being smaller and cheaper.  This reduces the proportional overhead
of including spare Lite-GPUs."*

The simulation serves ``n_instances`` model instances of ``instance_size``
GPUs each from a fleet with ``spares`` hot spares.  GPUs fail (exponential,
per :class:`~repro.cluster.failures.FailureModel`) and enter repair; a downed
instance swaps the failed GPU for a spare after ``swap_time`` (KV-cache /
weight re-shard time) if one is free, otherwise it waits for the earliest
repair.  Outputs: instance availability, served-capacity fraction, spare
occupancy, and the spare *overhead* (spare silicon as a fraction of serving
silicon) — the quantity the paper argues shrinks with Lite-GPUs.

The event loop is a simple priority queue over failure / repair / swap
events; everything is deterministic given the seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import SimulationError, SpecError
from ..units import HOUR
from .failures import FailureModel


@dataclass(frozen=True)
class SparePolicy:
    """Hot-spare provisioning and swap behaviour."""

    spares: int = 0
    swap_time: float = 120.0  # seconds to re-shard onto a hot spare

    def __post_init__(self) -> None:
        if self.spares < 0:
            raise SpecError("spares must be non-negative")
        if self.swap_time < 0:
            raise SpecError("swap_time must be non-negative")

    def overhead(self, serving_gpus: int) -> float:
        """Spare silicon as a fraction of serving silicon."""
        if serving_gpus <= 0:
            raise SpecError("serving_gpus must be positive")
        return self.spares / serving_gpus


@dataclass(frozen=True)
class AvailabilityResult:
    """Outcome of one availability simulation."""

    horizon: float
    n_instances: int
    instance_size: int
    spares: int
    instance_availability: float
    served_capacity: float
    failures: int
    swaps: int
    mean_outage: float

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.n_instances}x{self.instance_size} GPUs +{self.spares} spares: "
            f"availability {self.instance_availability:.4f}, "
            f"served capacity {self.served_capacity:.4f}, "
            f"{self.failures} failures, {self.swaps} swaps, "
            f"mean outage {self.mean_outage:.0f}s"
        )


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    kind: str = field(compare=False)
    gpu: int = field(compare=False, default=-1)


def simulate_availability(
    n_instances: int,
    instance_size: int,
    model: FailureModel,
    policy: SparePolicy | None = None,
    horizon: float = 30 * 24 * HOUR,
    seed: int = 0,
) -> AvailabilityResult:
    """Simulate ``n_instances`` instances for ``horizon`` seconds.

    Every GPU (serving or spare) fails independently; repaired GPUs join the
    spare pool.  An instance is *down* from the failure of any member GPU
    until a replacement is installed (swap time after a spare frees up).

    >>> r = simulate_availability(2, 4, FailureModel(), SparePolicy(spares=1),
    ...                           horizon=30 * 24 * 3600.0, seed=1)
    >>> 0.0 <= r.instance_availability <= 1.0
    True
    """
    if n_instances <= 0 or instance_size <= 0:
        raise SpecError("n_instances and instance_size must be positive")
    if horizon <= 0:
        raise SpecError("horizon must be positive")
    policy = policy or SparePolicy()
    rng = np.random.default_rng(seed)
    serving = n_instances * instance_size
    total = serving + policy.spares

    seq = itertools.count()
    events: List[_Event] = []

    def schedule(time: float, kind: str, gpu: int = -1) -> None:
        heapq.heappush(events, _Event(time, next(seq), kind, gpu))

    # gpu -> instance id (or None when in the spare pool / repair).
    gpu_instance: List[Optional[int]] = [None] * total
    for inst in range(n_instances):
        for j in range(instance_size):
            gpu_instance[inst * instance_size + j] = inst
    spare_pool: List[int] = list(range(serving, total))
    # instance -> number of missing GPUs; downtime accounting.
    missing = [0] * n_instances
    down_since = [0.0] * n_instances
    downtime = [0.0] * n_instances
    waiting: List[int] = []  # instances waiting for a spare
    outages: List[float] = []

    for gpu in range(total):
        schedule(float(rng.exponential(model.mtbf)), "fail", gpu)

    failures = 0
    swaps = 0
    now = 0.0
    while events:
        event = heapq.heappop(events)
        if event.time > horizon:
            break
        now = event.time

        if event.kind == "fail":
            failures += 1
            inst = gpu_instance[event.gpu]
            if inst is not None:
                gpu_instance[event.gpu] = None
                if missing[inst] == 0:
                    down_since[inst] = now
                missing[inst] += 1
                waiting.append(inst)
            elif event.gpu in spare_pool:
                spare_pool.remove(event.gpu)
            schedule(now + float(rng.exponential(model.mttr)), "repair", event.gpu)

        elif event.kind == "repair":
            spare_pool.append(event.gpu)
            # A repaired GPU re-enters service with a fresh lifetime.
            schedule(now + float(rng.exponential(model.mtbf)), "fail", event.gpu)

        elif event.kind == "swap":
            inst = event.gpu  # reused field: instance id
            missing[inst] -= 1
            if missing[inst] == 0:
                duration = now - down_since[inst]
                downtime[inst] += duration
                outages.append(duration)
            swaps += 1
            continue
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind}")

        # Match waiting instances with free spares.
        while waiting and spare_pool:
            inst = waiting.pop(0)
            spare = spare_pool.pop(0)
            gpu_instance[spare] = inst
            schedule(now + policy.swap_time, "swap", inst)

    # Close out instances still down at the horizon.
    for inst in range(n_instances):
        if missing[inst] > 0:
            downtime[inst] += horizon - down_since[inst]

    total_downtime = sum(downtime)
    instance_time = n_instances * horizon
    availability = 1.0 - total_downtime / instance_time
    return AvailabilityResult(
        horizon=horizon,
        n_instances=n_instances,
        instance_size=instance_size,
        spares=policy.spares,
        instance_availability=availability,
        served_capacity=availability,  # capacity tracks instance uptime
        failures=failures,
        swaps=swaps,
        mean_outage=float(np.mean(outages)) if outages else 0.0,
    )


def spares_for_target(
    n_instances: int,
    instance_size: int,
    model: FailureModel,
    target_availability: float,
    max_spares: int = 64,
    horizon: float = 30 * 24 * HOUR,
    seed: int = 0,
    swap_time: float = 120.0,
) -> Optional[int]:
    """Smallest spare count achieving ``target_availability`` (or None).

    Used by the fault-tolerance benchmark to compare the spare *overhead*
    needed by H100 and Lite fleets for the same availability target.
    """
    if not 0.0 < target_availability < 1.0:
        raise SpecError("target_availability must be in (0, 1)")
    for spares in range(max_spares + 1):
        result = simulate_availability(
            n_instances,
            instance_size,
            model,
            SparePolicy(spares=spares, swap_time=swap_time),
            horizon=horizon,
            seed=seed,
        )
        if result.instance_availability >= target_availability:
            return spares
    return None
