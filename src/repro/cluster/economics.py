"""Serving economics: gpu-seconds, joules, and $/Mtoken from a simulation.

The piece the paper defers ("further analysis on performance and total cost
of operation is vital ... though it is out-of-scope") and the control plane
makes answerable: once pools scale and throttle *inside* the event loop,
the simulator knows exactly how many gpu-seconds a deployment held, at what
clock, and how many tokens that bought.  This module folds those engine
counters into money:

- **capex** — amortized $/GPU-hour from :func:`repro.hardware.tco.gpu_hour_rate`
  (GPU + fabric + facility + maintenance), charged on *provisioned*
  gpu-seconds — warm-up and drain time included, because the GPUs are held;
- **energy** — busy time weighted by the DVFS power ratio in effect when
  each batch ran, plus leakage (``static_fraction`` of TDP) for alive-idle
  time, priced at the electricity rate times PUE;
- **$/Mtoken** — the operator's unit economics over completed output
  tokens, the number the static-vs-elastic Pareto frontiers compare.

Every quantity is a pure function of engine state, so fast/slow engine
modes and parallel sweeps stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..errors import SpecError
from ..hardware.power import DVFSCurve
from ..hardware.tco import TCOAssumptions, gpu_hour_rate
from ..units import HOUR
from .scheduler import InstanceSpec

__all__ = [
    "EconomicsConfig",
    "PoolEconomics",
    "EconomicsReport",
    "pool_economics",
]

_JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class EconomicsConfig:
    """Operator assumptions behind the simulator's cost accounting.

    ``topology_kind``/``group`` pick the fabric the TCO model prices for
    the $/GPU-hour rate (independent of any co-simulated topology — the
    rate is a book value, the co-simulation prices *latency*).
    """

    assumptions: TCOAssumptions = field(default_factory=TCOAssumptions)
    curve: DVFSCurve = field(default_factory=DVFSCurve)
    topology_kind: str = "circuit"
    group: int = 4

    def __post_init__(self) -> None:
        if self.topology_kind not in ("direct", "switched", "circuit"):
            raise SpecError("topology_kind must be direct|switched|circuit")
        if self.group <= 0:
            raise SpecError("group must be positive")


@dataclass(frozen=True)
class PoolEconomics:
    """One pool's resource/energy/cost rollup over a simulation."""

    pool: str
    gpu: str
    gpu_seconds: float  # provisioned (spawn-to-retire) gpu-seconds
    busy_gpu_seconds: float
    energy_joules: float
    usd_capex: float  # amortized capex + maintenance on the gpu-seconds
    usd_energy: float  # simulated joules at the electricity price * PUE

    @property
    def usd(self) -> float:
        """The pool's full cost."""
        return self.usd_capex + self.usd_energy

    @property
    def utilization(self) -> float:
        """Busy fraction of the provisioned gpu-seconds."""
        return self.busy_gpu_seconds / self.gpu_seconds if self.gpu_seconds > 0 else 0.0


@dataclass(frozen=True)
class EconomicsReport:
    """Per-pool detail behind a report's scalar cost fields."""

    pools: Tuple[PoolEconomics, ...]
    duration: float
    output_tokens: int

    @property
    def gpu_seconds(self) -> float:
        """Provisioned gpu-seconds across every pool."""
        return sum(p.gpu_seconds for p in self.pools)

    @property
    def energy_joules(self) -> float:
        """Simulated GPU energy across every pool."""
        return sum(p.energy_joules for p in self.pools)

    @property
    def usd_cost(self) -> float:
        """Full cost (capex amortization + energy) across every pool."""
        return sum(p.usd for p in self.pools)

    @property
    def usd_per_mtoken(self) -> float:
        """Unit economics over completed output tokens (0.0 if none)."""
        if self.output_tokens <= 0:
            return 0.0
        return self.usd_cost / (self.output_tokens / 1e6)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"economics over {self.duration:.1f}s, {self.output_tokens} output tokens:"]
        for p in self.pools:
            lines.append(
                f"  {p.pool}: {p.gpu_seconds:.0f} gpu-s "
                f"({p.utilization:.0%} busy), {p.energy_joules / _JOULES_PER_KWH:.2f} kWh, "
                f"${p.usd:.2f} (${p.usd_capex:.2f} capex + ${p.usd_energy:.2f} energy)"
            )
        lines.append(f"  total ${self.usd_cost:.2f} -> ${self.usd_per_mtoken:.2f}/Mtoken")
        return "\n".join(lines)


def pool_economics(
    pool: str,
    instance_spec: InstanceSpec,
    states: Sequence,
    duration: float,
    config: EconomicsConfig,
) -> PoolEconomics:
    """Roll one pool's engine states up into a :class:`PoolEconomics`.

    ``states`` are engine instance states carrying the lifecycle block
    (``spawned_at``/``retired_at``/``busy_time``/``energy_busy``); the
    provisioned window of each instance is clipped to the report's
    ``duration`` so never-retired instances stop accruing at the clock of
    the last request-affecting event.
    """
    gpu = instance_spec.gpu
    gpi = instance_spec.n_gpus
    alive_s = 0.0
    busy_s = 0.0
    weighted_busy = 0.0  # busy seconds x power_ratio(frequency at run time)
    for state in states:
        end = min(duration, state.retired_at)
        alive = max(0.0, end - state.spawned_at)
        alive_s += alive
        busy = min(state.busy_time, alive)
        busy_s += busy
        # Clip energy by the same ratio as busy time so a batch whose
        # latency overhangs the horizon is not charged energy while its
        # gpu-seconds are excluded ($/Mtoken must compare consistently).
        if state.busy_time > 0:
            weighted_busy += state.energy_busy * (busy / state.busy_time)
    idle_s = max(0.0, alive_s - busy_s)
    energy = gpu.tdp * gpi * (weighted_busy + config.curve.static_fraction * idle_s)
    gpu_seconds = alive_s * gpi
    rate = gpu_hour_rate(
        gpu, len(states) * gpi, config.assumptions, config.topology_kind, config.group
    )
    usd_capex = gpu_seconds / HOUR * rate
    usd_energy = (
        energy
        / _JOULES_PER_KWH
        * config.assumptions.pue
        * config.assumptions.electricity_usd_per_kwh
    )
    return PoolEconomics(
        pool=pool,
        gpu=gpu.name,
        gpu_seconds=gpu_seconds,
        busy_gpu_seconds=busy_s * gpi,
        energy_joules=energy,
        usd_capex=usd_capex,
        usd_energy=usd_energy,
    )
