"""Data-center management: racks, floor space, cooling, and reach.

Section 3 ("Data-center management"): *"With Lite-GPUs, the number of
devices per area is increased, however, the energy per unit area is
decreased ... the overall cooling requirements of the rack can be lighter
due to the more efficient cooling of Lite-GPUs combined with co-packaged
optics.  This can eliminate the need for liquid cooling racks in the
data-center, which comprise a significant portion of racks, and thus space,
in an NVIDIA B200 cluster."*

This module turns those sentences into numbers:

- :class:`RackSpec` / :func:`plan_racks` — how many racks a deployment
  needs, under per-rack power and physical-slot budgets, and whether each
  rack can be air-cooled;
- :func:`floor_plan` — floor space, total power, and cooling mix for a
  whole deployment;
- :func:`reach_check` — whether a link technology's reach covers the
  resulting floor plan (the co-packaged-optics enabler: tens of metres vs
  copper's single rack).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..errors import SpecError
from ..hardware.cooling import CoolingKind, rack_cooling_requirement
from ..hardware.gpu import GPUSpec
from ..network.links import LinkSpec
from ..units import KILOWATT


@dataclass(frozen=True)
class RackSpec:
    """Physical rack budget."""

    max_power_kw: float = 40.0  # air-coolable IT load
    max_liquid_power_kw: float = 130.0  # cold-plate rack budget
    slots: int = 64  # reference-sized GPU packages per rack
    slot_reference_area_mm2: float = 814.0  # the package the slot count assumes
    footprint_m2: float = 2.2  # incl. service clearance
    aisle_overhead: float = 1.8  # hot/cold aisle multiplier on footprint

    def __post_init__(self) -> None:
        if min(self.max_power_kw, self.max_liquid_power_kw) <= 0:
            raise SpecError("rack power budgets must be positive")
        if self.slots <= 0 or self.footprint_m2 <= 0 or self.aisle_overhead < 1.0:
            raise SpecError("slots/footprint/aisle must be positive (aisle >= 1)")
        if self.slot_reference_area_mm2 <= 0:
            raise SpecError("slot_reference_area_mm2 must be positive")

    def physical_slots(self, die_area_mm2: float) -> int:
        """Packages of a given die area that fit the rack physically —
        smaller packages pack denser (board/chassis area tracks die area
        sublinearly; we use a conservative linear scaling capped at 4x)."""
        if die_area_mm2 <= 0:
            raise SpecError("die area must be positive")
        density = min(4.0, self.slot_reference_area_mm2 / die_area_mm2)
        return max(1, int(self.slots * density))


@dataclass(frozen=True)
class RackPlan:
    """One deployment's rack layout."""

    gpu: str
    n_gpus: int
    gpus_per_rack: int
    n_racks: int
    rack_power_kw: float
    cooling: CoolingKind
    floor_m2: float

    @property
    def power_density_kw_m2(self) -> float:
        """IT power per square metre of floor."""
        return self.n_racks * self.rack_power_kw / self.floor_m2

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.n_gpus}x {self.gpu}: {self.n_racks} racks x "
            f"{self.gpus_per_rack} GPUs ({self.rack_power_kw:.0f} kW/rack, "
            f"{self.cooling.value}-cooled), {self.floor_m2:.0f} m^2"
        )


def plan_racks(gpu: GPUSpec, n_gpus: int, rack: RackSpec | None = None) -> RackPlan:
    """Pack a deployment into racks under power and slot budgets.

    GPUs per rack = min(slot limit, air budget / TDP) when that keeps the
    rack air-coolable; otherwise the liquid budget applies.

    >>> from repro.hardware.gpu import LITE
    >>> plan_racks(LITE, 128).cooling.value
    'air'
    """
    if n_gpus <= 0:
        raise SpecError("n_gpus must be positive")
    rack = rack or RackSpec()
    tdp_kw = gpu.tdp / KILOWATT
    slots = rack.physical_slots(gpu.die.area_mm2)
    air_fit = int(rack.max_power_kw / tdp_kw)
    per_rack = min(slots, air_fit)
    if per_rack >= 1 and rack_cooling_requirement(gpu, per_rack, rack.max_power_kw) is CoolingKind.AIR:
        cooling = CoolingKind.AIR
    else:
        per_rack = min(slots, int(rack.max_liquid_power_kw / tdp_kw))
        cooling = CoolingKind.LIQUID_COLD_PLATE
    if per_rack < 1:
        raise SpecError(f"{gpu.name} exceeds even the liquid rack budget")
    n_racks = math.ceil(n_gpus / per_rack)
    floor = n_racks * rack.footprint_m2 * rack.aisle_overhead
    return RackPlan(
        gpu=gpu.name,
        n_gpus=n_gpus,
        gpus_per_rack=per_rack,
        n_racks=n_racks,
        rack_power_kw=per_rack * tdp_kw,
        cooling=cooling,
        floor_m2=floor,
    )


def floor_plan(plans: List[RackPlan]) -> dict:
    """Aggregate a set of rack plans into a data-center summary."""
    if not plans:
        raise SpecError("plans must be non-empty")
    total_racks = sum(p.n_racks for p in plans)
    liquid_racks = sum(p.n_racks for p in plans if p.cooling is not CoolingKind.AIR)
    return {
        "racks": total_racks,
        "liquid_racks": liquid_racks,
        "liquid_fraction": liquid_racks / total_racks,
        "floor_m2": sum(p.floor_m2 for p in plans),
        "power_kw": sum(p.n_racks * p.rack_power_kw for p in plans),
        "gpus": sum(p.n_gpus for p in plans),
    }


def reach_check(plan: RackPlan, link: LinkSpec, row_length_m: float = 1.2) -> bool:
    """Whether ``link`` can connect any two GPUs in the plan's floor area.

    Worst-case cable run approximated as the diagonal of a square floor of
    the plan's area plus one rack height of vertical routing; ``row_length_m``
    is the per-rack pitch used for the sanity floor.

    The punchline: copper (3 m) covers one rack; co-packaged optics (50 m)
    covers hundreds of racks — the flat-network enabler.
    """
    if row_length_m <= 0:
        raise SpecError("row_length_m must be positive")
    if plan.n_racks == 1:
        worst_run = 2.5  # intra-rack: one rack height of routing
    else:
        side = math.sqrt(plan.floor_m2)
        worst_run = math.hypot(side, side) + 2.5  # diagonal + vertical routing
    worst_run = max(worst_run, row_length_m)
    return link.reach_m >= worst_run


def lite_vs_h100_floor(n_h100: int, h100: GPUSpec, lite: GPUSpec, rack: RackSpec | None = None) -> dict:
    """The Section 3 comparison: same compute as racks of H100s vs Lite-GPUs.

    Returns both plans plus the deltas the paper highlights (devices per
    area up, energy per area down, liquid racks eliminated).
    """
    if n_h100 <= 0:
        raise SpecError("n_h100 must be positive")
    split = max(1, round(h100.sms / lite.sms))
    h100_plan = plan_racks(h100, n_h100, rack)
    lite_plan = plan_racks(lite, n_h100 * split, rack)
    return {
        "h100": h100_plan,
        "lite": lite_plan,
        "devices_per_m2_ratio": (
            (lite_plan.n_gpus / lite_plan.floor_m2) / (h100_plan.n_gpus / h100_plan.floor_m2)
        ),
        "power_density_ratio": (
            lite_plan.power_density_kw_m2 / h100_plan.power_density_kw_m2
        ),
        "liquid_eliminated": (
            h100_plan.cooling is not CoolingKind.AIR and lite_plan.cooling is CoolingKind.AIR
        ),
    }
