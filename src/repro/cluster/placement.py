"""Placement: mapping simulator instances onto physical topology GPUs.

The serving simulators reason about *instances* (one tensor-parallel replica
= ``n_gpus`` GPUs); the :mod:`repro.network` package reasons about *GPU
indices* of a concrete topology.  This module is the bridge the paper's
co-design questions need: a :class:`Placement` assigns every instance of
every pool a concrete, disjoint set of GPU indices, so that

- the network-aware service-time provider can price each instance's
  collectives from its *actual* hop distances and link contention
  (:class:`repro.cluster.engine.NetworkAwareServiceTimeProvider`), and
- component-level failures (a link, a switch, a rack power domain) can be
  resolved back onto the instances they take down
  (:func:`repro.cluster.failures.resolve_component_failures`).

Four placers are registered by name:

- ``packed``    — consecutive GPU blocks: TP groups stay inside
  direct-connect groups / leaf domains (minimum hops, shared fate);
- ``scattered`` — maximal stride interleave: every TP group spans the whole
  cluster (maximum hops, minimum correlated blast radius);
- ``random``    — seeded shuffle then consecutive chunks;
- ``greedy``    — hop-minimizing: grow each group around a seed GPU by
  repeatedly adding the free GPU with the smallest total hop distance to
  the members chosen so far.

All placers are deterministic for a given (topology, shapes, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import SpecError
from ..network.topology import Topology

__all__ = [
    "PoolShape",
    "Placement",
    "PLACERS",
    "get_placer",
    "place",
    "placement_hop_stats",
]


@dataclass(frozen=True)
class PoolShape:
    """How many instances a pool needs and how many GPUs each spans."""

    name: str
    n_instances: int
    gpus_per_instance: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("pool name must be non-empty")
        if self.n_instances <= 0 or self.gpus_per_instance <= 0:
            raise SpecError("pool shape counts must be positive")

    @property
    def total_gpus(self) -> int:
        """GPUs the whole pool occupies."""
        return self.n_instances * self.gpus_per_instance


@dataclass(frozen=True)
class Placement:
    """An assignment of pool instances to physical GPU indices.

    ``assignments`` maps each pool name to a tuple of per-instance GPU
    groups; the dataclass is frozen/hashable so it can enter cache keys and
    :func:`repro.exec.seeding.derive_seed` label paths directly.

    >>> p = Placement(8, (("decode", ((0, 1), (2, 3))),))
    >>> p.gpus("decode", 1)
    (2, 3)
    >>> p.affected_instances([3])
    (('decode', 1),)
    """

    n_gpus: int
    assignments: Tuple[Tuple[str, Tuple[Tuple[int, ...], ...]], ...]
    placer: str = "packed"

    def __post_init__(self) -> None:
        if self.n_gpus <= 0:
            raise SpecError("n_gpus must be positive")
        seen: set = set()
        for pool, groups in self.assignments:
            if not groups:
                raise SpecError(f"pool '{pool}' has no instances")
            for group in groups:
                if not group:
                    raise SpecError(f"pool '{pool}' has an empty instance group")
                for gpu in group:
                    if not 0 <= gpu < self.n_gpus:
                        raise SpecError(
                            f"GPU index {gpu} out of range [0, {self.n_gpus}) in pool '{pool}'"
                        )
                    if gpu in seen:
                        raise SpecError(f"GPU {gpu} assigned to more than one instance")
                    seen.add(gpu)

    # --- lookups ---------------------------------------------------------------

    @property
    def pools(self) -> Tuple[str, ...]:
        """Pool names in declaration order."""
        return tuple(pool for pool, _ in self.assignments)

    def groups(self, pool: str) -> Tuple[Tuple[int, ...], ...]:
        """Per-instance GPU groups of one pool."""
        for name, groups in self.assignments:
            if name == pool:
                return groups
        raise SpecError(f"unknown pool '{pool}' (have {', '.join(self.pools)})")

    def gpus(self, pool: str, index: int) -> Tuple[int, ...]:
        """The GPU indices of one instance."""
        groups = self.groups(pool)
        if not 0 <= index < len(groups):
            raise SpecError(f"instance index {index} out of range for pool '{pool}'")
        return groups[index]

    @property
    def total_gpus_used(self) -> int:
        """GPUs claimed by any instance."""
        return sum(len(g) for _, groups in self.assignments for g in groups)

    def affected_instances(self, gpus: Iterable[int]) -> Tuple[Tuple[str, int], ...]:
        """The (pool, instance) pairs touching any of ``gpus`` — the blast
        radius resolution used by component-level failures."""
        hit = set(gpus)
        affected: List[Tuple[str, int]] = []
        for pool, groups in self.assignments:
            for index, group in enumerate(groups):
                if hit.intersection(group):
                    affected.append((pool, index))
        return tuple(affected)

    def describe(self) -> str:
        """One-line summary per pool."""
        lines = []
        for pool, groups in self.assignments:
            spans = ", ".join(f"[{g[0]}..{g[-1]}]" if len(g) > 1 else f"[{g[0]}]" for g in groups)
            lines.append(f"{pool}: {len(groups)} instances on {spans}")
        return "\n".join(lines)


def _require_capacity(topology: Topology, shapes: Sequence[PoolShape]) -> int:
    needed = sum(shape.total_gpus for shape in shapes)
    if needed > topology.n_gpus:
        raise SpecError(
            f"placement needs {needed} GPUs but the topology has {topology.n_gpus}"
        )
    if not shapes:
        raise SpecError("placement needs at least one pool shape")
    return needed


def _chunk(order: Sequence[int], shapes: Sequence[PoolShape]) -> List[Tuple[str, Tuple[Tuple[int, ...], ...]]]:
    """Slice a GPU ordering into per-pool, per-instance groups."""
    assignments: List[Tuple[str, Tuple[Tuple[int, ...], ...]]] = []
    cursor = 0
    for shape in shapes:
        groups: List[Tuple[int, ...]] = []
        for _ in range(shape.n_instances):
            groups.append(tuple(order[cursor : cursor + shape.gpus_per_instance]))
            cursor += shape.gpus_per_instance
        assignments.append((shape.name, tuple(groups)))
    return assignments


def place_packed(topology: Topology, shapes: Sequence[PoolShape], seed: int = 0) -> Placement:
    """Consecutive blocks: instance k gets GPUs [k*w, (k+1)*w)."""
    _require_capacity(topology, shapes)
    return Placement(topology.n_gpus, tuple(_chunk(range(topology.n_gpus), shapes)), "packed")


def place_scattered(topology: Topology, shapes: Sequence[PoolShape], seed: int = 0) -> Placement:
    """Maximal stride: instance j of J gets GPUs j, j+J, j+2J, ...

    Spreads every TP group across the whole cluster — the adversarial
    placement for hop counts and uplink contention, and the most favourable
    one for correlated blast radius.
    """
    _require_capacity(topology, shapes)
    total_instances = sum(shape.n_instances for shape in shapes)
    widths = [shape.gpus_per_instance for shape in shapes for _ in range(shape.n_instances)]
    order: List[int] = []
    for j, width in enumerate(widths):
        order.extend(j + k * total_instances for k in range(width))
    if any(idx >= topology.n_gpus for idx in order):
        raise SpecError(
            "scattered placement needs n_instances * max(gpus_per_instance) "
            f"<= n_gpus ({total_instances} * {max(widths)} > {topology.n_gpus})"
        )
    return Placement(topology.n_gpus, tuple(_chunk(order, shapes)), "scattered")


def place_random(topology: Topology, shapes: Sequence[PoolShape], seed: int = 0) -> Placement:
    """Seeded shuffle of all GPU indices, then consecutive chunks."""
    _require_capacity(topology, shapes)
    rng = np.random.default_rng(seed)
    order = [int(i) for i in rng.permutation(topology.n_gpus)]
    return Placement(topology.n_gpus, tuple(_chunk(order, shapes)), "random")


def place_greedy(topology: Topology, shapes: Sequence[PoolShape], seed: int = 0) -> Placement:
    """Hop-minimizing greedy: grow each group around the lowest free GPU.

    For each instance in declaration order: seed with the smallest free
    index, then repeatedly add the free GPU minimizing the summed hop count
    to the members already chosen (ties break on index).  O(instances *
    width * n_gpus) hop evaluations — fine at simulator scales.
    """
    _require_capacity(topology, shapes)
    free = list(range(topology.n_gpus))
    assignments: List[Tuple[str, Tuple[Tuple[int, ...], ...]]] = []
    for shape in shapes:
        groups: List[Tuple[int, ...]] = []
        for _ in range(shape.n_instances):
            members = [free.pop(0)]
            while len(members) < shape.gpus_per_instance:
                best = min(
                    free,
                    key=lambda g: (sum(topology.hop_count(g, m) for m in members), g),
                )
                free.remove(best)
                members.append(best)
            groups.append(tuple(members))
        assignments.append((shape.name, tuple(groups)))
    return Placement(topology.n_gpus, tuple(assignments), "greedy")


PLACERS: Dict[str, Callable[..., Placement]] = {
    "packed": place_packed,
    "scattered": place_scattered,
    "random": place_random,
    "greedy": place_greedy,
}


def get_placer(name: str) -> Callable[..., Placement]:
    """Look a placer up by name.

    >>> get_placer("packed") is place_packed
    True
    """
    try:
        return PLACERS[name]
    except KeyError:
        raise SpecError(f"unknown placer '{name}' (have {', '.join(sorted(PLACERS))})") from None


def place(
    topology: Topology,
    shapes: Sequence[PoolShape],
    placer: str = "packed",
    seed: int = 0,
) -> Placement:
    """Place ``shapes`` onto ``topology`` with the named placer."""
    return get_placer(placer)(topology, shapes, seed=seed)


def placement_hop_stats(topology: Topology, placement: Placement) -> Dict[str, float]:
    """Mean and max intra-instance hop count over every placed group.

    The summary number the README/benchmarks report when contrasting
    packed vs scattered placements.
    """
    hops: List[int] = []
    worst = 0
    for _, groups in placement.assignments:
        for group in groups:
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    h = topology.hop_count(a, b)
                    hops.append(h)
                    worst = max(worst, h)
    return {
        "mean_hops": float(np.mean(hops)) if hops else 0.0,
        "max_hops": float(worst),
        "pairs": float(len(hops)),
    }
