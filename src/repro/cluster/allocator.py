"""Fine-grained cluster resource allocation.

Section 3 ("Finer-granularity of resource management"): *"With Lite-GPUs, we
can allocate and access smaller units of compute and memory, leading to
greater flexibility in managing an AI cluster"* — including per-customer
isolated slices for AI-as-a-service.

:class:`ResourceAllocator` is a whole-GPU allocator with the accounting that
makes the granularity argument measurable: allocation quantization waste
(demand rounded up to whole GPUs), utilization, and fragmentation.  Because a
Lite-GPU is 1/4 the unit size, the same workload mix strands far less
capacity — :func:`quantization_waste` quantifies exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import AllocationError, SpecError
from ..hardware.gpu import GPUSpec


@dataclass(frozen=True)
class AllocationRequest:
    """A tenant's demand in SM-units (hardware-neutral compute demand)."""

    job_id: str
    demand_sms: float
    isolated: bool = False  # if True, GPUs may not be shared (AIaaS slices)

    def __post_init__(self) -> None:
        if not self.job_id:
            raise SpecError("job_id must be non-empty")
        if self.demand_sms <= 0:
            raise SpecError("demand_sms must be positive")

    def gpus_needed(self, gpu: GPUSpec) -> int:
        """Whole GPUs of this type needed to cover the demand."""
        return max(1, math.ceil(self.demand_sms / gpu.sms))


@dataclass(frozen=True)
class Allocation:
    """A granted allocation: which GPU indices serve which job."""

    job_id: str
    gpu_indices: tuple
    demand_sms: float

    @property
    def granted_sms(self) -> int:
        """SMs actually reserved (cause of quantization waste)."""
        return len(self.gpu_indices)  # scaled by sms in the allocator

    def waste_sms(self, gpu: GPUSpec) -> float:
        """Stranded SMs: granted minus demanded."""
        return len(self.gpu_indices) * gpu.sms - self.demand_sms


class ResourceAllocator:
    """Whole-GPU allocator over a homogeneous cluster.

    GPUs are indexed 0..n-1; allocation is first-fit over free indices
    (contiguity is not required — the paper's flat optical fabrics make
    placement location-independent).
    """

    def __init__(self, gpu: GPUSpec, n_gpus: int) -> None:
        if n_gpus <= 0:
            raise SpecError("n_gpus must be positive")
        self.gpu = gpu
        self.n_gpus = n_gpus
        self._free: List[int] = list(range(n_gpus))
        self._allocations: Dict[str, Allocation] = {}

    # --- queries -----------------------------------------------------------

    @property
    def free_gpus(self) -> int:
        """Currently unallocated GPU count."""
        return len(self._free)

    @property
    def allocated_gpus(self) -> int:
        """Currently allocated GPU count."""
        return self.n_gpus - len(self._free)

    @property
    def utilization(self) -> float:
        """Fraction of GPUs allocated."""
        return self.allocated_gpus / self.n_gpus

    def demanded_sms(self) -> float:
        """Total demand behind current allocations."""
        return sum(a.demand_sms for a in self._allocations.values())

    def granted_sms(self) -> float:
        """Total SMs reserved by current allocations."""
        return self.allocated_gpus * self.gpu.sms

    def quantization_waste_fraction(self) -> float:
        """Stranded fraction of granted capacity (0 = perfect packing)."""
        granted = self.granted_sms()
        if granted == 0:
            return 0.0
        return 1.0 - self.demanded_sms() / granted

    def get(self, job_id: str) -> Optional[Allocation]:
        """Look up a job's allocation, if any."""
        return self._allocations.get(job_id)

    # --- mutation -----------------------------------------------------------

    def allocate(self, request: AllocationRequest) -> Allocation:
        """Grant ``request`` or raise :class:`AllocationError`."""
        if request.job_id in self._allocations:
            raise AllocationError(f"job '{request.job_id}' already allocated")
        need = request.gpus_needed(self.gpu)
        if need > len(self._free):
            raise AllocationError(
                f"job '{request.job_id}' needs {need} GPUs, {len(self._free)} free"
            )
        granted = tuple(self._free[:need])
        del self._free[:need]
        allocation = Allocation(
            job_id=request.job_id, gpu_indices=granted, demand_sms=request.demand_sms
        )
        self._allocations[request.job_id] = allocation
        return allocation

    def release(self, job_id: str) -> None:
        """Return a job's GPUs to the free pool."""
        allocation = self._allocations.pop(job_id, None)
        if allocation is None:
            raise AllocationError(f"job '{job_id}' not allocated")
        self._free.extend(allocation.gpu_indices)
        self._free.sort()

    def fail_gpu(self, gpu_index: int) -> Optional[str]:
        """Remove a GPU from service; returns the affected job id (if any).

        The affected job keeps its remaining GPUs (degraded) — the paper's
        software-blast-radius discussion; callers decide whether to tear the
        instance down or swap in a spare.
        """
        if not 0 <= gpu_index < self.n_gpus:
            raise SpecError(f"gpu_index {gpu_index} out of range")
        if gpu_index in self._free:
            self._free.remove(gpu_index)
            return None
        for job_id, allocation in self._allocations.items():
            if gpu_index in allocation.gpu_indices:
                remaining = tuple(i for i in allocation.gpu_indices if i != gpu_index)
                self._allocations[job_id] = Allocation(
                    job_id=job_id, gpu_indices=remaining, demand_sms=allocation.demand_sms
                )
                return job_id
        raise AllocationError(f"gpu {gpu_index} neither free nor allocated")


def quantization_waste(demands_sms: List[float], gpu: GPUSpec) -> float:
    """Average stranded-capacity fraction when ``demands_sms`` are each
    rounded up to whole GPUs of this type.

    This is the headline granularity metric: for demands uniform in
    (0, 132] SMs, an H100 (132 SMs) strands ~35% while a Lite-GPU
    (33 SMs) strands ~10%.

    >>> quantization_waste([66.0], __import__('repro.hardware', fromlist=['H100']).H100)
    0.5
    """
    if not demands_sms:
        return 0.0
    granted = 0.0
    demanded = 0.0
    for demand in demands_sms:
        if demand <= 0:
            raise SpecError("demands must be positive")
        granted += max(1, math.ceil(demand / gpu.sms)) * gpu.sms
        demanded += demand
    return 1.0 - demanded / granted
