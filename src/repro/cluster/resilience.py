"""The failure-response loop: deadlines, retries, checkpoints, brown-out.

The fault layer (:mod:`repro.cluster.failures`) decides *what breaks*;
this module decides *what happens next* — the client and cluster behaviour
that turns raw outages into the metrics the paper's fault-tolerance claim
is actually about (goodput, deadline misses, MTTR, availability):

- **Deadlines and queue timeouts.**  Every :class:`~repro.workloads.traces.
  Request` may carry a ``deadline`` (end-to-end budget from first arrival);
  :class:`ResilienceConfig` can also impose a fleet-wide default and a
  per-attempt ``queue_timeout_s``.  Expired requests are *shed* — counted
  separately from capacity drops, and never requeued after a failure.
- **Client retries.**  A shed or timed-out attempt re-arrives after a
  backoff from a :data:`RETRY_POLICIES` entry (``none`` / ``fixed`` /
  ``exp_jitter``).  Fixed short backoff with many attempts reproduces the
  classic retry storm: the queue stays saturated by re-offered work long
  after the original burst — metastable overload.  Capped exponential
  backoff with jitter sheds that load and recovers.
- **Checkpointed restarts.**  With ``checkpoint_interval=K`` every
  instance continuously streams KV/generation state to slower storage;
  the per-iteration write cost is priced *through the service-time
  provider* (:class:`CheckpointWriteProvider`).  A failure victim then
  resumes from its last multiple of ``K`` generated tokens — its resumed
  prompt covers the checkpointed prefix — instead of restarting from
  prefill.
- **Brown-out.**  When rolling P99 TTFT or queue depth crosses thresholds
  (:class:`BrownoutConfig`) the runtime sheds lowest-priority arrivals and
  truncates output budgets until the backlog clears.  This composes with
  any :mod:`repro.cluster.control` controller: the controller scales the
  fleet on its epoch, the brown-out guard gates admissions between epochs.

Everything is opt-in: ``SimConfig(resilience=None)`` (the default) builds
no runtime, installs no provider wrapper, and leaves the event stream
bit-identical to the goldens.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._registry import Registry
from ..errors import SpecError
from ..exec.seeding import derive_seed
from ..workloads.traces import Request
from .engine import AbstractServiceTimeProvider
from .scheduler import InstanceSpec

__all__ = [
    "RetryPolicy",
    "NoRetry",
    "FixedRetry",
    "ExpJitterRetry",
    "RETRY_POLICIES",
    "get_retry_policy",
    "BrownoutConfig",
    "ResilienceConfig",
    "CheckpointWriteProvider",
    "wrap_checkpoint_writes",
    "ResilienceRuntime",
    "RESILIENCE_FIELDS",
    "goodput_dip",
]


# --- retry policies ---------------------------------------------------------


class RetryPolicy:
    """Client behaviour after a shed or timed-out attempt."""

    name = "retry"

    def next_delay(self, request_id: int, attempt: int) -> Optional[float]:
        """Backoff in seconds before re-attempt ``attempt`` (1-based).

        ``None`` means the client gives up (attempts exhausted).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class NoRetry(RetryPolicy):
    """The client never retries — every shed attempt is abandoned."""

    name = "none"

    def next_delay(self, request_id: int, attempt: int) -> Optional[float]:
        return None


@dataclass(frozen=True)
class FixedRetry(RetryPolicy):
    """Naive constant backoff — the retry-storm generator.

    Every client re-offers its request ``delay`` seconds after a timeout,
    in lockstep and regardless of how overloaded the cluster still is;
    with a generous ``max_attempts`` the offered load never falls below
    capacity and the overload is metastable.
    """

    name = "fixed"
    delay: float = 1.0
    max_attempts: int = 10

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise SpecError("retry delay must be positive")
        if self.max_attempts < 1:
            raise SpecError("max_attempts must be at least 1")

    def next_delay(self, request_id: int, attempt: int) -> Optional[float]:
        if attempt > self.max_attempts:
            return None
        return self.delay


@dataclass(frozen=True)
class ExpJitterRetry(RetryPolicy):
    """Capped exponential backoff with full jitter (the AWS prescription).

    Attempt ``n`` waits ``min(cap, base * factor**(n-1))`` scaled by a
    deterministic per-``(request, attempt)`` jitter fraction in
    ``[1 - jitter, 1]`` — clients desynchronize, offered load decays
    geometrically, and the capped attempt budget sheds the remainder.
    """

    name = "exp_jitter"
    base: float = 0.5
    factor: float = 2.0
    cap: float = 30.0
    max_attempts: int = 4
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base <= 0 or self.factor < 1.0 or self.cap < self.base:
            raise SpecError("need base > 0, factor >= 1, cap >= base")
        if self.max_attempts < 1:
            raise SpecError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise SpecError("jitter must be in [0, 1)")

    def next_delay(self, request_id: int, attempt: int) -> Optional[float]:
        if attempt > self.max_attempts:
            return None
        raw = min(self.cap, self.base * self.factor ** (attempt - 1))
        # No global RNG: the jitter fraction is a content hash of the
        # (request, attempt) pair, so schedules are reproducible and two
        # clients never share a backoff clock.
        unit = derive_seed(request_id, "retry-jitter", attempt) % (1 << 24)
        return raw * (1.0 - self.jitter * unit / float(1 << 24))


RETRY_POLICIES: Registry[Callable[[], RetryPolicy]] = Registry("retry policy")
for _cls in (NoRetry, FixedRetry, ExpJitterRetry):
    RETRY_POLICIES.register(_cls.name, _cls)


def get_retry_policy(spec: "RetryPolicy | str | None") -> RetryPolicy:
    """Resolve a retry policy: pass instances through, look names up."""
    if spec is None:
        return NoRetry()
    if isinstance(spec, RetryPolicy):
        return spec
    if isinstance(spec, str):
        return RETRY_POLICIES.get(spec)()
    raise SpecError(f"cannot resolve retry policy from {spec!r}")


# --- configuration ----------------------------------------------------------


@dataclass(frozen=True)
class BrownoutConfig:
    """Overload thresholds and the degradation applied while tripped.

    The guard trips when queue depth reaches ``queue_depth_high`` or the
    rolling-window TTFT P99 reaches ``ttft_p99_high`` (if set), and clears
    only once depth falls to ``queue_depth_low`` *and* the window P99 is
    back under ``ttft_p99_low`` — hysteresis, so the mode doesn't flap.
    While tripped, arrivals with ``priority >= shed_priority_floor`` are
    shed (``load_shed``) and surviving arrivals have their output budget
    truncated to ``truncate_output_to`` tokens (if set).
    """

    queue_depth_high: int = 64
    queue_depth_low: int = 16
    ttft_p99_high: Optional[float] = None
    ttft_p99_low: Optional[float] = None
    shed_priority_floor: int = 1
    truncate_output_to: Optional[int] = None
    window: int = 64

    def __post_init__(self) -> None:
        if self.queue_depth_high < 1 or not 0 <= self.queue_depth_low <= self.queue_depth_high:
            raise SpecError("need 0 <= queue_depth_low <= queue_depth_high, high >= 1")
        if (self.ttft_p99_low is None) != (self.ttft_p99_high is None):
            raise SpecError("set both ttft_p99_low and ttft_p99_high, or neither")
        if self.ttft_p99_high is not None and not 0 < self.ttft_p99_low <= self.ttft_p99_high:
            raise SpecError("need 0 < ttft_p99_low <= ttft_p99_high")
        if self.truncate_output_to is not None and self.truncate_output_to < 1:
            raise SpecError("truncate_output_to must be at least 1")
        if self.window < 8:
            raise SpecError("window must be at least 8")


@dataclass(frozen=True)
class ResilienceConfig:
    """The ``SimConfig.resilience`` knob bundle — every default is inert.

    ``deadline_s`` is a fleet-wide end-to-end budget from each request's
    *first* arrival (a request's own ``deadline`` field, when set, takes
    precedence); ``queue_timeout_s`` bounds one attempt's unserved wait.
    ``retry`` names a :data:`RETRY_POLICIES` entry (or is an instance);
    ``max_pending_retries`` bounds the backoff buffer the same way the
    trace iterator is bounded — when full, further timed-out clients are
    ``abandoned`` instead of queued (constant memory under streaming
    metrics).  ``checkpoint_interval`` (tokens) enables checkpointed
    restarts, with writes priced at ``checkpoint_bandwidth`` bytes/s
    through the service-time provider.  ``slo_ttft_s`` / ``slo_tbt_s`` /
    ``slo_e2e_s`` classify completions for the SLO-violation rate
    (first-token, per-token, and end-to-end latency bounds); deadline-late
    or SLO-violating completions earn no goodput — the wasted-work signal
    a retry storm feeds on.
    """

    deadline_s: Optional[float] = None
    queue_timeout_s: Optional[float] = None
    retry: "RetryPolicy | str" = "none"
    max_pending_retries: int = 4096
    checkpoint_interval: Optional[int] = None
    checkpoint_bandwidth: float = 16e9
    brownout: Optional[BrownoutConfig] = None
    slo_ttft_s: Optional[float] = None
    slo_tbt_s: Optional[float] = None
    slo_e2e_s: Optional[float] = None
    sweep_interval: float = 0.25

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise SpecError("deadline_s must be positive")
        if self.queue_timeout_s is not None and self.queue_timeout_s <= 0:
            raise SpecError("queue_timeout_s must be positive")
        get_retry_policy(self.retry)  # fail fast on unknown names
        if self.max_pending_retries < 1:
            raise SpecError("max_pending_retries must be at least 1")
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise SpecError("checkpoint_interval must be at least 1 token")
        if self.checkpoint_bandwidth <= 0:
            raise SpecError("checkpoint_bandwidth must be positive")
        if self.slo_ttft_s is not None and self.slo_ttft_s <= 0:
            raise SpecError("slo_ttft_s must be positive")
        if self.slo_tbt_s is not None and self.slo_tbt_s <= 0:
            raise SpecError("slo_tbt_s must be positive")
        if self.slo_e2e_s is not None and self.slo_e2e_s <= 0:
            raise SpecError("slo_e2e_s must be positive")
        if self.sweep_interval <= 0:
            raise SpecError("sweep_interval must be positive")


# --- checkpoint write pricing ----------------------------------------------


class CheckpointWriteProvider(AbstractServiceTimeProvider):
    """Adds continuous checkpoint-write cost to decode/mixed iterations.

    Each decode slot generates one token per iteration whose KV state must
    stream to checkpoint storage; the added latency is
    ``batch * kv_bytes_per_token / checkpoint_bandwidth`` per iteration.
    Prefill is unchanged — prompt KV is reproducible from the prompt, so
    only generation progress is checkpointed.  The write is storage-bound,
    so the DVFS frequency scalar (forwarded to the inner provider) does
    not stretch it.
    """

    def __init__(self, inner: AbstractServiceTimeProvider, write_s_per_token: float) -> None:
        if write_s_per_token < 0:
            raise SpecError("write_s_per_token must be non-negative")
        self.inner = inner
        self.write_s_per_token = float(write_s_per_token)

    def set_frequency(self, scalar: float) -> None:
        self.inner.set_frequency(scalar)

    @property
    def frequency(self) -> float:
        return self.inner.frequency

    def prefill_time(self, batch: int, prompt_len: int, instance: int = 0) -> float:
        return self.inner.prefill_time(batch, prompt_len, instance)

    def decode_time(self, batch: int, context_len: int, instance: int = 0) -> float:
        return self.inner.decode_time(batch, context_len, instance) + (
            batch * self.write_s_per_token
        )

    def mixed_time(
        self, decode_batch: int, context_len: int, chunk: int, prompt_len: int, instance: int = 0
    ) -> float:
        return self.inner.mixed_time(decode_batch, context_len, chunk, prompt_len, instance) + (
            decode_batch * self.write_s_per_token
        )

    def cache_info(self) -> Dict[str, int]:
        return self.inner.cache_info()


def wrap_checkpoint_writes(
    provider: AbstractServiceTimeProvider,
    instance: InstanceSpec,
    config: Optional[ResilienceConfig],
) -> AbstractServiceTimeProvider:
    """Wrap a decode-side provider when checkpointing is enabled (else no-op)."""
    if config is None or config.checkpoint_interval is None:
        return provider
    per_token = (
        instance.model.kv_bytes_per_token(instance.policy.kv_bytes)
        / config.checkpoint_bandwidth
    )
    return CheckpointWriteProvider(provider, per_token)


# --- the runtime ------------------------------------------------------------

#: SimReport fields owned by this module, in report order, with defaults.
RESILIENCE_FIELDS: Tuple[Tuple[str, float], ...] = (
    ("deadline_missed", 0),
    ("timed_out", 0),
    ("load_shed", 0),
    ("truncated", 0),
    ("retries", 0),
    ("abandoned", 0),
    ("goodput_tokens", 0),
    ("goodput_tokens_per_s", 0.0),
    ("slo_violations", 0),
    ("slo_violation_rate", 0.0),
    ("deadline_miss_rate", 0.0),
    ("failure_hits", 0),
    ("mttr_s", 0.0),
    ("availability", 1.0),
)


class ResilienceRuntime:
    """Per-run mutable state behind one engine's resilience behaviour.

    Engine-agnostic: both engines call the same small hook set —
    :meth:`admit` on arrival/retry, :meth:`sweep_queue` before dispatch,
    :meth:`shed`/:meth:`resume_request`/:meth:`on_failure` when an
    instance dies, :meth:`on_complete` at completion.  All counters live
    here, symmetric across exact and streaming metric modes, so sharded
    merges sum the same quantities an unsharded run counts.

    Memory is bounded by in-flight work: per-request attempt/credit/victim
    entries are created on first retry / checkpoint / failure hit and
    popped when the request resolves (completes or is abandoned), and the
    pending-retry buffer is capped at ``max_pending_retries``.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self.retry_policy = get_retry_policy(config.retry)
        self.retry_enabled = not isinstance(self.retry_policy, NoRetry)
        self.expiry_enabled = config.deadline_s is not None or config.queue_timeout_s is not None
        # Outcome counters (all report fields).
        self.deadline_missed = 0
        self.timed_out = 0
        self.load_shed = 0
        self.truncated = 0
        self.retries = 0
        self.abandoned = 0
        self.goodput_tokens = 0
        self.slo_violations = 0
        self.failure_hits = 0
        self.downtime_s = 0.0
        # Bounded in-flight state.
        self.pending_retries = 0
        self.peak_pending_retries = 0
        self._attempts: Dict[int, Tuple[int, float]] = {}  # id -> (attempt, attempt arrival)
        self._credit: Dict[int, int] = {}  # id -> checkpointed tokens resumed over
        self._episode_start: Dict[int, float] = {}
        self._episode_open: Dict[int, int] = {}  # episode -> unresolved victims
        self._victim_episodes: Dict[int, List[int]] = {}  # id -> episodes it victims
        self._next_episode = 0
        self._mttr_sum = 0.0
        self._mttr_count = 0
        self._next_sweep = 0.0
        # Brown-out state.
        self.brownout_active = False
        self.brownouts = 0
        window = config.brownout.window if config.brownout is not None else 8
        self._ttft_window: Deque[float] = deque(maxlen=window)
        self._push_retry: Optional[Callable[[float, Request], None]] = None

    def bind(self, push_retry: Callable[[float, Request], None]) -> None:
        """Connect the engine's event heap (a ``retry`` event pusher)."""
        self._push_retry = push_retry

    # --- deadlines and timeouts --------------------------------------------

    def deadline_at(self, request: Request) -> float:
        """Absolute wall-clock deadline of a request (inf when none)."""
        budget = request.deadline if request.deadline is not None else self.config.deadline_s
        return request.arrival + budget if budget is not None else math.inf

    def expired_deadline(self, request: Request, now: float) -> bool:
        return now > self.deadline_at(request)

    def _attempt_arrival(self, request: Request) -> float:
        entry = self._attempts.get(request.request_id)
        return entry[1] if entry is not None else request.arrival

    def expire(self, request: Request, now: float) -> Optional[str]:
        """Why a *queued* request should be shed right now (None = keep)."""
        if self.expired_deadline(request, now):
            return "deadline"
        timeout = self.config.queue_timeout_s
        if timeout is not None and now - self._attempt_arrival(request) > timeout:
            return "timeout"
        return None

    def sweep_queue(self, queue: Deque[Request], now: float) -> None:
        """Shed expired requests from a work queue, preserving order.

        The head is always checked (exact for FIFO service); the full scan
        runs at most every ``sweep_interval`` seconds so deep queues under
        a retry storm stay O(1) amortized per event.  A mid-queue request
        that outlives its deadline between sweeps is still excluded from
        goodput at completion — lazy enforcement, like real admission
        control.
        """
        if not self.expiry_enabled or not queue:
            return
        while queue:
            reason = self.expire(queue[0], now)
            if reason is None:
                break
            self.shed(queue.popleft(), now, reason)
        if now < self._next_sweep or not queue:
            return
        self._next_sweep = now + self.config.sweep_interval
        survivors: List[Request] = []
        expired: List[Tuple[Request, str]] = []
        for request in queue:
            reason = self.expire(request, now)
            if reason is None:
                survivors.append(request)
            else:
                expired.append((request, reason))
        if not expired:
            return
        queue.clear()
        queue.extend(survivors)
        for request, reason in expired:
            self.shed(request, now, reason)

    # --- brown-out admission -----------------------------------------------

    def note_ttft(self, value: float) -> None:
        """Feed the rolling TTFT window (brown-out trip signal)."""
        if self.config.brownout is not None:
            self._ttft_window.append(value)

    def _window_p99(self) -> float:
        if not self._ttft_window:
            return 0.0
        return float(np.percentile(np.asarray(self._ttft_window), 99))

    def _update_brownout(self, queue_depth: int) -> None:
        guard = self.config.brownout
        if not self.brownout_active:
            tripped = queue_depth >= guard.queue_depth_high or (
                guard.ttft_p99_high is not None and self._window_p99() >= guard.ttft_p99_high
            )
            if tripped:
                self.brownout_active = True
                self.brownouts += 1
        else:
            cleared = queue_depth <= guard.queue_depth_low and (
                guard.ttft_p99_high is None or self._window_p99() <= guard.ttft_p99_low
            )
            if cleared:
                self.brownout_active = False

    def admit(self, request: Request, now: float, queue_depth: int) -> Optional[Request]:
        """Gate one arrival (or retry re-arrival) at the front door.

        Returns the request to enqueue — possibly output-truncated under
        brown-out — or ``None`` when it was shed (already accounted).
        """
        guard = self.config.brownout
        if guard is None:
            return request
        self._update_brownout(queue_depth)
        if not self.brownout_active:
            return request
        if request.priority >= guard.shed_priority_floor:
            self.shed(request, now, "load")
            return None
        limit = guard.truncate_output_to
        if limit is not None and request.output_tokens > limit:
            self.truncated += 1
            request = replace(request, output_tokens=limit)
        return request

    # --- shed / retry -------------------------------------------------------

    def shed(self, request: Request, now: float, reason: str) -> None:
        """Remove one attempt from the system and consult the retry policy.

        ``reason`` is ``"deadline"`` (terminal — the e2e budget is gone),
        ``"timeout"`` (per-attempt wait bound), or ``"load"`` (brown-out);
        the latter two re-arrive later if the retry policy grants a backoff
        that still fits inside the deadline and the bounded retry buffer.
        """
        if reason == "deadline":
            self.deadline_missed += 1
            self._resolve(request.request_id, now, completed=False)
            return
        if reason == "timeout":
            self.timed_out += 1
        else:
            self.load_shed += 1
        attempt = self._attempts.get(request.request_id, (0, 0.0))[0] + 1
        delay = (
            self.retry_policy.next_delay(request.request_id, attempt)
            if self.retry_enabled
            else None
        )
        retry_at = now + delay if delay is not None else None
        if (
            retry_at is None
            or retry_at > self.deadline_at(request)
            or self.pending_retries >= self.config.max_pending_retries
        ):
            self.abandoned += 1
            self._resolve(request.request_id, now, completed=False)
            return
        self._attempts[request.request_id] = (attempt, retry_at)
        self.pending_retries += 1
        if self.pending_retries > self.peak_pending_retries:
            self.peak_pending_retries = self.pending_retries
        self._push_retry(retry_at, request)

    def on_retry_fired(self) -> None:
        """A backoff elapsed: the re-arrival is leaving the retry buffer."""
        self.pending_retries -= 1
        self.retries += 1

    # --- failures and checkpointed restarts ---------------------------------

    def resume_request(self, request: Request, generated: int) -> Request:
        """The request a failure victim restarts as.

        Without checkpointing (or before the first interval) this is the
        request itself — restart from prefill.  With ``K``-token
        checkpoints the victim resumes past its last completed interval:
        the checkpointed tokens move into the prompt (their KV is restored
        by the restore prefill, priced like any prefill over the larger
        prompt) and out of the remaining output budget.  The moved tokens
        are remembered as *credit* so throughput counts them exactly once,
        at final completion.
        """
        interval = self.config.checkpoint_interval
        if interval is None or generated < interval:
            return request
        restored = (generated // interval) * interval
        self._credit[request.request_id] = self._credit.get(request.request_id, 0) + restored
        return replace(
            request,
            prompt_tokens=request.prompt_tokens + restored,
            output_tokens=request.output_tokens - restored,
        )

    def on_failure_hit(
        self, now: float, repair_s: float, victim_ids: Sequence[int], downtime_ext: float
    ) -> None:
        """Account one failure landing on live hardware.

        ``downtime_ext`` is the *new* downtime this hit adds to the
        instance (overlapping outages extend, never double-count).  MTTR
        measures each hit's episode from impact until its last victim
        resolves; a victimless hit recovers in exactly the repair time.
        """
        self.failure_hits += 1
        self.downtime_s += max(0.0, downtime_ext)
        if not victim_ids:
            self._mttr_sum += repair_s
            self._mttr_count += 1
            return
        episode = self._next_episode
        self._next_episode += 1
        self._episode_start[episode] = now
        self._episode_open[episode] = len(victim_ids)
        for request_id in victim_ids:
            self._victim_episodes.setdefault(request_id, []).append(episode)

    def _resolve(self, request_id: int, now: float, completed: bool) -> None:
        """A request left the system: pop its state, close its episodes."""
        self._attempts.pop(request_id, None)
        if not completed:
            self._credit.pop(request_id, None)
        for episode in self._victim_episodes.pop(request_id, ()):
            remaining = self._episode_open[episode] - 1
            if remaining:
                self._episode_open[episode] = remaining
            else:
                del self._episode_open[episode]
                self._mttr_sum += now - self._episode_start.pop(episode)
                self._mttr_count += 1

    # --- completion ---------------------------------------------------------

    def on_complete(
        self, request: Request, finish: float, ttft: float, mean_tbt: float
    ) -> int:
        """Classify one completion; returns the checkpoint token credit.

        The credit (tokens generated before a checkpointed restart) is
        added to the engine's output-token counter here, at the single
        completion of the final incarnation — earlier incarnations never
        completed, so nothing double-counts.
        """
        credit = self._credit.pop(request.request_id, 0)
        config = self.config
        good = True
        violated = False
        if config.slo_ttft_s is not None and ttft > config.slo_ttft_s:
            violated = True
        if config.slo_tbt_s is not None and mean_tbt > config.slo_tbt_s:
            violated = True
        if config.slo_e2e_s is not None and finish - request.arrival > config.slo_e2e_s:
            violated = True
        if violated:
            self.slo_violations += 1
            good = False
        if finish > self.deadline_at(request):
            good = False
        if good:
            self.goodput_tokens += request.output_tokens + credit
        self._resolve(request.request_id, finish, completed=True)
        return credit

    # --- reporting ----------------------------------------------------------

    def report_fields(
        self, duration: float, instance_seconds: float, arrivals: int, completed: int
    ) -> Dict[str, float]:
        """The resilience block of a :class:`~repro.cluster.simulator.SimReport`."""
        duration = max(duration, 1e-9)
        if instance_seconds > 0:
            downtime = min(self.downtime_s, instance_seconds)
            availability = 1.0 - downtime / instance_seconds
        else:
            availability = 1.0
        return {
            "deadline_missed": self.deadline_missed,
            "timed_out": self.timed_out,
            "load_shed": self.load_shed,
            "truncated": self.truncated,
            "retries": self.retries,
            "abandoned": self.abandoned,
            "goodput_tokens": self.goodput_tokens,
            "goodput_tokens_per_s": self.goodput_tokens / duration,
            "slo_violations": self.slo_violations,
            "slo_violation_rate": self.slo_violations / completed if completed else 0.0,
            "deadline_miss_rate": self.deadline_missed / arrivals if arrivals else 0.0,
            "failure_hits": self.failure_hits,
            "mttr_s": self._mttr_sum / self._mttr_count if self._mttr_count else 0.0,
            "availability": availability,
        }


def goodput_dip(baseline, faulted) -> float:
    """Relative goodput lost to a fault: 0 = unharmed, 1 = everything lost.

    The chaos harness's blast-radius scalar: compare the same deployment's
    faulted run against its failure-free baseline.
    """
    if baseline.goodput_tokens_per_s <= 0:
        return 0.0
    return max(0.0, 1.0 - faulted.goodput_tokens_per_s / baseline.goodput_tokens_per_s)
