"""Pool provisioning: size phase-split pools for a target workload.

Splitwise-style deployments must decide *how many* prefill and decode
instances to buy for an expected traffic level.  This module computes the
minimal pool sizes from the analytical model:

- prefill demand: ``rate * prompt_tokens`` tokens/s, served at each
  instance's prefill throughput;
- decode demand: ``rate * output_tokens`` tokens/s, served at each
  instance's decode throughput at its best feasible batch;
- a headroom factor keeps queueing delays in check (M/D/c intuition:
  ~70% utilization for p99-sensitive serving).

The output feeds directly into :class:`~repro.cluster.scheduler.PhasePools`
and the simulator, closing the loop from analytical model to deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.inference import DecodeWorkload, PrefillWorkload, decode_iteration, prefill_pass
from ..core.search import SearchConstraints, search_best_config
from ..errors import InfeasibleError, SpecError
from ..hardware.gpu import GPUSpec
from ..workloads.transformer import ModelSpec
from .scheduler import InstanceSpec, PhasePools


@dataclass(frozen=True)
class WorkloadForecast:
    """Expected traffic: request rate and token shape."""

    rate: float  # requests/second
    prompt_tokens: int = 1500
    output_tokens: int = 250

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise SpecError("rate must be positive")
        if self.prompt_tokens <= 0 or self.output_tokens <= 0:
            raise SpecError("token counts must be positive")

    @property
    def prefill_tokens_per_s(self) -> float:
        """Prompt tokens arriving per second."""
        return self.rate * self.prompt_tokens

    @property
    def decode_tokens_per_s(self) -> float:
        """Output tokens demanded per second."""
        return self.rate * self.output_tokens


@dataclass(frozen=True)
class ProvisioningPlan:
    """A sized deployment with its expected utilizations."""

    pools: PhasePools
    prefill_throughput: float  # tokens/s per prefill instance
    decode_throughput: float  # tokens/s per decode instance
    prefill_utilization: float
    decode_utilization: float

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.pools.describe()} | util prefill {self.prefill_utilization:.2f}, "
            f"decode {self.decode_utilization:.2f}"
        )


def provision_pools(
    model: ModelSpec,
    prefill_gpu: GPUSpec,
    decode_gpu: GPUSpec,
    forecast: WorkloadForecast,
    constraints: SearchConstraints | None = None,
    headroom: float = 0.7,
) -> ProvisioningPlan:
    """Size a phase-split deployment for ``forecast``.

    Instance shapes (GPUs per instance, batches) come from the Section 4
    search; instance *counts* from demand / (throughput * headroom).

    >>> from repro.workloads import LLAMA3_8B
    >>> from repro.hardware import H100
    >>> plan = provision_pools(LLAMA3_8B, H100, H100, WorkloadForecast(rate=5.0))
    >>> plan.pools.n_prefill >= 1 and plan.pools.n_decode >= 1
    True
    """
    if not 0.0 < headroom <= 1.0:
        raise SpecError("headroom must be in (0, 1]")
    constraints = constraints or SearchConstraints(
        prompt_len=forecast.prompt_tokens,
        context_len=forecast.prompt_tokens + forecast.output_tokens // 2,
    )

    prefill_best = search_best_config(model, prefill_gpu, "prefill", constraints).best
    decode_best = search_best_config(model, decode_gpu, "decode", constraints).best
    if prefill_best is None or decode_best is None:
        raise InfeasibleError("no feasible instance shape under the constraints")

    prefill_tput = prefill_best.result.tokens_per_s
    decode_tput = decode_best.result.tokens_per_s
    n_prefill = max(1, math.ceil(forecast.prefill_tokens_per_s / (prefill_tput * headroom)))
    n_decode = max(1, math.ceil(forecast.decode_tokens_per_s / (decode_tput * headroom)))

    pools = PhasePools(
        prefill=InstanceSpec(model, prefill_gpu, prefill_best.n_gpus),
        n_prefill=n_prefill,
        decode=InstanceSpec(model, decode_gpu, decode_best.n_gpus),
        n_decode=n_decode,
        max_prefill_batch=max(1, prefill_best.batch),
        max_decode_batch=max(1, decode_best.batch),
    )
    return ProvisioningPlan(
        pools=pools,
        prefill_throughput=prefill_tput,
        decode_throughput=decode_tput,
        prefill_utilization=forecast.prefill_tokens_per_s / (n_prefill * prefill_tput),
        decode_utilization=forecast.decode_tokens_per_s / (n_decode * decode_tput),
    )


def phase_gpu_ratio(plan: ProvisioningPlan) -> float:
    """Prefill-to-decode GPU ratio of a plan — the Splitwise pool-balance
    statistic (depends on the prompt/output token mix)."""
    pools = plan.pools
    prefill_gpus = pools.n_prefill * pools.prefill.n_gpus
    decode_gpus = pools.n_decode * pools.decode.n_gpus
    return prefill_gpus / decode_gpus
