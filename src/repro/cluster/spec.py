"""Cluster composition: GPUs plus fabric, with capability/economics rollups.

A :class:`ClusterSpec` binds a GPU type, a count, and a network topology so
deployments can be compared at equal aggregate compute — the Figure 2
exercise (8x H100 vs. 32x Lite) generalized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import SpecError
from ..hardware.cost import CostModel, PackagingTier
from ..hardware.gpu import GPUSpec
from ..hardware.scaling import LiteScaling, derive_lite_gpu
from ..network.fabric import Fabric, FabricReport
from ..network.routing import hop_count_matrix
from ..network.topology import (
    DirectConnectTopology,
    FlatCircuitTopology,
    SwitchedTopology,
    Topology,
)
from .placement import Placement, PoolShape, place


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster with a named topology.

    ``topology_kind`` is one of "direct", "switched", "circuit"; the
    corresponding :class:`~repro.network.topology.Topology` is materialized
    on demand so the spec itself stays cheap to construct and hash.
    """

    gpu: GPUSpec
    n_gpus: int
    topology_kind: str = "circuit"
    group: int = 4

    def __post_init__(self) -> None:
        if self.n_gpus <= 0:
            raise SpecError("n_gpus must be positive")
        if self.topology_kind not in ("direct", "switched", "circuit"):
            raise SpecError("topology_kind must be direct|switched|circuit")
        if self.group <= 0:
            raise SpecError("group must be positive")

    # --- aggregates ---------------------------------------------------------

    @property
    def total_flops(self) -> float:
        """Aggregate peak FLOP/s."""
        return self.n_gpus * self.gpu.peak_flops

    @property
    def total_mem_capacity(self) -> float:
        """Aggregate HBM bytes."""
        return self.n_gpus * self.gpu.mem_capacity

    @property
    def total_mem_bandwidth(self) -> float:
        """Aggregate HBM bandwidth (bytes/s)."""
        return self.n_gpus * self.gpu.mem_bandwidth

    @property
    def total_sms(self) -> int:
        """Aggregate SM count (the Figure 3 normalizer)."""
        return self.n_gpus * self.gpu.sms

    @property
    def gpu_power(self) -> float:
        """Aggregate GPU TDP (W), excluding the network."""
        return self.n_gpus * self.gpu.tdp

    # --- fabric -----------------------------------------------------------------

    def topology(self) -> Topology:
        """Materialize the network topology."""
        if self.topology_kind == "direct":
            n = self.n_gpus
            if n % self.group:
                raise SpecError("direct topology needs n_gpus divisible by group")
            return DirectConnectTopology(n_gpus=n, group=self.group)
        if self.topology_kind == "switched":
            return SwitchedTopology(n_gpus=self.n_gpus)
        return FlatCircuitTopology(n_gpus=self.n_gpus)

    def placement_for(
        self,
        shapes: "Sequence[PoolShape]",
        placer: str = "packed",
        seed: int = 0,
    ) -> "Placement":
        """Place a deployment's pool shapes onto this cluster's topology.

        >>> from repro.hardware import H100
        >>> cluster = ClusterSpec(H100, 8, "direct", group=4)
        >>> p = cluster.placement_for([PoolShape("decode", 2, 4)])
        >>> p.gpus("decode", 0)
        (0, 1, 2, 3)
        """
        return place(self.topology(), shapes, placer=placer, seed=seed)

    def hop_matrix(self):
        """The (memoized, read-only) dense hop-count matrix of the fabric."""
        return hop_count_matrix(self.topology())

    def fabric_report(self, utilization: float = 0.5) -> FabricReport:
        """Cost/power/capacity report of the cluster's network."""
        return Fabric(self.topology(), utilization).report(
            f"{self.gpu.name} x{self.n_gpus} ({self.topology_kind})"
        )

    def total_power(self, utilization: float = 0.5) -> float:
        """GPUs + network power (W)."""
        return self.gpu_power + self.fabric_report(utilization).power_w

    def gpu_capex(
        self, cost_model: CostModel | None = None, price_multiplier: float = 1.0
    ) -> float:
        """Total GPU cost (USD) from the hardware cost model.

        ``price_multiplier`` converts manufacturing BOM into what an
        operator pays (vendor gross margin); 1.0 reports pure BOM, ~4.0 is
        representative of data-center GPU street prices and is the right
        basis for "network is a small fraction of GPU cost" comparisons.
        """
        if price_multiplier <= 0:
            raise SpecError("price_multiplier must be positive")
        cm = cost_model or CostModel()
        per_gpu = cm.package_cost(
            die_area_mm2=self.gpu.die.area_mm2,
            hbm_gb=self.gpu.mem_capacity / 1e9,
            tier=PackagingTier.INTERPOSER_2_5D,
        ).total
        return per_gpu * self.n_gpus * price_multiplier

    def total_capex(self, cost_model: CostModel | None = None, utilization: float = 0.5) -> float:
        """GPU + network capital cost (USD)."""
        return self.gpu_capex(cost_model) + self.fabric_report(utilization).capex_usd

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.n_gpus}x {self.gpu.name} [{self.topology_kind}]: "
            f"{self.total_flops / 1e15:.1f} PFLOPS, "
            f"{self.total_mem_capacity / 1e9:.0f} GB, {self.total_sms} SMs"
        )


def lite_equivalent(
    cluster: ClusterSpec,
    scaling: LiteScaling | None = None,
    topology_kind: str = "circuit",
) -> ClusterSpec:
    """The Lite-GPU cluster replacing ``cluster`` at equal aggregate compute.

    Each parent GPU becomes ``scaling.split`` Lite-GPUs (Figure 2 defaults to
    a 4-way split).

    >>> from repro.hardware import H100
    >>> base = ClusterSpec(H100, 8)
    >>> lite = lite_equivalent(base)
    >>> lite.n_gpus
    32
    """
    scaling = scaling or LiteScaling(split=4)
    lite_gpu = derive_lite_gpu(cluster.gpu, scaling)
    return ClusterSpec(
        gpu=lite_gpu,
        n_gpus=cluster.n_gpus * scaling.split,
        topology_kind=topology_kind,
        group=scaling.split,
    )
