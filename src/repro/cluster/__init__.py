"""Cluster substrate: allocation, scheduling, failures, power, simulation.

Makes Section 3's systems opportunities executable:

- :mod:`repro.cluster.spec` — cluster composition and rollups.
- :mod:`repro.cluster.placement` — mapping simulator instances onto
  physical topology GPUs (packed / scattered / random / greedy placers).
- :mod:`repro.cluster.allocator` — finer-granularity resource management.
- :mod:`repro.cluster.failures` — failure models and blast radius.
- :mod:`repro.cluster.availability` — Monte-Carlo availability + hot spares.
- :mod:`repro.cluster.memory` — disaggregated memory pools and KV placement.
- :mod:`repro.cluster.power_manager` — cluster-level clocking policies.
- :mod:`repro.cluster.scheduler` — deployment shapes: phase-split
  (Splitwise-style) and colocated (SARATHI-style) pools.
- :mod:`repro.cluster.policies` — pluggable routing / batching / admission
  / requeue policies, registered by name.
- :mod:`repro.cluster.engine` — the discrete-event core: event heap,
  instance state machines, memoized service times.
- :mod:`repro.cluster.control` — the elastic control plane: cluster
  controllers (static / reactive / slo / forecast / power_cap) stepped
  inside the event loop to spawn, drain, and DVFS-throttle instances.
- :mod:`repro.cluster.economics` — gpu-seconds, joules, and $/Mtoken
  accounting behind every report's cost fields.
- :mod:`repro.cluster.resilience` — the failure-response loop: deadlines,
  client retries, checkpointed restarts, brown-out degradation, and the
  goodput / MTTR / availability accounting.
- :mod:`repro.cluster.chaos` — scripted failure scenarios measuring blast
  radius, checkpoint recovery, and retry storms (``repro chaos``).
- :mod:`repro.cluster.simulator` — the serving simulators (one per
  deployment shape) whose service times come from the analytical model.
"""

from .spec import ClusterSpec, lite_equivalent
from .placement import (
    PLACERS,
    Placement,
    PoolShape,
    get_placer,
    place,
    placement_hop_stats,
)
from .allocator import Allocation, AllocationRequest, ResourceAllocator, quantization_waste
from .datacenter import RackPlan, RackSpec, floor_plan, lite_vs_h100_floor, plan_racks, reach_check
from .provisioning import ProvisioningPlan, WorkloadForecast, phase_gpu_ratio, provision_pools
from .failures import (
    BlastRadius,
    ComponentFailure,
    ComponentFailureModel,
    FailureModel,
    InstanceReliability,
    resolve_component_failures,
    sample_failure_schedule,
)
from .availability import AvailabilityResult, SparePolicy, simulate_availability
from .memory import DisaggregatedPool, KVPlacementPolicy, MemorySystem
from .power_manager import ClusterPowerManager, PeakStrategy
from .scheduler import ColocatedPool, InstanceSpec, PhasePools, PhaseSplitScheduler
from .policies import POLICY_BUNDLES, PolicyBundle, get_policy_bundle
from .control import (
    CONTROLLERS,
    ClusterController,
    ControlAction,
    ControlObservation,
    ForecastController,
    PoolStats,
    PowerCapController,
    ReactiveController,
    SLOController,
    StaticController,
    get_controller,
)
from .economics import EconomicsConfig, EconomicsReport, PoolEconomics, pool_economics
from .resilience import (
    RETRY_POLICIES,
    BrownoutConfig,
    ExpJitterRetry,
    FixedRetry,
    NoRetry,
    ResilienceConfig,
    RetryPolicy,
    get_retry_policy,
    goodput_dip,
)
from .chaos import blast_radius_scenario, checkpoint_scenario, retry_storm_scenario
from .engine import (
    AbstractServiceTimeProvider,
    EventQueue,
    NetworkAwareServiceTimeProvider,
    ServiceTimeProvider,
)
from .simulator import (
    ColocatedSimulator,
    CompletedRequest,
    ServingSimulator,
    SimConfig,
    SimReport,
)
from .fluid import BatchTimeFit, TraceProfile

__all__ = [
    "ClusterSpec",
    "lite_equivalent",
    "PLACERS",
    "Placement",
    "PoolShape",
    "get_placer",
    "place",
    "placement_hop_stats",
    "RackPlan",
    "RackSpec",
    "floor_plan",
    "lite_vs_h100_floor",
    "plan_racks",
    "reach_check",
    "ProvisioningPlan",
    "WorkloadForecast",
    "phase_gpu_ratio",
    "provision_pools",
    "Allocation",
    "AllocationRequest",
    "ResourceAllocator",
    "quantization_waste",
    "BlastRadius",
    "ComponentFailure",
    "ComponentFailureModel",
    "FailureModel",
    "InstanceReliability",
    "resolve_component_failures",
    "sample_failure_schedule",
    "AvailabilityResult",
    "SparePolicy",
    "simulate_availability",
    "DisaggregatedPool",
    "KVPlacementPolicy",
    "MemorySystem",
    "ClusterPowerManager",
    "PeakStrategy",
    "ColocatedPool",
    "InstanceSpec",
    "PhasePools",
    "PhaseSplitScheduler",
    "POLICY_BUNDLES",
    "PolicyBundle",
    "get_policy_bundle",
    "CONTROLLERS",
    "ClusterController",
    "ControlAction",
    "ControlObservation",
    "ForecastController",
    "PoolStats",
    "PowerCapController",
    "ReactiveController",
    "SLOController",
    "StaticController",
    "get_controller",
    "RETRY_POLICIES",
    "BrownoutConfig",
    "ExpJitterRetry",
    "FixedRetry",
    "NoRetry",
    "ResilienceConfig",
    "RetryPolicy",
    "get_retry_policy",
    "goodput_dip",
    "blast_radius_scenario",
    "checkpoint_scenario",
    "retry_storm_scenario",
    "EconomicsConfig",
    "EconomicsReport",
    "PoolEconomics",
    "pool_economics",
    "AbstractServiceTimeProvider",
    "EventQueue",
    "NetworkAwareServiceTimeProvider",
    "ServiceTimeProvider",
    "ColocatedSimulator",
    "CompletedRequest",
    "ServingSimulator",
    "SimConfig",
    "SimReport",
    "BatchTimeFit",
    "TraceProfile",
]
