"""Cluster substrate: allocation, scheduling, failures, power, simulation.

Makes Section 3's systems opportunities executable:

- :mod:`repro.cluster.spec` — cluster composition and rollups.
- :mod:`repro.cluster.allocator` — finer-granularity resource management.
- :mod:`repro.cluster.failures` — failure models and blast radius.
- :mod:`repro.cluster.availability` — Monte-Carlo availability + hot spares.
- :mod:`repro.cluster.memory` — disaggregated memory pools and KV placement.
- :mod:`repro.cluster.power_manager` — cluster-level clocking policies.
- :mod:`repro.cluster.scheduler` — phase-split (Splitwise-style) scheduling.
- :mod:`repro.cluster.simulator` — a discrete-event LLM serving simulator
  whose service times come from the analytical model.
"""

from .spec import ClusterSpec, lite_equivalent
from .allocator import Allocation, AllocationRequest, ResourceAllocator, quantization_waste
from .datacenter import RackPlan, RackSpec, floor_plan, lite_vs_h100_floor, plan_racks, reach_check
from .provisioning import ProvisioningPlan, WorkloadForecast, phase_gpu_ratio, provision_pools
from .failures import BlastRadius, FailureModel, InstanceReliability
from .availability import AvailabilityResult, SparePolicy, simulate_availability
from .memory import DisaggregatedPool, KVPlacementPolicy, MemorySystem
from .power_manager import ClusterPowerManager, PeakStrategy
from .scheduler import PhasePools, PhaseSplitScheduler
from .simulator import ServingSimulator, SimConfig, SimReport

__all__ = [
    "ClusterSpec",
    "lite_equivalent",
    "RackPlan",
    "RackSpec",
    "floor_plan",
    "lite_vs_h100_floor",
    "plan_racks",
    "reach_check",
    "ProvisioningPlan",
    "WorkloadForecast",
    "phase_gpu_ratio",
    "provision_pools",
    "Allocation",
    "AllocationRequest",
    "ResourceAllocator",
    "quantization_waste",
    "BlastRadius",
    "FailureModel",
    "InstanceReliability",
    "AvailabilityResult",
    "SparePolicy",
    "simulate_availability",
    "DisaggregatedPool",
    "KVPlacementPolicy",
    "MemorySystem",
    "ClusterPowerManager",
    "PeakStrategy",
    "PhasePools",
    "PhaseSplitScheduler",
    "ServingSimulator",
    "SimConfig",
    "SimReport",
]
