"""Generic discrete-event core of the serving simulator.

The seed simulator was one 356-line ``run()`` with closure-bound state and
hardcoded FCFS decisions.  This module is the refactored engine room:

- :class:`EventQueue` — a time-ordered heap with FIFO tie-breaking, so
  same-timestamp events replay in push order (determinism);
- instance state machines (:class:`PrefillState`, :class:`DecodeState`,
  :class:`ColocatedState`) — plain data advanced by the engines;
- :class:`ServiceTimeProvider` — a memoizing oracle over the analytical
  roofline model.  Every decode iteration used to re-run the full model;
  caching on ``(batch, context-bucket)`` keys removes that from the hot
  path (``context_bucket=1`` keeps results bit-exact, coarser buckets trade
  ≤ one bucket of context for large wall-clock wins);
- :class:`PhaseSplitEngine` and :class:`ColocatedEngine` — the two
  deployment shapes, both driven by a :class:`repro.cluster.policies`
  bundle instead of baked-in scheduling.

With the default ``"fcfs"`` bundle and ``context_bucket=1``,
:class:`PhaseSplitEngine` reproduces the seed simulator event-for-event
and float-for-float on failure-free runs (golden-pinned in
``benchmarks/test_serving_simulation.py``).  Failure handling is
deliberately *better* than the seed: victims requeued after the arrival
stream ends are re-dispatched immediately instead of stranding, and
overlapping failures extend an outage rather than truncating it.
"""

from __future__ import annotations

import abc
import copy
import heapq
import itertools
import math
from collections import deque
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.chunked import MixedIteration, mixed_iteration_time
from ..errors import SimulationError, SpecError
from ..hardware.power import DVFSCurve
from ..network.collectives import Collective, cost_for
from ..network.topology import Topology
from ..network.traffic import congestion_slowdown
from ..workloads.traces import Request
from .control import ClusterController, ControlAction, ControlObservation, PoolStats
from .policies import PolicyBundle
from .scheduler import ColocatedPool, InstanceSpec, PhasePools

__all__ = [
    "EventQueue",
    "AbstractServiceTimeProvider",
    "ServiceTimeProvider",
    "NetworkAwareServiceTimeProvider",
    "ActiveSequence",
    "PrefillState",
    "DecodeState",
    "PartialPrefill",
    "ColocatedState",
    "CompletedRequest",
    "PhaseSplitEngine",
    "ColocatedEngine",
]

#: Event kinds that are pure bookkeeping: they must not advance the
#: reported workload clock (``work_time``) — a controller epoch or a
#: repair on an idle cluster would otherwise dilute every
#: duration-normalized metric.
_BOOKKEEPING_EVENTS = frozenset({"failure", "recovered", "controller", "spawn_ready"})


def require_kv_headroom(instance: InstanceSpec, pool_label: str) -> int:
    """Return the instance's KV token capacity, raising if it has none.

    The single source of the fail-fast guard used by both the simulators
    (at construction) and the engines (at run setup).
    """
    capacity = instance.kv_token_capacity()
    if capacity <= 0:
        raise SpecError(f"{pool_label} instances have no KV capacity headroom")
    return capacity


class EventQueue:
    """A time-ordered event heap with FIFO tie-breaking.

    Events pushed at the same timestamp pop in push order (a monotonically
    increasing sequence number breaks ties), which makes every simulation a
    pure function of its inputs.

    >>> q = EventQueue()
    >>> q.push(2.0, "b"); q.push(1.0, "a"); q.push(1.0, "c")
    >>> [q.pop()[1] for _ in range(len(q))]
    ['a', 'c', 'b']
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, str, tuple]] = []
        self._seq = itertools.count()

    def push(self, time: float, kind: str, payload: tuple = ()) -> None:
        """Schedule an event."""
        heapq.heappush(self._heap, (time, next(self._seq), kind, payload))

    def pop(self) -> Tuple[float, str, tuple]:
        """Remove and return the earliest event as ``(time, kind, payload)``."""
        time, _, kind, payload = heapq.heappop(self._heap)
        return time, kind, payload

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class AbstractServiceTimeProvider(abc.ABC):
    """The engines' service-time oracle interface.

    Implementations answer "how long does one batch/iteration take on
    instance ``instance`` of this pool?".  The baseline
    :class:`ServiceTimeProvider` ignores ``instance`` (every instance of a
    pool is identical when the network is not modeled);
    :class:`NetworkAwareServiceTimeProvider` uses it to price each
    instance's collectives from its *placed* GPU group.

    Providers also carry the control plane's **DVFS frequency scalar**:
    :meth:`set_frequency` stretches every GPU-bound latency by ``1/f``
    (throughput assumed linear in clock).  The default ``f = 1.0`` divides
    by exactly one, so controller-free runs stay bit-identical.
    """

    _frequency: float = 1.0

    def set_frequency(self, scalar: float) -> None:
        """Set the DVFS clock scalar applied to GPU-bound latencies."""
        if scalar <= 0:
            raise SpecError("frequency scalar must be positive")
        self._frequency = float(scalar)

    @property
    def frequency(self) -> float:
        """The current DVFS clock scalar (1.0 = base clock)."""
        return self._frequency

    @abc.abstractmethod
    def prefill_time(self, batch: int, prompt_len: int, instance: int = 0) -> float:
        """Latency of one prefill batch."""

    @abc.abstractmethod
    def decode_time(self, batch: int, context_len: int, instance: int = 0) -> float:
        """Latency of one decode iteration."""

    @abc.abstractmethod
    def mixed_time(
        self, decode_batch: int, context_len: int, chunk: int, prompt_len: int,
        instance: int = 0,
    ) -> float:
        """Latency of one SARATHI-style mixed decode+chunk iteration."""

    @abc.abstractmethod
    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters (for benchmarks/tests)."""


class ServiceTimeProvider(AbstractServiceTimeProvider):
    """Memoizing service-time oracle for one :class:`InstanceSpec`.

    The analytical model is pure, so identical ``(batch, context)`` queries
    always yield identical latencies — yet the seed simulator re-evaluated
    the full roofline every decode iteration, which dominated long-trace
    wall-clock.  This provider caches evaluations keyed on the batch and a
    *context bucket*: with ``context_bucket=1`` results are bit-exact; with
    a coarser bucket the context is rounded **up** to the next bucket edge
    (a conservative latency estimate) and the hit rate soars.
    """

    def __init__(self, instance: InstanceSpec, context_bucket: int = 1, cache: bool = True) -> None:
        if context_bucket < 1:
            raise SpecError("context_bucket must be at least 1")
        self.instance = instance
        self.context_bucket = int(context_bucket)
        self.cache_enabled = cache
        self._cache: Dict[tuple, float] = {}
        self.hits = 0
        self.misses = 0

    def _bucket(self, length: int) -> int:
        length = max(1, int(length))
        b = self.context_bucket
        if b == 1:
            return length
        return ((length + b - 1) // b) * b

    def _memo(self, key: tuple, compute) -> float:
        if self.cache_enabled:
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                return cached
        self.misses += 1
        value = compute()
        if self.cache_enabled:
            self._cache[key] = value
        return value

    def prefill_time(self, batch: int, prompt_len: int, instance: int = 0) -> float:
        """Latency of one prefill batch (prompt length bucketed)."""
        prompt = self._bucket(prompt_len)
        # The memo stores base-clock latencies; the DVFS scalar is applied
        # on the way out so frequency changes never thrash the cache.
        return self._memo(
            ("p", batch, prompt), lambda: self.instance.prefill_time(batch, prompt)
        ) / self._frequency

    def decode_time(self, batch: int, context_len: int, instance: int = 0) -> float:
        """Latency of one decode iteration (context bucketed)."""
        context = self._bucket(context_len)
        return self._memo(
            ("d", batch, context), lambda: self.instance.decode_time(batch, context)
        ) / self._frequency

    def mixed_time(
        self, decode_batch: int, context_len: int, chunk: int, prompt_len: int,
        instance: int = 0,
    ) -> float:
        """Latency of one SARATHI-style mixed decode+chunk iteration."""
        context = self._bucket(context_len)
        prompt = self._bucket(prompt_len)
        spec = self.instance

        def compute() -> float:
            iteration = MixedIteration(
                decode_batch=decode_batch, context_len=context, chunk=chunk, prompt_len=prompt
            )
            return mixed_iteration_time(
                spec.model, spec.gpu, spec.n_gpus, iteration, spec.policy
            ).iteration_time

        return self._memo(("m", decode_batch, context, chunk, prompt), compute) / self._frequency

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters and resident entries (for benchmarks/tests)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._cache)}


class NetworkAwareServiceTimeProvider(ServiceTimeProvider):
    """Service times that include *placed* collective costs on a fabric.

    The analytical roofline already charges tensor-parallel collectives at
    the GPU's nominal mesh/net bandwidth — the ideal, placement-blind
    figure.  This provider adds the *fabric overlay*: what the cluster
    network charges on top, given where the instance's TP group actually
    landed on the topology.  Per iteration it prices the two Megatron
    all-reduces per layer (:func:`repro.network.collectives.cost_for`) at

    - the topology's per-GPU injection bandwidth (derated by the policy's
      ``net_efficiency``),
    - an alpha scaled by the group's worst pairwise hop count
      (:meth:`~repro.network.topology.Topology.hop_count`), and
    - a link-contention multiplier from the group's ring traffic matrix
      (:func:`repro.network.traffic.congestion_slowdown`).

    Packed placements (TP groups inside one direct-connect group / leaf)
    therefore beat scattered ones on the same deployment — the co-design
    signal the paper's Section 3 is after.  Groups of one GPU pay nothing.
    """

    def __init__(
        self,
        instance: InstanceSpec,
        topology: Topology,
        groups: Sequence[Tuple[int, ...]],
        context_bucket: int = 1,
        cache: bool = True,
        contention: bool = True,
    ) -> None:
        super().__init__(instance, context_bucket, cache)
        if not groups:
            raise SpecError("network-aware provider needs at least one placed group")
        for group in groups:
            if len(group) != instance.n_gpus:
                raise SpecError(
                    f"placed group width {len(group)} != instance TP degree {instance.n_gpus}"
                )
        self.topology = topology
        self.groups = tuple(tuple(g) for g in groups)
        self.contention_enabled = contention
        # Per-group fabric parameters, deduplicated: packed placements give
        # every instance an identical (hops, contention) signature, so the
        # overhead memo below collapses to one entry per distinct signature.
        self._params: List[Tuple[int, int, float, float]] = []
        bandwidth = topology.per_gpu_bandwidth * instance.policy.net_efficiency
        for group in self.groups:
            world = len(group)
            if world == 1:
                self._params.append((1, 0, 1.0, bandwidth))
                continue
            max_hops = max(
                topology.hop_count(a, b) for i, a in enumerate(group) for b in group[i + 1 :]
            )
            slowdown = 1.0
            if contention:
                slowdown = max(1.0, congestion_slowdown(topology, self._ring_matrix(group)))
            self._params.append((world, max_hops, slowdown, bandwidth))
        self._overhead_cache: Dict[tuple, float] = {}

    def _ring_matrix(self, group: Tuple[int, ...]) -> np.ndarray:
        """Ring-collective demand over the placed group (nominal volume)."""
        n = self.topology.n_gpus
        matrix = np.zeros((n, n))
        nominal = 1e9  # scale-free: congestion_slowdown normalizes it away
        for i, src in enumerate(group):
            matrix[src, group[(i + 1) % len(group)]] = nominal
        return matrix

    def fabric_info(self) -> List[Dict[str, float]]:
        """Per-instance fabric parameters (for tests and reports)."""
        return [
            {"world": w, "max_hops": h, "contention": c, "bandwidth": bw}
            for w, h, c, bw in self._params
        ]

    def _fabric_overhead(self, instance: int, tokens: int) -> float:
        """Fabric collective time for one pass moving ``tokens`` activations."""
        if not 0 <= instance < len(self._params):
            raise SpecError(f"instance index {instance} out of placed range")
        world, max_hops, slowdown, bandwidth = self._params[instance]
        if world == 1 or tokens <= 0:
            return 0.0
        key = (world, max_hops, slowdown, tokens)
        if self.cache_enabled:
            cached = self._overhead_cache.get(key)
            if cached is not None:
                return cached
        spec = self.instance
        size = tokens * spec.model.hidden * spec.policy.act_bytes
        alpha = spec.policy.alpha * max(1, max_hops)
        per_layer = cost_for(Collective.ALL_REDUCE, size, world, bandwidth, alpha).time
        overhead = 2.0 * spec.model.layers * per_layer * slowdown
        if self.cache_enabled:
            self._overhead_cache[key] = overhead
        return overhead

    def prefill_time(self, batch: int, prompt_len: int, instance: int = 0) -> float:
        base = super().prefill_time(batch, prompt_len)
        return base + self._fabric_overhead(instance, batch * self._bucket(prompt_len))

    def decode_time(self, batch: int, context_len: int, instance: int = 0) -> float:
        base = super().decode_time(batch, context_len)
        return base + self._fabric_overhead(instance, batch)

    def mixed_time(
        self, decode_batch: int, context_len: int, chunk: int, prompt_len: int,
        instance: int = 0,
    ) -> float:
        base = super().mixed_time(decode_batch, context_len, chunk, prompt_len)
        return base + self._fabric_overhead(instance, decode_batch + chunk)

    def cache_info(self) -> Dict[str, int]:
        """Base-model memo counters plus the fabric-overhead memo size."""
        info = super().cache_info()
        info["entries"] += len(self._overhead_cache)
        info["overhead_entries"] = len(self._overhead_cache)
        return info


# --- instance state machines ------------------------------------------------
#
# Every instance state carries the same lifecycle block, maintained by the
# engines' control plane:
#
# - ``spawned_at`` / ``up_from``  — when the instance was provisioned and
#   when its warm-up (weight load) completes; work is only offered from
#   ``up_from`` on, but GPU-seconds accrue from ``spawned_at`` (the
#   provisioning cost of a scale-up);
# - ``draining`` — no new work; resident sequences finish;
# - ``retired`` / ``retired_at`` — the instance released its GPUs;
# - ``energy_busy`` — busy seconds weighted by the DVFS power ratio in
#   effect when each batch ran (the integrand of the energy accounting).


def _available(state, time: float) -> bool:
    """Can this instance be offered new work at ``time``?"""
    return (
        not state.retired
        and not state.draining
        and time >= state.up_from
        and time >= state.down_until
    )


@dataclass
class ActiveSequence:
    """A sequence resident in a decode (or colocated) instance.

    Under the fast engine the per-sequence bookkeeping is implicit: every
    resident sequence of an instance experiences the same iterations, so
    the engine keeps one shared iteration log per instance and each
    sequence only remembers ``start_iter`` — the instance iteration count
    at admission.  Its generated-token count is then always
    ``iter_count - start_iter`` and its per-token latencies are the log
    tail from ``start_iter``; neither needs per-sequence appends.  The
    legacy path (``fast_engine=False``) still maintains ``generated`` and
    ``iteration_times`` explicitly, one append per sequence per tick.
    """

    request: Request
    generated: int = 0
    ttft_done: float = 0.0
    iteration_times: List[float] = field(default_factory=list)
    start_iter: int = 0

    @property
    def context_len(self) -> int:
        return self.request.prompt_tokens + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_tokens


@dataclass
class PrefillState:
    """One prefill instance: either idle, running a batch, or down."""

    busy: bool = False
    down_until: float = 0.0
    busy_time: float = 0.0
    spawned_at: float = 0.0
    up_from: float = 0.0
    draining: bool = False
    retired: bool = False
    retired_at: float = math.inf
    energy_busy: float = 0.0


@dataclass
class DecodeState:
    """One decode instance running continuous batching.

    ``occupied`` (final KV footprints of resident sequences) and
    ``context_sum`` (sum of their current context lengths) are maintained
    incrementally by the engine — integer arithmetic, so they are exactly
    the sums the seed recomputed by scanning ``active`` on every event.

    The fast engine adds the shared-iteration structures: ``iter_log`` is
    the latency of every iteration this instance ran (pruned below the
    oldest resident ``start_iter``, with ``log_base`` tracking the prune
    offset), ``iter_count`` the lifetime iteration count, and ``due`` maps
    a future iteration count to the sequences completing exactly there —
    a sequence admitted at count ``c`` with ``n`` output tokens finishes
    when the count reaches ``c + n``, so the per-tick completion scan is
    one dict pop instead of a walk over the whole batch.
    """

    active: List[ActiveSequence] = field(default_factory=list)
    busy_until: float = 0.0
    running: bool = False
    down_until: float = 0.0
    busy_time: float = 0.0
    occupied: int = 0
    context_sum: int = 0
    spawned_at: float = 0.0
    up_from: float = 0.0
    draining: bool = False
    retired: bool = False
    retired_at: float = math.inf
    energy_busy: float = 0.0
    iter_log: List[float] = field(default_factory=list)
    log_base: int = 0
    iter_count: int = 0
    due: Dict[int, List[ActiveSequence]] = field(default_factory=dict)

    def occupied_tokens(self) -> int:
        return self.occupied

    def scan_occupied_tokens(self) -> int:
        """Recount by scanning (the seed's per-event path; benchmark baseline)."""
        return sum(s.request.total_tokens for s in self.active)


@dataclass
class PartialPrefill:
    """A prompt being chunked through a colocated instance."""

    request: Request
    remaining: int


@dataclass
class ColocatedState:
    """One colocated instance: decode batch + in-progress chunked prefill.

    ``occupied`` covers every committed sequence (decoding, chunking, or
    waiting to chunk); ``context_sum`` covers only the decoding batch.
    Both are engine-maintained integer counters equal to the scans the
    seed ran per event.  ``iter_log``/``log_base``/``iter_count``/``due``
    are the fast engine's shared-iteration structures (see
    :class:`DecodeState`); chunk-only iterations (empty decode batch) are
    logged too, so a joining sequence's ``start_iter`` always indexes the
    log consistently.
    """

    active: List[ActiveSequence] = field(default_factory=list)
    backlog: Deque[PartialPrefill] = field(default_factory=deque)
    current: Optional[PartialPrefill] = None
    busy_until: float = 0.0
    running: bool = False
    down_until: float = 0.0
    busy_time: float = 0.0
    occupied: int = 0
    context_sum: int = 0
    spawned_at: float = 0.0
    up_from: float = 0.0
    draining: bool = False
    retired: bool = False
    retired_at: float = math.inf
    energy_busy: float = 0.0
    iter_log: List[float] = field(default_factory=list)
    log_base: int = 0
    iter_count: int = 0
    due: Dict[int, List[ActiveSequence]] = field(default_factory=dict)

    def committed(self) -> int:
        """Sequences holding a slot (decoding, chunking, or waiting to chunk)."""
        return len(self.active) + len(self.backlog) + (1 if self.current else 0)

    def occupied_tokens(self) -> int:
        return self.occupied

    def scan_occupied_tokens(self) -> int:
        """Recount by scanning (the seed's per-event path; benchmark baseline)."""
        tokens = sum(s.request.total_tokens for s in self.active)
        tokens += sum(p.request.total_tokens for p in self.backlog)
        if self.current is not None:
            tokens += self.current.request.total_tokens
        return tokens

    def has_work(self) -> bool:
        return bool(self.active or self.backlog or self.current)


@dataclass(frozen=True)
class CompletedRequest:
    """Per-request outcome."""

    request: Request
    ttft: float
    e2e: float
    mean_tbt: float
    restarts: int = 0


#: Prune the shared iteration log only in chunks this large: the prune scans
#: ``active`` for the oldest ``start_iter``, so amortize it over many ticks.
_LOG_PRUNE = 4096


def _register_due(inst, seq: ActiveSequence) -> None:
    """Schedule ``seq``'s completion at its exact future iteration count."""
    seq.start_iter = inst.iter_count
    inst.due.setdefault(inst.iter_count + seq.request.output_tokens, []).append(seq)


def _clear_iter_log(inst) -> None:
    """Forget the instance's shared-iteration state (failure wiped it)."""
    inst.due.clear()
    inst.iter_log.clear()
    inst.log_base = inst.iter_count


def _prune_iter_log(inst) -> None:
    """Drop log entries below every resident sequence's ``start_iter``."""
    if len(inst.iter_log) < 2 * _LOG_PRUNE:
        return
    base = min((s.start_iter for s in inst.active), default=inst.iter_count)
    drop = base - inst.log_base
    if drop >= _LOG_PRUNE:
        del inst.iter_log[:drop]
        inst.log_base = base


def _tail_mean(inst, seq: ActiveSequence) -> float:
    """Mean per-token latency of a sequence completing *now*.

    The log tail from ``start_iter`` is exactly the latencies the legacy
    path appended to ``seq.iteration_times`` — same floats, same order, so
    ``np.mean`` is bit-identical.
    """
    return float(np.mean(inst.iter_log[seq.start_iter - inst.log_base:]))


# --- engines ----------------------------------------------------------------


class _EngineBase:
    """Shared event loop: subclasses provide a ``handlers`` mapping.

    The loop owns the **control plane**: when a
    :class:`~repro.cluster.control.ClusterController` with a positive
    epoch is attached, a ``controller`` event fires every epoch, observes
    the cluster, and applies the returned action — spawning instances
    (with warm-up), draining them gracefully, or setting the DVFS
    frequency scalar on every service-time provider.  ``controller=None``
    (or the ``static`` controller) schedules no events at all, keeping the
    event stream bit-identical to the pre-control-plane engine.
    """

    def __init__(
        self,
        config,
        controller: Optional[ClusterController] = None,
        power_curve: Optional[DVFSCurve] = None,
        spawn_limits: Optional[Dict[str, int]] = None,
    ) -> None:
        self.config = config
        # fast_engine=True (the default) reads the incrementally maintained
        # occupancy/context counters; False re-derives both by scanning
        # instance state per event, exactly as the seed did — kept as the
        # measured baseline for benchmarks/test_perf_sweep.py.  Both modes
        # are bit-identical: the counters are integer sums of the same terms.
        self.fast = getattr(config, "fast_engine", True)
        # metrics="streaming" routes completions into constant-memory
        # quantile sketches instead of the ``completed`` list; "exact" (the
        # default) keeps every CompletedRequest and stays bit-identical to
        # the goldens.  The import is deferred to engine construction:
        # ``repro.analysis`` pulls report modules that import this package,
        # so a module-level import would be circular.
        self.metrics = None
        if getattr(config, "metrics", "exact") == "streaming":
            from ..analysis.streaming import StreamingMetrics

            self.metrics = StreamingMetrics()
        self.events = EventQueue()
        self.now = 0.0
        # Clock of the last *request-affecting* event.  Failure/recovery
        # bookkeeping alone must not extend the reported duration: a
        # stochastic schedule spans the whole horizon, and letting an idle
        # cluster's repair events advance the workload clock would deflate
        # every duration-normalized metric (tok/s, utilization).
        self.work_time = 0.0
        self.completed: List[CompletedRequest] = []
        self.ttft: Dict[int, float] = {}
        self.restarts: Dict[int, int] = {}
        self.requeued = 0
        # Distinct requests that restarted at least once, counted at the
        # moment of first restart.  Unlike ``len(restarts)`` this survives
        # the streaming path's entry pruning, so exact and streaming runs
        # (and sharded merges, which sum it over disjoint id sets) report
        # the same number.
        self.restarted_total = 0
        # The resilience runtime (deadlines / retries / checkpoints /
        # brown-out) — None by default, in which case no hook below runs
        # and the event stream is bit-identical to the goldens.  Deferred
        # import: resilience imports this module for the provider ABC.
        self.resilience = None
        resilience_config = getattr(config, "resilience", None)
        if resilience_config is not None:
            from .resilience import ResilienceRuntime

            self.resilience = ResilienceRuntime(resilience_config)
            self.resilience.bind(
                lambda at, request: self.events.push(at, "retry", (request,))
            )
        # Integer counters maintained in both metric modes: the arrival
        # count replaces ``len(trace)`` for iterator traces, and the output
        # token sum replaces the economics pass over ``completed`` (the
        # incremental int sum is identical to the genexpr it replaces).
        self.arrivals = 0
        self.output_token_count = 0
        self.controller = controller
        self.power_curve = power_curve or DVFSCurve()
        self.spawn_limits = dict(spawn_limits or {})
        self.frequency = 1.0
        self._busy_power_ratio = self.power_curve.power_ratio(1.0)
        self.spawned = 0
        self.retired = 0
        self._window_ttfts: List[float] = []
        self._window_tbts: List[float] = []

    def _record_ttft(self, request: Request, time: float) -> None:
        # Keep the first-token-ever time: a failure-requeued request's second
        # prefill must not overwrite its original TTFT.
        if request.request_id not in self.ttft:
            value = time - request.arrival
            self.ttft[request.request_id] = value
            # The SLO window only feeds controller observations; without a
            # controller it would just accumulate for the whole run.
            if self.controller is not None:
                self._window_ttfts.append(value)
            if self.resilience is not None:
                self.resilience.note_ttft(value)

    def _record_restart(self, request: Request) -> None:
        count = self.restarts.get(request.request_id)
        if count is None:
            count = 0
            self.restarted_total += 1
        self.restarts[request.request_id] = count + 1
        self.requeued += 1

    def _complete(self, seq: ActiveSequence, finish: float, mean_tbt: float) -> None:
        request = seq.request
        if self.controller is not None:
            self._window_tbts.append(mean_tbt)
        output_tokens = request.output_tokens
        if self.resilience is not None:
            # Checkpoint credit: tokens generated before a checkpointed
            # restart, counted once at the final incarnation's completion.
            output_tokens += self.resilience.on_complete(
                request, finish, self.ttft.get(request.request_id, 0.0), mean_tbt
            )
        self.output_token_count += output_tokens
        if self.metrics is not None:
            # Pop, don't get: completed requests never return, so dropping
            # the TTFT (and restart-count) entries keeps both dicts bounded
            # by in-flight requests.
            self.metrics.record(
                ttft=self.ttft.pop(request.request_id, 0.0),
                mean_tbt=mean_tbt,
                e2e=finish - request.arrival,
                output_tokens=output_tokens,
            )
            self.restarts.pop(request.request_id, None)
            return
        self.completed.append(
            CompletedRequest(
                request=request,
                ttft=self.ttft.get(request.request_id, 0.0),
                e2e=finish - request.arrival,
                mean_tbt=mean_tbt,
                restarts=self.restarts.get(request.request_id, 0),
            )
        )

    def _on_retry(self, now: float, payload: tuple) -> None:
        """A client backoff elapsed: the request re-enters the front door.

        A dedicated event kind — *not* ``"arrival"`` — because the run
        loop feeds iterator traces one request per arrival pop; a retry
        masquerading as an arrival would over-consume the trace.
        """
        (request,) = payload
        self.resilience.on_retry_fired()
        self._accept_request(request, now)

    def _accept_request(self, request: Request, now: float) -> None:  # pragma: no cover
        raise NotImplementedError

    def _instance_seconds(self, duration: float) -> float:
        """Provisioned instance-seconds inside ``duration`` (availability base)."""
        total = 0.0
        for state in self._all_states():
            end = min(state.retired_at, duration)
            total += max(0.0, end - state.spawned_at)
        return total

    def _all_states(self) -> list:  # pragma: no cover - abstract
        raise NotImplementedError

    def _feed_arrival(self, arrival_iter: Iterator[Request]) -> None:
        request = next(arrival_iter, None)
        if request is not None:
            self.arrivals += 1
            self.events.push(request.arrival, "arrival", (request,))

    def run(self, trace: "Sequence[Request] | Iterable[Request]") -> "_EngineBase":
        """Drain the event heap up to the configured horizon.

        ``trace`` is either a materialized sequence — every arrival is
        pushed up-front, the seed path, bit-identical heap tie-breaking —
        or any iterator of arrival-ordered requests (e.g.
        :func:`repro.workloads.traces.iter_trace`), consumed one arrival
        ahead of the clock so only O(in-flight) requests are ever resident.
        """
        arrival_iter: Optional[Iterator[Request]] = None
        if isinstance(trace, SequenceABC):
            for request in trace:
                self.events.push(request.arrival, "arrival", (request,))
            self.arrivals = len(trace)
        else:
            arrival_iter = iter(trace)
            self._feed_arrival(arrival_iter)
        for time, pool, index, duration in self.failures:
            self.events.push(time, "failure", (pool, index, duration))
        if self.controller is not None and self.controller.epoch > 0:
            self.events.push(self.controller.epoch, "controller", ())
        handlers = self.handlers()
        horizon = self.config.max_sim_time
        while self.events:
            time, kind, payload = self.events.pop()
            if time > horizon:
                break
            if arrival_iter is not None and kind == "arrival":
                self._feed_arrival(arrival_iter)
            self.now = time
            if kind not in _BOOKKEEPING_EVENTS:
                self.work_time = time
            handler = handlers.get(kind)
            if handler is None:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind '{kind}'")
            handler(time, payload)
        return self

    def handlers(self):  # pragma: no cover - abstract
        raise NotImplementedError

    # --- control plane ------------------------------------------------------

    def _control_handlers(self):
        """The event handlers every engine shares with the control plane."""
        return {
            "controller": self._on_controller_event,
            "spawn_ready": self._on_spawn_ready,
        }

    def _on_controller_event(self, now: float, payload: tuple) -> None:
        action = self.controller.step(self._observe(now))
        if action is not None and not action.is_noop():
            self._apply_action(now, action)
        # Keep stepping only while something can still happen: any
        # non-controller event in the heap, or queued/resident work that a
        # future scale-up could serve.  Otherwise the epoch chain would pin
        # every run to the full horizon.
        pending = any(kind != "controller" for _, _, kind, _ in self.events._heap)
        if pending or self._has_pending_work():
            self.events.push(now + self.controller.epoch, "controller", ())

    def _apply_action(self, now: float, action: ControlAction) -> None:
        if action.frequency is not None and action.frequency != self.frequency:
            self._set_frequency(action.frequency)
        for pool, delta in action.scale.items():
            if delta > 0:
                for _ in range(delta):
                    if not self._spawn(pool, now):
                        break
            elif delta < 0:
                for _ in range(-delta):
                    if not self._drain(pool, now):
                        break

    def _set_frequency(self, scalar: float) -> None:
        if scalar <= 0:
            raise SimulationError("controller set a non-positive frequency scalar")
        self.frequency = float(scalar)
        self._busy_power_ratio = self.power_curve.power_ratio(self.frequency)
        for provider in self._providers():
            provider.set_frequency(self.frequency)

    def _spawn_allowed(self, pool: str, states: list) -> bool:
        """Physical + policy bounds on adding one more instance to a pool."""
        limit = self.spawn_limits.get(pool)
        if limit is not None and len(states) >= limit:
            return False
        provisioned = sum(1 for s in states if not s.retired)
        return provisioned < self.controller.max_instances

    def _drain_floor(self, states: list) -> bool:
        """True when one more drain would leave the pool below its floor."""
        candidates = sum(1 for s in states if not s.retired and not s.draining)
        floor = max(1, self.controller.min_instances) if self.controller else 1
        return candidates <= floor

    def _retire_state(self, state, now: float) -> None:
        state.draining = True
        state.retired = True
        state.retired_at = now
        self.retired += 1

    def _pool_stats(self, states: list, now: float, queue_depth: int,
                    gpus_per_instance: int, capacity: int = 0) -> PoolStats:
        alive = warming = draining = busy = 0
        occupied: List[float] = []
        for state in states:
            if state.retired:
                continue
            if state.draining:
                draining += 1
            elif now < state.up_from:
                warming += 1
            else:
                alive += 1
                if capacity > 0:
                    occupied.append(state.occupied / capacity)
            if self._state_busy(state):
                busy += 1
        occupancy = float(np.mean(occupied)) if occupied else 0.0
        return PoolStats(
            alive=alive, warming=warming, draining=draining, busy=busy,
            queue_depth=queue_depth, occupancy=occupancy,
            gpus_per_instance=gpus_per_instance,
        )

    @staticmethod
    def _state_busy(state) -> bool:
        if isinstance(state, PrefillState):
            return state.busy
        if isinstance(state, ColocatedState):
            return state.has_work()
        return bool(state.active)

    def _make_observation(self, now: float, pools: Dict[str, PoolStats]) -> ControlObservation:
        obs = ControlObservation(
            time=now,
            pools=pools,
            window_ttfts=tuple(self._window_ttfts),
            window_tbts=tuple(self._window_tbts),
            frequency=self.frequency,
        )
        self._window_ttfts.clear()
        self._window_tbts.clear()
        return obs

    # Subclass hooks ---------------------------------------------------------

    def _observe(self, now: float) -> ControlObservation:  # pragma: no cover
        raise NotImplementedError

    def _has_pending_work(self) -> bool:  # pragma: no cover
        raise NotImplementedError

    def _providers(self) -> List[AbstractServiceTimeProvider]:  # pragma: no cover
        raise NotImplementedError

    def _spawn(self, pool: str, now: float) -> bool:  # pragma: no cover
        raise NotImplementedError

    def _drain(self, pool: str, now: float) -> bool:  # pragma: no cover
        raise NotImplementedError

    def _on_spawn_ready(self, now: float, payload: tuple) -> None:  # pragma: no cover
        raise NotImplementedError


class PhaseSplitEngine(_EngineBase):
    """Splitwise-style engine: a prefill pool feeding a decode pool.

    With the ``"fcfs"`` bundle this replays the seed simulator exactly:
    index-order instance scans, FIFO prefill batches sized by
    ``max_prefill_batch``, greedy head-of-line decode admission within the
    KV budget, and back-of-queue requeue when a failure drops KV state.
    """

    def __init__(
        self,
        pools: PhasePools,
        config,
        policies: PolicyBundle,
        prefill_provider: ServiceTimeProvider,
        decode_provider: ServiceTimeProvider,
        failures: Sequence[Tuple[float, str, int, float]] = (),
        controller: Optional[ClusterController] = None,
        power_curve: Optional[DVFSCurve] = None,
        spawn_limits: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(config, controller, power_curve, spawn_limits)
        self.pools = pools
        self.policies = policies
        self.prefill_provider = prefill_provider
        self.decode_provider = decode_provider
        self.kv_capacity = require_kv_headroom(pools.decode, "decode")
        self.failures = sorted(failures)
        self.prefill_queue: Deque[Request] = deque()
        self.decode_queue: Deque[Request] = deque()
        self.prefill_states = [PrefillState() for _ in range(pools.n_prefill)]
        self.decode_states = [DecodeState() for _ in range(pools.n_decode)]
        # Each pool gets its own routing instance so stateful policies
        # (round-robin) rotate per pool instead of interleaving both pools
        # through one shared counter.
        self.prefill_routing = copy.copy(policies.routing)
        self.decode_routing = copy.copy(policies.routing)

    def handlers(self):
        return {
            "arrival": self._on_arrival,
            "retry": self._on_retry,
            "prefill_done": self._on_prefill_done,
            "decode_iter": self._on_decode_iter,
            "decode_admit": self._on_decode_admit,
            "failure": self._on_failure,
            "recovered": self._on_recovered,
            **self._control_handlers(),
        }

    # --- control plane ------------------------------------------------------

    def _pool_states(self, pool: str) -> list:
        if pool == "prefill":
            return self.prefill_states
        if pool == "decode":
            return self.decode_states
        raise SimulationError(f"unknown pool '{pool}' (have prefill/decode)")

    def _all_states(self) -> list:
        return [*self.prefill_states, *self.decode_states]

    def _providers(self) -> List[AbstractServiceTimeProvider]:
        return [self.prefill_provider, self.decode_provider]

    def _has_pending_work(self) -> bool:
        return bool(
            self.prefill_queue
            or self.decode_queue
            or any(s.busy for s in self.prefill_states)
            or any(s.active for s in self.decode_states)
        )

    def _observe(self, now: float) -> ControlObservation:
        return self._make_observation(now, {
            "prefill": self._pool_stats(
                self.prefill_states, now, len(self.prefill_queue),
                self.pools.prefill.n_gpus,
            ),
            "decode": self._pool_stats(
                self.decode_states, now, len(self.decode_queue),
                self.pools.decode.n_gpus, capacity=self.kv_capacity,
            ),
        })

    def _spawn(self, pool: str, now: float) -> bool:
        states = self._pool_states(pool)
        if not self._spawn_allowed(pool, states):
            return False
        warm = now + max(0.0, self.controller.warmup_s)
        if pool == "prefill":
            states.append(PrefillState(spawned_at=now, up_from=warm))
        else:
            states.append(DecodeState(spawned_at=now, up_from=warm))
        self.spawned += 1
        self.events.push(warm, "spawn_ready", (pool,))
        return True

    def _drain(self, pool: str, now: float) -> bool:
        states = self._pool_states(pool)
        if self._drain_floor(states):
            return False
        candidates = [
            i for i, s in enumerate(states) if not s.retired and not s.draining
        ]
        if pool == "prefill":
            # Prefer idle instances; among equals, the latest-spawned.
            idx = min(candidates, key=lambda i: (states[i].busy, -i))
        else:
            # Least resident KV state drains fastest; ties retire the
            # latest-spawned instance first.
            idx = min(candidates, key=lambda i: (states[i].occupied, -i))
        inst = states[idx]
        inst.draining = True
        idle = (not inst.busy) if pool == "prefill" else (not inst.active)
        if idle:
            self._retire_state(inst, now)
        return True

    def _on_spawn_ready(self, now: float, payload: tuple) -> None:
        (pool,) = payload
        if pool == "prefill":
            self._dispatch_prefill(now)
        else:
            self._admit_decode(now)

    # --- dispatch ----------------------------------------------------------

    def _dispatch_prefill(self, time: float) -> None:
        if self.resilience is not None:
            self.resilience.sweep_queue(self.prefill_queue, time)
        if not self.prefill_queue:
            return
        order = self.prefill_routing.order([s.busy_time for s in self.prefill_states])
        for idx in order:
            inst = self.prefill_states[idx]
            if inst.busy or not _available(inst, time) or not self.prefill_queue:
                continue
            batch = self.policies.prefill.select(self.prefill_queue, self.pools.max_prefill_batch)
            if not batch:
                continue
            prompt = max(r.prompt_tokens for r in batch)
            latency = self.prefill_provider.prefill_time(len(batch), prompt, instance=idx)
            inst.busy = True
            inst.busy_time += latency
            inst.energy_busy += latency * self._busy_power_ratio
            self.events.push(time + latency, "prefill_done", (idx, tuple(batch)))

    def _admit_decode(self, time: float) -> None:
        if self.resilience is not None:
            self.resilience.sweep_queue(self.decode_queue, time)
        if not self.decode_queue:
            return
        # Loads double as each instance's KV budget: admissions to one
        # instance never change another's occupancy, so a single per-round
        # read feeds both the routing order and the budgets.
        if self.fast:
            loads = [s.occupied_tokens() for s in self.decode_states]
        else:
            loads = [s.scan_occupied_tokens() for s in self.decode_states]
        order = self.decode_routing.order(loads)
        for idx in order:
            inst = self.decode_states[idx]
            if not _available(inst, time) or not self.decode_queue:
                continue
            slots = self.pools.max_decode_batch - len(inst.active)
            budget = self.kv_capacity - loads[idx]
            for request in self.policies.admission.select(self.decode_queue, slots, budget):
                seq = ActiveSequence(request=request, ttft_done=time)
                inst.active.append(seq)
                inst.occupied += request.total_tokens
                inst.context_sum += request.prompt_tokens
                if self.fast:
                    _register_due(inst, seq)
            if inst.active and not inst.running:
                inst.running = True
                self.events.push(max(time, inst.busy_until), "decode_iter", (idx,))

    # --- handlers ----------------------------------------------------------

    def _on_arrival(self, now: float, payload: tuple) -> None:
        (request,) = payload
        self._accept_request(request, now)

    def _accept_request(self, request: Request, now: float) -> None:
        if self.resilience is not None:
            request = self.resilience.admit(request, now, len(self.prefill_queue))
            if request is None:
                return
        self.prefill_queue.append(request)
        self._dispatch_prefill(now)

    def _on_prefill_done(self, now: float, payload: tuple) -> None:
        idx, batch = payload
        inst = self.prefill_states[idx]
        inst.busy = False
        if inst.draining and not inst.retired:
            self._retire_state(inst, now)
        for request in batch:
            self._record_ttft(request, now)
            self.decode_queue.append(request)
        self._admit_decode(now)
        self._dispatch_prefill(now)

    def _on_decode_iter(self, now: float, payload: tuple) -> None:
        (idx,) = payload
        inst = self.decode_states[idx]
        if now < inst.down_until or not inst.active:
            inst.running = False
            return
        batch = len(inst.active)
        if self.fast:
            # Exact replacement for int(np.mean([s.context_len ...])): the
            # counter is the same integer sum, and float64 division of
            # exact integers is identical either way — minus the per-event
            # list build and numpy round-trip.
            context = int(inst.context_sum / batch)
        else:
            context = int(np.mean([s.context_len for s in inst.active]))
        latency = max(
            self.decode_provider.decode_time(batch, max(1, context), instance=idx),
            self.config.min_decode_interval,
        )
        inst.busy_time += latency
        inst.energy_busy += latency * self._busy_power_ratio
        finish = now + latency
        inst.busy_until = finish
        if self.fast:
            # One shared log append plus a dict pop of exactly the
            # sequences completing at this iteration count — no
            # per-sequence latency appends, no batch-wide done scan, no
            # active-list rebuild on completion-free ticks.  The remaining
            # per-sequence work is a single integer increment, which keeps
            # ``generated``/``context_len`` live for inspectors.
            # Completion order equals admit order within the bucket, which
            # is the order the legacy scan completes them in.
            for seq in inst.active:
                seq.generated += 1
            inst.iter_log.append(latency)
            inst.iter_count += 1
            inst.context_sum += batch  # every resident context grew by one
            done = inst.due.pop(inst.iter_count, None)
            if done:
                for seq in done:
                    self._complete(seq, finish, _tail_mean(inst, seq))
                    inst.occupied -= seq.request.total_tokens
                    inst.context_sum -= seq.context_len
                if len(done) == batch:
                    inst.active.clear()
                else:
                    done_ids = set(map(id, done))
                    inst.active = [s for s in inst.active if id(s) not in done_ids]
                _prune_iter_log(inst)
        else:
            for seq in inst.active:
                seq.generated += 1
                seq.iteration_times.append(latency)
            inst.context_sum += batch  # every resident context grew by one token
            still_active: List[ActiveSequence] = []
            for seq in inst.active:
                if seq.done:
                    self._complete(seq, finish, float(np.mean(seq.iteration_times)))
                    inst.occupied -= seq.request.total_tokens
                    inst.context_sum -= seq.context_len
                else:
                    still_active.append(seq)
            inst.active = still_active
        self.events.push(finish, "decode_admit", (idx,))

    def _on_decode_admit(self, now: float, payload: tuple) -> None:
        (idx,) = payload
        inst = self.decode_states[idx]
        inst.running = False
        self._admit_decode(now)
        if inst.draining and not inst.retired and not inst.active:
            self._retire_state(inst, now)
            return
        if inst.active and not inst.running and now >= inst.down_until:
            inst.running = True
            self.events.push(now, "decode_iter", (idx,))

    def _on_failure(self, now: float, payload: tuple) -> None:
        pool, index, duration = payload
        # Elastic runs validate failures against the *expanded* instance
        # range: a fault aimed at a never-spawned or already-retired
        # instance hits no hardware.
        states = self._pool_states(pool)
        if index >= len(states) or states[index].retired:
            return
        # max(): a short overlapping failure must not cut an outage short
        # (scripted and sampled schedules compose, so overlap is possible).
        if pool == "prefill":
            # An in-flight batch still finishes (its completion event is
            # already queued); prefill state is lost only for queued work.
            state = self.prefill_states[index]
            previous_down = state.down_until
            state.down_until = max(state.down_until, now + duration)
            if self.resilience is not None:
                self.resilience.on_failure_hit(
                    now, duration, (),
                    max(0.0, state.down_until - max(previous_down, now)),
                )
        else:
            inst = self.decode_states[index]
            previous_down = inst.down_until
            inst.down_until = max(inst.down_until, now + duration)
            inst.running = False
            runtime = self.resilience
            if runtime is None:
                victims = [seq.request for seq in inst.active]  # KV lost
            else:
                # An expired victim is shed, not requeued — its end-to-end
                # budget is already gone; the rest resume from their last
                # checkpoint (restart-from-prefill when checkpointing is
                # off or no interval completed yet).
                victims = []
                for seq in inst.active:
                    if runtime.expired_deadline(seq.request, now):
                        runtime.shed(seq.request, now, "deadline")
                    else:
                        victims.append(runtime.resume_request(seq.request, seq.generated))
            self.policies.requeue.requeue_all(victims, self.prefill_queue)
            for request in victims:
                self._record_restart(request)
            if runtime is not None:
                runtime.on_failure_hit(
                    now, duration, [r.request_id for r in victims],
                    max(0.0, inst.down_until - max(previous_down, now)),
                )
            inst.active.clear()
            _clear_iter_log(inst)
            inst.occupied = 0
            inst.context_sum = 0
            if inst.draining and not inst.retired:
                # A draining instance that just lost its residents has
                # nothing left to finish: release its GPUs now.
                self._retire_state(inst, now)
            # Victims must not strand: once the arrival stream has ended
            # nothing else would wake an idle prefill pool to re-serve them.
            self._dispatch_prefill(now)
        self.events.push(now + duration, "recovered", (pool, index))

    def _on_recovered(self, now: float, payload: tuple) -> None:
        pool, _ = payload
        if pool == "prefill":
            self._dispatch_prefill(now)
        else:
            self._admit_decode(now)


class ColocatedEngine(_EngineBase):
    """SARATHI-style engine: one pool interleaving chunked prefill + decode.

    Each instance runs mixed iterations: the continuous decode batch
    advances one token while up to ``chunk_tokens`` of the oldest admitted
    prompt are prefetched in the same pass.  When a prompt's last chunk
    lands, its first token is out (TTFT) and the sequence joins the decode
    batch.  A failure drops the instance's KV state — decoding *and*
    partially prefilled sequences restart from the shared pending queue.
    """

    def __init__(
        self,
        pool: ColocatedPool,
        config,
        policies: PolicyBundle,
        provider: ServiceTimeProvider,
        failures: Sequence[Tuple[float, str, int, float]] = (),
        controller: Optional[ClusterController] = None,
        power_curve: Optional[DVFSCurve] = None,
        spawn_limits: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(config, controller, power_curve, spawn_limits)
        self.pool = pool
        self.policies = policies
        self.provider = provider
        self.kv_capacity = require_kv_headroom(pool.instance, "colocated")
        self.failures = sorted(failures)
        self.pending: Deque[Request] = deque()
        self.states = [ColocatedState() for _ in range(pool.n_instances)]
        # Private copy so a caller-held bundle's stateful routing (round
        # robin) is not mutated across runs.
        self.routing = copy.copy(policies.routing)

    def handlers(self):
        return {
            "arrival": self._on_arrival,
            "retry": self._on_retry,
            "iter": self._on_iter,
            "admit": self._on_admit,
            "failure": self._on_failure,
            "recovered": self._on_recovered,
            **self._control_handlers(),
        }

    # --- control plane ------------------------------------------------------

    def _providers(self) -> List[AbstractServiceTimeProvider]:
        return [self.provider]

    def _all_states(self) -> list:
        return list(self.states)

    def _has_pending_work(self) -> bool:
        return bool(self.pending or any(s.has_work() for s in self.states))

    def _observe(self, now: float) -> ControlObservation:
        return self._make_observation(now, {
            "colocated": self._pool_stats(
                self.states, now, len(self.pending),
                self.pool.instance.n_gpus, capacity=self.kv_capacity,
            ),
        })

    def _spawn(self, pool: str, now: float) -> bool:
        if pool != "colocated":
            raise SimulationError(f"unknown pool '{pool}' (have colocated)")
        if not self._spawn_allowed(pool, self.states):
            return False
        warm = now + max(0.0, self.controller.warmup_s)
        self.states.append(ColocatedState(spawned_at=now, up_from=warm))
        self.spawned += 1
        self.events.push(warm, "spawn_ready", (pool,))
        return True

    def _drain(self, pool: str, now: float) -> bool:
        if pool != "colocated":
            raise SimulationError(f"unknown pool '{pool}' (have colocated)")
        if self._drain_floor(self.states):
            return False
        candidates = [
            i for i, s in enumerate(self.states) if not s.retired and not s.draining
        ]
        idx = min(candidates, key=lambda i: (self.states[i].occupied, -i))
        inst = self.states[idx]
        inst.draining = True
        if not inst.has_work():
            self._retire_state(inst, now)
        return True

    def _on_spawn_ready(self, now: float, payload: tuple) -> None:
        self._dispatch(now)

    # --- dispatch ----------------------------------------------------------

    def _dispatch(self, time: float) -> None:
        if self.resilience is not None:
            self.resilience.sweep_queue(self.pending, time)
        if not self.pending:
            return
        if self.fast:
            loads = [s.occupied_tokens() for s in self.states]
        else:
            loads = [s.scan_occupied_tokens() for s in self.states]
        order = self.routing.order(loads)
        for idx in order:
            inst = self.states[idx]
            if not _available(inst, time) or not self.pending:
                continue
            slots = self.pool.max_decode_batch - inst.committed()
            budget = self.kv_capacity - loads[idx]
            for request in self.policies.admission.select(self.pending, slots, budget):
                inst.backlog.append(PartialPrefill(request, request.prompt_tokens))
                inst.occupied += request.total_tokens
            if inst.has_work() and not inst.running:
                inst.running = True
                self.events.push(max(time, inst.busy_until), "iter", (idx,))

    def _on_arrival(self, now: float, payload: tuple) -> None:
        (request,) = payload
        self._accept_request(request, now)

    def _accept_request(self, request: Request, now: float) -> None:
        if self.resilience is not None:
            request = self.resilience.admit(request, now, len(self.pending))
            if request is None:
                return
        self.pending.append(request)
        self._dispatch(now)

    def _on_iter(self, now: float, payload: tuple) -> None:
        (idx,) = payload
        inst = self.states[idx]
        if now < inst.down_until:
            inst.running = False
            return
        if inst.current is None and inst.backlog:
            inst.current = inst.backlog.popleft()
        chunk = min(self.pool.chunk_tokens, inst.current.remaining) if inst.current else 0
        batch = len(inst.active)
        if batch == 0 and chunk == 0:
            inst.running = False
            return
        if self.fast:
            context = int(inst.context_sum / batch) if batch else 1
        else:
            context = int(np.mean([s.context_len for s in inst.active])) if inst.active else 1
        prompt_len = inst.current.request.prompt_tokens if inst.current else 1
        latency = max(
            self.provider.mixed_time(batch, max(1, context), chunk, prompt_len, instance=idx),
            self.config.min_decode_interval,
        )
        inst.busy_time += latency
        inst.energy_busy += latency * self._busy_power_ratio
        finish = now + latency
        inst.busy_until = finish
        if self.fast:
            # Chunk-only iterations (batch == 0) are logged too: a joiner
            # admitted below gets ``start_iter = iter_count`` *after* the
            # increment, so its first decode tick is the next iteration —
            # exactly when the legacy path first appends to it.
            for seq in inst.active:
                seq.generated += 1
            inst.iter_log.append(latency)
            inst.iter_count += 1
            inst.context_sum += batch
            if inst.current is not None:
                inst.current.remaining -= chunk
                if inst.current.remaining <= 0:
                    request = inst.current.request
                    self._record_ttft(request, finish)
                    seq = ActiveSequence(request=request, ttft_done=finish)
                    inst.active.append(seq)
                    _register_due(inst, seq)
                    inst.context_sum += request.prompt_tokens
                    inst.current = None
            done = inst.due.pop(inst.iter_count, None)
            if done:
                for seq in done:
                    self._complete(seq, finish, _tail_mean(inst, seq))
                    inst.occupied -= seq.request.total_tokens
                    inst.context_sum -= seq.context_len
                if len(done) == len(inst.active):
                    inst.active.clear()
                else:
                    done_ids = set(map(id, done))
                    inst.active = [s for s in inst.active if id(s) not in done_ids]
                _prune_iter_log(inst)
        else:
            for seq in inst.active:
                seq.generated += 1
                seq.iteration_times.append(latency)
            inst.context_sum += batch  # every decoding context grew by one token
            if inst.current is not None:
                inst.current.remaining -= chunk
                if inst.current.remaining <= 0:
                    request = inst.current.request
                    self._record_ttft(request, finish)
                    inst.active.append(ActiveSequence(request=request, ttft_done=finish))
                    inst.context_sum += request.prompt_tokens
                    inst.current = None
            still_active: List[ActiveSequence] = []
            for seq in inst.active:
                if seq.done:
                    self._complete(seq, finish, float(np.mean(seq.iteration_times)))
                    inst.occupied -= seq.request.total_tokens
                    inst.context_sum -= seq.context_len
                else:
                    still_active.append(seq)
            inst.active = still_active
        self.events.push(finish, "admit", (idx,))

    def _on_admit(self, now: float, payload: tuple) -> None:
        (idx,) = payload
        inst = self.states[idx]
        inst.running = False
        self._dispatch(now)
        if inst.draining and not inst.retired and not inst.has_work():
            self._retire_state(inst, now)
            return
        if inst.has_work() and not inst.running and now >= inst.down_until:
            inst.running = True
            self.events.push(now, "iter", (idx,))

    def _on_failure(self, now: float, payload: tuple) -> None:
        _, index, duration = payload
        if index >= len(self.states) or self.states[index].retired:
            return
        inst = self.states[index]
        previous_down = inst.down_until
        inst.down_until = max(inst.down_until, now + duration)
        inst.running = False
        runtime = self.resilience
        if runtime is None:
            lost = [seq.request for seq in inst.active]
            if inst.current is not None:
                lost.append(inst.current.request)
            backlog = [partial.request for partial in inst.backlog]
        else:
            # Expired victims (and expired backlog) are shed, not requeued;
            # surviving decode victims resume from their last checkpoint.
            # A partially chunked prompt has generated nothing, so it
            # restarts as-is.
            candidates = [(seq.request, seq.generated) for seq in inst.active]
            if inst.current is not None:
                candidates.append((inst.current.request, 0))
            lost = []
            for request, generated in candidates:
                if runtime.expired_deadline(request, now):
                    runtime.shed(request, now, "deadline")
                else:
                    lost.append(runtime.resume_request(request, generated))
            backlog = []
            for partial in inst.backlog:
                if runtime.expired_deadline(partial.request, now):
                    runtime.shed(partial.request, now, "deadline")
                else:
                    backlog.append(partial.request)
        for request in lost:  # KV / partial prefill lost: a real restart
            self._record_restart(request)
        # One order-preserving batch: real victims ahead of the backlog
        # (admitted but never chunked — no work lost, no restart counted).
        self.policies.requeue.requeue_all(lost + backlog, self.pending)
        if runtime is not None:
            runtime.on_failure_hit(
                now, duration, [r.request_id for r in lost],
                max(0.0, inst.down_until - max(previous_down, now)),
            )
        inst.active.clear()
        _clear_iter_log(inst)
        inst.backlog.clear()
        inst.current = None
        inst.occupied = 0
        inst.context_sum = 0
        if inst.draining and not inst.retired:
            self._retire_state(inst, now)
        # Healthy idle instances pick the victims up now, not at repair time.
        self._dispatch(now)
        self.events.push(now + duration, "recovered", (index,))

    def _on_recovered(self, now: float, payload: tuple) -> None:
        self._dispatch(now)
