"""Fluid/ODE fast path: millisecond analytic counterpart of the event engines.

The paper's lite-vs-big question is a *design-space search*: thousands of
(GPU grade, fleet size, parallelism, policy) points, each costing a full
discrete-event run.  This module replaces the event loop with a coupled
queue-mass / KV-token-mass fluid model in the style of Fluid-ODE LLM-serving
simulators: arrivals come from a binned trace profile, completion rates from
the memoized :class:`~repro.cluster.engine.AbstractServiceTimeProvider` via a
``d0 + d1·tokens`` batch-time fit, and the masses are integrated with a
fixed-step RK2 (midpoint) scheme in pure python/numpy.

The output is the **same** :class:`~repro.cluster.simulator.SimReport` the
event engines produce (with ``backend="fluid"`` provenance): latency
quantiles come from the arrival-weighted waiting-time distribution along the
trajectory (plus an Erlang-C residual-wait correction for the discreteness
the fluid limit erases), counters / throughput / utilization / economics
from the integrated masses, and NaN — never 0.0 — where the fluid cannot
estimate.

What the fluid model deliberately does *not* capture:

- per-request discreteness (Poisson burst tails beyond the profile's bin
  width are smoothed, so extreme p99s are approximate);
- failures, resilience policies, and elastic controllers — composing those
  with ``backend="fluid"`` raises :class:`~repro.errors.SpecError` at
  simulator construction rather than silently mis-estimating.

Use it to *screen* large sweeps (see :mod:`repro.analysis.screening`) and
promote only the survivors to event-level truth.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..workloads.traces import Request
from .economics import EconomicsConfig, EconomicsReport, pool_economics
from .engine import AbstractServiceTimeProvider
from .policies import PolicyBundle
from .scheduler import ColocatedPool, PhasePools

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulator imports us lazily)
    from .simulator import SimConfig, SimReport

__all__ = [
    "TraceProfile",
    "BatchTimeFit",
    "fluid_phase_split_report",
    "fluid_colocated_report",
]

_EPS = 1e-12
#: Cap on latency atoms: time steps are compressed to ≤ this many groups and
#: output lengths to ≤ this many quantile atoms before the e2e outer product,
#: so percentile extraction stays O(atoms² log atoms) regardless of horizon.
_MAX_TIME_ATOMS = 192
_MAX_LENGTH_ATOMS = 256
#: Residual-wait quartile midpoints.  Phase-split prefill passes are
#: deterministic, so a blocked arrival waits a *uniform* residual of one
#: pass; colocated prompt service is effectively exponential (M/M/c), so
#: the blocked wait uses exponential quantiles ``-ln(1-u)``.
_UNIFORM_ATOMS = (0.2, 0.4, 0.6, 0.8)
_EXP_ATOMS = (0.13353, 0.47000, 0.98083, 2.07944)


# --------------------------------------------------------------------------
# trace profile
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceProfile:
    """Binned arrival-rate profile plus length statistics of one trace.

    The fluid model only sees the trace through this: a piecewise-constant
    arrival rate ``rate_at(t)`` (requests/s per bin), mean prompt/output
    lengths for the mass dynamics, and ≤ :data:`_MAX_LENGTH_ATOMS`
    equal-weight output-length quantile atoms for the e2e distribution.
    """

    n_requests: int
    t_end: float
    bin_s: float
    rates: np.ndarray
    prompt_mean: float
    output_mean: float
    total_output_tokens: float
    output_atoms: np.ndarray

    @staticmethod
    def from_trace(trace: Sequence[Request], bin_s: Optional[float] = None) -> "TraceProfile":
        """Profile an arrival-ordered request list.

        ``bin_s`` defaults to ``max(1, t_end / 64)`` — fine enough that
        diurnal ramps and bursts survive, coarse enough that single-arrival
        Poisson noise does not masquerade as load swings.
        """
        if not trace:
            return TraceProfile(
                n_requests=0, t_end=0.0, bin_s=1.0, rates=np.zeros(1),
                prompt_mean=1.0, output_mean=1.0, total_output_tokens=0.0,
                output_atoms=np.ones(1),
            )
        arrivals = np.array([r.arrival for r in trace], dtype=float)
        prompts = np.array([r.prompt_tokens for r in trace], dtype=float)
        outputs = np.array([max(1, r.output_tokens) for r in trace], dtype=float)
        t_end = float(arrivals.max()) + _EPS
        if bin_s is None:
            bin_s = max(1.0, t_end / 64.0)
        n_bins = max(1, int(math.ceil(t_end / bin_s)))
        counts = np.bincount(
            np.minimum((arrivals / bin_s).astype(int), n_bins - 1), minlength=n_bins
        )
        n_atoms = min(_MAX_LENGTH_ATOMS, len(outputs))
        qs = (np.arange(n_atoms) + 0.5) / n_atoms * 100.0
        return TraceProfile(
            n_requests=len(trace),
            t_end=t_end,
            bin_s=float(bin_s),
            rates=counts / bin_s,
            prompt_mean=float(prompts.mean()),
            output_mean=float(outputs.mean()),
            total_output_tokens=float(outputs.sum()),
            output_atoms=np.percentile(outputs, qs),
        )

    @property
    def total_mean(self) -> float:
        """Mean final KV footprint (prompt + full output) per request."""
        return self.prompt_mean + self.output_mean

    @property
    def span(self) -> float:
        """End of the last arrival bin — rate integrals conserve mass to here."""
        return len(self.rates) * self.bin_s

    def rate_at(self, t: float) -> float:
        """Piecewise-constant arrival rate (requests/s) at clock ``t``."""
        if t < 0.0:
            return 0.0
        idx = int(t / self.bin_s)
        if idx >= len(self.rates):
            return 0.0
        return float(self.rates[idx])


# --------------------------------------------------------------------------
# batch-time fits
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchTimeFit:
    """``d0 + d1·tokens`` batch-time fit sampled from a service-time provider.

    ``d0``/``d1`` are the global least-squares affine coefficients (the
    Fluid-ODE closure); ``time_at`` evaluates the *segmented* fit — linear
    interpolation between the exact provider samples — so the completion
    rate stays accurate even where the roofline curve bends (memory-bound
    plateau into compute-bound slope).
    """

    tokens: np.ndarray
    times: np.ndarray
    d0: float
    d1: float

    @staticmethod
    def from_samples(tokens: Sequence[float], times: Sequence[float]) -> "BatchTimeFit":
        tok = np.asarray(tokens, dtype=float)
        tim = np.asarray(times, dtype=float)
        if len(tok) >= 2:
            d1, d0 = np.polyfit(tok, tim, 1)
        else:
            d0, d1 = 0.0, float(tim[0] / max(tok[0], 1.0))
        return BatchTimeFit(tokens=tok, times=tim, d0=float(d0), d1=float(d1))

    def time_at(self, tokens: float) -> float:
        """Segmented batch time at a (fractional) token count."""
        return float(np.interp(tokens, self.tokens, self.times))


def _batch_grid(max_batch: int, samples: int = 12) -> List[int]:
    """Unique integer batches, geometrically spaced over [1, max_batch]."""
    grid = np.unique(
        np.rint(np.geomspace(1, max(1, max_batch), num=samples)).astype(int)
    )
    return [int(b) for b in grid]


def _averaged(provider: AbstractServiceTimeProvider, n_instances: int, query) -> float:
    """Average a provider query over instances (fabric overheads differ)."""
    span = min(max(1, n_instances), 4)
    return sum(query(i) for i in range(span)) / span


def fit_decode(
    provider: AbstractServiceTimeProvider,
    max_batch: int,
    context: int,
    n_instances: int,
) -> BatchTimeFit:
    """Decode-iteration time vs batch (= tokens generated per iteration)."""
    batches = _batch_grid(max_batch)
    times = [
        _averaged(provider, n_instances, lambda i: provider.decode_time(b, context, instance=i))
        for b in batches
    ]
    return BatchTimeFit.from_samples([float(b) for b in batches], times)


def fit_prefill(
    provider: AbstractServiceTimeProvider,
    max_batch: int,
    prompt_len: int,
    n_instances: int,
) -> BatchTimeFit:
    """Prefill-pass time vs total prompt tokens in the batch."""
    batches = _batch_grid(max_batch, samples=8)
    times = [
        _averaged(
            provider, n_instances, lambda i: provider.prefill_time(b, prompt_len, instance=i)
        )
        for b in batches
    ]
    return BatchTimeFit.from_samples([float(b * prompt_len) for b in batches], times)


def fit_mixed(
    provider: AbstractServiceTimeProvider,
    max_batch: int,
    context: int,
    chunk: int,
    prompt_len: int,
    n_instances: int,
) -> BatchTimeFit:
    """SARATHI mixed-iteration time vs decode batch (chunk cost in ``d0``)."""
    batches = _batch_grid(max_batch)
    times = [
        _averaged(
            provider,
            n_instances,
            lambda i: provider.mixed_time(b, context, chunk, prompt_len, instance=i),
        )
        for b in batches
    ]
    return BatchTimeFit.from_samples([float(b) for b in batches], times)


def _smoothed_rates(rates: Sequence[float], window: int = 5) -> List[float]:
    """Centered moving average of the bin rates (edge-padded).

    The *dynamics* integrate the exact bin rates so arrival mass conserves;
    the *queueing corrections* (Erlang-C blocked probability, wait scale)
    use this smoothed profile instead, so single-bin Poisson noise does not
    masquerade as a saturating burst while real multi-bin ramps survive.
    """
    if len(rates) <= 2:
        return [float(r) for r in rates]
    arr = np.asarray(rates, dtype=float)
    half = window // 2
    padded = np.pad(arr, (half, half), mode="edge")
    kernel = np.full(window, 1.0 / window)
    return [float(r) for r in np.convolve(padded, kernel, mode="valid")]


def _erlang_c(n: int, offered: float) -> float:
    """M/M/n probability of waiting at ``offered`` erlangs (1.0 if saturated).

    Used as the blocked-arrival probability for the residual-wait
    correction: the fluid limit has no mid-pass arrivals, the event engine
    does, and the difference is exactly the classic Erlang-C wait mass.
    """
    if offered <= 0.0:
        return 0.0
    if offered >= n:
        return 1.0
    b = 1.0
    for k in range(1, n + 1):
        b = offered * b / (k + offered * b)
    rho = offered / n
    return b / (1.0 - rho + rho * b)


# --------------------------------------------------------------------------
# weighted-percentile machinery
# --------------------------------------------------------------------------


def _weighted_percentile(
    values: np.ndarray, weights: np.ndarray, qs: Sequence[float]
) -> np.ndarray:
    """Weighted percentiles (qs in [0, 100]) with midpoint interpolation."""
    order = np.argsort(values, kind="stable")
    v = values[order]
    w = weights[order]
    cum = np.cumsum(w)
    total = cum[-1]
    positions = (cum - 0.5 * w) / total
    return np.interp(np.asarray(qs, dtype=float) / 100.0, positions, v)


def _compress_steps(
    weights: np.ndarray, columns: Sequence[np.ndarray], max_atoms: int = _MAX_TIME_ATOMS
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Collapse consecutive time steps into ≤ ``max_atoms`` weighted groups."""
    n = len(weights)
    if n <= max_atoms:
        return weights, list(columns)
    k = int(math.ceil(n / max_atoms))
    groups = int(math.ceil(n / k))
    pad = groups * k - n
    w = np.pad(weights, (0, pad)).reshape(groups, k)
    gw = w.sum(axis=1)
    safe = np.maximum(gw, _EPS)
    out = []
    for col in columns:
        c = np.pad(col, (0, pad)).reshape(groups, k)
        out.append((c * w).sum(axis=1) / safe)
    keep = gw > _EPS
    return gw[keep], [c[keep] for c in out]


# --------------------------------------------------------------------------
# trajectory accumulator + report assembly
# --------------------------------------------------------------------------


@dataclass
class _Trajectory:
    """Everything the integrators accumulate for report assembly."""

    completed_mass: float = 0.0
    emitted_tokens: float = 0.0
    duration: float = 0.0
    busy_prefill: float = 0.0  # instance-seconds
    busy_decode: float = 0.0
    # Per-step (arrival-weighted) atoms for the e2e outer product.
    arrive_w: List[float] = field(default_factory=list)
    e2e_base: List[float] = field(default_factory=list)  # mean ttft + decode wait
    tbt_at_arrival: List[float] = field(default_factory=list)
    # TTFT atoms: multiple per step (base + blocked-wait residuals).
    ttft_w: List[float] = field(default_factory=list)
    ttft_vals: List[float] = field(default_factory=list)
    # Completion-weighted TBT atoms.
    complete_w: List[float] = field(default_factory=list)
    tbt_at_completion: List[float] = field(default_factory=list)


@dataclass(frozen=True)
class _FluidInstanceState:
    """Synthetic engine-state ledger row for :func:`pool_economics`.

    Fluid pools are static and run at base clock, so ``energy_busy`` equals
    ``busy_time`` (power ratio 1.0) and the lifecycle spans the whole run.
    """

    busy_time: float
    energy_busy: float
    spawned_at: float = 0.0
    retired_at: float = math.inf


def _ledger_states(busy_instance_seconds: float, n: int) -> List[_FluidInstanceState]:
    per = busy_instance_seconds / max(1, n)
    return [_FluidInstanceState(busy_time=per, energy_busy=per) for _ in range(n)]


def _fluid_report(
    profile: TraceProfile,
    traj: _Trajectory,
    n_prefill: int,
    n_decode: int,
) -> "SimReport":
    """Assemble a SimReport from an integrated trajectory (NaN, never 0.0)."""
    from .simulator import SimReport

    nan = float("nan")
    completed = max(0, int(round(min(traj.completed_mass, float(profile.n_requests)))))
    duration = max(traj.duration, _EPS)
    if completed > 0 and traj.arrive_w and traj.complete_w:
        ttft_p50, ttft_p99 = _weighted_percentile(
            np.array(traj.ttft_vals), np.array(traj.ttft_w), (50.0, 99.0)
        )
        cw = np.array(traj.complete_w)
        tbt_c = np.array(traj.tbt_at_completion)
        tbt_mean = float(np.average(tbt_c, weights=cw))
        (tbt_p99,) = _weighted_percentile(tbt_c, cw, (99.0,))
        # e2e: arrival-time atoms × empirical output-length atoms.
        aw = np.array(traj.arrive_w)
        gw, (gbase, gtbt) = _compress_steps(
            aw, (np.array(traj.e2e_base), np.array(traj.tbt_at_arrival))
        )
        atoms = profile.output_atoms
        e2e = (gbase[:, None] + atoms[None, :] * gtbt[:, None]).ravel()
        e2e_w = np.repeat(gw / len(atoms), len(atoms))
        e2e_p50, e2e_p99 = _weighted_percentile(e2e, e2e_w, (50.0, 99.0))
    else:
        ttft_p50 = ttft_p99 = tbt_mean = tbt_p99 = e2e_p50 = e2e_p99 = nan
    return SimReport(
        completed=completed,
        dropped=profile.n_requests - completed,
        duration=duration,
        ttft_p50=float(ttft_p50),
        ttft_p99=float(ttft_p99),
        tbt_mean=float(tbt_mean),
        tbt_p99=float(tbt_p99),
        e2e_p50=float(e2e_p50),
        e2e_p99=float(e2e_p99),
        output_tokens_per_s=traj.emitted_tokens / duration,
        prefill_utilization=min(1.0, traj.busy_prefill / (n_prefill * duration)),
        decode_utilization=min(1.0, traj.busy_decode / (n_decode * duration)),
        requeued_on_failure=0,
        backend="fluid",
    )


def _attach_fluid_economics(
    report: "SimReport", rollups: Tuple, out_tokens: float
) -> Tuple["SimReport", EconomicsReport]:
    econ = EconomicsReport(
        pools=tuple(rollups),
        duration=report.duration,
        output_tokens=int(round(out_tokens)),
    )
    report = replace(
        report,
        gpu_seconds=econ.gpu_seconds,
        energy_joules=econ.energy_joules,
        usd_cost=econ.usd_cost,
        usd_per_mtoken=econ.usd_per_mtoken,
    )
    return report, econ


def _balanced_routing(bundle: PolicyBundle) -> bool:
    """Does routing spread work across instances instead of packing index 0?"""
    return bundle.routing.name != "index-order"


def _fluid_dt(profile: TraceProfile, horizon: float) -> float:
    """Fixed RK2 step: ≥ 20ms, ≤ 600ms, ~1000 steps over the trace span."""
    span = max(profile.span, 1.0)
    return min(0.6, max(0.02, min(span, horizon) / 1000.0))


# --------------------------------------------------------------------------
# phase-split (Splitwise-style) integrator
# --------------------------------------------------------------------------


def _integrate_phase_split(
    pools: PhasePools,
    profile: TraceProfile,
    pfit: BatchTimeFit,
    dfit: BatchTimeFit,
    horizon: float,
    balanced: bool,
    kv_capacity: float,
) -> _Trajectory:
    # The hot loop below is deliberately inlined and memoized: it runs
    # O(1000) python iterations per simulated trace, and every dict hit it
    # saves is a direct chunk of the fluid backend's speedup claim.
    n_p, n_d = pools.n_prefill, pools.n_decode
    pm, out_mean = profile.prompt_mean, profile.output_mean
    max_pb = float(pools.max_prefill_batch)
    # Decode admits on the request's *final* KV footprint (prompt + output),
    # exactly like FCFSAdmission's token budget.
    cap = max(1.0, min(float(pools.max_decode_batch), kv_capacity / max(profile.total_mean, 1.0)))
    nd_max = n_d * cap
    dt = _fluid_dt(profile, horizon)
    half = 0.5 * dt
    traj = _Trajectory()
    rates = [float(r) for r in profile.rates]
    srates = _smoothed_rates(rates)
    n_bins = len(rates)
    inv_bin = 1.0 / profile.bin_s
    span = profile.span
    inv_np = 1.0 / n_p
    per_instance = 1.0 if balanced else cap
    out_floor = out_mean - 1e-9
    mass_floor = 1e-9 * max(1.0, float(profile.n_requests))
    exp, ceil = math.exp, math.ceil
    # Quantized (1/16-request) memo tables over the segmented fits, plus an
    # Erlang-C memo keyed on (arrival bin, prefill batch quantum).
    p_memo: dict = {}
    d_memo: dict = {}
    e_memo: dict = {}
    td_idle = dfit.time_at(1.0)

    aw_app = traj.arrive_w.append
    eb_app = traj.e2e_base.append
    ta_app = traj.tbt_at_arrival.append
    tw_app = traj.ttft_w.append
    tv_app = traj.ttft_vals.append
    cw_app = traj.complete_w.append
    tc_app = traj.tbt_at_completion.append

    def prefill_lookup(qb: int) -> float:
        tp = p_memo.get(qb)
        if tp is None:
            tp = pfit.time_at(qb * 0.0625 * pm)
            p_memo[qb] = tp
        return tp

    qp = qd = nd = 0.0
    progress = 0.0  # cumulative decode token progress ∫ dt / T_d
    cohorts: deque = deque()  # [mass, progress at admission]
    pop_front = cohorts.popleft
    push = cohorts.append
    step = 0
    max_steps = int(horizon / dt) + 1
    t_next = 0.0
    while step < max_steps:
        t = t_next
        t_next = (step + 1) * dt  # drift-free clock
        step += 1
        idx = int(t * inv_bin)
        lam = rates[idx] if idx < n_bins else 0.0
        idx_mid = int((t + half) * inv_bin)
        lam_mid = rates[idx_mid] if idx_mid < n_bins else 0.0

        # --- prefill queue, RK2 midpoint ---------------------------------
        bp1 = qp * inv_np
        bp1 = 1.0 if bp1 < 1.0 else (max_pb if bp1 > max_pb else bp1)
        qb1 = int(bp1 * 16.0 + 0.5)
        tp1 = prefill_lookup(qb1)
        cap1 = n_p * (qb1 * 0.0625) / tp1
        mu1 = qp / dt + lam
        if mu1 > cap1:
            mu1 = cap1
        qp_mid = qp + half * (lam - mu1)
        if qp_mid < 0.0:
            qp_mid = 0.0
        bp = qp_mid * inv_np
        bp = 1.0 if bp < 1.0 else (max_pb if bp > max_pb else bp)
        qb = int(bp * 16.0 + 0.5)
        bq = qb * 0.0625
        tp = prefill_lookup(qb)
        cap_rate = n_p * bq / tp
        mu_p = qp / dt + lam_mid
        if mu_p > cap_rate:
            mu_p = cap_rate
        qp = qp + dt * (lam_mid - mu_p)
        if qp < 0.0:
            qp = 0.0
        traj.busy_prefill += mu_p * tp / bq * dt

        # --- decode transport --------------------------------------------
        # Every resident request gains one token per iteration; a cohort
        # completes when its token progress spans the mean output length
        # (characteristic transport, not an exponential drain — this keeps
        # the tail drain time event-accurate).
        if nd > _EPS:
            n_act = ceil(nd / per_instance - 1e-9)
            if n_act < 1:
                n_act = 1
            elif n_act > n_d:
                n_act = n_d
            bd = nd / n_act
            if bd > cap:
                bd = cap
            qdk = int(bd * 16.0 + 0.5)
            if qdk < 16:
                qdk = 16
            td = d_memo.get(qdk)
            if td is None:
                td = dfit.time_at(qdk * 0.0625)
                d_memo[qdk] = td
            progress += dt / td
            # A partially-filled instance idles between arrivals: its busy
            # fraction is the discrete-occupancy 1 - e^(-batch).
            traj.busy_decode += n_act * (1.0 - exp(-bd)) * dt
        else:
            td = td_idle
        done = 0.0
        while cohorts and progress - cohorts[0][1] >= out_floor:
            done += pop_front()[0]
        if done > 0.0:
            nd -= done
            traj.completed_mass += done
            traj.duration = t_next
        # KV-bounded admission from the handoff queue plus fresh prefills.
        mu_adm = mu_p + qd / dt
        free_rate = (nd_max - nd) / dt
        if free_rate < 0.0:
            free_rate = 0.0
        if mu_adm > free_rate:
            mu_adm = free_rate
        admitted = mu_adm * dt
        if admitted > _EPS:
            push([admitted, progress])
            nd += admitted
        qd = qd + dt * (mu_p - mu_adm)
        if qd < 0.0:
            qd = 0.0

        # --- latency samples ---------------------------------------------
        w = lam_mid * dt
        if w > 0.0:
            base = qp / cap_rate + tp
            wait_d = qd * out_mean * td / nd if (qd > 1e-9 and nd > _EPS) else 0.0
            ekey = (idx_mid, qb)
            blocked = e_memo.get(ekey)
            if blocked is None:
                slam = srates[idx_mid] if idx_mid < n_bins else 0.0
                blocked = _erlang_c(n_p, slam * tp / bq)
                e_memo[ekey] = blocked
            tw_app(w * (1.0 - blocked))
            tv_app(base)
            if blocked > 1e-6:
                share = w * blocked * 0.25
                for frac in _UNIFORM_ATOMS:
                    tw_app(share)
                    tv_app(base + frac * tp)
            aw_app(w)
            eb_app(base + 0.5 * blocked * tp + wait_d)
            ta_app(td)
        if done > 0.0:
            cw_app(done)
            tc_app(td)
        if t_next >= span and qp + qd + nd <= mass_floor:
            break
    if traj.duration == 0.0:
        traj.duration = t_next
    traj.emitted_tokens = traj.completed_mass * out_mean + sum(
        mass * min(out_mean, progress - admitted_at) for mass, admitted_at in cohorts
    )
    return traj


# --------------------------------------------------------------------------
# colocated (SARATHI-style) integrator
# --------------------------------------------------------------------------


def _integrate_colocated(
    pool: ColocatedPool,
    profile: TraceProfile,
    mfit: BatchTimeFit,
    dfit: BatchTimeFit,
    horizon: float,
    balanced: bool,
    kv_capacity: float,
) -> _Trajectory:
    n = pool.n_instances
    pm, out_mean = profile.prompt_mean, profile.output_mean
    chunk = float(pool.chunk_tokens)
    cap = max(1.0, min(float(pool.max_decode_batch), kv_capacity / max(profile.total_mean, 1.0)))
    cap_total = n * cap
    dt = _fluid_dt(profile, horizon)
    half = 0.5 * dt
    traj = _Trajectory()
    rates = [float(r) for r in profile.rates]
    srates = _smoothed_rates(rates)
    n_bins = len(rates)
    inv_bin = 1.0 / profile.bin_s
    span = profile.span
    inv_pm = 1.0 / pm
    per_instance = 1.0 if balanced else cap
    passes_per_prompt = math.ceil(pm / chunk)
    out_floor = out_mean - 1e-9
    mass_floor = 1e-9 * max(1.0, float(profile.n_requests))
    exp, ceil = math.exp, math.ceil
    m_memo: dict = {}
    d_memo: dict = {}
    e_memo: dict = {}
    td_idle = dfit.time_at(1.0)

    aw_app = traj.arrive_w.append
    eb_app = traj.e2e_base.append
    ta_app = traj.tbt_at_arrival.append
    tw_app = traj.ttft_w.append
    tv_app = traj.ttft_vals.append
    cw_app = traj.complete_w.append
    tc_app = traj.tbt_at_completion.append

    qa = 0.0  # admission queue (not yet resident)
    prefill_tokens = 0.0  # outstanding prompt tokens among residents
    nd = 0.0  # decode-resident mass
    progress = 0.0
    cohorts: deque = deque()
    pop_front = cohorts.popleft
    push = cohorts.append
    step = 0
    max_steps = int(horizon / dt) + 1
    t_next = 0.0
    while step < max_steps:
        t = t_next
        t_next = (step + 1) * dt
        step += 1
        idx_mid = int((t + half) * inv_bin)
        lam_mid = rates[idx_mid] if idx_mid < n_bins else 0.0

        resident = nd + prefill_tokens * inv_pm
        if resident > _EPS:
            n_act = ceil(resident / per_instance - 1e-9)
            if n_act < 1:
                n_act = 1
            elif n_act > n:
                n_act = n
            bd = nd / n_act
            if bd > cap:
                bd = cap
            qdk = int(bd * 16.0 + 0.5)
            if qdk < 16:
                qdk = 16
            t_mix = m_memo.get(qdk)
            if t_mix is None:
                t_mix = mfit.time_at(qdk * 0.0625)
                m_memo[qdk] = t_mix
            t_dec = d_memo.get(qdk)
            if t_dec is None:
                t_dec = dfit.time_at(qdk * 0.0625)
                d_memo[qdk] = t_dec
            # Only the fraction of iterations that actually carry a chunk
            # pays the mixed-pass premium; the rest run decode-only.
            if prefill_tokens > _EPS:
                chunk_frac = (prefill_tokens / dt) / (n_act * chunk / t_mix)
                if chunk_frac > 1.0:
                    chunk_frac = 1.0
            else:
                chunk_frac = 0.0
            t_iter = chunk_frac * t_mix + (1.0 - chunk_frac) * t_dec
            traj.busy_decode += n_act * (1.0 - exp(-resident / n_act)) * dt
        else:
            n_act = 0
            chunk_frac = 0.0
            t_mix = t_iter = td_idle
        # Decode token progress (mixed iterations still emit one token per
        # resident sequence).
        if nd > _EPS:
            progress += dt / t_iter
        done = 0.0
        while cohorts and progress - cohorts[0][1] >= out_floor:
            done += pop_front()[0]
        if done > 0.0:
            nd -= done
            traj.completed_mass += done
            traj.duration = t_next
        # Chunked prefill: chunk-carrying iterations retire chunk tokens
        # each; finished prompts join the decode batch.
        if prefill_tokens > _EPS and n_act > 0:
            drained = chunk_frac * n_act * chunk / t_iter * dt
            if drained > prefill_tokens:
                drained = prefill_tokens
            prefill_tokens -= drained
            moved = drained * inv_pm
            if moved > _EPS:
                push([moved, progress])
                nd += moved
        # KV-bounded admission into residency.
        resident = nd + prefill_tokens * inv_pm
        free_rate = (cap_total - resident) / dt
        if free_rate < 0.0:
            free_rate = 0.0
        mu_adm = lam_mid + qa / dt
        if mu_adm > free_rate:
            mu_adm = free_rate
        admitted = mu_adm * dt
        qa = qa + dt * (lam_mid - mu_adm)
        if qa < 0.0:
            qa = 0.0
        prefill_tokens += admitted * pm

        w = lam_mid * dt
        if w > 0.0:
            wait = qa * out_mean * t_iter / nd if (qa > 1e-9 and nd > _EPS) else 0.0
            # A prompt prefills chunk-by-chunk: ceil(pm/chunk) mixed passes
            # to first token, plus the iteration-boundary residual.
            service = passes_per_prompt * t_mix
            base = wait + service + 0.5 * t_iter
            # Prompt service behind other prompts queues M/D/c-style:
            # blocked probability from Erlang-C, wait depth exponential at
            # *half* the M/M/c scale (chunk passes are deterministic).
            servers = n_act if n_act > 0 else 1
            ekey = (idx_mid, servers, int(service * 1e4))
            cached = e_memo.get(ekey)
            if cached is None:
                slam = srates[idx_mid] if idx_mid < n_bins else 0.0
                blocked = _erlang_c(servers, slam * service)
                gap = servers / service - slam
                scale = 0.5 / gap if gap > 1e-9 else 12.5 * service
                cached = (blocked, scale)
                e_memo[ekey] = cached
            blocked, scale = cached
            tw_app(w * (1.0 - blocked))
            tv_app(base)
            if blocked > 1e-6:
                share = w * blocked * 0.25
                for u in _EXP_ATOMS:
                    tw_app(share)
                    tv_app(base + u * scale)
            aw_app(w)
            eb_app(base + blocked * scale)
            ta_app(t_iter)
        if done > 0.0:
            cw_app(done)
            tc_app(t_iter)
        if t_next >= span and qa + prefill_tokens + nd <= mass_floor:
            break
    if traj.duration == 0.0:
        traj.duration = t_next
    traj.busy_prefill = traj.busy_decode  # one pool: both utilizations equal
    traj.emitted_tokens = traj.completed_mass * out_mean + sum(
        mass * min(out_mean, progress - admitted_at) for mass, admitted_at in cohorts
    )
    return traj


# --------------------------------------------------------------------------
# public entry points (called by the simulators' backend dispatch)
# --------------------------------------------------------------------------


def fluid_phase_split_report(
    pools: PhasePools,
    config: "SimConfig",
    trace: "Sequence[Request] | Iterable[Request]",
    prefill_provider: AbstractServiceTimeProvider,
    decode_provider: AbstractServiceTimeProvider,
    bundle: PolicyBundle,
    economics: EconomicsConfig,
) -> Tuple["SimReport", EconomicsReport]:
    """Fluid counterpart of :meth:`ServingSimulator.run`."""
    trace = list(trace)
    profile = TraceProfile.from_trace(trace)
    kv_capacity = float(pools.decode.kv_token_capacity())
    if profile.n_requests == 0:
        traj = _Trajectory()
    else:
        context = int(round(profile.prompt_mean + profile.output_mean / 2.0))
        pfit = fit_prefill(
            prefill_provider, pools.max_prefill_batch,
            max(1, int(round(profile.prompt_mean))), pools.n_prefill,
        )
        dfit = fit_decode(decode_provider, pools.max_decode_batch, context, pools.n_decode)
        traj = _integrate_phase_split(
            pools, profile, pfit, dfit, config.max_sim_time,
            _balanced_routing(bundle), kv_capacity,
        )
    report = _fluid_report(profile, traj, pools.n_prefill, pools.n_decode)
    rollups = (
        pool_economics(
            "prefill", pools.prefill,
            _ledger_states(traj.busy_prefill, pools.n_prefill),
            report.duration, economics,
        ),
        pool_economics(
            "decode", pools.decode,
            _ledger_states(traj.busy_decode, pools.n_decode),
            report.duration, economics,
        ),
    )
    return _attach_fluid_economics(report, rollups, traj.emitted_tokens)


def fluid_colocated_report(
    pool: ColocatedPool,
    config: "SimConfig",
    trace: "Sequence[Request] | Iterable[Request]",
    provider: AbstractServiceTimeProvider,
    bundle: PolicyBundle,
    economics: EconomicsConfig,
) -> Tuple["SimReport", EconomicsReport]:
    """Fluid counterpart of :meth:`ColocatedSimulator.run`."""
    trace = list(trace)
    profile = TraceProfile.from_trace(trace)
    kv_capacity = float(pool.instance.kv_token_capacity())
    if profile.n_requests == 0:
        traj = _Trajectory()
    else:
        context = int(round(profile.prompt_mean + profile.output_mean / 2.0))
        prompt = max(1, int(round(profile.prompt_mean)))
        mfit = fit_mixed(
            provider, pool.max_decode_batch, context, pool.chunk_tokens,
            prompt, pool.n_instances,
        )
        dfit = fit_decode(provider, pool.max_decode_batch, context, pool.n_instances)
        traj = _integrate_colocated(
            pool, profile, mfit, dfit, config.max_sim_time,
            _balanced_routing(bundle), kv_capacity,
        )
    report = _fluid_report(profile, traj, pool.n_instances, pool.n_instances)
    rollup = pool_economics(
        "colocated", pool.instance,
        _ledger_states(traj.busy_decode, pool.n_instances),
        report.duration, economics,
    )
    return _attach_fluid_economics(report, (rollup,), traj.emitted_tokens)
