"""Cluster-level power management policies.

Section 3's power argument has two directions:

- **Down**: big GPUs down-clock all SMs together; Lite clusters power-gate or
  DVFS individual small GPUs ("akin to down-clocking only a portion of SMs in
  a larger GPU") — implemented by composing
  :class:`~repro.hardware.power.PowerModel` policies over a load profile.
- **Up** (peak serving): either over-clock the existing Lite-GPUs (small dies
  cool easily) or activate more Lite-GPUs, paying extra network power —
  *"Detailed analysis on workload patterns and power modelling can help us
  determine the most power-efficient approach"*.  :class:`ClusterPowerManager`
  performs exactly that comparison.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from ..errors import SpecError
from ..hardware.cooling import CoolingModel
from ..hardware.gpu import GPUSpec
from ..hardware.power import ClockPolicy, DVFSCurve, PowerModel


class PeakStrategy(enum.Enum):
    """Ways to serve a load peak above provisioned base throughput."""

    OVERCLOCK = "overclock"
    MORE_GPUS = "more_gpus"


@dataclass(frozen=True)
class ClusterPowerManager:
    """Power accounting and peak-strategy selection for one GPU group.

    ``net_power_per_gpu`` is the incremental fabric power of activating one
    more GPU (ports + switch share), the cost the paper attributes to the
    "more Lite-GPUs" strategy.
    """

    gpu: GPUSpec
    count: int
    curve: DVFSCurve = DVFSCurve()
    net_power_per_gpu: float = 30.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise SpecError("count must be positive")
        if self.net_power_per_gpu < 0:
            raise SpecError("net_power_per_gpu must be non-negative")

    def _power_model(self, count: int | None = None) -> PowerModel:
        return PowerModel(self.gpu, count or self.count, self.curve)

    # --- steady-state policies ------------------------------------------------

    def energy_over_profile(
        self, loads: np.ndarray, interval_s: float, policy: ClockPolicy
    ) -> float:
        """Cluster energy (J) over a load profile under a clocking policy."""
        return self._power_model().energy_over_profile(loads, interval_s, policy)

    def policy_savings(self, loads: np.ndarray, interval_s: float) -> dict:
        """Energy savings of each policy vs. always-base, as fractions."""
        model = self._power_model()
        return {
            policy.value: model.savings_vs_base(loads, interval_s, policy)
            for policy in (ClockPolicy.UNIFORM_DVFS, ClockPolicy.POWER_GATE, ClockPolicy.GATE_PLUS_DVFS)
        }

    # --- power caps ---------------------------------------------------------------

    def cap_clock(self, cap_watts: float, active: int | None = None) -> float:
        """Highest DVFS clock fitting ``active`` GPUs under ``cap_watts``.

        Returns 0.0 when even the DVFS floor exceeds the cap — the signal
        that devices must be power-gated (drained) instead of down-clocked.
        Network power is not charged here: caps in the serving simulator
        apply to the GPU fleet the controller actually throttles.

        >>> from repro.hardware import LITE
        >>> mgr = ClusterPowerManager(LITE, 16)
        >>> mgr.cap_clock(16 * LITE.tdp)
        1.0
        """
        if cap_watts <= 0:
            raise SpecError("cap_watts must be positive")
        count = self.count if active is None else active
        if count <= 0:
            raise SpecError("active count must be positive")
        return self.curve.clock_for_power(cap_watts / (count * self.gpu.tdp))

    # --- peak serving ------------------------------------------------------------

    def overclock_power(self, peak_load: float, cooling: CoolingModel | None = None) -> float:
        """Power (W) serving ``peak_load`` (>1 of base) by over-clocking.

        Raises :class:`SpecError` if the cooling envelope cannot sustain the
        required clock — which is precisely what rules this strategy out for
        big hot dies.
        """
        if peak_load <= 0:
            raise SpecError("peak_load must be positive")
        clock = max(1.0, peak_load)
        cooling = cooling or CoolingModel()
        headroom = cooling.overclock_headroom(self.gpu, self.curve.exponent)
        if clock > headroom + 1e-9:
            raise SpecError(
                f"{self.gpu.name}: overclock x{clock:.2f} exceeds cooling headroom x{headroom:.2f}"
            )
        return self.count * self.gpu.tdp * self.curve.power_ratio(clock)

    def more_gpus_power(self, peak_load: float) -> tuple:
        """(power_w, extra_gpus) serving the peak by activating more GPUs
        at base clock, charging incremental network power per extra GPU."""
        if peak_load <= 0:
            raise SpecError("peak_load must be positive")
        needed = math.ceil(self.count * peak_load)
        extra = max(0, needed - self.count)
        gpu_power = needed * self.gpu.tdp * self.curve.power_ratio(1.0)
        net_power = extra * self.net_power_per_gpu
        return gpu_power + net_power, extra

    def best_peak_strategy(
        self, peak_load: float, cooling: CoolingModel | None = None
    ) -> tuple:
        """(strategy, power_w) — the cheaper way to serve ``peak_load``.

        >>> from repro.hardware import LITE
        >>> mgr = ClusterPowerManager(LITE, 32)
        >>> strategy, _ = mgr.best_peak_strategy(1.1)
        >>> strategy in (PeakStrategy.OVERCLOCK, PeakStrategy.MORE_GPUS)
        True
        """
        more_power, _ = self.more_gpus_power(peak_load)
        try:
            oc_power = self.overclock_power(peak_load, cooling)
        except SpecError:
            return PeakStrategy.MORE_GPUS, more_power
        if oc_power <= more_power:
            return PeakStrategy.OVERCLOCK, oc_power
        return PeakStrategy.MORE_GPUS, more_power


def granularity_gain(
    big: GPUSpec,
    lite: GPUSpec,
    loads: np.ndarray,
    interval_s: float,
    big_count: int,
    curve: DVFSCurve | None = None,
) -> float:
    """Extra energy saving of a Lite cluster over a big-GPU cluster from
    finer power-gating granularity alone (same aggregate capacity).

    Both clusters use their best gating policy; the Lite cluster has
    ``big_count * (big.sms / lite.sms)`` devices.  Returns the difference of
    fractional savings (positive = Lite saves more).
    """
    if big_count <= 0:
        raise SpecError("big_count must be positive")
    curve = curve or DVFSCurve()
    split = max(1, round(big.sms / lite.sms))
    big_mgr = PowerModel(big, big_count, curve)
    lite_mgr = PowerModel(lite, big_count * split, curve)
    big_saving = big_mgr.savings_vs_base(loads, interval_s, ClockPolicy.GATE_PLUS_DVFS)
    lite_saving = lite_mgr.savings_vs_base(loads, interval_s, ClockPolicy.GATE_PLUS_DVFS)
    return lite_saving - big_saving
