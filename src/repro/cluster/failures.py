"""Failure models: per-GPU reliability, blast radius, instance MTBF.

Section 3 ("Fault-tolerance"): *"Reducing the size of the GPU naturally
reduces the blast radius should a GPU fail ... leading to higher available
FLOPS, memory capacity, and memory bandwidth at any time."*  And the caveat:
*"today's large-scale inference pipelines already impose larger blast radii
than the hardware-imposed blast radii: if one GPU out of a group of GPUs
serving a model instance fails, the entire instance is taken offline."*

The model:

- each GPU fails as a Poisson process with rate ``1 / mtbf`` (an optional
  Weibull shape models infant mortality / wear-out);
- a **hardware blast radius** of ``r`` means one failure takes out ``r``
  GPUs' worth of capacity (1 for an isolated Lite-GPU; the whole group for
  direct-connect groups sharing a fate domain);
- an **instance** of ``k`` GPUs is a series system: it fails at rate
  ``k / mtbf`` and loses all ``k`` GPUs' service until recovery.

Closed forms below; the Monte-Carlo counterpart with hot spares lives in
:mod:`repro.cluster.availability`.

Beyond per-GPU reliability, the **component-level fault model** at the
bottom of this module breaks by physical part — GPU die, link, switch,
rack power domain — and resolves each part's blast radius through a
:class:`~repro.cluster.placement.Placement` onto the serving instances it
downs, emitting the same ``(time, pool, index, duration)`` tuples the
engines consume.

This module decides *what breaks*; what happens next — deadlines, client
retries, checkpointed restarts, brown-out shedding, and the goodput/MTTR/
availability accounting — lives in :mod:`repro.cluster.resilience`, and
the canned failure scenarios that measure blast radius end-to-end are in
:mod:`repro.cluster.chaos` (``python -m repro chaos``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SpecError
from ..exec.seeding import derive_seed
from ..network.topology import Topology
from ..units import HOUR
from .placement import Placement


@dataclass(frozen=True)
class FailureModel:
    """Per-GPU reliability parameters.

    ``mtbf`` seconds between failures per GPU, ``mttr`` seconds to repair /
    replace, ``weibull_shape`` = 1.0 for the exponential (memoryless) case.
    Lite-GPUs plausibly see a *better* per-die failure rate (smaller dies,
    lower power density), which callers express via ``mtbf``.
    """

    mtbf: float = 4380.0 * HOUR  # ~6 months, in line with large-fleet reports
    mttr: float = 12.0 * HOUR
    weibull_shape: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise SpecError("mtbf and mttr must be positive")
        if self.weibull_shape <= 0:
            raise SpecError("weibull_shape must be positive")

    @property
    def failure_rate(self) -> float:
        """Failures per second per GPU (exponential approximation)."""
        return 1.0 / self.mtbf

    @property
    def gpu_availability(self) -> float:
        """Steady-state availability of one GPU: MTBF / (MTBF + MTTR)."""
        return self.mtbf / (self.mtbf + self.mttr)

    def sample_lifetimes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` times-to-failure (Weibull with the model's shape,
        scaled so the mean equals ``mtbf``)."""
        if n < 0:
            raise SpecError("n must be non-negative")
        shape = self.weibull_shape
        scale = self.mtbf / math.gamma(1.0 + 1.0 / shape)
        return scale * rng.weibull(shape, size=n)


@dataclass(frozen=True)
class BlastRadius:
    """How much capacity one hardware failure removes.

    ``gpus_per_failure``: GPUs lost per failure event (hardware fate
    sharing); ``sms_per_gpu`` converts to capacity terms.
    """

    gpus_per_failure: int
    sms_per_gpu: int

    def __post_init__(self) -> None:
        if self.gpus_per_failure <= 0 or self.sms_per_gpu <= 0:
            raise SpecError("blast radius fields must be positive")

    @property
    def sms_per_failure(self) -> int:
        """SMs of capacity removed by one failure."""
        return self.gpus_per_failure * self.sms_per_gpu

    def capacity_fraction(self, total_gpus: int) -> float:
        """Fraction of the cluster one failure takes out."""
        if total_gpus <= 0:
            raise SpecError("total_gpus must be positive")
        return min(1.0, self.gpus_per_failure / total_gpus)


@dataclass(frozen=True)
class InstanceReliability:
    """A model instance spanning ``k`` GPUs as a series system."""

    k: int
    gpu_model: FailureModel

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise SpecError("k must be positive")

    @property
    def instance_mtbf(self) -> float:
        """Any-of-k failure: MTBF / k."""
        return self.gpu_model.mtbf / self.k

    @property
    def instance_availability(self) -> float:
        """All-k-up steady state: per-GPU availability to the k-th power."""
        return self.gpu_model.gpu_availability**self.k

    def expected_failures(self, horizon_s: float) -> float:
        """Expected instance-down events over a horizon."""
        if horizon_s < 0:
            raise SpecError("horizon must be non-negative")
        return horizon_s * self.k / self.gpu_model.mtbf


def fleet_available_capacity(
    n_gpus: int,
    instance_size: int,
    model: FailureModel,
) -> float:
    """Steady-state fraction of fleet capacity serving traffic when every
    instance spans ``instance_size`` GPUs and a failure downs its instance.

    The Lite-GPU trade-off in one formula: quadrupling the fleet quadruples
    ``instance_size`` (same model, 4x the devices), but each device is
    smaller, so the lost capacity per failure is the same *fraction* —
    availability only drops if the per-device failure rate stays at the
    parent's.  With equal silicon reliability per mm^2 (per-GPU rate / 4),
    the Lite fleet matches the parent exactly; hot spares then tip the
    balance (see :mod:`repro.cluster.availability`).

    >>> round(fleet_available_capacity(8, 8, FailureModel()), 4) > 0.9
    True
    """
    if n_gpus <= 0 or instance_size <= 0:
        raise SpecError("n_gpus and instance_size must be positive")
    if n_gpus % instance_size:
        raise SpecError("n_gpus must be divisible by instance_size")
    instance = InstanceReliability(instance_size, model)
    return instance.instance_availability


def sample_failure_schedule(
    model: FailureModel,
    pool: str,
    n_instances: int,
    horizon: float,
    seed: int = 0,
    gpus_per_instance: int = 1,
    rng: np.random.Generator | None = None,
) -> List[Tuple[float, str, int, float]]:
    """Sample a stochastic failure schedule for one instance pool.

    Each instance of ``gpus_per_instance`` GPUs is a series system: its
    time-to-failure is the minimum of per-GPU Weibull lifetimes drawn from
    ``model``, and after each failure it is down for ``model.mttr`` seconds
    before the clock restarts.  The result is a sorted list of
    ``(time, pool, index, repair_duration)`` tuples — exactly the scripted
    format the serving simulators accept, so sampled and hand-written
    schedules compose.  Deterministic for a given ``seed`` (or ``rng``).

    >>> schedule = sample_failure_schedule(
    ...     FailureModel(mtbf=200.0, mttr=50.0), "decode", 2, horizon=1000.0, seed=7)
    >>> all(t < 1000.0 and d == 50.0 for t, _, _, d in schedule)
    True
    >>> schedule == sample_failure_schedule(
    ...     FailureModel(mtbf=200.0, mttr=50.0), "decode", 2, horizon=1000.0, seed=7)
    True
    """
    if n_instances <= 0 or gpus_per_instance <= 0:
        raise SpecError("n_instances and gpus_per_instance must be positive")
    if horizon <= 0:
        raise SpecError("horizon must be positive")
    if rng is None:
        # Seeded sampling is pure, so identical parameters always yield the
        # identical schedule — memoize it.  Ensemble replicas and repeated
        # sweep points with the same (model, horizon, seed) then share one
        # draw instead of re-running the Weibull loop each time.
        return list(_cached_schedule(model, pool, n_instances, horizon, seed, gpus_per_instance))
    return _sample_schedule(model, pool, n_instances, horizon, gpus_per_instance, rng)


def _sample_schedule(
    model: FailureModel,
    pool: str,
    n_instances: int,
    horizon: float,
    gpus_per_instance: int,
    rng: np.random.Generator,
) -> List[Tuple[float, str, int, float]]:
    schedule: List[Tuple[float, str, int, float]] = []
    for index in range(n_instances):
        t = 0.0
        while True:
            lifetime = float(model.sample_lifetimes(gpus_per_instance, rng).min())
            t += lifetime
            if t >= horizon:
                break
            schedule.append((t, pool, index, model.mttr))
            t += model.mttr
    return sorted(schedule)


#: Upper bound on memoized seeded schedules.  The memo exists so ensemble
#: replicas and repeated sweep points sharing (model, pool, size, horizon,
#: seed) reuse one Weibull draw; LRU-bounding it means a daemon-style
#: process sweeping many distinct seeds evicts old draws instead of growing
#: without limit.  256 entries cover any realistic sweep working set while
#: capping worst-case retention at a few MiB of schedule tuples.
SCHEDULE_CACHE_MAX = 256


@lru_cache(maxsize=SCHEDULE_CACHE_MAX)
def _cached_schedule(
    model: FailureModel,
    pool: str,
    n_instances: int,
    horizon: float,
    seed: int,
    gpus_per_instance: int,
) -> Tuple[Tuple[float, str, int, float], ...]:
    rng = np.random.default_rng(seed)
    return tuple(_sample_schedule(model, pool, n_instances, horizon, gpus_per_instance, rng))


def schedule_cache_info():
    """Statistics of the seeded-schedule memo (for tests/benchmarks).

    The returned ``functools.CacheInfo`` carries hits/misses plus the
    cache's bound: ``maxsize`` equals :data:`SCHEDULE_CACHE_MAX` and
    ``currsize`` can never exceed it (least-recently-used draws are
    evicted first).
    """
    return _cached_schedule.cache_info()


# --- component-level faults ---------------------------------------------------
#
# The instance-level schedule above answers "which replica went down when";
# the component-level model below answers the harder, paper-shaped question:
# *which physical part broke* — a GPU die, a link, a switch, a rack power
# domain — and which instances its blast radius takes out, resolved through
# the Placement.  The output is the same (time, pool, index, duration)
# tuple format the serving engines already consume, so hardware-rooted and
# instance-level schedules compose freely.

COMPONENT_KINDS = ("gpu", "link", "switch", "rack")


@dataclass(frozen=True)
class ComponentFailure:
    """One hardware fault: a component of the fabric breaks at ``time``.

    ``component`` is one of :data:`COMPONENT_KINDS`; ``index`` identifies
    the component within its kind (GPU index, edge index of the topology
    graph in construction order, switch node id, or rack number).
    """

    time: float
    component: str
    index: int
    duration: float

    def __post_init__(self) -> None:
        if self.component not in COMPONENT_KINDS:
            raise SpecError(f"component must be one of {'/'.join(COMPONENT_KINDS)}")
        if self.time < 0 or self.duration <= 0:
            raise SpecError("failure time must be >= 0 and duration > 0")
        if self.index < 0:
            raise SpecError("component index must be non-negative")


@lru_cache(maxsize=64)
def _topology_graph(topology: Topology):
    """Memoized materialized graph: topologies are frozen/hashable, and
    ``graph()`` rebuilds from scratch on every call — far too hot for the
    per-event lookups below (link endpoints, switch neighbours)."""
    return topology.graph()


@lru_cache(maxsize=64)
def _link_inventory(topology: Topology) -> Tuple[Tuple[tuple, tuple], ...]:
    return tuple(_topology_graph(topology).edges())


@lru_cache(maxsize=64)
def _switch_inventory(topology: Topology) -> Tuple[tuple, ...]:
    return tuple(n for n in _topology_graph(topology).nodes() if n[0] == "sw")


def link_inventory(topology: Topology) -> List[Tuple[tuple, tuple]]:
    """The topology graph's edges in deterministic construction order.

    This is the component id space for ``link`` failures; networkx preserves
    insertion order and the ``graph()`` builders are deterministic, so edge
    ``i`` always names the same physical link for a given topology.
    """
    return list(_link_inventory(topology))


def switch_inventory(topology: Topology) -> List[tuple]:
    """All switch-like nodes (switches, hubs) in construction order."""
    return list(_switch_inventory(topology))


def affected_gpus(
    topology: Topology,
    component: str,
    index: int,
    rack_size: int = 8,
) -> Tuple[int, ...]:
    """The GPU indices a component failure takes offline.

    - ``gpu``: the GPU itself;
    - ``link``: the GPU endpoints of the failed cable (a switch-to-switch
      uplink strands no GPU directly — multi-path fabrics absorb it);
    - ``switch``: every GPU attached to the switch (for direct-connect
      topologies the hub models the external network, so its loss downs
      each group's uplink holder);
    - ``rack``: the ``rack_size`` consecutive GPUs sharing the power domain.
    """
    if component == "gpu":
        if not 0 <= index < topology.n_gpus:
            raise SpecError(f"GPU index {index} out of range")
        return (index,)
    if component == "link":
        links = _link_inventory(topology)
        if not 0 <= index < len(links):
            raise SpecError(f"link index {index} out of range [0, {len(links)})")
        return tuple(sorted(node[1] for node in links[index] if node[0] == "gpu"))
    if component == "switch":
        switches = _switch_inventory(topology)
        if not 0 <= index < len(switches):
            raise SpecError(f"switch index {index} out of range [0, {len(switches)})")
        g = _topology_graph(topology)
        return tuple(
            sorted(node[1] for node in g.neighbors(switches[index]) if node[0] == "gpu")
        )
    if component == "rack":
        if rack_size <= 0:
            raise SpecError("rack_size must be positive")
        lo = index * rack_size
        if lo >= topology.n_gpus:
            raise SpecError(f"rack index {index} out of range")
        return tuple(range(lo, min(lo + rack_size, topology.n_gpus)))
    raise SpecError(f"component must be one of {'/'.join(COMPONENT_KINDS)}")


def component_blast_radius(
    topology: Topology,
    component: str,
    index: int,
    sms_per_gpu: int,
    rack_size: int = 8,
) -> BlastRadius:
    """The :class:`BlastRadius` one component failure imposes.

    Unifies the hardware fate-sharing view (this module's closed forms and
    :mod:`repro.cluster.availability`'s Monte-Carlo) with the topology: a
    switch that fronts 64 GPUs *is* a 64-GPU blast radius.
    """
    gpus = affected_gpus(topology, component, index, rack_size)
    return BlastRadius(gpus_per_failure=max(1, len(gpus)), sms_per_gpu=sms_per_gpu)


def resolve_component_failures(
    schedule: Sequence[ComponentFailure],
    topology: Topology,
    placement: Placement,
    rack_size: int = 8,
) -> List[Tuple[float, str, int, float]]:
    """Map component failures onto the instances their blast radius downs.

    Returns instance-level ``(time, pool, index, duration)`` tuples in the
    engines' scripted-failure format — one per affected instance per event
    (an event hitting two GPUs of the same instance downs it once).

    >>> from repro.network.topology import DirectConnectTopology
    >>> from repro.cluster.placement import Placement
    >>> topo = DirectConnectTopology(n_gpus=8, group=4)
    >>> pl = Placement(8, (("decode", ((0, 1), (2, 3), (4, 5), (6, 7))),))
    >>> resolve_component_failures(
    ...     [ComponentFailure(10.0, "rack", 0, 60.0)], topo, pl, rack_size=4)
    [(10.0, 'decode', 0, 60.0), (10.0, 'decode', 1, 60.0)]
    """
    resolved: List[Tuple[float, str, int, float]] = []
    for event in schedule:
        gpus = affected_gpus(topology, event.component, event.index, rack_size)
        for pool, index in placement.affected_instances(gpus):
            resolved.append((event.time, pool, index, event.duration))
    return sorted(resolved)


@dataclass(frozen=True)
class ComponentFailureModel:
    """Stochastic failure rates per hardware component class.

    Any ``None`` member disables that class.  GPU faults model die-level
    failures (use :func:`scaled_lite_failure_model` for Lite dies); link and
    switch faults model optics/cable and switch-chassis outages; rack faults
    model shared power/cooling domains of ``rack_size`` GPUs.
    """

    gpu: Optional[FailureModel] = None
    link: Optional[FailureModel] = None
    switch: Optional[FailureModel] = None
    rack: Optional[FailureModel] = None
    rack_size: int = 8

    def __post_init__(self) -> None:
        if self.rack_size <= 0:
            raise SpecError("rack_size must be positive")

    def _counts(self, topology: Topology) -> Dict[str, int]:
        return {
            "gpu": topology.n_gpus,
            "link": len(link_inventory(topology)),
            "switch": len(switch_inventory(topology)),
            "rack": math.ceil(topology.n_gpus / self.rack_size),
        }

    def sample_component_schedule(
        self,
        topology: Topology,
        horizon: float,
        seed: int = 0,
    ) -> List[ComponentFailure]:
        """Draw a deterministic component-failure schedule over ``horizon``.

        Each enabled component class reuses the seeded Weibull renewal
        process of :func:`sample_failure_schedule` (one "instance" per
        component), with a per-class derived seed so classes never share a
        stream.
        """
        if horizon <= 0:
            raise SpecError("horizon must be positive")
        counts = self._counts(topology)
        schedule: List[ComponentFailure] = []
        for kind in COMPONENT_KINDS:
            model: Optional[FailureModel] = getattr(self, kind)
            if model is None or counts[kind] == 0:
                continue
            # derive_seed, not seed+offset: sequential seeds collide across
            # experiment families (the exec/seeding module's whole point).
            events = sample_failure_schedule(
                model, kind, counts[kind], horizon, seed=derive_seed(seed, kind)
            )
            schedule.extend(
                ComponentFailure(time, kind, index, duration)
                for time, _, index, duration in events
            )
        return sorted(schedule, key=lambda e: (e.time, e.component, e.index))


def scaled_lite_failure_model(parent: FailureModel, split: int, area_scaling: bool = True) -> FailureModel:
    """Failure model of a Lite-GPU derived from its parent.

    With ``area_scaling`` (default), failure rate scales with die area —
    1/split the parent's rate, i.e. MTBF * split — reflecting that most
    hardware failures (transistor faults, hotspots, debris) are
    area-proportional.  Repair time is unchanged.
    """
    if split <= 0:
        raise SpecError("split must be positive")
    mtbf = parent.mtbf * split if area_scaling else parent.mtbf
    return FailureModel(mtbf=mtbf, mttr=parent.mttr, weibull_shape=parent.weibull_shape)
