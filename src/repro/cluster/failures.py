"""Failure models: per-GPU reliability, blast radius, instance MTBF.

Section 3 ("Fault-tolerance"): *"Reducing the size of the GPU naturally
reduces the blast radius should a GPU fail ... leading to higher available
FLOPS, memory capacity, and memory bandwidth at any time."*  And the caveat:
*"today's large-scale inference pipelines already impose larger blast radii
than the hardware-imposed blast radii: if one GPU out of a group of GPUs
serving a model instance fails, the entire instance is taken offline."*

The model:

- each GPU fails as a Poisson process with rate ``1 / mtbf`` (an optional
  Weibull shape models infant mortality / wear-out);
- a **hardware blast radius** of ``r`` means one failure takes out ``r``
  GPUs' worth of capacity (1 for an isolated Lite-GPU; the whole group for
  direct-connect groups sharing a fate domain);
- an **instance** of ``k`` GPUs is a series system: it fails at rate
  ``k / mtbf`` and loses all ``k`` GPUs' service until recovery.

Closed forms below; the Monte-Carlo counterpart with hot spares lives in
:mod:`repro.cluster.availability`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from ..errors import SpecError
from ..units import HOUR


@dataclass(frozen=True)
class FailureModel:
    """Per-GPU reliability parameters.

    ``mtbf`` seconds between failures per GPU, ``mttr`` seconds to repair /
    replace, ``weibull_shape`` = 1.0 for the exponential (memoryless) case.
    Lite-GPUs plausibly see a *better* per-die failure rate (smaller dies,
    lower power density), which callers express via ``mtbf``.
    """

    mtbf: float = 4380.0 * HOUR  # ~6 months, in line with large-fleet reports
    mttr: float = 12.0 * HOUR
    weibull_shape: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise SpecError("mtbf and mttr must be positive")
        if self.weibull_shape <= 0:
            raise SpecError("weibull_shape must be positive")

    @property
    def failure_rate(self) -> float:
        """Failures per second per GPU (exponential approximation)."""
        return 1.0 / self.mtbf

    @property
    def gpu_availability(self) -> float:
        """Steady-state availability of one GPU: MTBF / (MTBF + MTTR)."""
        return self.mtbf / (self.mtbf + self.mttr)

    def sample_lifetimes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` times-to-failure (Weibull with the model's shape,
        scaled so the mean equals ``mtbf``)."""
        if n < 0:
            raise SpecError("n must be non-negative")
        shape = self.weibull_shape
        scale = self.mtbf / math.gamma(1.0 + 1.0 / shape)
        return scale * rng.weibull(shape, size=n)


@dataclass(frozen=True)
class BlastRadius:
    """How much capacity one hardware failure removes.

    ``gpus_per_failure``: GPUs lost per failure event (hardware fate
    sharing); ``sms_per_gpu`` converts to capacity terms.
    """

    gpus_per_failure: int
    sms_per_gpu: int

    def __post_init__(self) -> None:
        if self.gpus_per_failure <= 0 or self.sms_per_gpu <= 0:
            raise SpecError("blast radius fields must be positive")

    @property
    def sms_per_failure(self) -> int:
        """SMs of capacity removed by one failure."""
        return self.gpus_per_failure * self.sms_per_gpu

    def capacity_fraction(self, total_gpus: int) -> float:
        """Fraction of the cluster one failure takes out."""
        if total_gpus <= 0:
            raise SpecError("total_gpus must be positive")
        return min(1.0, self.gpus_per_failure / total_gpus)


@dataclass(frozen=True)
class InstanceReliability:
    """A model instance spanning ``k`` GPUs as a series system."""

    k: int
    gpu_model: FailureModel

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise SpecError("k must be positive")

    @property
    def instance_mtbf(self) -> float:
        """Any-of-k failure: MTBF / k."""
        return self.gpu_model.mtbf / self.k

    @property
    def instance_availability(self) -> float:
        """All-k-up steady state: per-GPU availability to the k-th power."""
        return self.gpu_model.gpu_availability**self.k

    def expected_failures(self, horizon_s: float) -> float:
        """Expected instance-down events over a horizon."""
        if horizon_s < 0:
            raise SpecError("horizon must be non-negative")
        return horizon_s * self.k / self.gpu_model.mtbf


def fleet_available_capacity(
    n_gpus: int,
    instance_size: int,
    model: FailureModel,
) -> float:
    """Steady-state fraction of fleet capacity serving traffic when every
    instance spans ``instance_size`` GPUs and a failure downs its instance.

    The Lite-GPU trade-off in one formula: quadrupling the fleet quadruples
    ``instance_size`` (same model, 4x the devices), but each device is
    smaller, so the lost capacity per failure is the same *fraction* —
    availability only drops if the per-device failure rate stays at the
    parent's.  With equal silicon reliability per mm^2 (per-GPU rate / 4),
    the Lite fleet matches the parent exactly; hot spares then tip the
    balance (see :mod:`repro.cluster.availability`).

    >>> round(fleet_available_capacity(8, 8, FailureModel()), 4) > 0.9
    True
    """
    if n_gpus <= 0 or instance_size <= 0:
        raise SpecError("n_gpus and instance_size must be positive")
    if n_gpus % instance_size:
        raise SpecError("n_gpus must be divisible by instance_size")
    instance = InstanceReliability(instance_size, model)
    return instance.instance_availability


def sample_failure_schedule(
    model: FailureModel,
    pool: str,
    n_instances: int,
    horizon: float,
    seed: int = 0,
    gpus_per_instance: int = 1,
    rng: np.random.Generator | None = None,
) -> List[Tuple[float, str, int, float]]:
    """Sample a stochastic failure schedule for one instance pool.

    Each instance of ``gpus_per_instance`` GPUs is a series system: its
    time-to-failure is the minimum of per-GPU Weibull lifetimes drawn from
    ``model``, and after each failure it is down for ``model.mttr`` seconds
    before the clock restarts.  The result is a sorted list of
    ``(time, pool, index, repair_duration)`` tuples — exactly the scripted
    format the serving simulators accept, so sampled and hand-written
    schedules compose.  Deterministic for a given ``seed`` (or ``rng``).

    >>> schedule = sample_failure_schedule(
    ...     FailureModel(mtbf=200.0, mttr=50.0), "decode", 2, horizon=1000.0, seed=7)
    >>> all(t < 1000.0 and d == 50.0 for t, _, _, d in schedule)
    True
    >>> schedule == sample_failure_schedule(
    ...     FailureModel(mtbf=200.0, mttr=50.0), "decode", 2, horizon=1000.0, seed=7)
    True
    """
    if n_instances <= 0 or gpus_per_instance <= 0:
        raise SpecError("n_instances and gpus_per_instance must be positive")
    if horizon <= 0:
        raise SpecError("horizon must be positive")
    if rng is None:
        # Seeded sampling is pure, so identical parameters always yield the
        # identical schedule — memoize it.  Ensemble replicas and repeated
        # sweep points with the same (model, horizon, seed) then share one
        # draw instead of re-running the Weibull loop each time.
        return list(_cached_schedule(model, pool, n_instances, horizon, seed, gpus_per_instance))
    return _sample_schedule(model, pool, n_instances, horizon, gpus_per_instance, rng)


def _sample_schedule(
    model: FailureModel,
    pool: str,
    n_instances: int,
    horizon: float,
    gpus_per_instance: int,
    rng: np.random.Generator,
) -> List[Tuple[float, str, int, float]]:
    schedule: List[Tuple[float, str, int, float]] = []
    for index in range(n_instances):
        t = 0.0
        while True:
            lifetime = float(model.sample_lifetimes(gpus_per_instance, rng).min())
            t += lifetime
            if t >= horizon:
                break
            schedule.append((t, pool, index, model.mttr))
            t += model.mttr
    return sorted(schedule)


@lru_cache(maxsize=256)
def _cached_schedule(
    model: FailureModel,
    pool: str,
    n_instances: int,
    horizon: float,
    seed: int,
    gpus_per_instance: int,
) -> Tuple[Tuple[float, str, int, float], ...]:
    rng = np.random.default_rng(seed)
    return tuple(_sample_schedule(model, pool, n_instances, horizon, gpus_per_instance, rng))


def schedule_cache_info():
    """Hit/miss statistics of the seeded-schedule memo (for tests/benchmarks)."""
    return _cached_schedule.cache_info()


def scaled_lite_failure_model(parent: FailureModel, split: int, area_scaling: bool = True) -> FailureModel:
    """Failure model of a Lite-GPU derived from its parent.

    With ``area_scaling`` (default), failure rate scales with die area —
    1/split the parent's rate, i.e. MTBF * split — reflecting that most
    hardware failures (transistor faults, hotspots, debris) are
    area-proportional.  Repair time is unchanged.
    """
    if split <= 0:
        raise SpecError("split must be positive")
    mtbf = parent.mtbf * split if area_scaling else parent.mtbf
    return FailureModel(mtbf=mtbf, mttr=parent.mttr, weibull_shape=parent.weibull_shape)
