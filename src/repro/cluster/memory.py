"""Memory management: local HBM, disaggregated pools, KV placement.

Section 3 ("Memory management"): each Lite-GPU holds only a fraction of a
big GPU's HBM, which hurts workloads that need capacity without distributing
well; the paper floats memory sharing across Lite-GPUs and *disaggregated
memory* pools reachable over the optical fabric as remedies, noting the
flexibility of adjusting compute-to-memory ratios per GPU.

The model here:

- :class:`DisaggregatedPool` — a fabric-attached capacity tier with its own
  bandwidth and latency;
- :class:`MemorySystem` — a GPU's HBM plus an optional pool share, with KV
  placement policies and an *effective decode slowdown* estimate when the KV
  cache spills: the attention stage's KV reads are served at a
  capacity-weighted harmonic-mean bandwidth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SpecError
from ..hardware.gpu import GPUSpec
from ..units import GB, GB_PER_S, US


class KVPlacementPolicy(enum.Enum):
    """Where a sequence's KV cache lives."""

    #: Everything in local HBM; requests beyond capacity are rejected.
    LOCAL_ONLY = "local"
    #: Hot prefix in HBM, overflow in the pool (capacity-ordered spill).
    SPILL_TO_POOL = "spill"
    #: Entire KV in the pool (maximum sharing / elasticity).
    POOL_ONLY = "pool"


@dataclass(frozen=True)
class DisaggregatedPool:
    """A fabric-attached memory pool shared by many Lite-GPUs.

    ``bandwidth_per_gpu`` is each GPU's share of pool bandwidth (bounded by
    its network port); ``latency`` is the extra access latency over the
    fabric — tolerable for the sequential, predictable KV streaming of
    decode (the paper's prefetching argument).
    """

    capacity: float = 1024 * GB
    bandwidth_per_gpu: float = 100 * GB_PER_S
    latency: float = 2.0 * US

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.bandwidth_per_gpu <= 0:
            raise SpecError("pool capacity and bandwidth must be positive")
        if self.latency < 0:
            raise SpecError("pool latency must be non-negative")


@dataclass(frozen=True)
class MemorySystem:
    """A GPU's memory hierarchy: local HBM plus an optional pool share."""

    gpu: GPUSpec
    pool: DisaggregatedPool | None = None
    pool_share: float = 0.0  # bytes of pool capacity assigned to this GPU

    def __post_init__(self) -> None:
        if self.pool_share < 0:
            raise SpecError("pool_share must be non-negative")
        if self.pool_share > 0 and self.pool is None:
            raise SpecError("pool_share requires a pool")

    @property
    def total_capacity(self) -> float:
        """HBM plus assigned pool bytes."""
        return self.gpu.mem_capacity + self.pool_share

    def max_kv_bytes(self, weight_bytes: float, reserve_fraction: float = 0.05) -> float:
        """Capacity available to the KV cache after weights and reserve.

        Weights always live in HBM (they are read every iteration); only KV
        spills.
        """
        if weight_bytes < 0:
            raise SpecError("weight_bytes must be non-negative")
        hbm_free = self.gpu.mem_capacity * (1.0 - reserve_fraction) - weight_bytes
        if hbm_free < 0:
            return 0.0
        return hbm_free + self.pool_share

    def placement_split(
        self, kv_bytes: float, weight_bytes: float, policy: KVPlacementPolicy
    ) -> tuple:
        """(local_bytes, pool_bytes) for a KV cache of ``kv_bytes``.

        Raises :class:`SpecError` if the cache cannot be placed at all.
        """
        if kv_bytes < 0:
            raise SpecError("kv_bytes must be non-negative")
        hbm_free = max(0.0, self.gpu.mem_capacity * 0.95 - weight_bytes)
        if policy is KVPlacementPolicy.LOCAL_ONLY:
            if kv_bytes > hbm_free:
                raise SpecError("KV cache exceeds local HBM under LOCAL_ONLY")
            return kv_bytes, 0.0
        if policy is KVPlacementPolicy.POOL_ONLY:
            if kv_bytes > self.pool_share:
                raise SpecError("KV cache exceeds pool share under POOL_ONLY")
            return 0.0, kv_bytes
        local = min(kv_bytes, hbm_free)
        pooled = kv_bytes - local
        if pooled > self.pool_share:
            raise SpecError("KV cache exceeds HBM + pool share")
        return local, pooled

    def effective_kv_bandwidth(
        self, kv_bytes: float, weight_bytes: float, policy: KVPlacementPolicy
    ) -> float:
        """Capacity-weighted harmonic-mean bandwidth for streaming the KV.

        Decode streams the whole cache once per iteration, so the read time
        is ``local/bw_hbm + pooled/bw_pool``; the effective bandwidth is the
        total divided by that time.
        """
        local, pooled = self.placement_split(kv_bytes, weight_bytes, policy)
        if kv_bytes == 0:
            return self.gpu.mem_bandwidth
        time = local / self.gpu.mem_bandwidth
        if pooled > 0:
            assert self.pool is not None  # guaranteed by placement_split
            time += pooled / self.pool.bandwidth_per_gpu + self.pool.latency
        return kv_bytes / time

    def decode_slowdown(
        self, kv_bytes: float, weight_bytes: float, policy: KVPlacementPolicy
    ) -> float:
        """Attention-stage slowdown factor vs. all-local KV (>= 1.0).

        The Figure-3b-style decode iteration is attention-read bound at large
        batch, so this ratio is a good proxy for the end-to-end penalty of
        spilling.
        """
        effective = self.effective_kv_bandwidth(kv_bytes, weight_bytes, policy)
        return self.gpu.mem_bandwidth / effective


def pool_batch_gain(
    gpu: GPUSpec,
    weight_bytes: float,
    kv_bytes_per_seq: float,
    pool_share: float,
    pool: DisaggregatedPool | None = None,
) -> dict:
    """How much a pool share grows the feasible decode batch, and at what
    bandwidth penalty.

    Returns {"local_batch", "pooled_batch", "slowdown"} — the quantitative
    form of the paper's compute-to-memory flexibility argument.
    """
    if kv_bytes_per_seq <= 0:
        raise SpecError("kv_bytes_per_seq must be positive")
    pool = pool or DisaggregatedPool()
    base = MemorySystem(gpu)
    pooled = MemorySystem(gpu, pool=pool, pool_share=pool_share)
    local_batch = int(base.max_kv_bytes(weight_bytes) / kv_bytes_per_seq)
    pooled_batch = int(pooled.max_kv_bytes(weight_bytes) / kv_bytes_per_seq)
    kv_total = pooled_batch * kv_bytes_per_seq
    slowdown = pooled.decode_slowdown(kv_total, weight_bytes, KVPlacementPolicy.SPILL_TO_POOL)
    return {"local_batch": local_batch, "pooled_batch": pooled_batch, "slowdown": slowdown}
