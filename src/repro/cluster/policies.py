"""Pluggable scheduling policies for the serving-simulation engine.

The seed simulator hardcoded one scheduling story: index-order instance
scanning, FIFO prefill batching, greedy first-come-first-served decode
admission, and back-of-queue requeue after a failure.  This module factors
each of those decisions into a small policy object so a deployment's
scheduling behaviour is a *configuration*, not a code path — the approach
Helix and the fluid-ODE vLLM simulator take, and the one the paper's
Section 3 needs to explore Lite-GPU scheduling trade-offs.

Four policy axes:

- :class:`RoutingPolicy` — the order in which instances are offered work.
- :class:`PrefillBatchPolicy` — which queued requests form a prefill batch.
- :class:`DecodeAdmissionPolicy` — which queued sequences a decode (or
  colocated) instance admits within its slot/KV budget.
- :class:`RequeuePolicy` — where a failure-victim request re-enters the
  prefill queue.

A :class:`PolicyBundle` groups one of each.  Bundles and individual
policies are registered in :class:`repro._registry.Registry` catalogues, so
simulators and the CLI accept them by name.  The ``"fcfs"`` bundle
reproduces the seed :class:`repro.cluster.scheduler.PhaseSplitScheduler`
behaviour exactly.

>>> bundle = get_policy_bundle("fcfs")
>>> bundle.routing.order([3.0, 1.0, 2.0])
[0, 1, 2]
>>> get_policy_bundle("least-loaded").routing.order([3.0, 1.0, 2.0])
[1, 2, 0]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, List, Sequence

from .._registry import Registry
from ..errors import SpecError
from ..workloads.traces import Request

__all__ = [
    "RoutingPolicy",
    "IndexOrderRouting",
    "LeastLoadedRouting",
    "RoundRobinRouting",
    "PrefillBatchPolicy",
    "FCFSPrefillBatching",
    "SJFPrefillBatching",
    "DecodeAdmissionPolicy",
    "FCFSAdmission",
    "SmallestFirstAdmission",
    "RequeuePolicy",
    "BackOfQueueRequeue",
    "FrontOfQueueRequeue",
    "PolicyBundle",
    "ROUTING_POLICIES",
    "PREFILL_POLICIES",
    "ADMISSION_POLICIES",
    "REQUEUE_POLICIES",
    "POLICY_BUNDLES",
    "get_policy_bundle",
]


# --- routing ----------------------------------------------------------------


class RoutingPolicy:
    """Decides the order in which instances are offered queued work.

    ``loads`` is one scalar per instance (busy seconds for prefill pools,
    occupied KV tokens for decode/colocated pools); the policy returns the
    instance indices in visit order.
    """

    name = "routing"

    def order(self, loads: Sequence[float]) -> List[int]:
        raise NotImplementedError


class IndexOrderRouting(RoutingPolicy):
    """Scan instances 0..n-1 (the seed simulator's behaviour)."""

    name = "index-order"

    def order(self, loads: Sequence[float]) -> List[int]:
        return list(range(len(loads)))


class LeastLoadedRouting(RoutingPolicy):
    """Offer work to the least-loaded instance first (stable on ties)."""

    name = "least-loaded"

    def order(self, loads: Sequence[float]) -> List[int]:
        return sorted(range(len(loads)), key=lambda i: (loads[i], i))


class RoundRobinRouting(RoutingPolicy):
    """Rotate the starting instance on every dispatch round."""

    name = "round-robin"

    def __init__(self) -> None:
        self._start = 0

    def order(self, loads: Sequence[float]) -> List[int]:
        n = len(loads)
        if n == 0:
            return []
        start = self._start % n
        self._start += 1
        return [(start + i) % n for i in range(n)]


# --- prefill batching -------------------------------------------------------


class PrefillBatchPolicy:
    """Picks the requests one free prefill instance takes from the queue.

    ``select`` removes the chosen requests from ``queue`` and returns them
    in batch order.
    """

    name = "prefill"

    def select(self, queue: Deque[Request], max_batch: int) -> List[Request]:
        raise NotImplementedError


class FCFSPrefillBatching(PrefillBatchPolicy):
    """First-come-first-served: take the oldest ``max_batch`` requests."""

    name = "fcfs"

    def select(self, queue: Deque[Request], max_batch: int) -> List[Request]:
        take = min(len(queue), max_batch)
        return [queue.popleft() for _ in range(take)]


class SJFPrefillBatching(PrefillBatchPolicy):
    """Shortest-job-first: batch the shortest prompts (stable on ties).

    Because a batch's prefill latency is set by its *longest* prompt,
    grouping short prompts together avoids convoying them behind a long one.
    """

    name = "sjf"

    def select(self, queue: Deque[Request], max_batch: int) -> List[Request]:
        take = min(len(queue), max_batch)
        if take == 0:
            return []
        items = list(queue)
        picked = sorted(range(len(items)), key=lambda i: (items[i].prompt_tokens, i))[:take]
        picked_set = set(picked)
        batch = [items[i] for i in picked]
        queue.clear()
        queue.extend(r for i, r in enumerate(items) if i not in picked_set)
        return batch


# --- decode admission -------------------------------------------------------


class DecodeAdmissionPolicy:
    """Picks queued sequences for a decode (or colocated) instance.

    The budget is expressed as free sequence ``slots`` and free KV-token
    ``budget``; a sequence's footprint is its *final* KV size
    (``Request.total_tokens``), so an admitted sequence can always run to
    completion.
    """

    name = "admission"

    def admit_footprints(self, footprints: Sequence[int], slots: int, budget: int) -> List[int]:
        """Indices of the admitted sequences, in admission order."""
        raise NotImplementedError

    def select(self, queue: Deque[Request], slots: int, budget: int) -> List[Request]:
        """Remove and return the admitted requests from ``queue``."""
        if not queue or slots <= 0:
            return []
        items = list(queue)
        picked = self.admit_footprints([r.total_tokens for r in items], slots, budget)
        if not picked:
            return []
        picked_set = set(picked)
        admitted = [items[i] for i in picked]
        queue.clear()
        queue.extend(r for i, r in enumerate(items) if i not in picked_set)
        return admitted


class FCFSAdmission(DecodeAdmissionPolicy):
    """Greedy head-of-line admission: stop at the first sequence that does
    not fit (the seed scheduler's behaviour — no reordering, no skipping)."""

    name = "fcfs"

    def admit_footprints(self, footprints: Sequence[int], slots: int, budget: int) -> List[int]:
        picked: List[int] = []
        for i, tokens in enumerate(footprints):
            if slots <= 0 or budget < tokens:
                break
            picked.append(i)
            slots -= 1
            budget -= tokens
        return picked

    def select(self, queue: Deque[Request], slots: int, budget: int) -> List[Request]:
        # FCFS only ever takes a prefix, so popleft beats the generic
        # rebuild-the-deque path — this runs on every admit event.
        admitted: List[Request] = []
        while queue and slots > 0 and queue[0].total_tokens <= budget:
            request = queue.popleft()
            admitted.append(request)
            slots -= 1
            budget -= request.total_tokens
        return admitted


class SmallestFirstAdmission(DecodeAdmissionPolicy):
    """Admit smallest KV footprints first (stable on ties): packs more
    sequences into the same budget at the cost of head-of-line fairness."""

    name = "smallest-first"

    def admit_footprints(self, footprints: Sequence[int], slots: int, budget: int) -> List[int]:
        order = sorted(range(len(footprints)), key=lambda i: (footprints[i], i))
        picked: List[int] = []
        for i in order:
            if slots <= 0 or budget < footprints[i]:
                break
            picked.append(i)
            slots -= 1
            budget -= footprints[i]
        return picked


# --- failure requeue --------------------------------------------------------


class RequeuePolicy:
    """Where a failure victim re-enters the prefill queue."""

    name = "requeue"

    def requeue(self, request: Request, queue: Deque[Request]) -> None:
        raise NotImplementedError

    def requeue_all(self, requests: Sequence[Request], queue: Deque[Request]) -> None:
        """Requeue a batch, preserving its relative priority order: the
        first request of ``requests`` is served first among them regardless
        of where the policy inserts the batch."""
        for request in requests:
            self.requeue(request, queue)


class BackOfQueueRequeue(RequeuePolicy):
    """Victims rejoin at the back (the seed behaviour): fair, but a victim
    pays a full queueing delay again."""

    name = "back"

    def requeue(self, request: Request, queue: Deque[Request]) -> None:
        queue.append(request)


class FrontOfQueueRequeue(RequeuePolicy):
    """Victims jump the queue: bounds the tail-latency cost of a failure at
    the expense of newly arrived requests."""

    name = "front"

    def requeue(self, request: Request, queue: Deque[Request]) -> None:
        queue.appendleft(request)

    def requeue_all(self, requests: Sequence[Request], queue: Deque[Request]) -> None:
        # appendleft one-by-one would invert the batch; insert reversed so
        # the first (highest-priority) victim ends up frontmost.
        for request in reversed(requests):
            queue.appendleft(request)


# --- bundles ----------------------------------------------------------------


@dataclass
class PolicyBundle:
    """One policy per axis — everything the engine asks a scheduler."""

    name: str
    routing: RoutingPolicy
    prefill: PrefillBatchPolicy
    admission: DecodeAdmissionPolicy
    requeue: RequeuePolicy

    def describe(self) -> str:
        """One-line summary of the bundle's members."""
        return (
            f"{self.name}: routing={self.routing.name} prefill={self.prefill.name} "
            f"admission={self.admission.name} requeue={self.requeue.name}"
        )


ROUTING_POLICIES: Registry[Callable[[], RoutingPolicy]] = Registry("routing policy")
PREFILL_POLICIES: Registry[Callable[[], PrefillBatchPolicy]] = Registry("prefill batching policy")
ADMISSION_POLICIES: Registry[Callable[[], DecodeAdmissionPolicy]] = Registry("decode admission policy")
REQUEUE_POLICIES: Registry[Callable[[], RequeuePolicy]] = Registry("requeue policy")
POLICY_BUNDLES: Registry[Callable[[], PolicyBundle]] = Registry("policy bundle")

for _cls in (IndexOrderRouting, LeastLoadedRouting, RoundRobinRouting):
    ROUTING_POLICIES.register(_cls.name, _cls)
for _cls in (FCFSPrefillBatching, SJFPrefillBatching):
    PREFILL_POLICIES.register(_cls.name, _cls)
for _cls in (FCFSAdmission, SmallestFirstAdmission):
    ADMISSION_POLICIES.register(_cls.name, _cls)
for _cls in (BackOfQueueRequeue, FrontOfQueueRequeue):
    REQUEUE_POLICIES.register(_cls.name, _cls)


def _bundle_factory(
    name: str,
    routing: Callable[[], RoutingPolicy] = IndexOrderRouting,
    prefill: Callable[[], PrefillBatchPolicy] = FCFSPrefillBatching,
    admission: Callable[[], DecodeAdmissionPolicy] = FCFSAdmission,
    requeue: Callable[[], RequeuePolicy] = BackOfQueueRequeue,
) -> Callable[[], PolicyBundle]:
    def build() -> PolicyBundle:
        return PolicyBundle(name, routing(), prefill(), admission(), requeue())

    return build


# "fcfs" reproduces the seed PhaseSplitScheduler exactly.  "sjf" switches
# both shortest-first axes (prefill batching + decode admission); the
# remaining bundles vary a single axis against the FCFS baseline.
POLICY_BUNDLES.register("fcfs", _bundle_factory("fcfs"))
POLICY_BUNDLES.register(
    "sjf", _bundle_factory("sjf", prefill=SJFPrefillBatching, admission=SmallestFirstAdmission)
)
POLICY_BUNDLES.register("least-loaded", _bundle_factory("least-loaded", routing=LeastLoadedRouting))
POLICY_BUNDLES.register("round-robin", _bundle_factory("round-robin", routing=RoundRobinRouting))
POLICY_BUNDLES.register("retry-first", _bundle_factory("retry-first", requeue=FrontOfQueueRequeue))


def get_policy_bundle(spec: "PolicyBundle | str | None") -> PolicyBundle:
    """Resolve a bundle: pass through instances, look up names, default FCFS.

    Name lookup builds a *fresh* bundle so stateful policies (round-robin)
    never leak position between simulations.
    """
    if spec is None:
        return POLICY_BUNDLES.get("fcfs")()
    if isinstance(spec, PolicyBundle):
        return spec
    if isinstance(spec, str):
        return POLICY_BUNDLES.get(spec)()
    raise SpecError(f"cannot resolve policy bundle from {spec!r}")
