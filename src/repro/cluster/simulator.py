"""Discrete-event LLM serving simulator over a phase-split deployment.

The analytical model (Section 4's roofline) gives *service times*; this
simulator adds the *queueing* the paper's systems sections reason about:
request arrivals, batch formation, prefill-to-decode handoff, continuous
decode batching, and (optionally) GPU failures that take a whole instance
offline — the software blast radius of Section 3.

Mechanics
---------

- **Prefill pool**: each instance serves one FIFO batch at a time (up to
  ``max_prefill_batch`` requests); the batch's latency comes from
  :func:`repro.core.inference.prefill_pass`.  TTFT is recorded at batch
  completion.
- **Decode pool**: each instance runs continuous batching.  At every
  iteration boundary it admits queued sequences within its KV budget,
  advances all active sequences one token (iteration latency from
  :func:`repro.core.inference.decode_iteration` at the current batch and
  mean context), and retires finished sequences.
- **Failures**: ``(time, pool, index, repair_duration)`` tuples knock an
  instance out; its in-flight requests lose their KV state and are re-queued
  for prefill (the recovery cost the paper wants hot spares to hide).

Determinism: simulation is fully determined by the trace and config.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError, SpecError
from ..workloads.traces import Request
from .scheduler import PhasePools, PhaseSplitScheduler


@dataclass(frozen=True)
class SimConfig:
    """Simulator knobs beyond the deployment itself."""

    max_sim_time: float = 3600.0
    min_decode_interval: float = 1e-4  # guard against zero-length iterations

    def __post_init__(self) -> None:
        if self.max_sim_time <= 0:
            raise SpecError("max_sim_time must be positive")
        if self.min_decode_interval <= 0:
            raise SpecError("min_decode_interval must be positive")


@dataclass
class _ActiveSeq:
    """A sequence resident in a decode instance."""

    request: Request
    generated: int = 0
    ttft_done: float = 0.0
    iteration_times: List[float] = field(default_factory=list)

    @property
    def context_len(self) -> int:
        return self.request.prompt_tokens + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_tokens


@dataclass
class _DecodeInstance:
    active: List[_ActiveSeq] = field(default_factory=list)
    busy_until: float = 0.0
    running: bool = False
    down_until: float = 0.0
    busy_time: float = 0.0

    def occupied_tokens(self) -> int:
        return sum(s.request.total_tokens for s in self.active)


@dataclass
class _PrefillInstance:
    busy: bool = False
    down_until: float = 0.0
    busy_time: float = 0.0


@dataclass(frozen=True)
class CompletedRequest:
    """Per-request outcome."""

    request: Request
    ttft: float
    e2e: float
    mean_tbt: float


@dataclass(frozen=True)
class SimReport:
    """Aggregate simulation outcome."""

    completed: int
    dropped: int
    duration: float
    ttft_p50: float
    ttft_p99: float
    tbt_mean: float
    tbt_p99: float
    e2e_p50: float
    e2e_p99: float
    output_tokens_per_s: float
    prefill_utilization: float
    decode_utilization: float
    requeued_on_failure: int

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return (
            f"completed {self.completed} (dropped {self.dropped}) in {self.duration:.1f}s\n"
            f"  TTFT p50/p99 {self.ttft_p50 * 1e3:.0f}/{self.ttft_p99 * 1e3:.0f} ms, "
            f"TBT mean/p99 {self.tbt_mean * 1e3:.1f}/{self.tbt_p99 * 1e3:.1f} ms\n"
            f"  e2e p50/p99 {self.e2e_p50:.2f}/{self.e2e_p99:.2f} s, "
            f"{self.output_tokens_per_s:.0f} output tok/s\n"
            f"  utilization prefill {self.prefill_utilization:.2f} "
            f"decode {self.decode_utilization:.2f}, "
            f"requeued on failure {self.requeued_on_failure}"
        )


class ServingSimulator:
    """Event-driven simulation of a :class:`PhasePools` deployment."""

    def __init__(
        self,
        pools: PhasePools,
        config: SimConfig | None = None,
        failures: Sequence[Tuple[float, str, int, float]] = (),
    ) -> None:
        self.pools = pools
        self.scheduler = PhaseSplitScheduler(pools)
        self.config = config or SimConfig()
        self.failures = sorted(failures)
        for time, pool, index, duration in self.failures:
            if pool not in ("prefill", "decode"):
                raise SpecError("failure pool must be 'prefill' or 'decode'")
            limit = pools.n_prefill if pool == "prefill" else pools.n_decode
            if not 0 <= index < limit:
                raise SpecError(f"failure instance index {index} out of range")
            if time < 0 or duration <= 0:
                raise SpecError("failure time/duration must be positive")

    # --- public API ---------------------------------------------------------

    def run(self, trace: Sequence[Request]) -> SimReport:
        """Simulate the trace to completion (or the time horizon).

        >>> # see examples/splitwise_serving.py for an end-to-end run
        """
        events: List[Tuple[float, int, str, tuple]] = []
        seq = itertools.count()

        def push(time: float, kind: str, payload: tuple = ()) -> None:
            heapq.heappush(events, (time, next(seq), kind, payload))

        prefill_queue: List[Request] = []
        decode_queue: List[Request] = []
        ttft: Dict[int, float] = {}
        prefill_instances = [_PrefillInstance() for _ in range(self.pools.n_prefill)]
        decode_instances = [_DecodeInstance() for _ in range(self.pools.n_decode)]
        completed: List[CompletedRequest] = []
        requeued = 0
        now = 0.0

        for request in trace:
            push(request.arrival, "arrival", (request,))
        for time, pool, index, duration in self.failures:
            push(time, "failure", (pool, index, duration))

        # --- helpers bound to local state -------------------------------------

        def dispatch_prefill(time: float) -> None:
            for idx, inst in enumerate(prefill_instances):
                if inst.busy or time < inst.down_until or not prefill_queue:
                    continue
                take = self.scheduler.form_prefill_batch(len(prefill_queue))
                if take == 0:
                    continue
                batch = [prefill_queue.pop(0) for _ in range(take)]
                prompt = max(r.prompt_tokens for r in batch)
                latency = self.pools.prefill.prefill_time(len(batch), prompt)
                inst.busy = True
                inst.busy_time += latency
                push(time + latency, "prefill_done", (idx, tuple(batch)))

        def admit_decode(time: float) -> None:
            for idx, inst in enumerate(decode_instances):
                if time < inst.down_until or not decode_queue:
                    continue
                footprints = [r.total_tokens for r in decode_queue]
                n = self.scheduler.decode_admission(
                    footprints, len(inst.active), inst.occupied_tokens()
                )
                for _ in range(n):
                    request = decode_queue.pop(0)
                    inst.active.append(_ActiveSeq(request=request, ttft_done=time))
                if inst.active and not inst.running:
                    inst.running = True
                    push(max(time, inst.busy_until), "decode_iter", (idx,))

        def fail_instance(time: float, pool: str, index: int, duration: float) -> int:
            count = 0
            if pool == "prefill":
                prefill_instances[index].down_until = time + duration
                # an in-flight batch finishes (completion event already queued);
                # modeling choice: prefill state is lost only for queued work.
            else:
                inst = decode_instances[index]
                inst.down_until = time + duration
                inst.running = False
                for seq_state in inst.active:
                    prefill_queue.append(seq_state.request)  # KV lost: re-prefill
                    count += 1
                inst.active.clear()
            return count

        # --- event loop ---------------------------------------------------------

        while events:
            time, _, kind, payload = heapq.heappop(events)
            if time > self.config.max_sim_time:
                break
            now = time

            if kind == "arrival":
                (request,) = payload
                prefill_queue.append(request)
                dispatch_prefill(now)

            elif kind == "prefill_done":
                idx, batch = payload
                prefill_instances[idx].busy = False
                for request in batch:
                    ttft[request.request_id] = now - request.arrival
                    decode_queue.append(request)
                admit_decode(now)
                dispatch_prefill(now)

            elif kind == "decode_iter":
                (idx,) = payload
                inst = decode_instances[idx]
                if now < inst.down_until:
                    inst.running = False
                    continue
                if not inst.active:
                    inst.running = False
                    continue
                batch = len(inst.active)
                context = int(np.mean([s.context_len for s in inst.active]))
                latency = max(
                    self.pools.decode.decode_time(batch, max(1, context)),
                    self.config.min_decode_interval,
                )
                inst.busy_time += latency
                finish = now + latency
                inst.busy_until = finish
                for seq_state in inst.active:
                    seq_state.generated += 1
                    seq_state.iteration_times.append(latency)
                still_active: List[_ActiveSeq] = []
                for seq_state in inst.active:
                    if seq_state.done:
                        request = seq_state.request
                        completed.append(
                            CompletedRequest(
                                request=request,
                                ttft=ttft.get(request.request_id, 0.0),
                                e2e=finish - request.arrival,
                                mean_tbt=float(np.mean(seq_state.iteration_times)),
                            )
                        )
                    else:
                        still_active.append(seq_state)
                inst.active = still_active
                push(finish, "decode_admit", (idx,))

            elif kind == "decode_admit":
                (idx,) = payload
                inst = decode_instances[idx]
                inst.running = False
                admit_decode(now)
                if inst.active and not inst.running and now >= inst.down_until:
                    inst.running = True
                    push(now, "decode_iter", (idx,))

            elif kind == "failure":
                pool, index, duration = payload
                requeued += fail_instance(now, pool, index, duration)
                push(now + duration, "recovered", (pool, index))

            elif kind == "recovered":
                pool, index = payload
                if pool == "prefill":
                    dispatch_prefill(now)
                else:
                    admit_decode(now)

            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind '{kind}'")

        return self._report(completed, trace, now, prefill_instances, decode_instances, requeued)

    # --- reporting -----------------------------------------------------------

    def _report(
        self,
        completed: List[CompletedRequest],
        trace: Sequence[Request],
        duration: float,
        prefill_instances: List[_PrefillInstance],
        decode_instances: List[_DecodeInstance],
        requeued: int,
    ) -> SimReport:
        duration = max(duration, 1e-9)
        if completed:
            ttfts = np.array([c.ttft for c in completed])
            tbts = np.array([c.mean_tbt for c in completed])
            e2es = np.array([c.e2e for c in completed])
            out_tokens = sum(c.request.output_tokens for c in completed)
        else:
            ttfts = tbts = e2es = np.array([0.0])
            out_tokens = 0
        prefill_util = float(
            np.mean([i.busy_time for i in prefill_instances]) / duration
        )
        decode_util = float(np.mean([i.busy_time for i in decode_instances]) / duration)
        return SimReport(
            completed=len(completed),
            dropped=len(trace) - len(completed),
            duration=duration,
            ttft_p50=float(np.percentile(ttfts, 50)),
            ttft_p99=float(np.percentile(ttfts, 99)),
            tbt_mean=float(np.mean(tbts)),
            tbt_p99=float(np.percentile(tbts, 99)),
            e2e_p50=float(np.percentile(e2es, 50)),
            e2e_p99=float(np.percentile(e2es, 99)),
            output_tokens_per_s=out_tokens / duration,
            prefill_utilization=min(1.0, prefill_util),
            decode_utilization=min(1.0, decode_util),
            requeued_on_failure=requeued,
        )
