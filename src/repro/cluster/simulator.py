"""Discrete-event LLM serving simulators over pluggable deployments.

The analytical model (Section 4's roofline) gives *service times*; the
simulators add the *queueing* the paper's systems sections reason about:
request arrivals, batch formation, prefill-to-decode handoff, continuous
decode batching, and GPU failures that take a whole instance offline — the
software blast radius of Section 3.

The heavy lifting lives one layer down:

- :mod:`repro.cluster.engine` — the event core, instance state machines,
  and the memoizing :class:`~repro.cluster.engine.ServiceTimeProvider`;
- :mod:`repro.cluster.policies` — pluggable routing / batching / admission
  / requeue policies (the seed's hardcoded behaviour is the ``"fcfs"``
  bundle).

Two deployment shapes share one report format:

- :class:`ServingSimulator` — a Splitwise-style :class:`PhasePools`
  deployment (dedicated prefill and decode pools);
- :class:`ColocatedSimulator` — a SARATHI-style :class:`ColocatedPool`
  where every instance interleaves chunked prefill with decode.

Failures can be scripted as ``(time, pool, index, repair_duration)`` tuples
and/or sampled stochastically from a :class:`FailureModel` with a seeded
RNG (:func:`repro.cluster.failures.sample_failure_schedule`); in-flight
requests on a failed instance lose their KV state and restart from prefill.

Determinism: simulation is fully determined by the trace, the deployment,
the policy bundle, and the failure schedule (scripted or seeded).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SpecError
from ..exec.seeding import derive_seed
from ..network.topology import Topology
from ..workloads.traces import Request
from .control import ClusterController, get_controller
from .economics import EconomicsConfig, EconomicsReport, pool_economics
from .engine import (
    AbstractServiceTimeProvider,
    ColocatedEngine,
    CompletedRequest,
    NetworkAwareServiceTimeProvider,
    PhaseSplitEngine,
    ServiceTimeProvider,
    require_kv_headroom,
)
from .failures import (
    ComponentFailure,
    ComponentFailureModel,
    FailureModel,
    resolve_component_failures,
    sample_failure_schedule,
)
from .placement import Placement, PoolShape, place
from .policies import PolicyBundle, get_policy_bundle
from .resilience import ResilienceConfig, wrap_checkpoint_writes
from .scheduler import ColocatedPool, PhasePools

__all__ = [
    "SimConfig",
    "SimReport",
    "CompletedRequest",
    "ServingSimulator",
    "ColocatedSimulator",
    "NETWORK_MODELS",
]

#: Service-time network models: "none" keeps the placement-blind roofline
#: oracle (bit-identical to the goldens); "fabric" overlays placed collective
#: costs via :class:`~repro.cluster.engine.NetworkAwareServiceTimeProvider`.
NETWORK_MODELS = ("none", "fabric")


def _resolve_placement(
    topology: Topology, placer: "str | Placement", shapes: Sequence[PoolShape]
) -> Placement:
    """Build (or validate) the placement for a deployment's pool shapes."""
    if isinstance(placer, Placement):
        if placer.n_gpus != topology.n_gpus:
            raise SpecError(
                f"placement spans {placer.n_gpus} GPUs but the topology has {topology.n_gpus}"
            )
        for shape in shapes:
            groups = placer.groups(shape.name)
            if len(groups) != shape.n_instances:
                raise SpecError(
                    f"placement has {len(groups)} '{shape.name}' instances, "
                    f"deployment needs {shape.n_instances}"
                )
            for group in groups:
                if len(group) != shape.gpus_per_instance:
                    raise SpecError(
                        f"placement group width {len(group)} != instance "
                        f"TP degree {shape.gpus_per_instance} in pool '{shape.name}'"
                    )
        return placer
    return place(topology, shapes, placer=placer)


def _network_setup(
    topology: Optional[Topology],
    placer: "str | Placement",
    network_model: str,
    shapes: Sequence[PoolShape],
    component_failures: Sequence[ComponentFailure],
    component_model: Optional[ComponentFailureModel],
) -> Optional[Placement]:
    """Validate the co-simulation knobs and resolve the placement (if any)."""
    if network_model not in NETWORK_MODELS:
        raise SpecError(f"network_model must be one of {'/'.join(NETWORK_MODELS)}")
    needs_topology = (
        network_model != "none"
        or component_model is not None
        or bool(component_failures)
        or isinstance(placer, Placement)
    )
    if topology is None:
        if needs_topology:
            raise SpecError(
                "a topology is required for network_model != 'none', "
                "component failures, or an explicit Placement"
            )
        return None
    return _resolve_placement(topology, placer, shapes)


def _make_provider(
    instance_spec,
    config: "SimConfig",
    network_model: str,
    topology: Optional[Topology],
    placement: Optional[Placement],
    pool_name: str,
) -> "AbstractServiceTimeProvider":
    """One service-time oracle for a pool: fabric-aware when requested."""
    if network_model == "fabric":
        return NetworkAwareServiceTimeProvider(
            instance_spec, topology, placement.groups(pool_name),
            config.context_bucket, config.cache_service_times,
        )
    return ServiceTimeProvider(
        instance_spec, config.context_bucket, config.cache_service_times
    )


def _elastic_shapes(
    shapes: Sequence[PoolShape],
    controller: Optional[ClusterController],
    topology: Optional[Topology],
    placer: "str | Placement",
) -> Tuple[Tuple[PoolShape, ...], Dict[str, int]]:
    """Pool shapes plus per-pool spawn limits for an elastic deployment.

    With an active controller and a topology, every pool's shape is
    expanded toward the controller's ``max_instances`` as far as free
    topology GPUs allow — the placer then pre-places the growth groups so
    a controller spawn lands on concrete, disjoint GPU indices (and the
    network-aware provider can price its collectives).  Without a
    topology there is no physical bound: spawn limits stay empty and the
    controller's own ``max_instances`` is the only cap.  An explicit
    :class:`Placement` defines the limits directly via its group counts.
    """
    shapes = tuple(shapes)
    if controller is None or controller.epoch <= 0:
        return shapes, {}
    if isinstance(placer, Placement):
        return shapes, {pool: len(placer.groups(pool)) for pool in placer.pools}
    if topology is None:
        return shapes, {}
    free = topology.n_gpus - sum(s.total_gpus for s in shapes)
    expanded: List[PoolShape] = []
    limits: Dict[str, int] = {}
    for shape in shapes:
        extra_cap = max(0, controller.max_instances - shape.n_instances)
        extra = min(extra_cap, free // shape.gpus_per_instance)
        free -= extra * shape.gpus_per_instance
        n = shape.n_instances + extra
        expanded.append(PoolShape(shape.name, n, shape.gpus_per_instance))
        limits[shape.name] = n
    return tuple(expanded), limits


def _component_instance_failures(
    topology: Topology,
    placement: Placement,
    component_failures: Sequence[ComponentFailure],
    component_model: Optional[ComponentFailureModel],
    horizon: float,
    failure_seed: int,
) -> List[Tuple[float, str, int, float]]:
    """Resolve scripted + sampled component faults to instance outages.

    The sampling seed is *derived from the topology and placement* (not the
    bare ``failure_seed``): two sweeps differing only in fabric or placement
    draw uncorrelated component schedules and never collide in caches keyed
    on the derived seed.
    """
    events = list(component_failures)
    rack_size = component_model.rack_size if component_model is not None else 8
    if component_model is not None:
        schedule_seed = derive_seed(failure_seed, "components", topology, placement)
        events += component_model.sample_component_schedule(
            topology, horizon, seed=schedule_seed
        )
    return resolve_component_failures(events, topology, placement, rack_size=rack_size)


@dataclass(frozen=True)
class SimConfig:
    """Simulator knobs beyond the deployment itself.

    ``context_bucket`` controls the :class:`ServiceTimeProvider` cache key
    granularity — 1 is bit-exact, coarser buckets round contexts up to the
    bucket edge and trade ≤ one bucket of context for wall-clock speed.
    ``cache_service_times=False`` disables memoization entirely (used by
    the perf benchmark to measure the cache's win).
    ``fast_engine=False`` re-enables the seed's per-event occupancy scans
    and numpy context means (bit-identical, slower — the measured baseline
    of ``benchmarks/test_perf_sweep.py``).
    ``metrics="streaming"`` folds completions into constant-memory quantile
    sketches (:mod:`repro.analysis.streaming`) instead of materializing a
    ``CompletedRequest`` per request: percentiles become ≤1%-error
    estimates, counters stay exact, and memory no longer grows with trace
    length.  The default ``"exact"`` is bit-identical to the goldens.
    ``resilience`` attaches a :class:`~repro.cluster.resilience.
    ResilienceConfig` — deadlines, client retries, checkpointed restarts,
    and brown-out load shedding; ``None`` (the default) builds none of it
    and stays bit-identical to the goldens.
    ``backend="fluid"`` swaps the discrete-event loop for the analytic
    fluid/ODE model (:mod:`repro.cluster.fluid`) — milliseconds per run,
    approximate quantiles, same :class:`SimReport` shape.  The default
    ``"event"`` is bit-identical to the goldens.  The fluid backend cannot
    model failures or resilience responses, so composing it with
    ``resilience=`` (or scripted/sampled failures on the simulator) raises
    :class:`SpecError` instead of silently mis-estimating.
    """

    max_sim_time: float = 3600.0
    min_decode_interval: float = 1e-4  # guard against zero-length iterations
    context_bucket: int = 1
    cache_service_times: bool = True
    fast_engine: bool = True
    metrics: str = "exact"
    resilience: Optional[ResilienceConfig] = None
    backend: str = "event"

    def __post_init__(self) -> None:
        if self.max_sim_time <= 0:
            raise SpecError("max_sim_time must be positive")
        if self.min_decode_interval <= 0:
            raise SpecError("min_decode_interval must be positive")
        if self.context_bucket < 1:
            raise SpecError("context_bucket must be at least 1")
        if self.metrics not in ("exact", "streaming"):
            raise SpecError("metrics must be 'exact' or 'streaming'")
        if self.resilience is not None and not isinstance(self.resilience, ResilienceConfig):
            raise SpecError("resilience must be a ResilienceConfig or None")
        if self.backend not in ("event", "fluid"):
            raise SpecError("backend must be 'event' or 'fluid'")
        if self.backend == "fluid" and self.resilience is not None:
            raise SpecError(
                "backend='fluid' cannot model resilience responses; "
                "use the event backend for deadline/retry/checkpoint runs"
            )


@dataclass(frozen=True)
class SimReport:
    """Aggregate simulation outcome.

    With zero completed requests every latency statistic is NaN — never
    0.0, which would read as perfect latency.  ``requeued_on_failure``
    counts lost-work requeue *events*; ``restarted_requests`` counts
    distinct requests that restarted at least once.  ``duration`` is the
    clock of the last request-affecting event, so failure/repair
    bookkeeping on an idle cluster does not dilute the normalized metrics.

    The economics block closes the paper's perf-per-TCO loop:
    ``gpu_seconds`` are *provisioned* gpu-seconds (elastic pools hold
    fewer in the lulls), ``energy_joules`` integrates the DVFS-weighted
    power model over the run, and ``usd_per_mtoken`` is the amortized
    unit cost over completed output tokens (0.0 when none completed).
    Per-pool detail lives on the simulator's ``last_economics``.

    ``backend`` records provenance: ``"event"`` for discrete-event truth,
    ``"fluid"`` for the analytic fluid/ODE approximation
    (:mod:`repro.cluster.fluid`).  Tables and caches carry it through so a
    screened fluid estimate is never mistaken for event-level truth.
    """

    completed: int
    dropped: int
    duration: float
    ttft_p50: float
    ttft_p99: float
    tbt_mean: float
    tbt_p99: float
    e2e_p50: float
    e2e_p99: float
    output_tokens_per_s: float
    prefill_utilization: float
    decode_utilization: float
    requeued_on_failure: int
    restarted_requests: int = 0
    gpu_seconds: float = 0.0
    energy_joules: float = 0.0
    usd_cost: float = 0.0
    usd_per_mtoken: float = 0.0
    spawned_instances: int = 0
    retired_instances: int = 0
    # Resilience block (defaults match a run without a ResilienceConfig;
    # see repro.cluster.resilience.RESILIENCE_FIELDS).  ``goodput_tokens``
    # counts output tokens from requests that met their deadline and SLO;
    # ``availability`` is 1 - downtime-weighted instance-seconds lost.
    deadline_missed: int = 0
    timed_out: int = 0
    load_shed: int = 0
    truncated: int = 0
    retries: int = 0
    abandoned: int = 0
    goodput_tokens: int = 0
    goodput_tokens_per_s: float = 0.0
    slo_violations: int = 0
    slo_violation_rate: float = 0.0
    deadline_miss_rate: float = 0.0
    failure_hits: int = 0
    mttr_s: float = 0.0
    availability: float = 1.0
    # Provenance: which backend produced this report ("event" or "fluid").
    backend: str = "event"

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        text = (
            f"completed {self.completed} (dropped {self.dropped}) in {self.duration:.1f}s\n"
            f"  TTFT p50/p99 {self.ttft_p50 * 1e3:.0f}/{self.ttft_p99 * 1e3:.0f} ms, "
            f"TBT mean/p99 {self.tbt_mean * 1e3:.1f}/{self.tbt_p99 * 1e3:.1f} ms\n"
            f"  e2e p50/p99 {self.e2e_p50:.2f}/{self.e2e_p99:.2f} s, "
            f"{self.output_tokens_per_s:.0f} output tok/s\n"
            f"  utilization prefill {self.prefill_utilization:.2f} "
            f"decode {self.decode_utilization:.2f}, "
            f"requeued on failure {self.requeued_on_failure} "
            f"({self.restarted_requests} requests restarted)"
        )
        if self.gpu_seconds > 0:
            text += (
                f"\n  economics: {self.gpu_seconds:.0f} gpu-s, "
                f"{self.energy_joules / 3.6e6:.2f} kWh, ${self.usd_cost:.2f} "
                f"(${self.usd_per_mtoken:.2f}/Mtok)"
            )
            if self.spawned_instances or self.retired_instances:
                text += (
                    f", {self.spawned_instances} spawned / "
                    f"{self.retired_instances} retired"
                )
        sheds = self.deadline_missed + self.timed_out + self.load_shed
        if self.failure_hits or self.retries or sheds:
            text += (
                f"\n  resilience: goodput {self.goodput_tokens_per_s:.0f} tok/s, "
                f"{self.deadline_missed} deadline-missed / {self.timed_out} timed-out / "
                f"{self.load_shed} shed, {self.retries} retries "
                f"({self.abandoned} abandoned), "
                f"MTTR {self.mttr_s:.1f}s, availability {self.availability:.4f}"
            )
        return text


def _build_report(
    completed: List[CompletedRequest],
    arrivals: int,
    out_tokens: int,
    duration: float,
    prefill_busy: Sequence[float],
    decode_busy: Sequence[float],
    requeued: int,
    restarted: int,
) -> SimReport:
    # ``out_tokens`` is the engine's counter rather than a sum over
    # ``completed``: the two agree bit-for-bit on the default path, but
    # checkpointed restarts shrink a resumed request's ``output_tokens``
    # and pay the difference back as credit only the counter sees.
    duration = max(duration, 1e-9)
    nan = float("nan")
    if completed:
        # One pass over the completions builds a (n, 3) metric matrix, and
        # one vectorized percentile call covers every quantile column —
        # instead of three array builds plus five separate percentile sorts.
        metrics = np.array([(c.ttft, c.mean_tbt, c.e2e) for c in completed])
        (ttft_p50, tbt_p50_unused, e2e_p50), (ttft_p99, tbt_p99, e2e_p99) = np.percentile(
            metrics, (50, 99), axis=0
        )
        del tbt_p50_unused
        tbt_mean = float(np.mean(metrics[:, 1]))
    else:
        ttft_p50 = ttft_p99 = tbt_mean = tbt_p99 = e2e_p50 = e2e_p99 = nan
    prefill_util = float(np.mean(prefill_busy) / duration)
    decode_util = float(np.mean(decode_busy) / duration)
    return SimReport(
        completed=len(completed),
        dropped=arrivals - len(completed),
        duration=duration,
        ttft_p50=float(ttft_p50),
        ttft_p99=float(ttft_p99),
        tbt_mean=tbt_mean,
        tbt_p99=float(tbt_p99),
        e2e_p50=float(e2e_p50),
        e2e_p99=float(e2e_p99),
        output_tokens_per_s=out_tokens / duration,
        prefill_utilization=min(1.0, prefill_util),
        decode_utilization=min(1.0, decode_util),
        requeued_on_failure=requeued,
        restarted_requests=restarted,
    )


def _build_streaming_report(
    metrics,  # repro.analysis.streaming.StreamingMetrics
    arrivals: int,
    out_tokens: int,
    duration: float,
    prefill_busy: Sequence[float],
    decode_busy: Sequence[float],
    requeued: int,
    restarted: int,
) -> SimReport:
    """The constant-memory counterpart of :func:`_build_report`.

    Counters (completed/dropped/tokens/utilization) are exact; latency
    percentiles come from the engine's quantile sketches, accurate to ≤1%
    relative error on the latency shapes the simulator produces.
    """
    duration = max(duration, 1e-9)
    if metrics.completed:
        ttft_p50, ttft_p99 = metrics.ttft.quantiles((0.5, 0.99))
        e2e_p50, e2e_p99 = metrics.e2e.quantiles((0.5, 0.99))
        tbt_p99 = metrics.tbt.quantile(0.99)
        tbt_mean = metrics.tbt.mean
    else:
        nan = float("nan")
        ttft_p50 = ttft_p99 = tbt_mean = tbt_p99 = e2e_p50 = e2e_p99 = nan
    return SimReport(
        completed=metrics.completed,
        dropped=arrivals - metrics.completed,
        duration=duration,
        ttft_p50=float(ttft_p50),
        ttft_p99=float(ttft_p99),
        tbt_mean=float(tbt_mean),
        tbt_p99=float(tbt_p99),
        e2e_p50=float(e2e_p50),
        e2e_p99=float(e2e_p99),
        output_tokens_per_s=out_tokens / duration,
        prefill_utilization=min(1.0, float(np.mean(prefill_busy) / duration)),
        decode_utilization=min(1.0, float(np.mean(decode_busy) / duration)),
        requeued_on_failure=requeued,
        restarted_requests=restarted,
    )


def _report_from_engine(
    engine,
    prefill_busy: Sequence[float],
    decode_busy: Sequence[float],
) -> SimReport:
    """Dispatch to the exact or streaming report builder for a run engine.

    Restart counts come from ``engine.restarted_total`` (incremented once
    per distinct request) rather than ``len(engine.restarts)`` — the
    streaming path prunes the per-request dict at completion to bound
    memory, and per-shard totals must survive that pruning so sharded and
    unsharded runs agree (the ids are disjoint across shards, so summing
    distinct-request counts is exact).
    """
    if engine.metrics is not None:
        report = _build_streaming_report(
            engine.metrics, engine.arrivals, engine.output_token_count,
            engine.work_time, prefill_busy, decode_busy,
            engine.requeued, engine.restarted_total,
        )
    else:
        report = _build_report(
            engine.completed, engine.arrivals, engine.output_token_count,
            engine.work_time, prefill_busy, decode_busy,
            engine.requeued, engine.restarted_total,
        )
    if engine.resilience is not None:
        fields = engine.resilience.report_fields(
            report.duration,
            engine._instance_seconds(report.duration),
            arrivals=engine.arrivals,
            completed=report.completed,
        )
        report = replace(report, **fields)
    return report


def _failure_limit(
    spawn_limits: Dict[str, int],
    controller: Optional[ClusterController],
    pool: str,
    initial: int,
) -> int:
    """Highest instance index scripted failures may legally target.

    Placement-bounded pools use their pre-placed group count; otherwise an
    elastic pool accepts faults up to the controller's growth cap (the
    engine no-ops faults on never-spawned instances), and a static pool
    keeps the strict initial bound.
    """
    if pool in spawn_limits:
        return spawn_limits[pool]
    if controller is not None and controller.epoch > 0:
        return max(initial, controller.max_instances)
    return initial


def _attach_economics(
    report: SimReport, engine, pool_rollups: Tuple
) -> Tuple[SimReport, EconomicsReport]:
    """Fold the engine's resource counters into the report's cost fields."""
    # The engine-maintained integer counter equals the old genexpr sum over
    # ``completed`` bit-for-bit, and also exists when streaming metrics
    # never materialize the completion list.
    out_tokens = engine.output_token_count
    econ = EconomicsReport(
        pools=tuple(pool_rollups), duration=report.duration, output_tokens=out_tokens
    )
    report = replace(
        report,
        gpu_seconds=econ.gpu_seconds,
        energy_joules=econ.energy_joules,
        usd_cost=econ.usd_cost,
        usd_per_mtoken=econ.usd_per_mtoken,
        spawned_instances=engine.spawned,
        retired_instances=engine.retired,
    )
    return report, econ


def _check_fluid_composition(
    config: SimConfig,
    failures: Sequence,
    failure_model,
    component_failures: Sequence,
    component_model,
    controller: Optional[ClusterController],
) -> None:
    """Reject fluid-backend compositions the analytic model cannot honour.

    Fluid has no notion of an instance losing its KV state mid-flight or of
    a controller resizing pools between epochs; raising here (at simulator
    construction) beats silently returning optimistic estimates.
    """
    if config.backend != "fluid":
        return
    if failures or failure_model is not None or component_failures or component_model is not None:
        raise SpecError(
            "backend='fluid' cannot model failures (scripted, sampled, or "
            "component-level); use the event backend for chaos/failure runs"
        )
    if controller is not None and controller.epoch > 0:
        raise SpecError(
            "backend='fluid' cannot model elastic controllers; "
            "use the event backend or controller=None"
        )


def _validate_failures(
    failures: Sequence[Tuple[float, str, int, float]],
    limits: Dict[str, int],
) -> List[Tuple[float, str, int, float]]:
    failures = sorted(failures)
    pools = "/".join(f"'{name}'" for name in limits)
    for time, pool, index, duration in failures:
        if pool not in limits:
            raise SpecError(f"failure pool must be {pools}")
        if not 0 <= index < limits[pool]:
            raise SpecError(f"failure instance index {index} out of range")
        if time < 0 or duration <= 0:
            raise SpecError("failure time/duration must be positive")
    return failures


class ServingSimulator:
    """Event-driven simulation of a :class:`PhasePools` deployment.

    ``policies`` selects a :class:`PolicyBundle` by name or instance (see
    :data:`repro.cluster.policies.POLICY_BUNDLES`); the default ``"fcfs"``
    reproduces the seed simulator exactly.  ``failure_model`` adds
    stochastic instance failures (seeded by ``failure_seed``) on top of any
    scripted ``failures``.

    Topology co-simulation: pass a ``topology`` to map every instance onto
    physical GPUs (``placer`` names a :data:`repro.cluster.placement.PLACERS`
    entry, or is an explicit :class:`Placement`).  With
    ``network_model="fabric"`` service times gain placed collective costs;
    the default ``"none"`` stays bit-identical to the goldens.  Component
    faults — scripted :class:`ComponentFailure` events and/or a sampled
    :class:`ComponentFailureModel` — are resolved through the placement onto
    the instances they down.

    Elastic control: ``controller`` names a
    :data:`repro.cluster.control.CONTROLLERS` entry (or is an instance);
    the engine steps it every ``controller.epoch`` seconds to spawn,
    drain, or DVFS-throttle instances.  ``None`` and ``"static"`` are
    bit-identical to the pre-control-plane engine.  With a topology, the
    growth headroom is pre-placed so spawns land on concrete GPU groups.
    ``economics`` sets the cost assumptions behind the report's
    gpu-seconds/energy/$ fields; per-pool detail is kept on
    ``self.last_economics`` after each run.
    """

    def __init__(
        self,
        pools: PhasePools,
        config: SimConfig | None = None,
        failures: Sequence[Tuple[float, str, int, float]] = (),
        *,
        policies: PolicyBundle | str | None = None,
        failure_model: Optional[FailureModel] = None,
        failure_seed: int = 0,
        topology: Optional[Topology] = None,
        placer: "str | Placement" = "packed",
        network_model: str = "none",
        component_failures: Sequence[ComponentFailure] = (),
        component_model: Optional[ComponentFailureModel] = None,
        controller: "ClusterController | str | None" = None,
        economics: Optional[EconomicsConfig] = None,
    ) -> None:
        self.pools = pools
        require_kv_headroom(pools.decode, "decode")  # fail fast, before run()
        self.config = config or SimConfig()
        self._policy_spec = policies
        self.topology = topology
        self.network_model = network_model
        self.controller = get_controller(controller)
        _check_fluid_composition(
            self.config, failures, failure_model,
            component_failures, component_model, self.controller,
        )
        self.economics = economics or EconomicsConfig()
        self.last_economics: Optional[EconomicsReport] = None
        # StreamingMetrics of the last run (None under metrics="exact");
        # sharded execution merges these across shard engines.
        self.last_metrics = None
        shapes, self._spawn_limits = _elastic_shapes(
            pools.pool_shapes(), self.controller, topology, placer
        )
        self.placement = _network_setup(
            topology, placer, network_model, shapes,
            component_failures, component_model,
        )
        all_failures = list(failures)
        horizon = self.config.max_sim_time
        if failure_model is not None:
            all_failures += sample_failure_schedule(
                failure_model, "prefill", pools.n_prefill, horizon,
                seed=failure_seed, gpus_per_instance=pools.prefill.n_gpus,
            )
            all_failures += sample_failure_schedule(
                failure_model, "decode", pools.n_decode, horizon,
                seed=failure_seed + 1, gpus_per_instance=pools.decode.n_gpus,
            )
        if self.placement is not None and (component_failures or component_model is not None):
            all_failures += _component_instance_failures(
                topology, self.placement, component_failures, component_model,
                horizon, failure_seed,
            )
        self.failures = _validate_failures(
            all_failures,
            {
                "prefill": _failure_limit(
                    self._spawn_limits, self.controller, "prefill", pools.n_prefill
                ),
                "decode": _failure_limit(
                    self._spawn_limits, self.controller, "decode", pools.n_decode
                ),
            },
        )
        self.prefill_provider = _make_provider(
            pools.prefill, self.config, network_model, topology, self.placement, "prefill"
        )
        self.decode_provider = _make_provider(
            pools.decode, self.config, network_model, topology, self.placement, "decode"
        )
        # Checkpointed restarts stream KV to storage during decode; the
        # wrapper is a no-op (returns the provider unchanged) unless a
        # checkpoint interval is configured.
        self.decode_provider = wrap_checkpoint_writes(
            self.decode_provider, pools.decode, self.config.resilience
        )

    def run(self, trace: "Sequence[Request] | Iterable[Request]") -> SimReport:
        """Simulate the trace to completion (or the time horizon).

        ``trace`` may also be an iterator of arrival-ordered requests (e.g.
        :func:`repro.workloads.traces.iter_trace`): arrivals are then fed
        one ahead of the clock, so memory stays bounded by in-flight work.

        >>> # see examples/splitwise_serving.py for an end-to-end run
        """
        self.prefill_provider.set_frequency(1.0)
        self.decode_provider.set_frequency(1.0)
        if self.config.backend == "fluid":
            from .fluid import fluid_phase_split_report

            report, self.last_economics = fluid_phase_split_report(
                self.pools, self.config, trace,
                self.prefill_provider, self.decode_provider,
                get_policy_bundle(self._policy_spec), self.economics,
            )
            self.last_metrics = None
            return report
        engine = PhaseSplitEngine(
            self.pools,
            self.config,
            get_policy_bundle(self._policy_spec),
            self.prefill_provider,
            self.decode_provider,
            self.failures,
            # A private copy per run: controllers keep hysteresis state.
            controller=copy.deepcopy(self.controller),
            power_curve=self.economics.curve,
            spawn_limits=self._spawn_limits,
        )
        engine.run(trace)
        self.last_metrics = engine.metrics
        report = _report_from_engine(
            engine,
            [s.busy_time for s in engine.prefill_states],
            [s.busy_time for s in engine.decode_states],
        )
        pool_rollups = (
            pool_economics(
                "prefill", self.pools.prefill, engine.prefill_states,
                report.duration, self.economics,
            ),
            pool_economics(
                "decode", self.pools.decode, engine.decode_states,
                report.duration, self.economics,
            ),
        )
        report, self.last_economics = _attach_economics(report, engine, pool_rollups)
        return report


class ColocatedSimulator:
    """Event-driven simulation of a :class:`ColocatedPool` deployment.

    Scripted failures use pool name ``"colocated"``.  The report's
    ``prefill_utilization`` and ``decode_utilization`` are both the pool's
    busy fraction (there is only one pool).  The topology co-simulation
    knobs (``topology``/``placer``/``network_model``/component failures)
    and the elastic knobs (``controller``/``economics``) behave exactly as
    on :class:`ServingSimulator`; controllers scale the single
    ``"colocated"`` pool.
    """

    def __init__(
        self,
        pool: ColocatedPool,
        config: SimConfig | None = None,
        failures: Sequence[Tuple[float, str, int, float]] = (),
        *,
        policies: PolicyBundle | str | None = None,
        failure_model: Optional[FailureModel] = None,
        failure_seed: int = 0,
        topology: Optional[Topology] = None,
        placer: "str | Placement" = "packed",
        network_model: str = "none",
        component_failures: Sequence[ComponentFailure] = (),
        component_model: Optional[ComponentFailureModel] = None,
        controller: "ClusterController | str | None" = None,
        economics: Optional[EconomicsConfig] = None,
    ) -> None:
        self.pool = pool
        self.config = config or SimConfig()
        self._policy_spec = policies
        require_kv_headroom(pool.instance, "colocated")  # fail fast, before run()
        self.topology = topology
        self.network_model = network_model
        self.controller = get_controller(controller)
        _check_fluid_composition(
            self.config, failures, failure_model,
            component_failures, component_model, self.controller,
        )
        self.economics = economics or EconomicsConfig()
        self.last_economics: Optional[EconomicsReport] = None
        self.last_metrics = None
        shapes, self._spawn_limits = _elastic_shapes(
            pool.pool_shapes(), self.controller, topology, placer
        )
        self.placement = _network_setup(
            topology, placer, network_model, shapes,
            component_failures, component_model,
        )
        all_failures = list(failures)
        horizon = self.config.max_sim_time
        if failure_model is not None:
            all_failures += sample_failure_schedule(
                failure_model, "colocated", pool.n_instances, horizon,
                seed=failure_seed, gpus_per_instance=pool.instance.n_gpus,
            )
        if self.placement is not None and (component_failures or component_model is not None):
            all_failures += _component_instance_failures(
                topology, self.placement, component_failures, component_model,
                horizon, failure_seed,
            )
        self.failures = _validate_failures(
            all_failures,
            {
                "colocated": _failure_limit(
                    self._spawn_limits, self.controller, "colocated", pool.n_instances
                )
            },
        )
        self.provider = _make_provider(
            pool.instance, self.config, network_model, topology, self.placement, "colocated"
        )
        # No-op unless a checkpoint interval is configured (see the
        # phase-split simulator for the rationale).
        self.provider = wrap_checkpoint_writes(
            self.provider, pool.instance, self.config.resilience
        )

    def run(self, trace: "Sequence[Request] | Iterable[Request]") -> SimReport:
        """Simulate the trace to completion (or the time horizon).

        Iterator traces are fed one arrival ahead of the clock, exactly as
        on :meth:`ServingSimulator.run`.
        """
        self.provider.set_frequency(1.0)
        if self.config.backend == "fluid":
            from .fluid import fluid_colocated_report

            report, self.last_economics = fluid_colocated_report(
                self.pool, self.config, trace, self.provider,
                get_policy_bundle(self._policy_spec), self.economics,
            )
            self.last_metrics = None
            return report
        engine = ColocatedEngine(
            self.pool,
            self.config,
            get_policy_bundle(self._policy_spec),
            self.provider,
            self.failures,
            controller=copy.deepcopy(self.controller),
            power_curve=self.economics.curve,
            spawn_limits=self._spawn_limits,
        )
        engine.run(trace)
        self.last_metrics = engine.metrics
        busy = [s.busy_time for s in engine.states]
        report = _report_from_engine(engine, busy, busy)
        rollup = pool_economics(
            "colocated", self.pool.instance, engine.states,
            report.duration, self.economics,
        )
        report, self.last_economics = _attach_economics(report, engine, (rollup,))
        return report
