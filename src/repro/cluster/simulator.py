"""Discrete-event LLM serving simulators over pluggable deployments.

The analytical model (Section 4's roofline) gives *service times*; the
simulators add the *queueing* the paper's systems sections reason about:
request arrivals, batch formation, prefill-to-decode handoff, continuous
decode batching, and GPU failures that take a whole instance offline — the
software blast radius of Section 3.

The heavy lifting lives one layer down:

- :mod:`repro.cluster.engine` — the event core, instance state machines,
  and the memoizing :class:`~repro.cluster.engine.ServiceTimeProvider`;
- :mod:`repro.cluster.policies` — pluggable routing / batching / admission
  / requeue policies (the seed's hardcoded behaviour is the ``"fcfs"``
  bundle).

Two deployment shapes share one report format:

- :class:`ServingSimulator` — a Splitwise-style :class:`PhasePools`
  deployment (dedicated prefill and decode pools);
- :class:`ColocatedSimulator` — a SARATHI-style :class:`ColocatedPool`
  where every instance interleaves chunked prefill with decode.

Failures can be scripted as ``(time, pool, index, repair_duration)`` tuples
and/or sampled stochastically from a :class:`FailureModel` with a seeded
RNG (:func:`repro.cluster.failures.sample_failure_schedule`); in-flight
requests on a failed instance lose their KV state and restart from prefill.

Determinism: simulation is fully determined by the trace, the deployment,
the policy bundle, and the failure schedule (scripted or seeded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SpecError
from ..workloads.traces import Request
from .engine import (
    ColocatedEngine,
    CompletedRequest,
    PhaseSplitEngine,
    ServiceTimeProvider,
    require_kv_headroom,
)
from .failures import FailureModel, sample_failure_schedule
from .policies import PolicyBundle, get_policy_bundle
from .scheduler import ColocatedPool, PhasePools

__all__ = [
    "SimConfig",
    "SimReport",
    "CompletedRequest",
    "ServingSimulator",
    "ColocatedSimulator",
]


@dataclass(frozen=True)
class SimConfig:
    """Simulator knobs beyond the deployment itself.

    ``context_bucket`` controls the :class:`ServiceTimeProvider` cache key
    granularity — 1 is bit-exact, coarser buckets round contexts up to the
    bucket edge and trade ≤ one bucket of context for wall-clock speed.
    ``cache_service_times=False`` disables memoization entirely (used by
    the perf benchmark to measure the cache's win).
    ``fast_engine=False`` re-enables the seed's per-event occupancy scans
    and numpy context means (bit-identical, slower — the measured baseline
    of ``benchmarks/test_perf_sweep.py``).
    """

    max_sim_time: float = 3600.0
    min_decode_interval: float = 1e-4  # guard against zero-length iterations
    context_bucket: int = 1
    cache_service_times: bool = True
    fast_engine: bool = True

    def __post_init__(self) -> None:
        if self.max_sim_time <= 0:
            raise SpecError("max_sim_time must be positive")
        if self.min_decode_interval <= 0:
            raise SpecError("min_decode_interval must be positive")
        if self.context_bucket < 1:
            raise SpecError("context_bucket must be at least 1")


@dataclass(frozen=True)
class SimReport:
    """Aggregate simulation outcome.

    With zero completed requests every latency statistic is NaN — never
    0.0, which would read as perfect latency.  ``requeued_on_failure``
    counts lost-work requeue *events*; ``restarted_requests`` counts
    distinct requests that restarted at least once.  ``duration`` is the
    clock of the last request-affecting event, so failure/repair
    bookkeeping on an idle cluster does not dilute the normalized metrics.
    """

    completed: int
    dropped: int
    duration: float
    ttft_p50: float
    ttft_p99: float
    tbt_mean: float
    tbt_p99: float
    e2e_p50: float
    e2e_p99: float
    output_tokens_per_s: float
    prefill_utilization: float
    decode_utilization: float
    requeued_on_failure: int
    restarted_requests: int = 0

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return (
            f"completed {self.completed} (dropped {self.dropped}) in {self.duration:.1f}s\n"
            f"  TTFT p50/p99 {self.ttft_p50 * 1e3:.0f}/{self.ttft_p99 * 1e3:.0f} ms, "
            f"TBT mean/p99 {self.tbt_mean * 1e3:.1f}/{self.tbt_p99 * 1e3:.1f} ms\n"
            f"  e2e p50/p99 {self.e2e_p50:.2f}/{self.e2e_p99:.2f} s, "
            f"{self.output_tokens_per_s:.0f} output tok/s\n"
            f"  utilization prefill {self.prefill_utilization:.2f} "
            f"decode {self.decode_utilization:.2f}, "
            f"requeued on failure {self.requeued_on_failure} "
            f"({self.restarted_requests} requests restarted)"
        )


def _build_report(
    completed: List[CompletedRequest],
    trace: Sequence[Request],
    duration: float,
    prefill_busy: Sequence[float],
    decode_busy: Sequence[float],
    requeued: int,
    restarted: int,
) -> SimReport:
    duration = max(duration, 1e-9)
    nan = float("nan")
    if completed:
        # One pass over the completions builds a (n, 3) metric matrix, and
        # one vectorized percentile call covers every quantile column —
        # instead of three array builds plus five separate percentile sorts.
        metrics = np.array([(c.ttft, c.mean_tbt, c.e2e) for c in completed])
        (ttft_p50, tbt_p50_unused, e2e_p50), (ttft_p99, tbt_p99, e2e_p99) = np.percentile(
            metrics, (50, 99), axis=0
        )
        del tbt_p50_unused
        tbt_mean = float(np.mean(metrics[:, 1]))
        out_tokens = sum(c.request.output_tokens for c in completed)
    else:
        ttft_p50 = ttft_p99 = tbt_mean = tbt_p99 = e2e_p50 = e2e_p99 = nan
        out_tokens = 0
    prefill_util = float(np.mean(prefill_busy) / duration)
    decode_util = float(np.mean(decode_busy) / duration)
    return SimReport(
        completed=len(completed),
        dropped=len(trace) - len(completed),
        duration=duration,
        ttft_p50=float(ttft_p50),
        ttft_p99=float(ttft_p99),
        tbt_mean=tbt_mean,
        tbt_p99=float(tbt_p99),
        e2e_p50=float(e2e_p50),
        e2e_p99=float(e2e_p99),
        output_tokens_per_s=out_tokens / duration,
        prefill_utilization=min(1.0, prefill_util),
        decode_utilization=min(1.0, decode_util),
        requeued_on_failure=requeued,
        restarted_requests=restarted,
    )


def _validate_failures(
    failures: Sequence[Tuple[float, str, int, float]],
    limits: Dict[str, int],
) -> List[Tuple[float, str, int, float]]:
    failures = sorted(failures)
    pools = "/".join(f"'{name}'" for name in limits)
    for time, pool, index, duration in failures:
        if pool not in limits:
            raise SpecError(f"failure pool must be {pools}")
        if not 0 <= index < limits[pool]:
            raise SpecError(f"failure instance index {index} out of range")
        if time < 0 or duration <= 0:
            raise SpecError("failure time/duration must be positive")
    return failures


class ServingSimulator:
    """Event-driven simulation of a :class:`PhasePools` deployment.

    ``policies`` selects a :class:`PolicyBundle` by name or instance (see
    :data:`repro.cluster.policies.POLICY_BUNDLES`); the default ``"fcfs"``
    reproduces the seed simulator exactly.  ``failure_model`` adds
    stochastic instance failures (seeded by ``failure_seed``) on top of any
    scripted ``failures``.
    """

    def __init__(
        self,
        pools: PhasePools,
        config: SimConfig | None = None,
        failures: Sequence[Tuple[float, str, int, float]] = (),
        *,
        policies: PolicyBundle | str | None = None,
        failure_model: Optional[FailureModel] = None,
        failure_seed: int = 0,
    ) -> None:
        self.pools = pools
        require_kv_headroom(pools.decode, "decode")  # fail fast, before run()
        self.config = config or SimConfig()
        self._policy_spec = policies
        all_failures = list(failures)
        if failure_model is not None:
            horizon = self.config.max_sim_time
            all_failures += sample_failure_schedule(
                failure_model, "prefill", pools.n_prefill, horizon,
                seed=failure_seed, gpus_per_instance=pools.prefill.n_gpus,
            )
            all_failures += sample_failure_schedule(
                failure_model, "decode", pools.n_decode, horizon,
                seed=failure_seed + 1, gpus_per_instance=pools.decode.n_gpus,
            )
        self.failures = _validate_failures(
            all_failures, {"prefill": pools.n_prefill, "decode": pools.n_decode}
        )
        self.prefill_provider = ServiceTimeProvider(
            pools.prefill, self.config.context_bucket, self.config.cache_service_times
        )
        self.decode_provider = ServiceTimeProvider(
            pools.decode, self.config.context_bucket, self.config.cache_service_times
        )

    def run(self, trace: Sequence[Request]) -> SimReport:
        """Simulate the trace to completion (or the time horizon).

        >>> # see examples/splitwise_serving.py for an end-to-end run
        """
        engine = PhaseSplitEngine(
            self.pools,
            self.config,
            get_policy_bundle(self._policy_spec),
            self.prefill_provider,
            self.decode_provider,
            self.failures,
        )
        engine.run(trace)
        return _build_report(
            engine.completed,
            trace,
            engine.work_time,
            [s.busy_time for s in engine.prefill_states],
            [s.busy_time for s in engine.decode_states],
            engine.requeued,
            len(engine.restarts),
        )


class ColocatedSimulator:
    """Event-driven simulation of a :class:`ColocatedPool` deployment.

    Scripted failures use pool name ``"colocated"``.  The report's
    ``prefill_utilization`` and ``decode_utilization`` are both the pool's
    busy fraction (there is only one pool).
    """

    def __init__(
        self,
        pool: ColocatedPool,
        config: SimConfig | None = None,
        failures: Sequence[Tuple[float, str, int, float]] = (),
        *,
        policies: PolicyBundle | str | None = None,
        failure_model: Optional[FailureModel] = None,
        failure_seed: int = 0,
    ) -> None:
        self.pool = pool
        self.config = config or SimConfig()
        self._policy_spec = policies
        require_kv_headroom(pool.instance, "colocated")  # fail fast, before run()
        all_failures = list(failures)
        if failure_model is not None:
            all_failures += sample_failure_schedule(
                failure_model, "colocated", pool.n_instances, self.config.max_sim_time,
                seed=failure_seed, gpus_per_instance=pool.instance.n_gpus,
            )
        self.failures = _validate_failures(all_failures, {"colocated": pool.n_instances})
        self.provider = ServiceTimeProvider(
            pool.instance, self.config.context_bucket, self.config.cache_service_times
        )

    def run(self, trace: Sequence[Request]) -> SimReport:
        """Simulate the trace to completion (or the time horizon)."""
        engine = ColocatedEngine(
            self.pool,
            self.config,
            get_policy_bundle(self._policy_spec),
            self.provider,
            self.failures,
        )
        engine.run(trace)
        busy = [s.busy_time for s in engine.states]
        return _build_report(
            engine.completed, trace, engine.work_time, busy, busy,
            engine.requeued, len(engine.restarts),
        )
