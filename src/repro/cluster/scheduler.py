"""Deployment shapes: phase-split (Splitwise-style) and colocated pools.

The paper's case study assumes *"different phases can execute on different
Lite-GPU clusters"* (citing Splitwise / DistServe).  This module provides the
static description of the deployments the simulator can run — how many
instances of which GPU type serve which phase — plus the seed admission
logic; the dynamics live in :mod:`repro.cluster.engine` and
:mod:`repro.cluster.simulator`.

Two shapes:

- :class:`PhasePools` — dedicated prefill and decode pools (Splitwise);
- :class:`ColocatedPool` — one pool whose instances interleave chunked
  prefill with decode (SARATHI-style, via :mod:`repro.core.chunked`).

An **instance** is one tensor-parallel replica of the model (``n_gpus`` GPUs
of one type).  Its performance envelope comes straight from the analytical
model: prefill time as a function of batch, decode iteration time as a
function of (batch, context), and the KV-token capacity bound.

:class:`PhaseSplitScheduler` is kept as the seed's admission API; its
behaviour is exactly the ``"fcfs"`` bundle of
:mod:`repro.cluster.policies`, of which it is now a thin wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.inference import (
    DecodeWorkload,
    PhaseResult,
    PrefillWorkload,
    decode_iteration,
    prefill_pass,
)
from ..core.parallelism import TensorParallel
from ..core.roofline import RooflinePolicy
from ..errors import SpecError
from ..hardware.gpu import GPUSpec
from ..workloads.transformer import ModelSpec
from .placement import PoolShape
from .policies import FCFSAdmission


@dataclass(frozen=True)
class InstanceSpec:
    """One model replica: GPU type and tensor-parallel degree."""

    model: ModelSpec
    gpu: GPUSpec
    n_gpus: int
    policy: RooflinePolicy = field(default_factory=RooflinePolicy)

    def __post_init__(self) -> None:
        if self.n_gpus <= 0:
            raise SpecError("n_gpus must be positive")
        tp = TensorParallel(self.model, self.n_gpus, self.policy.kv_placement)
        if not tp.fits(self.gpu.mem_capacity, self.policy.weight_bytes):
            raise SpecError(
                f"{self.model.name} weights do not fit {self.n_gpus}x {self.gpu.name}"
            )

    @property
    def tp(self) -> TensorParallel:
        """The tensor-parallel layout of this instance."""
        return TensorParallel(self.model, self.n_gpus, self.policy.kv_placement)

    def kv_token_capacity(self) -> int:
        """Maximum cached tokens this instance can hold."""
        return self.tp.max_cached_tokens(
            self.gpu.mem_capacity,
            self.policy.weight_bytes,
            self.policy.memory_reserve_fraction,
        )

    def prefill_time(self, batch: int, prompt_len: int) -> float:
        """Prefill latency of a batch on this instance."""
        result = prefill_pass(
            self.model, self.gpu, self.n_gpus, PrefillWorkload(batch, prompt_len), self.policy
        )
        return result.latency

    def decode_time(self, batch: int, context_len: int) -> float:
        """One decode iteration's latency at a given batch/context."""
        result = decode_iteration(
            self.model, self.gpu, self.n_gpus, DecodeWorkload(batch, context_len), self.policy
        )
        return result.latency


@dataclass(frozen=True)
class PhasePools:
    """A phase-split deployment: prefill instances + decode instances."""

    prefill: InstanceSpec
    n_prefill: int
    decode: InstanceSpec
    n_decode: int
    max_prefill_batch: int = 8
    max_decode_batch: int = 256

    def __post_init__(self) -> None:
        if self.n_prefill <= 0 or self.n_decode <= 0:
            raise SpecError("instance counts must be positive")
        if self.max_prefill_batch <= 0 or self.max_decode_batch <= 0:
            raise SpecError("batch bounds must be positive")
        if self.prefill.model is not self.decode.model:
            raise SpecError("prefill and decode pools must serve the same model")

    @property
    def total_gpus(self) -> int:
        """All GPUs across both pools."""
        return self.n_prefill * self.prefill.n_gpus + self.n_decode * self.decode.n_gpus

    @property
    def total_sms(self) -> int:
        """All SMs across both pools (for efficiency normalization)."""
        return (
            self.n_prefill * self.prefill.n_gpus * self.prefill.gpu.sms
            + self.n_decode * self.decode.n_gpus * self.decode.gpu.sms
        )

    def pool_shapes(self) -> Tuple[PoolShape, ...]:
        """The placement-layer description of this deployment's pools."""
        return (
            PoolShape("prefill", self.n_prefill, self.prefill.n_gpus),
            PoolShape("decode", self.n_decode, self.decode.n_gpus),
        )

    def describe(self) -> str:
        """One-line deployment summary."""
        return (
            f"prefill {self.n_prefill}x[{self.prefill.n_gpus}x {self.prefill.gpu.name}] + "
            f"decode {self.n_decode}x[{self.decode.n_gpus}x {self.decode.gpu.name}] "
            f"for {self.prefill.model.name}"
        )


@dataclass(frozen=True)
class ColocatedPool:
    """A colocated deployment: one pool interleaving prefill and decode.

    Every instance runs SARATHI-style mixed iterations — a continuous decode
    batch plus up to ``chunk_tokens`` of one queued prompt — so prefill work
    rides in decode's memory-bound shadow instead of occupying a dedicated
    pool.  ``max_decode_batch`` bounds concurrent sequences per instance
    (admitted prefills count against it).
    """

    instance: InstanceSpec
    n_instances: int
    max_decode_batch: int = 256
    chunk_tokens: int = 512

    def __post_init__(self) -> None:
        if self.n_instances <= 0:
            raise SpecError("instance count must be positive")
        if self.max_decode_batch <= 0:
            raise SpecError("max_decode_batch must be positive")
        if self.chunk_tokens <= 0:
            raise SpecError("chunk_tokens must be positive")

    @property
    def total_gpus(self) -> int:
        """All GPUs in the pool."""
        return self.n_instances * self.instance.n_gpus

    @property
    def total_sms(self) -> int:
        """All SMs in the pool (for efficiency normalization)."""
        return self.total_gpus * self.instance.gpu.sms

    def pool_shapes(self) -> Tuple[PoolShape, ...]:
        """The placement-layer description of this deployment's pool."""
        return (PoolShape("colocated", self.n_instances, self.instance.n_gpus),)

    def describe(self) -> str:
        """One-line deployment summary."""
        return (
            f"colocated {self.n_instances}x[{self.instance.n_gpus}x "
            f"{self.instance.gpu.name}] for {self.instance.model.name} "
            f"(chunk {self.chunk_tokens} tok)"
        )


class PhaseSplitScheduler:
    """Admission decisions for the two pools (used by the simulator).

    Prefill: FIFO batching up to ``max_prefill_batch``.  Decode: continuous
    batching bounded by sequence slots and the instance's KV-token capacity.
    """

    def __init__(self, pools: PhasePools) -> None:
        self.pools = pools
        self._decode_capacity = pools.decode.kv_token_capacity()
        if self._decode_capacity <= 0:
            raise SpecError("decode instances have no KV capacity headroom")

    @property
    def decode_kv_capacity(self) -> int:
        """Per-instance KV token budget."""
        return self._decode_capacity

    def form_prefill_batch(self, queue_len: int) -> int:
        """How many queued requests one free prefill instance should take."""
        if queue_len < 0:
            raise SpecError("queue_len must be non-negative")
        return min(queue_len, self.pools.max_prefill_batch)

    def decode_admission(
        self,
        queued_tokens: List[int],
        occupied_slots: int,
        occupied_tokens: int,
    ) -> int:
        """How many queued sequences (with final footprints
        ``queued_tokens``) a decode instance can admit now."""
        if occupied_slots < 0 or occupied_tokens < 0:
            raise SpecError("occupancy must be non-negative")
        slots = self.pools.max_decode_batch - occupied_slots
        budget = self._decode_capacity - occupied_tokens
        return len(FCFSAdmission().admit_footprints(queued_tokens, slots, budget))
