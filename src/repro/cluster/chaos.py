"""Chaos harness: scripted failure scenarios that measure blast radius.

The resilience layer (:mod:`repro.cluster.resilience`) gives the engine a
vocabulary for surviving failures; this module turns it into the paper's
experiment.  Three canned scenarios, each pitting configurations against
the same deterministic trace and the same scripted hardware faults:

- :func:`blast_radius_scenario` — one 8-GPU rack power domain dies in a
  big-GPU fleet and in a Lite-GPU fleet of equal aggregate capacity.  The
  rack takes out 4 of 6 big decode instances but only 2 of 12 Lite ones,
  so the big fleet's surviving capacity drops below offered load while the
  Lite fleet shrugs — the HotOS claim ("smaller blast radius") as a
  measured goodput dip.
- :func:`checkpoint_scenario` — the same rack fault under a
  long-generation workload, with and without checkpointed restarts.
  Restart-from-prefill victims redo their entire generation inside an
  overloaded recovery window and miss deadlines; checkpointed victims
  resume and meet them — higher goodput and lower MTTR.
- :func:`retry_storm_scenario` — a 15-second arrival burst against a
  saturated deployment, replayed under three client retry policies.
  Naive fixed backoff re-offers timed-out work in lockstep and keeps the
  queues deep long after the burst (metastable overload: tail latency and
  SLO violations never recover inside the horizon); capped exponential
  backoff with jitter sheds the storm and recovers.

Every scenario is deterministic (seeded traces, scripted faults, no
global RNG), so the numbers in ``BENCH_chaos.json`` and the assertions in
``benchmarks/test_chaos_resilience.py`` are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..hardware.gpu import H100, LITE
from ..network.topology import DirectConnectTopology, Topology
from ..workloads.models import LLAMA3_8B
from ..workloads.traces import (
    LengthDistribution,
    TraceConfig,
    generate_piecewise_trace,
    generate_trace,
)
from .failures import ComponentFailure
from .resilience import ExpJitterRetry, FixedRetry, ResilienceConfig
from .scheduler import InstanceSpec, PhasePools
from .simulator import ServingSimulator, SimConfig, SimReport

__all__ = [
    "big_fleet",
    "lite_fleet",
    "blast_radius_scenario",
    "checkpoint_scenario",
    "retry_storm_scenario",
]


def big_fleet(policy=None) -> "tuple[PhasePools, Topology, int]":
    """16 H100s: 2x TP2 prefill + 6x TP2 decode, one 16-GPU fabric.

    Returns ``(pools, topology, decode_rack)`` where ``decode_rack`` is the
    8-GPU rack power domain whose loss lands entirely on the decode pool
    (instances 2-5 of 6 — two thirds of decode capacity).
    """
    from ..core.roofline import RooflinePolicy

    spec = InstanceSpec(LLAMA3_8B, H100, 2, policy or RooflinePolicy())
    pools = PhasePools(prefill=spec, n_prefill=2, decode=spec, n_decode=6, max_decode_batch=64)
    return pools, DirectConnectTopology(n_gpus=16, group=8), 1


def lite_fleet(policy=None) -> "tuple[PhasePools, Topology, int]":
    """64 Lite-GPUs (each 1/4 of an H100): equal aggregate capacity.

    4x TP4 prefill + 12x TP4 decode.  The same 8-GPU rack domain now holds
    only 2 of 12 decode instances (rack 2, GPUs 16-23) — one sixth of
    decode capacity instead of two thirds.
    """
    from ..core.roofline import RooflinePolicy

    spec = InstanceSpec(LLAMA3_8B, LITE, 4, policy or RooflinePolicy())
    pools = PhasePools(prefill=spec, n_prefill=4, decode=spec, n_decode=12, max_decode_batch=64)
    return pools, DirectConnectTopology(n_gpus=64, group=4), 2


def _run(
    pools: PhasePools,
    topology: Topology,
    trace,
    resilience: ResilienceConfig,
    rack: Optional[int] = None,
    fail_at: float = 30.0,
    repair_s: float = 45.0,
    metrics: str = "exact",
) -> SimReport:
    faults = [ComponentFailure(fail_at, "rack", rack, repair_s)] if rack is not None else []
    sim = ServingSimulator(
        pools,
        config=SimConfig(resilience=resilience, metrics=metrics),
        topology=topology,
        component_failures=faults,
        # Round-robin keeps every decode instance loaded, so the rack's
        # victims are real in-flight work rather than idle spares.
        policies="round-robin",
    )
    return sim.run(trace)


def blast_radius_scenario(
    rate: float = 250.0,
    duration: float = 120.0,
    seed: int = 7,
    metrics: str = "exact",
) -> Dict[str, SimReport]:
    """Rack failure, big vs. Lite fleet at equal aggregate capacity.

    Both fleets serve the same decode-bound trace; at t=30s one 8-GPU rack
    dies for 45s.  Keys: ``big/base``, ``big/rack``, ``lite/base``,
    ``lite/rack`` — compare per-fleet dips with
    :func:`~repro.cluster.resilience.goodput_dip`.
    """
    trace = generate_trace(
        TraceConfig(
            rate=rate,
            duration=duration,
            prompt_tokens=512,
            output_tokens=400,
            max_output=1500,
        ),
        seed=seed,
    )
    resilience = ResilienceConfig(
        deadline_s=15.0,
        queue_timeout_s=6.0,
        retry="exp_jitter",
        slo_ttft_s=4.0,
    )
    out: Dict[str, SimReport] = {}
    for name, (pools, topology, rack) in (("big", big_fleet()), ("lite", lite_fleet())):
        out[f"{name}/base"] = _run(pools, topology, trace, resilience, metrics=metrics)
        out[f"{name}/rack"] = _run(pools, topology, trace, resilience, rack=rack, metrics=metrics)
    return out


def checkpoint_scenario(
    rate: float = 70.0,
    duration: float = 120.0,
    seed: int = 7,
    checkpoint_interval: int = 128,
    metrics: str = "exact",
) -> Dict[str, SimReport]:
    """Checkpointed restarts vs. restart-from-prefill under a rack fault.

    Long constant generations (1500 tokens) on the big fleet; the rack
    dies at t=45s for 30s, so victims carry substantial progress and the
    recovery window is overloaded.  Keys: ``plain``, ``ckpt``.
    """
    pools, topology, rack = big_fleet()
    trace = generate_trace(
        TraceConfig(
            rate=rate,
            duration=duration,
            prompt_tokens=512,
            output_dist=LengthDistribution.CONSTANT,
            output_tokens=1500,
        ),
        seed=seed,
    )

    def config(**kw) -> ResilienceConfig:
        return ResilienceConfig(
            deadline_s=12.0,
            queue_timeout_s=5.0,
            retry="exp_jitter",
            slo_ttft_s=5.0,
            **kw,
        )

    def run(cfg: ResilienceConfig) -> SimReport:
        return _run(
            pools, topology, trace, cfg, rack=rack, fail_at=45.0, repair_s=30.0, metrics=metrics
        )

    return {
        "plain": run(config()),
        # A fast checkpoint tier (1 TB/s aggregate) keeps the write tax
        # under 1% of decode throughput; the resume benefit dominates.
        "ckpt": run(config(checkpoint_interval=checkpoint_interval, checkpoint_bandwidth=1e12)),
    }


def retry_storm_scenario(
    seed: int = 11,
    metrics: str = "exact",
    only: Optional[Sequence[str]] = None,
) -> Dict[str, SimReport]:
    """Metastable overload: a burst plus naive clients vs. backoff+jitter.

    A small deployment (1 prefill + 2 decode TP2 H100s) runs near
    saturation at 35 req/s; a 15-second 400 req/s burst floods it.  Keys:
    ``none`` (shed and give up), ``fixed`` (1s lockstep backoff, 40
    attempts — the naive client), ``exp_jitter`` (capped, jittered).
    Goodput counts only completions inside a 10s end-to-end SLO, so work
    the storm delays past usefulness is wasted capacity.  ``only`` limits
    the run to a subset of those keys (the memory benchmark traces just
    the worst-case ``fixed`` client).
    """
    from ..core.roofline import RooflinePolicy

    spec = InstanceSpec(LLAMA3_8B, H100, 2, RooflinePolicy())
    pools = PhasePools(prefill=spec, n_prefill=1, decode=spec, n_decode=2, max_decode_batch=32)
    trace = generate_piecewise_trace(
        [(35.0, 20.0), (400.0, 15.0), (35.0, 300.0)],
        base=TraceConfig(prompt_tokens=512, output_tokens=300, max_output=1200),
        seed=seed,
    )
    out: Dict[str, SimReport] = {}
    for name, retry in (
        ("none", "none"),
        ("fixed", FixedRetry(delay=1.0, max_attempts=40)),
        ("exp_jitter", ExpJitterRetry(max_attempts=5)),
    ):
        if only is not None and name not in only:
            continue
        resilience = ResilienceConfig(queue_timeout_s=4.0, retry=retry, slo_e2e_s=10.0)
        sim = ServingSimulator(
            pools,
            config=SimConfig(resilience=resilience, metrics=metrics),
            policies="round-robin",
        )
        out[name] = sim.run(trace)
    return out
