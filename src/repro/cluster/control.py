"""Elastic cluster controllers: the serving engine's control plane.

The paper's Section 3 economics arguments — perf-per-TCO and perf-per-watt
under *real* serving load — hinge on dynamic behavior the simulators could
not express before this module: pools that grow with diurnal traffic, shed
capacity in lulls, and throttle under datacenter power caps.  A
:class:`ClusterController` closes that loop.  The engine steps it on a
configurable epoch inside the event loop; each step observes the cluster
(:class:`ControlObservation`) and returns a :class:`ControlAction`:

- ``scale`` — per-pool instance deltas.  Spawns are placement-aware
  (new instances take pre-placed topology groups) and pay a warm-up
  delay (``warmup_s``: weight loading / scheduling); drains are graceful
  (no new work, resident sequences finish, then the GPUs are released);
- ``frequency`` — a DVFS clock scalar that flows through
  :class:`~repro.cluster.engine.AbstractServiceTimeProvider` (service
  times stretch by ``1/f``) and into the energy accounting (power follows
  the :class:`~repro.hardware.power.DVFSCurve`).

Five controllers are registered by name:

- ``static``   — never steps; bit-identical to a controller-free run;
- ``reactive`` — queue-depth / KV-occupancy thresholds with hysteresis;
- ``slo``      — scales on rolling TTFT/TBT percentile violations;
- ``forecast`` — tracks a scheduled rate profile (provision *ahead* of
  the ramp by the warm-up lead), optionally seeded from a
  :class:`~repro.cluster.provisioning.ProvisioningPlan`;
- ``power_cap``— integrates :class:`~repro.cluster.power_manager.ClusterPowerManager`
  so cap events throttle via DVFS first and drain instances only when the
  clock floor still cannot fit the cap.

All controllers are deterministic: state lives in plain counters, and the
simulators deep-copy the controller per run so repeated runs never share
hysteresis state.
"""

from __future__ import annotations

import abc
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._registry import Registry
from ..errors import SpecError
from ..hardware.power import DVFSCurve
from .power_manager import ClusterPowerManager
from .provisioning import ProvisioningPlan

__all__ = [
    "PoolStats",
    "ControlObservation",
    "ControlAction",
    "NO_ACTION",
    "ClusterController",
    "StaticController",
    "ReactiveController",
    "SLOController",
    "ForecastController",
    "PowerCapController",
    "CONTROLLERS",
    "get_controller",
]


# --- observations and actions -------------------------------------------------


@dataclass(frozen=True)
class PoolStats:
    """One pool's state as the controller sees it at an epoch boundary.

    ``alive`` counts warmed-up, non-draining instances (the capacity that
    can accept work right now — a failed-but-provisioned instance still
    counts); ``warming`` counts spawned instances still loading weights;
    ``draining`` counts instances finishing their residents.  ``busy`` is
    the subset of provisioned instances currently holding work.
    ``occupancy`` is the mean KV-occupancy fraction over alive instances
    (0.0 for prefill pools, which hold no KV state between batches).
    """

    alive: int
    warming: int
    draining: int
    busy: int
    queue_depth: int
    occupancy: float
    gpus_per_instance: int

    @property
    def provisioned(self) -> int:
        """Instances currently holding GPUs (alive + warming + draining)."""
        return self.alive + self.warming + self.draining

    @property
    def incoming(self) -> int:
        """Capacity present or arriving (alive + warming)."""
        return self.alive + self.warming


@dataclass(frozen=True)
class ControlObservation:
    """Everything a controller may react to at one epoch boundary.

    ``window_ttfts`` / ``window_tbts`` are the first-token latencies and
    per-request mean inter-token latencies recorded *since the previous
    step* — an SLO controller folds them into its own rolling window.
    """

    time: float
    pools: Mapping[str, PoolStats]
    window_ttfts: Tuple[float, ...] = ()
    window_tbts: Tuple[float, ...] = ()
    frequency: float = 1.0

    def total_gpus(self) -> int:
        """GPUs currently provisioned across every pool."""
        return sum(s.provisioned * s.gpus_per_instance for s in self.pools.values())


@dataclass(frozen=True)
class ControlAction:
    """What a controller wants done: per-pool scale deltas + a DVFS scalar.

    Positive deltas spawn instances (warm-up applies), negative deltas
    drain them gracefully; ``frequency=None`` leaves the clock untouched.
    """

    scale: Mapping[str, int] = field(default_factory=dict)
    frequency: Optional[float] = None

    def is_noop(self) -> bool:
        """True when applying this action changes nothing."""
        return self.frequency is None and not any(self.scale.values())


NO_ACTION = ControlAction()


# --- the controller interface -------------------------------------------------


class ClusterController(abc.ABC):
    """Steps the cluster's capacity/clock on a fixed epoch.

    ``epoch`` is the stepping period in simulated seconds; ``epoch == 0``
    means the controller is never stepped (the engine schedules no
    controller events at all, keeping the event stream — and therefore
    every report — bit-identical to a controller-free run).

    ``min_instances`` / ``max_instances`` bound each pool's provisioned
    instance count; ``warmup_s`` is the spawn-to-serving delay (weight
    loading), the provisioning cost every scale-up pays.
    """

    name = "controller"
    epoch: float = 30.0
    warmup_s: float = 30.0
    min_instances: int = 1
    max_instances: int = 8

    def _validate_bounds(self) -> None:
        if self.epoch < 0 or self.warmup_s < 0:
            raise SpecError("epoch and warmup_s must be non-negative")
        if self.min_instances < 1 or self.max_instances < self.min_instances:
            raise SpecError("need 1 <= min_instances <= max_instances")

    @abc.abstractmethod
    def step(self, obs: ControlObservation) -> ControlAction:
        """Decide the next action from the observation."""

    def _clamped_delta(self, stats: PoolStats, desired: int) -> int:
        """Delta moving ``incoming`` capacity toward ``desired`` within bounds."""
        target = max(self.min_instances, min(self.max_instances, desired))
        return target - stats.incoming

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.name}: epoch {self.epoch:g}s, warmup {self.warmup_s:g}s, "
            f"{self.min_instances}..{self.max_instances} instances/pool"
        )


class StaticController(ClusterController):
    """Fixed capacity: the seed behaviour, as a (never-stepped) controller.

    ``epoch`` is 0, so the engine schedules no controller events and every
    report is bit-identical to passing ``controller=None``.
    """

    name = "static"

    def __init__(self) -> None:
        self.epoch = 0.0

    def step(self, obs: ControlObservation) -> ControlAction:  # pragma: no cover
        return NO_ACTION


class ReactiveController(ClusterController):
    """Threshold autoscaler with hysteresis.

    Scale **up** a pool when its queue backlog per incoming instance
    reaches ``queue_high`` requests or its KV occupancy reaches
    ``occupancy_high``.  Scale **down** only after ``calm_epochs``
    consecutive quiet epochs (empty queue, occupancy below
    ``occupancy_low``, at most ``busy_low`` of the alive instances
    holding work) — the hysteresis that stops thrashing on bursty
    arrivals.  Each scale-down resets the calm counter, so capacity
    bleeds off one ``step_size`` per quiet window rather than
    collapsing at once.
    """

    name = "reactive"

    def __init__(
        self,
        pools: Optional[Sequence[str]] = None,
        queue_high: float = 4.0,
        occupancy_high: float = 0.85,
        occupancy_low: float = 0.30,
        busy_low: float = 0.5,
        calm_epochs: int = 3,
        step_size: int = 1,
        epoch: float = 10.0,
        warmup_s: float = 30.0,
        min_instances: int = 1,
        max_instances: int = 8,
    ) -> None:
        if queue_high <= 0 or step_size < 1 or calm_epochs < 1:
            raise SpecError("queue_high, step_size, and calm_epochs must be positive")
        if not 0.0 <= occupancy_low <= occupancy_high <= 1.0:
            raise SpecError("need 0 <= occupancy_low <= occupancy_high <= 1")
        self.pools = tuple(pools) if pools is not None else None
        self.queue_high = queue_high
        self.occupancy_high = occupancy_high
        self.occupancy_low = occupancy_low
        self.busy_low = busy_low
        self.calm_epochs = calm_epochs
        self.step_size = step_size
        self.epoch = epoch
        self.warmup_s = warmup_s
        self.min_instances = min_instances
        self.max_instances = max_instances
        self._validate_bounds()
        self._calm: Dict[str, int] = {}

    def step(self, obs: ControlObservation) -> ControlAction:
        scale: Dict[str, int] = {}
        for name, stats in obs.pools.items():
            if self.pools is not None and name not in self.pools:
                continue
            incoming = stats.incoming
            pressure = stats.queue_depth / max(1, incoming)
            if pressure >= self.queue_high or stats.occupancy >= self.occupancy_high:
                self._calm[name] = 0
                if incoming < self.max_instances:
                    scale[name] = min(self.step_size, self.max_instances - incoming)
            elif (
                stats.queue_depth == 0
                and stats.occupancy <= self.occupancy_low
                and stats.busy <= self.busy_low * max(1, stats.alive)
            ):
                calm = self._calm.get(name, 0) + 1
                self._calm[name] = calm
                if calm >= self.calm_epochs and incoming > self.min_instances:
                    scale[name] = -min(self.step_size, incoming - self.min_instances)
                    self._calm[name] = 0
            else:
                self._calm[name] = 0
        return ControlAction(scale=scale) if scale else NO_ACTION


class SLOController(ClusterController):
    """Scales on rolling latency-percentile violations.

    Keeps a rolling window of the last ``window`` TTFT and TBT samples.
    A TTFT percentile above ``ttft_target`` adds capacity to the pool
    that produces first tokens (``prefill`` when phase-split, else the
    colocated pool); a TBT violation scales the decode pool.  When both
    percentiles sit below ``relax_margin`` of their targets for
    ``calm_epochs`` consecutive epochs, one instance is drained from the
    largest scalable pool.
    """

    name = "slo"

    def __init__(
        self,
        ttft_target: float = 1.0,
        tbt_target: float = 0.05,
        percentile: float = 99.0,
        relax_margin: float = 0.5,
        calm_epochs: int = 4,
        window: int = 256,
        min_samples: int = 8,
        epoch: float = 15.0,
        warmup_s: float = 30.0,
        min_instances: int = 1,
        max_instances: int = 8,
    ) -> None:
        if ttft_target <= 0 or tbt_target <= 0:
            raise SpecError("SLO targets must be positive")
        if not 0.0 < percentile <= 100.0:
            raise SpecError("percentile must be in (0, 100]")
        if not 0.0 < relax_margin < 1.0:
            raise SpecError("relax_margin must be in (0, 1)")
        self.ttft_target = ttft_target
        self.tbt_target = tbt_target
        self.percentile = percentile
        self.relax_margin = relax_margin
        self.calm_epochs = calm_epochs
        self.min_samples = min_samples
        self.epoch = epoch
        self.warmup_s = warmup_s
        self.min_instances = min_instances
        self.max_instances = max_instances
        self._validate_bounds()
        self._ttfts: Deque[float] = deque(maxlen=window)
        self._tbts: Deque[float] = deque(maxlen=window)
        self._calm = 0

    def _first_token_pool(self, pools: Mapping[str, PoolStats]) -> str:
        return "prefill" if "prefill" in pools else next(iter(pools))

    def _decode_pool(self, pools: Mapping[str, PoolStats]) -> str:
        return "decode" if "decode" in pools else next(iter(pools))

    def step(self, obs: ControlObservation) -> ControlAction:
        self._ttfts.extend(obs.window_ttfts)
        self._tbts.extend(obs.window_tbts)
        scale: Dict[str, int] = {}
        ttft_p = (
            float(np.percentile(list(self._ttfts), self.percentile))
            if len(self._ttfts) >= self.min_samples
            else 0.0
        )
        tbt_p = (
            float(np.percentile(list(self._tbts), self.percentile))
            if len(self._tbts) >= self.min_samples
            else 0.0
        )
        violated = False
        if ttft_p > self.ttft_target:
            violated = True
            pool = self._first_token_pool(obs.pools)
            if obs.pools[pool].incoming < self.max_instances:
                scale[pool] = 1
        if tbt_p > self.tbt_target:
            violated = True
            pool = self._decode_pool(obs.pools)
            if obs.pools[pool].incoming < self.max_instances:
                scale[pool] = scale.get(pool, 0) + 1
        if violated:
            self._calm = 0
            return ControlAction(scale=scale) if scale else NO_ACTION
        comfortable = (
            ttft_p <= self.relax_margin * self.ttft_target
            and tbt_p <= self.relax_margin * self.tbt_target
            and len(self._ttfts) >= self.min_samples
        )
        if not comfortable:
            self._calm = 0
            return NO_ACTION
        self._calm += 1
        if self._calm < self.calm_epochs:
            return NO_ACTION
        self._calm = 0
        # Drain one instance from the largest shrinkable pool (stable on
        # ties: first declared wins).
        floor = self.min_instances
        candidates = [(n, s) for n, s in obs.pools.items() if s.incoming > floor]
        if not candidates:
            return NO_ACTION
        name, _ = max(candidates, key=lambda item: item[1].incoming)
        return ControlAction(scale={name: -1})


class ForecastController(ClusterController):
    """Drives capacity from a scheduled rate profile.

    ``profile`` is a stepwise schedule of ``(start_time_s, multiplier)``
    pairs: the expected arrival rate relative to the baseline the pools
    were provisioned for.  Each epoch the controller looks ``lead_s``
    ahead (default: the warm-up delay, so capacity lands *as* the ramp
    arrives, not after it) and scales every pool toward
    ``ceil(baseline * multiplier * headroom_factor)``.  Baselines default
    to each pool's provisioned count at the first step;
    :meth:`from_plan` seeds them from a
    :class:`~repro.cluster.provisioning.ProvisioningPlan` instead.
    """

    name = "forecast"

    def __init__(
        self,
        profile: Sequence[Tuple[float, float]] = ((0.0, 1.0),),
        base_counts: Optional[Mapping[str, int]] = None,
        lead_s: Optional[float] = None,
        headroom_factor: float = 1.0,
        epoch: float = 15.0,
        warmup_s: float = 30.0,
        min_instances: int = 1,
        max_instances: int = 8,
    ) -> None:
        if not profile:
            raise SpecError("profile must be non-empty")
        self.profile = tuple(sorted((float(t), float(m)) for t, m in profile))
        if any(m < 0 for _, m in self.profile):
            raise SpecError("profile multipliers must be non-negative")
        if headroom_factor <= 0:
            raise SpecError("headroom_factor must be positive")
        self.base_counts: Optional[Dict[str, int]] = (
            dict(base_counts) if base_counts is not None else None
        )
        self.lead_s = lead_s
        self.headroom_factor = headroom_factor
        self.epoch = epoch
        self.warmup_s = warmup_s
        self.min_instances = min_instances
        self.max_instances = max_instances
        self._validate_bounds()

    @classmethod
    def from_plan(
        cls, plan: ProvisioningPlan, profile: Sequence[Tuple[float, float]], **kwargs
    ) -> "ForecastController":
        """Baseline counts from a provisioning plan's pool sizes."""
        base = {"prefill": plan.pools.n_prefill, "decode": plan.pools.n_decode}
        return cls(profile=profile, base_counts=base, **kwargs)

    def multiplier_at(self, time: float) -> float:
        """The stepwise profile value at ``time`` (first entry before t=0)."""
        current = self.profile[0][1]
        for start, mult in self.profile:
            if start <= time:
                current = mult
            else:
                break
        return current

    def step(self, obs: ControlObservation) -> ControlAction:
        if self.base_counts is None:
            self.base_counts = {name: max(1, s.provisioned) for name, s in obs.pools.items()}
        lead = self.lead_s if self.lead_s is not None else self.warmup_s
        mult = self.multiplier_at(obs.time + lead)
        scale: Dict[str, int] = {}
        for name, stats in obs.pools.items():
            base = self.base_counts.get(name)
            if base is None:
                continue
            desired = math.ceil(base * mult * self.headroom_factor)
            delta = self._clamped_delta(stats, desired)
            if delta:
                scale[name] = delta
        return ControlAction(scale=scale) if scale else NO_ACTION


class PowerCapController(ClusterController):
    """Runs the cluster under datacenter power-cap events.

    ``caps`` is a schedule of ``(start_s, end_s, cap_watts)`` windows.
    Inside a window the controller first throttles via DVFS: it picks the
    highest clock whose fleet power fits the cap
    (:meth:`~repro.hardware.power.DVFSCurve.clock_for_power`) — the
    "down-clock a portion of the SMs" move that Section 3 argues Lite
    clusters make at per-device granularity.  If even the DVFS floor
    exceeds the cap and ``allow_drain`` is set, it additionally drains
    instances (largest pool first) until the floored fleet fits.  When
    the window ends, the clock returns to 1.0 and drained pools are
    restored to their pre-cap baselines.
    """

    name = "power_cap"

    def __init__(
        self,
        manager: Optional[ClusterPowerManager] = None,
        caps: Sequence[Tuple[float, float, float]] = (),
        allow_drain: bool = True,
        epoch: float = 10.0,
        warmup_s: float = 30.0,
        min_instances: int = 1,
        max_instances: int = 64,
    ) -> None:
        for start, end, watts in caps:
            if end <= start or watts <= 0:
                raise SpecError("caps need end > start and positive watts")
        self.manager = manager
        self.caps = tuple((float(s), float(e), float(w)) for s, e, w in caps)
        self.allow_drain = allow_drain
        self.epoch = epoch
        self.warmup_s = warmup_s
        self.min_instances = min_instances
        self.max_instances = max_instances
        self._validate_bounds()
        self._baseline: Optional[Dict[str, int]] = None

    def cap_at(self, time: float) -> Optional[float]:
        """The binding cap at ``time`` (tightest of overlapping windows)."""
        active = [w for s, e, w in self.caps if s <= time < e]
        return min(active) if active else None

    def _curve(self) -> DVFSCurve:
        return self.manager.curve if self.manager is not None else DVFSCurve()

    def _tdp(self, obs: ControlObservation) -> float:
        if self.manager is not None:
            return self.manager.gpu.tdp
        raise SpecError("PowerCapController needs a ClusterPowerManager to price power")

    def step(self, obs: ControlObservation) -> ControlAction:
        if self._baseline is None:
            self._baseline = {name: s.provisioned for name, s in obs.pools.items()}
        cap = self.cap_at(obs.time)
        if cap is None:
            # Cap lifted: full clock, restore drained pools to baseline.
            scale: Dict[str, int] = {}
            for name, stats in obs.pools.items():
                target = min(self.max_instances, self._baseline.get(name, stats.provisioned))
                if stats.incoming < target:
                    scale[name] = target - stats.incoming
            return ControlAction(scale=scale, frequency=1.0)
        curve = self._curve()
        tdp = self._tdp(obs)
        total_gpus = obs.total_gpus()
        if total_gpus == 0:
            return ControlAction(frequency=1.0)
        clock = curve.clock_for_power(cap / (total_gpus * tdp))
        if clock > 0.0:
            return ControlAction(frequency=clock)
        # Even the DVFS floor blows the cap: drain capacity until the
        # floored fleet fits (largest pools shed first, deterministically).
        frequency = curve.min_clock_ratio
        if not self.allow_drain:
            return ControlAction(frequency=frequency)
        floor_power = tdp * curve.power_ratio(frequency)
        budget_gpus = int(cap // floor_power)
        scale: Dict[str, int] = {}
        excess = total_gpus - budget_gpus
        pools = sorted(obs.pools.items(), key=lambda item: (-item[1].provisioned, item[0]))
        for name, stats in pools:
            if excess <= 0:
                break
            sheddable = max(0, stats.incoming - self.min_instances)
            shed = min(sheddable, -(-excess // max(1, stats.gpus_per_instance)))
            if shed > 0:
                scale[name] = -shed
                excess -= shed * stats.gpus_per_instance
        return ControlAction(scale=scale, frequency=frequency)


# --- registry -----------------------------------------------------------------


CONTROLLERS: Registry = Registry("cluster controller")
CONTROLLERS.register("static", StaticController)
CONTROLLERS.register("reactive", ReactiveController)
CONTROLLERS.register("slo", SLOController)
CONTROLLERS.register("forecast", ForecastController)
CONTROLLERS.register("power_cap", PowerCapController)


def get_controller(
    spec: "ClusterController | str | None",
) -> Optional[ClusterController]:
    """Resolve a controller: pass instances through, look names up.

    ``None`` stays ``None`` (no control plane at all — the engine
    schedules no controller events, exactly like the ``static`` name).

    >>> get_controller(None) is None
    True
    >>> get_controller("static").epoch
    0.0
    """
    if spec is None:
        return None
    if isinstance(spec, ClusterController):
        return spec
    if isinstance(spec, str):
        return CONTROLLERS.get(spec)()
    raise SpecError(f"cannot resolve cluster controller from {spec!r}")
