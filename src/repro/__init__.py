"""litegpu — a reproduction of "Good things come in small packages: Should we
build AI clusters with Lite-GPUs?" (HotOS '25).

The library models AI clusters built from *Lite-GPUs* — GPUs with a single
small compute die and a fraction of a flagship GPU's capability, joined by
co-packaged-optics networking — and reproduces every quantitative result of
the paper: the Table 1 GPU catalogue, the Figure 3 roofline study of LLM
inference (prefill and decode), and the Section 2-3 hardware-economics and
systems claims (yield, cost, shoreline, cooling, power management, blast
radius, circuit-switched fabrics).

Quick start::

    from repro import search_best_config, LLAMA3_70B, H100, LITE

    best = search_best_config(LLAMA3_70B, LITE, "decode")
    print(best.describe())

Packages:

- :mod:`repro.core` — the roofline performance model and configuration search.
- :mod:`repro.workloads` — transformer geometry, model catalogue, traces.
- :mod:`repro.hardware` — dies, yield, wafers, cost, GPUs, power, cooling.
- :mod:`repro.network` — links, switches, collectives, topologies, fabrics.
- :mod:`repro.cluster` — allocation, scheduling, failures, the serving simulator.
- :mod:`repro.analysis` — figure/table builders used by the benchmarks.
"""

from .core import (
    CommModel,
    DecodeWorkload,
    KVPlacement,
    PrefillWorkload,
    RooflinePolicy,
    SearchConstraints,
    SearchResult,
    decode_iteration,
    normalize_to_baseline,
    prefill_pass,
    search_best_config,
)
from .core.inference import Phase
from .hardware import (
    GPU_TYPES,
    GPUSpec,
    H100,
    LITE,
    LITE_MEMBW,
    LITE_MEMBW_NETBW,
    LITE_NETBW,
    LITE_NETBW_FLOPS,
    TABLE1_ORDER,
    get_gpu,
)
from .workloads import (
    GPT3_175B,
    LLAMA3_8B,
    LLAMA3_70B,
    LLAMA3_405B,
    MODELS,
    PAPER_MODELS,
    ModelSpec,
    get_model,
)

__version__ = "1.2.0"

__all__ = [
    "CommModel",
    "DecodeWorkload",
    "KVPlacement",
    "Phase",
    "PrefillWorkload",
    "RooflinePolicy",
    "SearchConstraints",
    "SearchResult",
    "decode_iteration",
    "normalize_to_baseline",
    "prefill_pass",
    "search_best_config",
    "GPU_TYPES",
    "GPUSpec",
    "H100",
    "LITE",
    "LITE_MEMBW",
    "LITE_MEMBW_NETBW",
    "LITE_NETBW",
    "LITE_NETBW_FLOPS",
    "TABLE1_ORDER",
    "get_gpu",
    "GPT3_175B",
    "LLAMA3_8B",
    "LLAMA3_70B",
    "LLAMA3_405B",
    "MODELS",
    "PAPER_MODELS",
    "ModelSpec",
    "get_model",
    "__version__",
]
