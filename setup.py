"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that editable installs
work on environments whose setuptools predates PEP 660 native editable
support (offline images without the `wheel` package).
"""

from setuptools import setup

setup()
