"""Traffic-matrix and congestion tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.network.topology import (
    DirectConnectTopology,
    FlatCircuitTopology,
    SwitchedTopology,
)
from repro.network.traffic import (
    TrafficPattern,
    completion_time,
    congestion_slowdown,
    pattern_topology_study,
    port_lower_bound,
    traffic_matrix,
)


class TestMatrices:
    @pytest.mark.parametrize("pattern", list(TrafficPattern))
    def test_total_conserved(self, pattern):
        m = traffic_matrix(pattern, 16, 1e9, group=4, seed=1)
        assert m.sum() == pytest.approx(1e9)
        assert np.all(np.diag(m) == 0.0)

    def test_ring_structure(self):
        m = traffic_matrix(TrafficPattern.RING, 8, 8.0)
        for i in range(8):
            assert m[i, (i + 1) % 8] == pytest.approx(1.0)

    def test_permutation_is_one_to_one(self):
        m = traffic_matrix(TrafficPattern.PERMUTATION, 16, 16.0, seed=3)
        assert np.all((m > 0).sum(axis=1) == 1)
        assert np.all((m > 0).sum(axis=0) == 1)

    def test_group_local_stays_in_group(self):
        m = traffic_matrix(TrafficPattern.GROUP_LOCAL, 8, 1.0, group=4)
        assert m[:4, 4:].sum() == 0.0
        assert m[4:, :4].sum() == 0.0

    def test_hotspot_targets_zero(self):
        m = traffic_matrix(TrafficPattern.HOTSPOT, 8, 7.0)
        assert m[:, 0].sum() == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(SpecError):
            traffic_matrix(TrafficPattern.RING, 1, 1.0)
        with pytest.raises(SpecError):
            traffic_matrix(TrafficPattern.RING, 8, 0.0)
        with pytest.raises(SpecError):
            traffic_matrix(TrafficPattern.RING, 10, 1.0, group=4)


class TestBounds:
    def test_port_lower_bound(self):
        m = traffic_matrix(TrafficPattern.HOTSPOT, 8, 7e9)
        # GPU 0 must receive 7 GB through one port.
        assert port_lower_bound(m, 1e9) == pytest.approx(7.0)

    def test_completion_at_least_lower_bound(self):
        for pattern in TrafficPattern:
            m = traffic_matrix(pattern, 16, 16e9, group=4, seed=2)
            for topo in (
                DirectConnectTopology(n_gpus=16, group=4),
                SwitchedTopology(n_gpus=16),
                FlatCircuitTopology(n_gpus=16),
            ):
                assert congestion_slowdown(topo, m) >= 1.0 - 1e-9

    def test_matrix_shape_checked(self):
        topo = FlatCircuitTopology(n_gpus=8)
        with pytest.raises(SpecError):
            completion_time(topo, np.zeros((4, 4)))


class TestPaperStory:
    """Predictable traffic fits cheap topologies; random traffic does not."""

    def test_group_local_ideal_on_direct_connect(self):
        topo = DirectConnectTopology(n_gpus=32, group=4)
        m = traffic_matrix(TrafficPattern.GROUP_LOCAL, 32, 32e9, group=4)
        # Dedicated mesh links: within ~3x of the port bound (each pair has
        # a full link; port bound assumes all ports usable at once).
        assert congestion_slowdown(topo, m) < 3.0

    def test_random_permutation_congests_direct_connect(self):
        topo = DirectConnectTopology(n_gpus=32, group=4)
        m = traffic_matrix(TrafficPattern.PERMUTATION, 32, 32e9, group=4, seed=5)
        switched = SwitchedTopology(n_gpus=32)
        assert congestion_slowdown(topo, m) > 3.0
        assert congestion_slowdown(switched, m) < 2.0

    def test_circuit_handles_permutations_cleanly(self):
        topo = FlatCircuitTopology(n_gpus=32)
        m = traffic_matrix(TrafficPattern.PERMUTATION, 32, 32e9, seed=5)
        # One matching, one reconfiguration.
        assert congestion_slowdown(topo, m) < 1.1

    def test_all_to_all_costs_circuit_reconfigs(self):
        topo = FlatCircuitTopology(n_gpus=32)
        uniform = traffic_matrix(TrafficPattern.ALL_TO_ALL, 32, 3.2e6)  # tiny flows
        perm = traffic_matrix(TrafficPattern.PERMUTATION, 32, 3.2e6, seed=1)
        # With tiny flows, the 31 matchings' reconfigurations dominate.
        assert completion_time(topo, uniform) > 10 * completion_time(topo, perm)

    def test_study_structure(self):
        study = pattern_topology_study(n=16, total_bytes=16e9)
        assert set(study) == {p.value for p in TrafficPattern}
        for slowdowns in study.values():
            assert set(slowdowns) == {"direct", "switched", "circuit"}
            assert all(s >= 1.0 - 1e-9 for s in slowdowns.values())


class TestProperties:
    @given(
        pattern=st.sampled_from(list(TrafficPattern)),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_slowdowns_finite_and_ordered(self, pattern, seed):
        m = traffic_matrix(pattern, 16, 16e9, group=4, seed=seed)
        direct = DirectConnectTopology(n_gpus=16, group=4)
        assert np.isfinite(congestion_slowdown(direct, m))
