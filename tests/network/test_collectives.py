"""Collective cost-model tests — alpha-beta invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.network.collectives import (
    Collective,
    all_gather_cost,
    all_reduce_cost,
    all_to_all_cost,
    broadcast_cost,
    cost_for,
    reduce_scatter_cost,
    total_traffic,
)

BW = 450e9
ALPHA = 1e-6


class TestAllReduce:
    def test_single_rank_is_free(self):
        assert all_reduce_cost(1e9, 1, BW).time == 0.0

    def test_ring_formula(self):
        cost = all_reduce_cost(1e6, 8, BW, ALPHA, algorithm="ring")
        expected = 2 * 7 * ALPHA + 2 * (7 / 8) * 1e6 / BW
        assert cost.time == pytest.approx(expected)

    def test_tree_formula(self):
        cost = all_reduce_cost(1e6, 8, BW, ALPHA, algorithm="tree")
        expected = 2 * 3 * (ALPHA + 1e6 / BW)
        assert cost.time == pytest.approx(expected)

    def test_auto_picks_tree_for_tiny_messages(self):
        cost = all_reduce_cost(64, 64, BW, ALPHA, algorithm="auto")
        assert cost.algorithm == "tree"

    def test_auto_picks_ring_for_huge_messages(self):
        cost = all_reduce_cost(1e9, 8, BW, ALPHA, algorithm="auto")
        assert cost.algorithm == "ring"

    def test_unknown_algorithm(self):
        with pytest.raises(SpecError):
            all_reduce_cost(1e6, 8, BW, ALPHA, algorithm="magic")

    def test_lite_penalty_factor(self):
        """The key Figure-3 physics: 4x the ranks at 1/4 the bandwidth
        makes the ring bandwidth term ~4.4x longer."""
        h100 = all_reduce_cost(16.8e6, 8, 450e9, 0.0, "ring").time
        lite = all_reduce_cost(16.8e6, 32, 112.5e9, 0.0, "ring").time
        assert lite / h100 == pytest.approx((31 / 32) / (7 / 8) * 4, rel=1e-6)


class TestOtherCollectives:
    def test_all_gather_half_of_all_reduce(self):
        ar = all_reduce_cost(1e6, 8, BW, 0.0, "ring").time
        ag = all_gather_cost(1e6, 8, BW, 0.0).time
        assert ag == pytest.approx(ar / 2)

    def test_reduce_scatter_equals_all_gather(self):
        assert reduce_scatter_cost(1e6, 8, BW, ALPHA).time == pytest.approx(
            all_gather_cost(1e6, 8, BW, ALPHA).time
        )

    def test_all_to_all(self):
        cost = all_to_all_cost(1e6, 8, BW, ALPHA)
        assert cost.time == pytest.approx(7 * ALPHA + (7 / 8) * 1e6 / BW)

    def test_broadcast_log_depth(self):
        cost = broadcast_cost(1e6, 8, BW, ALPHA)
        assert cost.time == pytest.approx(3 * (ALPHA + 1e6 / BW))

    def test_dispatch(self):
        for op in Collective:
            cost = cost_for(op, 1e6, 8, BW, ALPHA)
            assert cost.time > 0


class TestTraffic:
    def test_ring_wire_bytes(self):
        cost = all_reduce_cost(1e6, 8, BW, ALPHA, "ring")
        assert cost.wire_bytes_per_gpu == pytest.approx(2 * (7 / 8) * 1e6)

    def test_total_traffic(self):
        cost = all_gather_cost(1e6, 8, BW, ALPHA)
        assert total_traffic(cost, 8) == pytest.approx(8 * (7 / 8) * 1e6)

    def test_zero_size_zero_traffic(self):
        assert all_reduce_cost(0, 8, BW, ALPHA).wire_bytes_per_gpu == 0.0


class TestValidation:
    def test_rejects_negative_size(self):
        with pytest.raises(SpecError):
            all_reduce_cost(-1, 8, BW)

    def test_rejects_zero_world(self):
        with pytest.raises(SpecError):
            all_gather_cost(1e6, 0, BW)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(SpecError):
            all_to_all_cost(1e6, 8, 0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(SpecError):
            broadcast_cost(1e6, 8, BW, -1e-6)


class TestProperties:
    @given(
        size=st.floats(0, 1e9),
        world=st.integers(1, 128),
        bw=st.floats(1e9, 1e12),
    )
    @settings(max_examples=80, deadline=None)
    def test_times_nonnegative(self, size, world, bw):
        for op in Collective:
            assert cost_for(op, size, world, bw).time >= 0.0

    @given(world=st.integers(2, 128), factor=st.floats(1.1, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_size(self, world, factor):
        base = all_reduce_cost(1e6, world, BW, ALPHA).time
        bigger = all_reduce_cost(1e6 * factor, world, BW, ALPHA).time
        assert bigger > base

    @given(size=st.floats(1e3, 1e9), world=st.integers(2, 64))
    @settings(max_examples=50, deadline=None)
    def test_auto_never_worse_than_either(self, size, world):
        auto = all_reduce_cost(size, world, BW, ALPHA, "auto").time
        ring = all_reduce_cost(size, world, BW, ALPHA, "ring").time
        tree = all_reduce_cost(size, world, BW, ALPHA, "tree").time
        assert auto <= min(ring, tree) + 1e-12

    @given(size=st.floats(1e3, 1e8), world=st.integers(2, 64), bw=st.floats(1e10, 1e12))
    @settings(max_examples=50, deadline=None)
    def test_bandwidth_helps(self, size, world, bw):
        slow = all_reduce_cost(size, world, bw, ALPHA).time
        fast = all_reduce_cost(size, world, bw * 2, ALPHA).time
        assert fast <= slow
