"""Topology tests: inventories, hop counts, bisection bandwidth."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.network.topology import (
    DirectConnectTopology,
    FlatCircuitTopology,
    SwitchedTopology,
)


class TestDirectConnect:
    def test_link_inventory(self):
        topo = DirectConnectTopology(n_gpus=8, group=4)
        # 2 groups x C(4,2)=6 mesh links + 2 uplinks
        assert topo.n_links == 14
        assert topo.n_switches == 0

    def test_hop_counts(self):
        topo = DirectConnectTopology(n_gpus=8, group=4)
        assert topo.hop_count(0, 0) == 0
        assert topo.hop_count(0, 3) == 1  # same group: mesh
        assert topo.hop_count(0, 4) == 2  # uplink holder to uplink holder
        assert topo.hop_count(1, 5) == 4  # mesh, up, over, mesh

    def test_group_is_shared_fate_weakness(self):
        """Bisection crosses only uplinks — the blast-radius caveat."""
        topo = DirectConnectTopology(n_gpus=32, group=4)
        flat = FlatCircuitTopology(n_gpus=32)
        assert topo.bisection_bandwidth < flat.bisection_bandwidth

    def test_requires_divisible_groups(self):
        with pytest.raises(SpecError):
            DirectConnectTopology(n_gpus=10, group=4)

    def test_graph_matches_inventory(self):
        topo = DirectConnectTopology(n_gpus=8, group=4)
        g = topo.graph()
        gpu_nodes = [n for n in g.nodes if n[0] == "gpu"]
        assert len(gpu_nodes) == 8
        assert g.number_of_edges() == topo.n_links


class TestSwitched:
    def test_flat_when_fits_one_switch(self):
        topo = SwitchedTopology(n_gpus=32)
        assert topo.is_flat
        assert topo.n_switches == 1
        assert topo.hop_count(0, 31) == 2

    def test_two_tier_when_large(self):
        topo = SwitchedTopology(n_gpus=256)
        assert not topo.is_flat
        assert topo.n_leaves == 8
        assert topo.n_spines >= 1
        assert topo.hop_count(0, 255) == 4
        assert topo.hop_count(0, 1) == 2  # same leaf

    def test_oversubscription_cuts_bisection(self):
        full = SwitchedTopology(n_gpus=256, oversubscription=1.0)
        thin = SwitchedTopology(n_gpus=256, oversubscription=2.0)
        assert thin.bisection_bandwidth == pytest.approx(full.bisection_bandwidth / 2)

    def test_rejects_undersubscription(self):
        with pytest.raises(SpecError):
            SwitchedTopology(n_gpus=8, oversubscription=0.5)

    def test_graph_two_tier_connected(self):
        import networkx as nx

        topo = SwitchedTopology(n_gpus=128)
        assert nx.is_connected(topo.graph())


class TestFlatCircuit:
    def test_constant_two_hops_at_any_scale(self):
        """'larger and flatter networks': diameter stays 2."""
        for n in (8, 300, 1024):
            topo = FlatCircuitTopology(n_gpus=n)
            assert topo.hop_count(0, n - 1) == 2

    def test_full_bisection(self):
        topo = FlatCircuitTopology(n_gpus=64)
        assert topo.bisection_bandwidth == pytest.approx(32 * topo.per_gpu_bandwidth)

    def test_planes_multiply_bandwidth_and_switches(self):
        one = FlatCircuitTopology(n_gpus=64, planes=1)
        two = FlatCircuitTopology(n_gpus=64, planes=2)
        assert two.per_gpu_bandwidth == 2 * one.per_gpu_bandwidth
        assert two.n_switches == 2 * one.n_switches

    def test_switch_count_port_limited(self):
        topo = FlatCircuitTopology(n_gpus=1000)
        assert topo.switches_per_plane == 4  # 300-port OCS

    def test_reconfiguration_penalty(self):
        topo = FlatCircuitTopology(n_gpus=64)
        assert topo.reconfiguration_penalty(0.0) == 0.0
        assert 0 < topo.reconfiguration_penalty(1000.0) < 1.0
        with pytest.raises(SpecError):
            topo.reconfiguration_penalty(-1.0)


class TestCommon:
    def test_out_of_range_indices(self):
        topo = FlatCircuitTopology(n_gpus=8)
        with pytest.raises(SpecError):
            topo.hop_count(0, 8)

    def test_latency_includes_switch(self):
        topo = FlatCircuitTopology(n_gpus=8)
        bare = topo.latency(0, 1)
        with_switch = topo.latency(0, 1, switch_latency=1e-6)
        assert with_switch > bare

    def test_avg_hops_bounded_by_diameter(self):
        for topo in (
            DirectConnectTopology(n_gpus=16, group=4),
            SwitchedTopology(n_gpus=16),
            FlatCircuitTopology(n_gpus=16),
        ):
            assert 0 < topo.avg_hops <= 4


class TestProperties:
    @given(n=st.sampled_from([8, 16, 32, 64]), group=st.sampled_from([2, 4]))
    @settings(max_examples=20, deadline=None)
    def test_hop_symmetry(self, n, group):
        topo = DirectConnectTopology(n_gpus=n, group=group)
        for a, b in ((0, n - 1), (1, 2), (0, group), (1, group + 1)):
            assert topo.hop_count(a, b) == topo.hop_count(b, a)
