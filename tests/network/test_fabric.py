"""Fabric rollup tests — the Section 2/4 networking-cost arguments."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.network.fabric import Fabric, compare_fabrics
from repro.network.topology import (
    DirectConnectTopology,
    FlatCircuitTopology,
    SwitchedTopology,
)


class TestFabric:
    def test_ports_two_per_link(self):
        fabric = Fabric(FlatCircuitTopology(n_gpus=16))
        assert fabric.n_ports == 2 * fabric.topology.n_links

    def test_capex_includes_switches(self):
        switched = Fabric(SwitchedTopology(n_gpus=16))
        direct = Fabric(DirectConnectTopology(n_gpus=16, group=4))
        assert switched.capex() > 0
        assert direct.capex() > 0
        # direct-connect has no switch line item
        report = direct.report()
        assert report.n_switches == 0

    def test_power_scales_with_utilization(self):
        low = Fabric(FlatCircuitTopology(n_gpus=16), utilization=0.1).power()
        high = Fabric(FlatCircuitTopology(n_gpus=16), utilization=0.9).power()
        assert high > low

    def test_utilization_bounds(self):
        with pytest.raises(SpecError):
            Fabric(FlatCircuitTopology(n_gpus=4), utilization=1.5)

    def test_report_fields(self):
        report = Fabric(FlatCircuitTopology(n_gpus=32)).report("test")
        assert report.name == "test"
        assert report.capex_per_gpu == pytest.approx(report.capex_usd / 32)
        assert report.power_per_gpu == pytest.approx(report.power_w / 32)
        assert "GPUs" in report.describe()


class TestComparison:
    def test_three_way_comparison(self):
        reports = compare_fabrics(n_gpus=32)
        assert [r.name for r in reports] == ["direct-connect", "packet-switched", "flat-circuit"]

    def test_direct_connect_cheapest_but_weakest_bisection(self):
        direct, packet, circuit = compare_fabrics(n_gpus=64)
        assert direct.bisection_bandwidth < circuit.bisection_bandwidth

    def test_circuit_beats_packet_on_power_at_scale(self):
        """Section 3: circuit switching for cheaper/cooler flat networks."""
        _, packet, circuit = compare_fabrics(n_gpus=256)
        assert circuit.power_per_gpu < packet.power_per_gpu

    def test_circuit_flat_hops(self):
        _, packet, circuit = compare_fabrics(n_gpus=256)
        assert circuit.avg_hops <= packet.avg_hops

    def test_group_divisibility_enforced(self):
        with pytest.raises(SpecError):
            compare_fabrics(n_gpus=30, group=4)

    def test_network_cost_fraction_of_gpu_cost(self):
        """Section 2: 'networking costs are only a small fraction compared
        to the GPU costs' — network capex per Lite-GPU should be well below
        a plausible Lite-GPU price."""
        _, _, circuit = compare_fabrics(n_gpus=128)
        lite_gpu_price = 8000.0  # quarter of an H100-class street price
        assert circuit.capex_per_gpu < 0.25 * lite_gpu_price
