"""Prefetch latency-masking tests — Section 3's workload argument."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.network.latency_hiding import (
    PrefetchPipeline,
    kv_stream_efficiency,
    required_depth,
)
from repro.network.links import CPO_OPTICS
from repro.units import MS, US


class TestPipeline:
    def test_fully_hidden(self):
        p = PrefetchPipeline(compute_time=10 * US, transfer_time=1 * US,
                             fetch_latency=5 * US, depth=2)
        assert p.efficiency == 1.0
        assert p.bound == "compute"

    def test_latency_bound_at_depth_one(self):
        p = PrefetchPipeline(compute_time=1 * US, transfer_time=1 * US,
                             fetch_latency=50 * US, depth=1)
        assert p.efficiency < 0.05
        assert p.bound == "latency"

    def test_depth_restores_efficiency(self):
        shallow = PrefetchPipeline(1 * US, 1 * US, 10 * US, depth=1)
        deep = PrefetchPipeline(1 * US, 1 * US, 10 * US, depth=16)
        assert deep.efficiency > shallow.efficiency
        assert deep.efficiency == 1.0

    def test_bandwidth_bound_cannot_be_hidden(self):
        p = PrefetchPipeline(compute_time=1 * US, transfer_time=5 * US,
                             fetch_latency=0.0, depth=32)
        assert p.bound == "bandwidth"
        assert p.efficiency == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(SpecError):
            PrefetchPipeline(0.0, 1.0, 1.0)
        with pytest.raises(SpecError):
            PrefetchPipeline(1.0, -1.0, 1.0)
        with pytest.raises(SpecError):
            PrefetchPipeline(1.0, 1.0, 1.0, depth=0)


class TestRequiredDepth:
    def test_doctest_case(self):
        assert required_depth(10e-6, 2e-6, 30e-6) == 4

    def test_no_latency_needs_depth_one(self):
        assert required_depth(10e-6, 2e-6, 0.0) == 1

    def test_depth_achieves_full_efficiency(self):
        for latency in (1 * US, 10 * US, 100 * US):
            d = required_depth(5 * US, 1 * US, latency)
            p = PrefetchPipeline(5 * US, 1 * US, latency, depth=d)
            assert p.efficiency == pytest.approx(1.0)


class TestPaperClaim:
    def test_cpo_latency_masked_for_decode_streaming(self):
        """Microsecond CPO latency vanishes against millisecond decode
        iterations with a tiny prefetch depth — the paper's claim."""
        efficiency = kv_stream_efficiency(
            kv_bytes_per_iteration=1e9,  # 1 GB of KV per iteration
            iteration_compute_time=20 * MS,
            link_bandwidth=CPO_OPTICS.bandwidth,
            link_latency=CPO_OPTICS.latency,
            chunks=16,
            depth=2,
        )
        assert efficiency > 0.95

    def test_bandwidth_starved_pool_shows_through(self):
        """Prefetching cannot hide *bandwidth* shortfalls — only latency."""
        efficiency = kv_stream_efficiency(
            kv_bytes_per_iteration=10e9,
            iteration_compute_time=5 * MS,
            link_bandwidth=100e9,  # 100 GB/s pool link; needs 2 GB/ms
            link_latency=CPO_OPTICS.latency,
        )
        assert efficiency < 0.1


class TestProperties:
    @given(
        compute=st.floats(1e-7, 1e-2),
        transfer=st.floats(0.0, 1e-2),
        latency=st.floats(0.0, 1e-2),
        depth=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_efficiency_bounded_and_monotone_in_depth(self, compute, transfer, latency, depth):
        p1 = PrefetchPipeline(compute, transfer, latency, depth)
        p2 = PrefetchPipeline(compute, transfer, latency, depth + 1)
        assert 0.0 < p1.efficiency <= 1.0
        assert p2.efficiency >= p1.efficiency - 1e-12
