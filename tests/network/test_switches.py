"""Switch-model tests — Section 3's circuit-switching claims."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.network.switches import (
    CIRCUIT_SWITCH_OCS,
    PACKET_SWITCH_TOR,
    SwitchKind,
    SwitchSpec,
    circuit_vs_packet_energy_gain,
    path_energy_comparison,
)


class TestPaperClaims:
    def test_energy_claim_over_50_percent(self):
        """(i) 'more than 50% better energy efficiency'."""
        assert circuit_vs_packet_energy_gain() > 0.5

    def test_path_level_energy_claim(self):
        """End-to-end (transceivers + switch) the saving is also > 50%...
        of the switching energy — and > 40% of total path energy."""
        comparison = path_energy_comparison()
        assert comparison["saving"] > 0.4
        assert comparison["circuit_pj_per_bit"] < comparison["packet_pj_per_bit"]

    def test_latency_claim(self):
        """(ii) 'lower latency' — light passes through an OCS."""
        assert CIRCUIT_SWITCH_OCS.latency < PACKET_SWITCH_TOR.latency

    def test_port_claim(self):
        """(iii) 'more ports at high bandwidth' -> larger, flatter networks."""
        assert CIRCUIT_SWITCH_OCS.ports > PACKET_SWITCH_TOR.ports
        assert CIRCUIT_SWITCH_OCS.port_bandwidth > PACKET_SWITCH_TOR.port_bandwidth

    def test_reconfiguration_is_the_price(self):
        """Circuit switching pays reconfiguration time; packet does not."""
        assert CIRCUIT_SWITCH_OCS.reconfig_time > 0
        assert PACKET_SWITCH_TOR.reconfig_time == 0


class TestPowerModel:
    def test_packet_power_rises_with_utilization(self):
        low = PACKET_SWITCH_TOR.power_at_utilization(0.1)
        high = PACKET_SWITCH_TOR.power_at_utilization(0.9)
        assert high > low

    def test_circuit_power_flat_in_utilization(self):
        """OCS energy is actuation, not per-bit."""
        low = CIRCUIT_SWITCH_OCS.power_at_utilization(0.1)
        high = CIRCUIT_SWITCH_OCS.power_at_utilization(0.9)
        assert low == high == CIRCUIT_SWITCH_OCS.static_w

    def test_energy_per_byte_falls_with_utilization_for_circuit(self):
        """Static power amortizes over more traffic."""
        assert CIRCUIT_SWITCH_OCS.energy_per_byte(0.9) < CIRCUIT_SWITCH_OCS.energy_per_byte(0.1)

    def test_utilization_bounds(self):
        with pytest.raises(SpecError):
            PACKET_SWITCH_TOR.power_at_utilization(1.5)
        with pytest.raises(SpecError):
            PACKET_SWITCH_TOR.energy_per_byte(0.0)


class TestEconomics:
    def test_ocs_cheaper_per_bandwidth(self):
        assert CIRCUIT_SWITCH_OCS.cost_per_gbps() < PACKET_SWITCH_TOR.cost_per_gbps()

    def test_aggregate_bandwidth(self):
        assert PACKET_SWITCH_TOR.aggregate_bandwidth == 64 * 100e9


class TestValidation:
    def test_rejects_nonpositive_ports(self):
        with pytest.raises(SpecError):
            SwitchSpec("bad", SwitchKind.PACKET, 0, 1e9, 0, 0, 0, 0, 0)

    def test_rejects_negative_latency(self):
        with pytest.raises(SpecError):
            SwitchSpec("bad", SwitchKind.PACKET, 4, 1e9, -1, 0, 0, 0, 0)

    def test_path_energy_validates_link(self):
        with pytest.raises(SpecError):
            path_energy_comparison(link_pj_per_bit=-1.0)
