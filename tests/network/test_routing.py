"""Routing utilities: graph paths vs. analytic hop counts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpecError
from repro.network.routing import (
    diameter,
    graph_hop_count,
    hop_count_matrix,
    path_between,
    verify_hop_counts,
)
from repro.network.topology import (
    DirectConnectTopology,
    FlatCircuitTopology,
    SwitchedTopology,
)

TOPOLOGIES = [
    DirectConnectTopology(n_gpus=16, group=4),
    SwitchedTopology(n_gpus=16),
    SwitchedTopology(n_gpus=256),
    FlatCircuitTopology(n_gpus=16),
]


class TestPaths:
    def test_path_endpoints(self):
        topo = FlatCircuitTopology(n_gpus=8)
        path = path_between(topo, 0, 5)
        assert path[0] == ("gpu", 0)
        assert path[-1] == ("gpu", 5)

    def test_path_out_of_range(self):
        with pytest.raises(SpecError):
            path_between(FlatCircuitTopology(n_gpus=8), 0, 99)

    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: type(t).__name__ + str(t.n_gpus))
    def test_analytic_upper_bounds_graph(self, topo):
        assert verify_hop_counts(topo, samples=12, seed=1)

    def test_flat_circuit_exact_match(self):
        topo = FlatCircuitTopology(n_gpus=12)
        for a, b in ((0, 1), (0, 11), (3, 7)):
            assert topo.hop_count(a, b) == graph_hop_count(topo, a, b)


class TestMatrix:
    def test_matrix_shape_and_symmetry(self):
        topo = SwitchedTopology(n_gpus=16)
        mat = hop_count_matrix(topo)
        assert mat.shape == (16, 16)
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)

    def test_matrix_truncation(self):
        topo = FlatCircuitTopology(n_gpus=128)
        mat = hop_count_matrix(topo, max_gpus=8)
        assert mat.shape == (8, 8)


class TestDiameter:
    def test_single_gpu(self):
        assert diameter(FlatCircuitTopology(n_gpus=1)) == 0

    def test_flat_circuit_diameter_two(self):
        assert diameter(FlatCircuitTopology(n_gpus=300)) == 2

    def test_leaf_spine_diameter_four(self):
        assert diameter(SwitchedTopology(n_gpus=256)) == 4

    def test_direct_connect_diameter_three(self):
        assert diameter(DirectConnectTopology(n_gpus=16, group=4)) == 3
