"""Routing utilities: graph paths vs. analytic hop counts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.network.routing import (
    MATRIX_HARD_CAP,
    diameter,
    graph_hop_count,
    hop_count_matrix,
    hop_matrix_cache_info,
    path_between,
    verify_hop_counts,
)
from repro.network.topology import (
    DirectConnectTopology,
    FlatCircuitTopology,
    SwitchedTopology,
)

TOPOLOGIES = [
    DirectConnectTopology(n_gpus=16, group=4),
    SwitchedTopology(n_gpus=16),
    SwitchedTopology(n_gpus=256),
    FlatCircuitTopology(n_gpus=16),
]


class TestPaths:
    def test_path_endpoints(self):
        topo = FlatCircuitTopology(n_gpus=8)
        path = path_between(topo, 0, 5)
        assert path[0] == ("gpu", 0)
        assert path[-1] == ("gpu", 5)

    def test_path_out_of_range(self):
        with pytest.raises(SpecError):
            path_between(FlatCircuitTopology(n_gpus=8), 0, 99)

    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: type(t).__name__ + str(t.n_gpus))
    def test_analytic_upper_bounds_graph(self, topo):
        assert verify_hop_counts(topo, samples=12, seed=1)

    def test_flat_circuit_exact_match(self):
        topo = FlatCircuitTopology(n_gpus=12)
        for a, b in ((0, 1), (0, 11), (3, 7)):
            assert topo.hop_count(a, b) == graph_hop_count(topo, a, b)


class TestMatrix:
    def test_matrix_shape_and_symmetry(self):
        topo = SwitchedTopology(n_gpus=16)
        mat = hop_count_matrix(topo)
        assert mat.shape == (16, 16)
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)

    def test_matrix_truncation(self):
        topo = FlatCircuitTopology(n_gpus=128)
        mat = hop_count_matrix(topo, max_gpus=8)
        assert mat.shape == (8, 8)

    def test_default_covers_all_gpus(self):
        """The old silent 64-GPU clip is gone: defaults span the cluster."""
        topo = FlatCircuitTopology(n_gpus=128)
        assert hop_count_matrix(topo).shape == (128, 128)

    def test_oversize_without_explicit_bound_raises(self):
        topo = FlatCircuitTopology(n_gpus=MATRIX_HARD_CAP + 1)
        with pytest.raises(SpecError):
            hop_count_matrix(topo)
        assert hop_count_matrix(topo, max_gpus=4).shape == (4, 4)

    def test_bad_max_gpus(self):
        with pytest.raises(SpecError):
            hop_count_matrix(FlatCircuitTopology(n_gpus=8), max_gpus=0)

    def test_matrix_is_memoized_and_read_only(self):
        topo = SwitchedTopology(n_gpus=48)
        before = hop_matrix_cache_info().hits
        first = hop_count_matrix(topo)
        again = hop_count_matrix(topo)
        assert again is first  # same cached object
        assert hop_matrix_cache_info().hits > before
        with pytest.raises(ValueError):
            again[0, 1] = 99


class TestPathHopProperty:
    """Satellite property: path_between length == analytic hop_count."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_direct_connect(self, data):
        groups = data.draw(st.integers(2, 6))
        group = data.draw(st.integers(2, 4))
        topo = DirectConnectTopology(n_gpus=groups * group, group=group)
        a = data.draw(st.integers(0, topo.n_gpus - 1))
        b = data.draw(st.integers(0, topo.n_gpus - 1))
        assert len(path_between(topo, a, b)) - 1 == topo.hop_count(a, b)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_switched(self, data):
        n = data.draw(st.integers(2, 160))  # spans flat and leaf-spine modes
        topo = SwitchedTopology(n_gpus=n)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        assert len(path_between(topo, a, b)) - 1 == topo.hop_count(a, b)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_flat_circuit(self, data):
        n = data.draw(st.integers(2, 128))  # one OCS per plane at this scale
        planes = data.draw(st.integers(1, 2))
        topo = FlatCircuitTopology(n_gpus=n, planes=planes)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        assert len(path_between(topo, a, b)) - 1 == topo.hop_count(a, b)


class TestDiameter:
    def test_single_gpu(self):
        assert diameter(FlatCircuitTopology(n_gpus=1)) == 0

    def test_flat_circuit_diameter_two(self):
        assert diameter(FlatCircuitTopology(n_gpus=300)) == 2

    def test_leaf_spine_diameter_four(self):
        assert diameter(SwitchedTopology(n_gpus=256)) == 4

    def test_direct_connect_diameter_three(self):
        assert diameter(DirectConnectTopology(n_gpus=16, group=4)) == 3
