"""Link-technology tests — the co-packaged-optics enabling claims."""

from __future__ import annotations

import pytest

from repro.errors import RegistryError, SpecError
from repro.network.links import (
    COPPER_NVLINK,
    CPO_OPTICS,
    LINK_TYPES,
    PLUGGABLE_OPTICS,
    LinkSpec,
    cpo_vs_pluggable_energy_gain,
    get_link,
)
from repro.units import GB, PJ


class TestCatalogue:
    def test_lookup(self):
        assert get_link("cpo-optics") is CPO_OPTICS
        assert get_link("Copper NVLink") is COPPER_NVLINK

    def test_unknown_link(self):
        with pytest.raises(RegistryError):
            get_link("carrier-pigeon")

    def test_registry_complete(self):
        assert len(LINK_TYPES) == 3


class TestPaperEnvelope:
    def test_cpo_reaches_tens_of_meters(self):
        """Section 1: 'much better reach (10s of meters)' than copper."""
        assert CPO_OPTICS.reach_m >= 10.0
        assert COPPER_NVLINK.reach_m < 10.0

    def test_cpo_matches_copper_bandwidth(self):
        """CPO brings optical reach at NVLink-class bandwidth."""
        assert CPO_OPTICS.bandwidth >= COPPER_NVLINK.bandwidth

    def test_cpo_beats_pluggables_on_energy(self):
        """Co-packaging cuts the electrical path -> better pJ/bit."""
        assert CPO_OPTICS.pj_per_bit < PLUGGABLE_OPTICS.pj_per_bit
        assert cpo_vs_pluggable_energy_gain() > 2.0

    def test_cpo_cheaper_than_pluggables(self):
        assert CPO_OPTICS.cost_per_port_usd < PLUGGABLE_OPTICS.cost_per_port_usd


class TestTransferMath:
    def test_transfer_time_latency_plus_serialization(self):
        time = COPPER_NVLINK.transfer_time(450 * GB)
        assert time == pytest.approx(1.0 + COPPER_NVLINK.latency, rel=1e-6)

    def test_zero_bytes_costs_latency_only(self):
        assert CPO_OPTICS.transfer_time(0) == CPO_OPTICS.latency

    def test_energy_linear_in_bytes(self):
        assert CPO_OPTICS.energy(2e9) == pytest.approx(2 * CPO_OPTICS.energy(1e9))

    def test_energy_formula(self):
        one_byte = CPO_OPTICS.energy(1)
        assert one_byte == pytest.approx(8 * CPO_OPTICS.pj_per_bit * PJ)

    def test_watts_at_line_rate(self):
        watts = CPO_OPTICS.watts_at_line_rate()
        assert watts == pytest.approx(CPO_OPTICS.bandwidth * 8 * CPO_OPTICS.pj_per_bit * PJ)

    def test_negative_bytes_rejected(self):
        with pytest.raises(SpecError):
            CPO_OPTICS.transfer_time(-1)
        with pytest.raises(SpecError):
            CPO_OPTICS.energy(-1)


class TestValidation:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(SpecError):
            LinkSpec("bad", 0, 1e-9, 1.0, 1.0, 1.0)

    def test_rejects_negative_energy(self):
        with pytest.raises(SpecError):
            LinkSpec("bad", 1e9, 1e-9, 1.0, -1.0, 1.0)
