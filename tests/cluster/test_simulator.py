"""Discrete-event serving-simulator tests."""

from __future__ import annotations

import pytest

from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE, LITE_MEMBW, LITE_NETBW_FLOPS
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B
from repro.workloads.traces import Request, TraceConfig, generate_trace


def pools(n_prefill=1, n_decode=1, **kw) -> PhasePools:
    base = dict(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=n_prefill,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=n_decode,
        max_prefill_batch=4,
        max_decode_batch=64,
    )
    base.update(kw)
    return PhasePools(**base)


def trace(rate=5.0, duration=10.0, seed=0, output_tokens=50):
    return generate_trace(
        TraceConfig(rate=rate, duration=duration, output_tokens=output_tokens, output_spread=0.3),
        seed=seed,
    )


class TestBasics:
    def test_all_requests_complete_under_light_load(self):
        t = trace(rate=2.0, duration=10.0)
        report = ServingSimulator(pools(), SimConfig(max_sim_time=600.0)).run(t)
        assert report.completed == len(t)
        assert report.dropped == 0

    def test_deterministic(self):
        t = trace(seed=3)
        a = ServingSimulator(pools(), SimConfig(max_sim_time=300.0)).run(t)
        b = ServingSimulator(pools(), SimConfig(max_sim_time=300.0)).run(t)
        assert a == b

    def test_latency_ordering(self):
        t = trace(rate=2.0)
        report = ServingSimulator(pools(), SimConfig(max_sim_time=600.0)).run(t)
        assert 0 < report.ttft_p50 <= report.ttft_p99
        assert 0 < report.e2e_p50 <= report.e2e_p99
        assert report.ttft_p50 < report.e2e_p50

    def test_throughput_positive(self):
        report = ServingSimulator(pools(), SimConfig(max_sim_time=600.0)).run(trace())
        assert report.output_tokens_per_s > 0
        assert 0 <= report.decode_utilization <= 1

    def test_describe(self):
        report = ServingSimulator(pools(), SimConfig(max_sim_time=100.0)).run(trace(rate=1.0, duration=3.0))
        assert "completed" in report.describe()

    def test_empty_trace(self):
        report = ServingSimulator(pools(), SimConfig(max_sim_time=10.0)).run([])
        assert report.completed == 0


class TestCapacityEffects:
    def test_overload_queues_grow_ttft(self):
        light = ServingSimulator(pools(), SimConfig(max_sim_time=900.0)).run(
            trace(rate=1.0, duration=20.0)
        )
        heavy = ServingSimulator(pools(), SimConfig(max_sim_time=900.0)).run(
            trace(rate=30.0, duration=20.0)
        )
        assert heavy.ttft_p99 > light.ttft_p99

    def test_more_decode_instances_raise_throughput_under_load(self):
        """With abundant prefill capacity and a decode-saturating load, the
        decode pool size sets output throughput."""
        t = trace(rate=60.0, duration=15.0, output_tokens=400)
        one = ServingSimulator(pools(n_prefill=4, n_decode=1), SimConfig(max_sim_time=60.0)).run(t)
        four = ServingSimulator(pools(n_prefill=4, n_decode=4), SimConfig(max_sim_time=60.0)).run(t)
        assert four.output_tokens_per_s > one.output_tokens_per_s

    def test_horizon_cuts_completions(self):
        t = trace(rate=5.0, duration=30.0)
        short = ServingSimulator(pools(), SimConfig(max_sim_time=5.0)).run(t)
        assert short.dropped > 0


class TestPhaseSplitting:
    def test_specialized_pools_run(self):
        """Splitwise deployment: +FLOPS prefill pool, +MemBW decode pool."""
        split = PhasePools(
            prefill=InstanceSpec(LLAMA3_8B, LITE_NETBW_FLOPS, 1),
            n_prefill=2,
            decode=InstanceSpec(LLAMA3_8B, LITE_MEMBW, 1),
            n_decode=2,
            max_prefill_batch=4,
            max_decode_batch=64,
        )
        report = ServingSimulator(split, SimConfig(max_sim_time=600.0)).run(trace(rate=3.0))
        assert report.completed > 0
        assert report.tbt_mean < 0.05


class TestFailures:
    def test_decode_failure_requeues_requests(self):
        t = trace(rate=5.0, duration=10.0, output_tokens=200)
        sim = ServingSimulator(
            pools(n_decode=2),
            SimConfig(max_sim_time=900.0),
            failures=[(3.0, "decode", 0, 30.0)],
        )
        report = sim.run(t)
        assert report.requeued_on_failure > 0
        # Work still completes after recovery.
        assert report.completed == len(t)

    def test_failure_hurts_tail_latency(self):
        t = trace(rate=5.0, duration=10.0, output_tokens=100, seed=9)
        clean = ServingSimulator(pools(), SimConfig(max_sim_time=900.0)).run(t)
        faulty = ServingSimulator(
            pools(), SimConfig(max_sim_time=900.0), failures=[(2.0, "decode", 0, 60.0)]
        ).run(t)
        assert faulty.e2e_p99 > clean.e2e_p99

    def test_prefill_failure_delays_ttft(self):
        t = trace(rate=5.0, duration=10.0, seed=4)
        clean = ServingSimulator(pools(), SimConfig(max_sim_time=900.0)).run(t)
        faulty = ServingSimulator(
            pools(), SimConfig(max_sim_time=900.0), failures=[(1.0, "prefill", 0, 120.0)]
        ).run(t)
        assert faulty.ttft_p99 > clean.ttft_p99

    def test_failure_validation(self):
        with pytest.raises(SpecError):
            ServingSimulator(pools(), failures=[(1.0, "decode", 9, 10.0)])
        with pytest.raises(SpecError):
            ServingSimulator(pools(), failures=[(1.0, "gpu", 0, 10.0)])
        with pytest.raises(SpecError):
            ServingSimulator(pools(), failures=[(1.0, "decode", 0, -5.0)])


class TestStochasticFailures:
    def fm(self, mtbf=40.0, mttr=15.0):
        from repro.cluster.failures import FailureModel

        return FailureModel(mtbf=mtbf, mttr=mttr)

    def test_deterministic_given_seeds(self):
        """Same trace + trace seed + failure seed => identical SimReport."""
        t = trace(rate=5.0, duration=10.0, seed=3, output_tokens=150)
        kw = dict(failure_model=self.fm(), failure_seed=11)
        a = ServingSimulator(pools(n_decode=2), SimConfig(max_sim_time=600.0), **kw).run(t)
        b = ServingSimulator(pools(n_decode=2), SimConfig(max_sim_time=600.0), **kw).run(t)
        assert a == b

    def test_different_seed_different_schedule(self):
        t = trace(rate=5.0, duration=10.0, seed=3, output_tokens=150)
        a = ServingSimulator(
            pools(n_decode=2), SimConfig(max_sim_time=600.0),
            failure_model=self.fm(), failure_seed=1,
        ).run(t)
        b = ServingSimulator(
            pools(n_decode=2), SimConfig(max_sim_time=600.0),
            failure_model=self.fm(), failure_seed=2,
        ).run(t)
        assert a != b

    def test_stochastic_failures_cause_requeues(self):
        t = trace(rate=5.0, duration=10.0, seed=3, output_tokens=300)
        report = ServingSimulator(
            pools(n_decode=2), SimConfig(max_sim_time=900.0),
            failure_model=self.fm(mtbf=20.0, mttr=5.0), failure_seed=1,
        ).run(t)
        assert report.requeued_on_failure > 0
        assert report.restarted_requests > 0

    def test_idle_failures_do_not_dilute_duration(self):
        """Repair bookkeeping after the workload drains must not extend the
        reported duration (it would deflate tok/s and utilization)."""
        t = trace(rate=2.0, duration=5.0, seed=1, output_tokens=100)
        clean = ServingSimulator(pools(), SimConfig(max_sim_time=600.0)).run(t)
        faulty = ServingSimulator(
            pools(), SimConfig(max_sim_time=600.0),
            failure_model=self.fm(mtbf=200.0, mttr=60.0), failure_seed=3,
        ).run(t)
        assert faulty.completed == clean.completed == len(t)
        if faulty.requeued_on_failure == 0:
            # No failure touched live work: the reports must agree exactly.
            assert faulty.duration == clean.duration
            assert faulty.output_tokens_per_s == clean.output_tokens_per_s

    def test_composes_with_scripted_failures(self):
        t = trace(rate=2.0, duration=5.0, seed=1)
        report = ServingSimulator(
            pools(n_decode=2), SimConfig(max_sim_time=600.0),
            failures=[(1.0, "decode", 0, 10.0)],
            failure_model=self.fm(mtbf=1e9),  # stochastic part ~never fires
        ).run(t)
        assert report.completed == len(t)

    def test_failure_after_arrival_stream_ends_does_not_strand_victims(self):
        """A decode failure once arrivals have stopped must still re-serve
        the victims: the requeue itself wakes the idle prefill pool."""
        t = trace(rate=5.0, duration=3.0, seed=2, output_tokens=400)
        last_arrival = max(r.arrival for r in t)
        report = ServingSimulator(
            pools(), SimConfig(max_sim_time=900.0),
            failures=[(last_arrival + 0.5, "decode", 0, 20.0)],
        ).run(t)
        assert report.requeued_on_failure > 0
        assert report.completed == len(t)
        assert report.dropped == 0

    def test_overlapping_failure_does_not_shorten_outage(self):
        """A short failure landing mid-outage must not resurrect the
        instance before the longer repair completes."""
        t = trace(rate=5.0, duration=10.0, seed=4)
        long_only = ServingSimulator(
            pools(), SimConfig(max_sim_time=900.0),
            failures=[(1.0, "prefill", 0, 120.0)],
        ).run(t)
        overlapped = ServingSimulator(
            pools(), SimConfig(max_sim_time=900.0),
            failures=[(1.0, "prefill", 0, 120.0), (2.0, "prefill", 0, 1.0)],
        ).run(t)
        # The nested 1 s failure is subsumed by the 120 s outage: TTFT tails
        # must be as bad as the long outage alone, not reset at t=3.
        assert overlapped.ttft_p99 >= long_only.ttft_p99


class TestConservation:
    def test_failure_requeue_conserves_requests(self):
        """No request is lost or double-completed across failure requeues."""
        from repro.cluster.engine import PhaseSplitEngine, ServiceTimeProvider
        from repro.cluster.policies import get_policy_bundle

        t = trace(rate=5.0, duration=10.0, seed=7, output_tokens=200)
        p = pools(n_decode=2)
        config = SimConfig(max_sim_time=900.0)
        engine = PhaseSplitEngine(
            p, config, get_policy_bundle("fcfs"),
            ServiceTimeProvider(p.prefill), ServiceTimeProvider(p.decode),
            failures=[(2.0, "decode", 0, 20.0), (4.0, "decode", 1, 20.0)],
        )
        engine.run(t)
        assert engine.requeued > 0
        completed_ids = [c.request.request_id for c in engine.completed]
        assert len(completed_ids) == len(set(completed_ids)), "double completion"
        assert sorted(completed_ids) == sorted(r.request_id for r in t), "lost requests"

    def test_ttft_keeps_first_token_time(self):
        """A requeued request's TTFT is its first-ever token, not the restart's."""
        from repro.cluster.engine import PhaseSplitEngine, ServiceTimeProvider
        from repro.cluster.policies import get_policy_bundle

        t = trace(rate=5.0, duration=10.0, seed=7, output_tokens=200)
        p = pools(n_decode=2)
        fail_time = 3.0
        engine = PhaseSplitEngine(
            p, SimConfig(max_sim_time=900.0), get_policy_bundle("fcfs"),
            ServiceTimeProvider(p.prefill), ServiceTimeProvider(p.decode),
            failures=[(fail_time, "decode", 0, 30.0)],
        )
        engine.run(t)
        restarted = [c for c in engine.completed if c.restarts > 0]
        assert restarted, "scenario must requeue at least one request"
        for c in restarted:
            # The victim was decoding when the failure hit, so its first
            # token predates the failure; the restart must not overwrite it.
            assert c.request.arrival + c.ttft <= fail_time
            assert c.ttft < c.e2e

    def test_completed_plus_dropped_is_trace(self):
        t = trace(rate=10.0, duration=10.0, seed=2, output_tokens=300)
        report = ServingSimulator(pools(), SimConfig(max_sim_time=20.0)).run(t)
        assert report.completed + report.dropped == len(t)


class TestEmptyReport:
    def test_zero_completions_report_nan_not_zero(self):
        """Percentiles of an empty run must read NaN, not perfect 0.0 ms."""
        import math

        t = [Request(request_id=0, arrival=5.0, prompt_tokens=100, output_tokens=10)]
        report = ServingSimulator(pools(), SimConfig(max_sim_time=1.0)).run(t)
        assert report.completed == 0 and report.dropped == 1
        for value in (report.ttft_p50, report.ttft_p99, report.tbt_mean,
                      report.tbt_p99, report.e2e_p50, report.e2e_p99):
            assert math.isnan(value)
        assert report.output_tokens_per_s == 0.0
        assert "completed 0" in report.describe()


class TestPolicyBundles:
    def test_all_bundles_run_and_complete(self):
        from repro.cluster.policies import POLICY_BUNDLES

        t = trace(rate=3.0, duration=8.0, seed=5)
        for name in POLICY_BUNDLES.names():
            report = ServingSimulator(
                pools(n_prefill=2, n_decode=2), SimConfig(max_sim_time=600.0), policies=name
            ).run(t)
            assert report.completed == len(t), name

    def test_fcfs_matches_default(self):
        t = trace(rate=4.0, duration=10.0, seed=6)
        default = ServingSimulator(pools(), SimConfig(max_sim_time=600.0)).run(t)
        fcfs = ServingSimulator(pools(), SimConfig(max_sim_time=600.0), policies="fcfs").run(t)
        assert default == fcfs

    def test_sjf_prefill_reorders_under_contention(self):
        """SJF must favour short prompts when prompt lengths vary."""
        from repro.workloads.traces import LengthDistribution

        t = generate_trace(
            TraceConfig(
                rate=40.0, duration=5.0, output_tokens=50, output_spread=0.3,
                prompt_dist=LengthDistribution.LOGNORMAL, prompt_spread=0.8,
            ),
            seed=9,
        )
        fcfs = ServingSimulator(pools(), SimConfig(max_sim_time=600.0), policies="fcfs").run(t)
        sjf = ServingSimulator(pools(), SimConfig(max_sim_time=600.0), policies="sjf").run(t)
        assert fcfs.completed == sjf.completed == len(t)
        # Short prompts stop convoying behind long ones: median TTFT drops.
        assert sjf.ttft_p50 < fcfs.ttft_p50


class TestCachedServiceTimes:
    def test_exact_cache_is_bit_identical(self):
        t = trace(rate=4.0, duration=10.0, seed=8)
        cached = ServingSimulator(pools(), SimConfig(max_sim_time=600.0)).run(t)
        uncached = ServingSimulator(
            pools(), SimConfig(max_sim_time=600.0, cache_service_times=False)
        ).run(t)
        assert cached == uncached

    def test_coarse_bucket_stays_close(self):
        t = trace(rate=4.0, duration=10.0, seed=8)
        exact = ServingSimulator(pools(), SimConfig(max_sim_time=600.0)).run(t)
        coarse = ServingSimulator(
            pools(), SimConfig(max_sim_time=600.0, context_bucket=64)
        ).run(t)
        assert coarse.completed == exact.completed
        assert coarse.tbt_mean == pytest.approx(exact.tbt_mean, rel=0.05)


class TestColocated:
    def pool(self, n_instances=2, **kw):
        from repro.cluster.scheduler import ColocatedPool

        base = dict(
            instance=InstanceSpec(LLAMA3_8B, H100, 1),
            n_instances=n_instances,
            max_decode_batch=64,
            chunk_tokens=512,
        )
        base.update(kw)
        return ColocatedPool(**base)

    def sim(self, n_instances=2, config=None, **kw):
        from repro.cluster.simulator import ColocatedSimulator

        return ColocatedSimulator(
            self.pool(n_instances=n_instances), config or SimConfig(max_sim_time=600.0), **kw
        )

    def test_completes_light_load(self):
        t = trace(rate=2.0, duration=10.0)
        report = self.sim().run(t)
        assert report.completed == len(t)
        assert 0 < report.ttft_p50 <= report.ttft_p99
        assert report.ttft_p50 < report.e2e_p50

    def test_deterministic(self):
        t = trace(seed=3)
        assert self.sim().run(t) == self.sim().run(t)

    def test_failure_requeues_and_recovers(self):
        t = trace(rate=5.0, duration=10.0, output_tokens=200)
        report = self.sim(
            failures=[(3.0, "colocated", 0, 30.0)], config=SimConfig(max_sim_time=900.0)
        ).run(t)
        assert report.requeued_on_failure > 0
        assert report.completed == len(t)

    def test_failure_hands_victims_to_idle_peer_immediately(self):
        """When one colocated instance fails, a healthy idle peer picks the
        victims up at failure time, not at the failed instance's repair."""
        t = trace(rate=5.0, duration=3.0, seed=2, output_tokens=400)
        report = self.sim(
            n_instances=2, config=SimConfig(max_sim_time=900.0),
            failures=[(8.0, "colocated", 0, 200.0)],
        ).run(t)
        assert report.completed == len(t)
        # Victims restart on the healthy peer well before the 200 s repair.
        assert report.e2e_p99 < 100.0

    def test_failure_validation(self):
        from repro.cluster.simulator import ColocatedSimulator

        with pytest.raises(SpecError):
            ColocatedSimulator(self.pool(), failures=[(1.0, "decode", 0, 10.0)])
        with pytest.raises(SpecError):
            ColocatedSimulator(self.pool(), failures=[(1.0, "colocated", 5, 10.0)])

    def test_pool_validation(self):
        with pytest.raises(SpecError):
            self.pool(n_instances=0)
        with pytest.raises(SpecError):
            self.pool(chunk_tokens=0)

    def test_describe_and_rollups(self):
        p = self.pool(n_instances=3)
        assert p.total_gpus == 3
        assert p.total_sms == 3 * H100.sms
        assert "colocated" in p.describe()

    def test_stochastic_failures_deterministic(self):
        from repro.cluster.failures import FailureModel

        t = trace(rate=5.0, duration=10.0, output_tokens=150)
        kw = dict(failure_model=FailureModel(mtbf=30.0, mttr=10.0), failure_seed=4)
        a = self.sim(config=SimConfig(max_sim_time=900.0), **kw).run(t)
        b = self.sim(config=SimConfig(max_sim_time=900.0), **kw).run(t)
        assert a == b

    def test_chunking_bounds_tbt_vs_full_prefill_batches(self):
        """Smaller chunks keep mixed-iteration TBT lower (SARATHI's point)."""
        t = trace(rate=4.0, duration=10.0, output_tokens=100)
        small = self.sim().run(t)
        from repro.cluster.simulator import ColocatedSimulator

        big = ColocatedSimulator(
            self.pool(chunk_tokens=4096), SimConfig(max_sim_time=600.0)
        ).run(t)
        assert small.tbt_mean <= big.tbt_mean


class TestFastEngine:
    """fast_engine=True (incremental counters) vs the seed's scan paths."""

    def test_phase_split_bit_identical(self):
        t = trace(rate=4.0, duration=20.0)
        kw = dict(failures=[(10.0, "decode", 0, 30.0)])
        fast = ServingSimulator(pools(n_decode=2), SimConfig(max_sim_time=600.0), **kw).run(t)
        legacy = ServingSimulator(
            pools(n_decode=2), SimConfig(max_sim_time=600.0, fast_engine=False), **kw
        ).run(t)
        assert fast == legacy
        assert fast.restarted_requests > 0  # the failure path was exercised

    def test_colocated_bit_identical(self):
        from repro.cluster.scheduler import ColocatedPool
        from repro.cluster.simulator import ColocatedSimulator

        pool = ColocatedPool(
            instance=InstanceSpec(LLAMA3_8B, H100, 1), n_instances=2, max_decode_batch=64
        )
        t = trace(rate=4.0, duration=20.0)
        kw = dict(failures=[(2.0, "colocated", 0, 15.0)])
        fast = ColocatedSimulator(pool, SimConfig(max_sim_time=600.0), **kw).run(t)
        legacy = ColocatedSimulator(
            pool, SimConfig(max_sim_time=600.0, fast_engine=False), **kw
        ).run(t)
        assert fast == legacy

    def test_counters_match_scans_through_a_run(self):
        """The incremental counters equal a full recount at every event."""
        from repro.cluster.engine import PhaseSplitEngine, ServiceTimeProvider
        from repro.cluster.policies import get_policy_bundle

        p = pools(n_decode=2)
        config = SimConfig(max_sim_time=600.0)
        engine = PhaseSplitEngine(
            p, config, get_policy_bundle("fcfs"),
            ServiceTimeProvider(p.prefill), ServiceTimeProvider(p.decode),
            failures=[(2.0, "decode", 0, 10.0)],
        )
        checked = 0
        original = engine._on_decode_admit

        def checking(now, payload):
            nonlocal checked
            original(now, payload)
            for state in engine.decode_states:
                assert state.occupied == state.scan_occupied_tokens()
                assert state.context_sum == sum(s.context_len for s in state.active)
            checked += 1

        engine._on_decode_admit = checking
        engine.handlers = lambda: {**PhaseSplitEngine.handlers(engine), "decode_admit": checking}
        engine.run(trace(rate=4.0, duration=10.0))
        assert checked > 0
