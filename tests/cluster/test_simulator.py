"""Discrete-event serving-simulator tests."""

from __future__ import annotations

import pytest

from repro.cluster.scheduler import InstanceSpec, PhasePools
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE, LITE_MEMBW, LITE_NETBW_FLOPS
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B
from repro.workloads.traces import Request, TraceConfig, generate_trace


def pools(n_prefill=1, n_decode=1, **kw) -> PhasePools:
    base = dict(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=n_prefill,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=n_decode,
        max_prefill_batch=4,
        max_decode_batch=64,
    )
    base.update(kw)
    return PhasePools(**base)


def trace(rate=5.0, duration=10.0, seed=0, output_tokens=50):
    return generate_trace(
        TraceConfig(rate=rate, duration=duration, output_tokens=output_tokens, output_spread=0.3),
        seed=seed,
    )


class TestBasics:
    def test_all_requests_complete_under_light_load(self):
        t = trace(rate=2.0, duration=10.0)
        report = ServingSimulator(pools(), SimConfig(max_sim_time=600.0)).run(t)
        assert report.completed == len(t)
        assert report.dropped == 0

    def test_deterministic(self):
        t = trace(seed=3)
        a = ServingSimulator(pools(), SimConfig(max_sim_time=300.0)).run(t)
        b = ServingSimulator(pools(), SimConfig(max_sim_time=300.0)).run(t)
        assert a == b

    def test_latency_ordering(self):
        t = trace(rate=2.0)
        report = ServingSimulator(pools(), SimConfig(max_sim_time=600.0)).run(t)
        assert 0 < report.ttft_p50 <= report.ttft_p99
        assert 0 < report.e2e_p50 <= report.e2e_p99
        assert report.ttft_p50 < report.e2e_p50

    def test_throughput_positive(self):
        report = ServingSimulator(pools(), SimConfig(max_sim_time=600.0)).run(trace())
        assert report.output_tokens_per_s > 0
        assert 0 <= report.decode_utilization <= 1

    def test_describe(self):
        report = ServingSimulator(pools(), SimConfig(max_sim_time=100.0)).run(trace(rate=1.0, duration=3.0))
        assert "completed" in report.describe()

    def test_empty_trace(self):
        report = ServingSimulator(pools(), SimConfig(max_sim_time=10.0)).run([])
        assert report.completed == 0


class TestCapacityEffects:
    def test_overload_queues_grow_ttft(self):
        light = ServingSimulator(pools(), SimConfig(max_sim_time=900.0)).run(
            trace(rate=1.0, duration=20.0)
        )
        heavy = ServingSimulator(pools(), SimConfig(max_sim_time=900.0)).run(
            trace(rate=30.0, duration=20.0)
        )
        assert heavy.ttft_p99 > light.ttft_p99

    def test_more_decode_instances_raise_throughput_under_load(self):
        """With abundant prefill capacity and a decode-saturating load, the
        decode pool size sets output throughput."""
        t = trace(rate=60.0, duration=15.0, output_tokens=400)
        one = ServingSimulator(pools(n_prefill=4, n_decode=1), SimConfig(max_sim_time=60.0)).run(t)
        four = ServingSimulator(pools(n_prefill=4, n_decode=4), SimConfig(max_sim_time=60.0)).run(t)
        assert four.output_tokens_per_s > one.output_tokens_per_s

    def test_horizon_cuts_completions(self):
        t = trace(rate=5.0, duration=30.0)
        short = ServingSimulator(pools(), SimConfig(max_sim_time=5.0)).run(t)
        assert short.dropped > 0


class TestPhaseSplitting:
    def test_specialized_pools_run(self):
        """Splitwise deployment: +FLOPS prefill pool, +MemBW decode pool."""
        split = PhasePools(
            prefill=InstanceSpec(LLAMA3_8B, LITE_NETBW_FLOPS, 1),
            n_prefill=2,
            decode=InstanceSpec(LLAMA3_8B, LITE_MEMBW, 1),
            n_decode=2,
            max_prefill_batch=4,
            max_decode_batch=64,
        )
        report = ServingSimulator(split, SimConfig(max_sim_time=600.0)).run(trace(rate=3.0))
        assert report.completed > 0
        assert report.tbt_mean < 0.05


class TestFailures:
    def test_decode_failure_requeues_requests(self):
        t = trace(rate=5.0, duration=10.0, output_tokens=200)
        sim = ServingSimulator(
            pools(n_decode=2),
            SimConfig(max_sim_time=900.0),
            failures=[(3.0, "decode", 0, 30.0)],
        )
        report = sim.run(t)
        assert report.requeued_on_failure > 0
        # Work still completes after recovery.
        assert report.completed == len(t)

    def test_failure_hurts_tail_latency(self):
        t = trace(rate=5.0, duration=10.0, output_tokens=100, seed=9)
        clean = ServingSimulator(pools(), SimConfig(max_sim_time=900.0)).run(t)
        faulty = ServingSimulator(
            pools(), SimConfig(max_sim_time=900.0), failures=[(2.0, "decode", 0, 60.0)]
        ).run(t)
        assert faulty.e2e_p99 > clean.e2e_p99

    def test_prefill_failure_delays_ttft(self):
        t = trace(rate=5.0, duration=10.0, seed=4)
        clean = ServingSimulator(pools(), SimConfig(max_sim_time=900.0)).run(t)
        faulty = ServingSimulator(
            pools(), SimConfig(max_sim_time=900.0), failures=[(1.0, "prefill", 0, 120.0)]
        ).run(t)
        assert faulty.ttft_p99 > clean.ttft_p99

    def test_failure_validation(self):
        with pytest.raises(SpecError):
            ServingSimulator(pools(), failures=[(1.0, "decode", 9, 10.0)])
        with pytest.raises(SpecError):
            ServingSimulator(pools(), failures=[(1.0, "gpu", 0, 10.0)])
        with pytest.raises(SpecError):
            ServingSimulator(pools(), failures=[(1.0, "decode", 0, -5.0)])
