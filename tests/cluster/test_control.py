"""Elastic control plane tests: controllers, lifecycle events, economics.

The two invariants everything else leans on:

1. ``controller=None`` and ``controller="static"`` replay the
   pre-control-plane engine bit-for-bit (no controller events at all);
2. ``fast_engine=True`` and ``False`` stay bit-identical even when
   controllers change capacity mid-run (the property test at the bottom —
   spawn/drain/retire exercise the incremental occupied/context counters).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.control import (
    CONTROLLERS,
    ControlObservation,
    ForecastController,
    PoolStats,
    PowerCapController,
    ReactiveController,
    SLOController,
    StaticController,
    get_controller,
)
from repro.cluster.economics import EconomicsConfig
from repro.cluster.power_manager import ClusterPowerManager
from repro.cluster.provisioning import WorkloadForecast, provision_pools
from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig
from repro.errors import SpecError
from repro.hardware.gpu import H100
from repro.network.topology import DirectConnectTopology
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_piecewise_trace, generate_trace


def pools(n_prefill=2, n_decode=4, **kw) -> PhasePools:
    base = dict(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=n_prefill,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=n_decode,
        max_prefill_batch=4,
        max_decode_batch=32,
    )
    base.update(kw)
    return PhasePools(**base)


def colocated(n_instances=4, **kw) -> ColocatedPool:
    base = dict(
        instance=InstanceSpec(LLAMA3_8B, H100, 1),
        n_instances=n_instances,
        max_decode_batch=32,
    )
    base.update(kw)
    return ColocatedPool(**base)


def bursty_trace(low=1.0, high=8.0, segment=45.0, seed=7):
    base = TraceConfig(output_tokens=100, output_spread=0.5)
    return generate_piecewise_trace(
        [(low, segment), (high, segment), (low, segment)], base, seed=seed
    )


def stats(**kw) -> PoolStats:
    base = dict(
        alive=2, warming=0, draining=0, busy=1, queue_depth=0,
        occupancy=0.2, gpus_per_instance=1,
    )
    base.update(kw)
    return PoolStats(**base)


def observation(time=0.0, **pool_kw) -> ControlObservation:
    return ControlObservation(time=time, pools={"decode": stats(**pool_kw)})


CONFIG = SimConfig(max_sim_time=1200.0)


class TestRegistry:
    def test_names(self):
        for name in ("static", "reactive", "slo", "forecast", "power_cap"):
            assert name in CONTROLLERS

    def test_get_controller_resolution(self):
        assert get_controller(None) is None
        assert isinstance(get_controller("reactive"), ReactiveController)
        instance = SLOController()
        assert get_controller(instance) is instance
        with pytest.raises(SpecError):
            get_controller(42)

    def test_static_never_steps(self):
        assert StaticController().epoch == 0.0

    def test_describe(self):
        text = ReactiveController().describe()
        assert "reactive" in text and "epoch" in text


class TestStaticEquivalence:
    """static / None produce bit-identical reports (the golden guard)."""

    def test_phase_split(self):
        t = generate_trace(TraceConfig(rate=4.0, duration=20.0, output_tokens=80), seed=3)
        none = ServingSimulator(pools(), CONFIG).run(t)
        static = ServingSimulator(pools(), CONFIG, controller="static").run(t)
        assert none == static
        assert static.spawned_instances == 0 and static.retired_instances == 0

    def test_colocated(self):
        t = generate_trace(TraceConfig(rate=4.0, duration=20.0, output_tokens=80), seed=3)
        none = ColocatedSimulator(colocated(), CONFIG).run(t)
        static = ColocatedSimulator(colocated(), CONFIG, controller="static").run(t)
        assert none == static


class TestReactiveController:
    def test_scale_up_on_queue_pressure(self):
        ctrl = ReactiveController(queue_high=2.0, max_instances=8)
        action = ctrl.step(observation(queue_depth=10, alive=2))
        assert action.scale["decode"] > 0

    def test_scale_down_needs_consecutive_calm_epochs(self):
        ctrl = ReactiveController(calm_epochs=3, min_instances=1)
        calm = observation(queue_depth=0, occupancy=0.0, busy=0)
        assert ctrl.step(calm).is_noop()
        assert ctrl.step(calm).is_noop()
        assert ctrl.step(calm).scale == {"decode": -1}
        # The counter resets after a scale-down: no immediate second drain.
        assert ctrl.step(calm).is_noop()

    def test_pressure_resets_calm(self):
        ctrl = ReactiveController(calm_epochs=2, queue_high=2.0)
        calm = observation(queue_depth=0, occupancy=0.0, busy=0)
        ctrl.step(calm)
        ctrl.step(observation(queue_depth=50))  # burst resets hysteresis
        assert ctrl.step(calm).is_noop()

    def test_respects_max_instances(self):
        ctrl = ReactiveController(queue_high=1.0, max_instances=2)
        action = ctrl.step(observation(queue_depth=100, alive=2))
        assert "decode" not in action.scale

    def test_validation(self):
        with pytest.raises(SpecError):
            ReactiveController(queue_high=0.0)
        with pytest.raises(SpecError):
            ReactiveController(min_instances=0)

    def test_elastic_run_sheds_capacity_and_cost(self):
        """The issue's core claim: elastic beats static $/Mtoken at equal SLO."""
        t = bursty_trace()
        static = ServingSimulator(pools(), CONFIG).run(t)
        ctrl = ReactiveController(epoch=5.0, warmup_s=10.0, calm_epochs=2,
                                  queue_high=2.0, max_instances=6)
        elastic = ServingSimulator(pools(), CONFIG, controller=ctrl).run(t)
        assert elastic.completed == static.completed == len(t)
        assert elastic.retired_instances > 0
        assert elastic.gpu_seconds < static.gpu_seconds
        assert elastic.usd_per_mtoken < static.usd_per_mtoken
        assert elastic.ttft_p99 <= 1.0  # the paper's TTFT SLO

    def test_scale_up_from_underprovisioned_pool(self):
        """A one-instance pool under a heavy burst spawns decode capacity."""
        t = bursty_trace(low=1.0, high=30.0, segment=30.0)
        small = pools(n_prefill=1, n_decode=1, max_prefill_batch=2, max_decode_batch=8)
        ctrl = ReactiveController(epoch=3.0, warmup_s=5.0, queue_high=1.5,
                                  max_instances=6, calm_epochs=4)
        starved = ServingSimulator(small, CONFIG).run(t)
        elastic = ServingSimulator(small, CONFIG, controller=ctrl).run(t)
        assert elastic.spawned_instances > 0
        assert elastic.e2e_p99 < starved.e2e_p99


class TestSLOController:
    def test_scales_up_on_ttft_violation(self):
        ctrl = SLOController(ttft_target=0.5, min_samples=4)
        obs = ControlObservation(
            time=10.0,
            pools={"prefill": stats(), "decode": stats()},
            window_ttfts=(2.0, 3.0, 2.5, 4.0),
        )
        action = ctrl.step(obs)
        assert action.scale.get("prefill") == 1

    def test_scales_down_when_comfortable(self):
        ctrl = SLOController(ttft_target=1.0, tbt_target=0.05, calm_epochs=2,
                             min_samples=4)
        obs = ControlObservation(
            time=10.0,
            pools={"prefill": stats(alive=2), "decode": stats(alive=4)},
            window_ttfts=(0.01, 0.01, 0.02, 0.01),
            window_tbts=(0.001, 0.001, 0.002, 0.001),
        )
        assert ctrl.step(obs).is_noop()
        action = ctrl.step(obs)
        assert action.scale == {"decode": -1}  # largest pool drains first

    def test_holds_slo_on_bursty_trace(self):
        t = bursty_trace()
        ctrl = SLOController(epoch=5.0, warmup_s=10.0, calm_epochs=2, max_instances=6)
        report = ServingSimulator(pools(), CONFIG, controller=ctrl).run(t)
        assert report.completed == len(t)
        assert report.ttft_p99 <= 1.0
        assert report.retired_instances > 0


class TestForecastController:
    def test_profile_lookup(self):
        ctrl = ForecastController(profile=[(0.0, 1.0), (60.0, 3.0), (120.0, 1.0)])
        assert ctrl.multiplier_at(0.0) == 1.0
        assert ctrl.multiplier_at(61.0) == 3.0
        assert ctrl.multiplier_at(500.0) == 1.0

    def test_provisions_ahead_of_ramp(self):
        # At t=50 with a 30s lead, the t=60 ramp is already visible.
        ctrl = ForecastController(
            profile=[(0.0, 1.0), (60.0, 3.0)], warmup_s=30.0, max_instances=8
        )
        obs = ControlObservation(time=50.0, pools={"decode": stats(alive=2, warming=0)})
        action = ctrl.step(obs)
        assert action.scale["decode"] == 4  # 2 * 3 = 6 desired, 2 incoming

    def test_from_plan_uses_pool_sizes(self):
        plan = provision_pools(LLAMA3_8B, H100, H100, WorkloadForecast(rate=3.0))
        ctrl = ForecastController.from_plan(plan, profile=[(0.0, 1.0)])
        assert ctrl.base_counts == {
            "prefill": plan.pools.n_prefill,
            "decode": plan.pools.n_decode,
        }

    def test_validation(self):
        with pytest.raises(SpecError):
            ForecastController(profile=[])
        with pytest.raises(SpecError):
            ForecastController(profile=[(0.0, -1.0)])


class TestPowerCapController:
    def manager(self, count=6):
        return ClusterPowerManager(H100, count)

    def test_no_cap_restores_full_clock(self):
        ctrl = PowerCapController(manager=self.manager(), caps=[(100.0, 200.0, 1000.0)])
        action = ctrl.step(observation(time=10.0))
        assert action.frequency == 1.0

    def test_cap_throttles_via_dvfs(self):
        cap_watts = 6 * H100.tdp * 0.6
        ctrl = PowerCapController(manager=self.manager(), caps=[(0.0, 100.0, cap_watts)])
        obs = ControlObservation(
            time=10.0, pools={"decode": stats(alive=6, gpus_per_instance=1)}
        )
        action = ctrl.step(obs)
        assert action.frequency is not None and action.frequency < 1.0
        # The chosen clock actually fits the cap.
        curve = self.manager().curve
        assert 6 * H100.tdp * curve.power_ratio(action.frequency) <= cap_watts * 1.001

    def test_impossible_cap_drains_instances(self):
        curve = self.manager().curve
        floor_watts = H100.tdp * curve.power_ratio(curve.min_clock_ratio)
        ctrl = PowerCapController(
            manager=self.manager(), caps=[(0.0, 100.0, 2.5 * floor_watts)]
        )
        obs = ControlObservation(
            time=10.0, pools={"decode": stats(alive=6, gpus_per_instance=1)}
        )
        action = ctrl.step(obs)
        assert action.frequency == curve.min_clock_ratio
        assert action.scale["decode"] < 0

    def test_cap_event_cuts_energy_in_simulation(self):
        t = generate_trace(TraceConfig(rate=4.0, duration=60.0, output_tokens=80), seed=5)
        deploy = pools()
        manager = ClusterPowerManager(H100, deploy.total_gpus)
        ctrl = PowerCapController(
            manager=manager, epoch=5.0,
            caps=[(10.0, 50.0, deploy.total_gpus * H100.tdp * 0.5)],
        )
        capped = ServingSimulator(deploy, CONFIG, controller=ctrl).run(t)
        free = ServingSimulator(deploy, CONFIG).run(t)
        assert capped.completed == free.completed
        assert capped.energy_joules < free.energy_joules
        assert capped.tbt_mean > free.tbt_mean  # throttling is visible in latency

    def test_validation(self):
        with pytest.raises(SpecError):
            PowerCapController(caps=[(10.0, 5.0, 100.0)])


class TestLifecycleSemantics:
    def test_warmup_delays_service(self):
        """A long warm-up makes spawned capacity useless within the burst."""
        t = bursty_trace(low=1.0, high=30.0, segment=30.0)
        fast = ReactiveController(epoch=3.0, warmup_s=1.0, queue_high=1.5,
                                  max_instances=6, calm_epochs=4)
        slow = ReactiveController(epoch=3.0, warmup_s=300.0, queue_high=1.5,
                                  max_instances=6, calm_epochs=4)
        small = pools(n_prefill=1, n_decode=1, max_prefill_batch=2, max_decode_batch=8)
        quick = ServingSimulator(small, CONFIG, controller=fast).run(t)
        sluggish = ServingSimulator(small, CONFIG, controller=slow).run(t)
        assert quick.spawned_instances > 0
        assert quick.e2e_p99 < sluggish.e2e_p99
        # Warm-up time is still paid for: provisioned gpu-seconds include it.
        assert sluggish.gpu_seconds > 0

    def test_drain_floor_keeps_one_instance(self):
        ctrl = ReactiveController(epoch=2.0, calm_epochs=1, min_instances=1)
        t = generate_trace(TraceConfig(rate=0.5, duration=30.0, output_tokens=20), seed=1)
        report = ServingSimulator(pools(n_prefill=2, n_decode=2), CONFIG,
                                  controller=ctrl).run(t)
        # Both pools can shed at most down to the floor of one instance.
        assert report.retired_instances <= 2
        assert report.completed == len(t)

    def test_topology_placement_bounds_spawns(self):
        """With a topology, growth is pre-placed and physically bounded."""
        topo = DirectConnectTopology(n_gpus=8, group=4)
        ctrl = ReactiveController(epoch=3.0, warmup_s=5.0, queue_high=1.0,
                                  max_instances=16, calm_epochs=8)
        t = bursty_trace(low=0.5, high=12.0, segment=30.0)
        sim = ServingSimulator(
            pools(n_prefill=1, n_decode=1), CONFIG, controller=ctrl,
            topology=topo, network_model="fabric",
        )
        report = sim.run(t)
        # 8 GPUs total, 2 used initially: at most 6 spawns ever.
        assert report.spawned_instances <= 6
        assert report.completed == len(t)

    def test_economics_config_is_respected(self):
        from repro.hardware.tco import TCOAssumptions

        t = generate_trace(TraceConfig(rate=2.0, duration=20.0, output_tokens=50), seed=2)
        cheap = EconomicsConfig(assumptions=TCOAssumptions(electricity_usd_per_kwh=0.01))
        dear = EconomicsConfig(assumptions=TCOAssumptions(electricity_usd_per_kwh=5.0))
        a = ServingSimulator(pools(), CONFIG, economics=cheap).run(t)
        b = ServingSimulator(pools(), CONFIG, economics=dear).run(t)
        assert b.usd_cost > a.usd_cost
        assert a.gpu_seconds == b.gpu_seconds  # resource accounting unchanged

    def test_last_economics_detail(self):
        t = generate_trace(TraceConfig(rate=2.0, duration=20.0, output_tokens=50), seed=2)
        sim = ServingSimulator(pools(), CONFIG)
        report = sim.run(t)
        econ = sim.last_economics
        assert econ is not None
        assert {p.pool for p in econ.pools} == {"prefill", "decode"}
        assert econ.gpu_seconds == pytest.approx(report.gpu_seconds)
        assert econ.usd_per_mtoken == pytest.approx(report.usd_per_mtoken)
        assert "Mtoken" in econ.describe()

    def test_colocated_elastic(self):
        t = bursty_trace()
        ctrl = ReactiveController(epoch=5.0, warmup_s=10.0, calm_epochs=2,
                                  queue_high=2.0, max_instances=6)
        static = ColocatedSimulator(colocated(), CONFIG).run(t)
        elastic = ColocatedSimulator(colocated(), CONFIG, controller=ctrl).run(t)
        assert elastic.completed == static.completed == len(t)
        assert elastic.retired_instances > 0
        assert elastic.gpu_seconds < static.gpu_seconds


# --- satellite: fast vs slow engines stay bit-identical under scaling ---------


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    high_rate=st.floats(min_value=4.0, max_value=12.0),
    warmup=st.floats(min_value=0.0, max_value=20.0),
)
def test_fast_and_slow_engines_identical_under_scaling_phase_split(
    seed, high_rate, warmup
):
    """Mid-run spawn/drain/retire exercise the incremental occupied/context
    counters; both engine modes must agree float-for-float."""
    t = bursty_trace(low=1.0, high=high_rate, segment=25.0, seed=seed)

    def run(fast: bool):
        ctrl = ReactiveController(epoch=4.0, warmup_s=warmup, calm_epochs=2,
                                  queue_high=1.5, max_instances=6)
        config = SimConfig(max_sim_time=1200.0, fast_engine=fast)
        return ServingSimulator(pools(n_prefill=1, n_decode=2), config,
                                controller=ctrl).run(t)

    assert run(True) == run(False)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    high_rate=st.floats(min_value=4.0, max_value=12.0),
)
def test_fast_and_slow_engines_identical_under_scaling_colocated(seed, high_rate):
    t = bursty_trace(low=1.0, high=high_rate, segment=25.0, seed=seed)

    def run(fast: bool):
        ctrl = ReactiveController(epoch=4.0, warmup_s=8.0, calm_epochs=2,
                                  queue_high=1.5, max_instances=6)
        config = SimConfig(max_sim_time=1200.0, fast_engine=fast)
        return ColocatedSimulator(colocated(n_instances=2), config,
                                  controller=ctrl).run(t)

    assert run(True) == run(False)


class TestElasticFailureTargets:
    def test_scripted_failure_on_spawnable_instance_is_accepted(self):
        """Elastic runs accept fault indices up to the controller's growth
        cap; a fault on a never-spawned instance hits no hardware."""
        t = generate_trace(TraceConfig(rate=2.0, duration=10.0, output_tokens=50), seed=1)
        ctrl = ReactiveController(max_instances=8)
        report = ServingSimulator(
            pools(n_prefill=1, n_decode=2), CONFIG, controller=ctrl,
            failures=[(5.0, "decode", 5, 10.0)],
        ).run(t)
        assert report.completed == len(t)
        assert report.restarted_requests == 0  # instance 5 never existed

    def test_static_runs_keep_the_strict_bound(self):
        import pytest

        from repro.errors import SpecError

        with pytest.raises(SpecError):
            ServingSimulator(
                pools(n_prefill=1, n_decode=2), CONFIG,
                failures=[(5.0, "decode", 5, 10.0)],
            )
