"""Data-center planning tests — Section 3's last opportunity area."""

from __future__ import annotations

import pytest

from repro.cluster.datacenter import (
    RackSpec,
    floor_plan,
    lite_vs_h100_floor,
    plan_racks,
    reach_check,
)
from repro.errors import SpecError
from repro.hardware.cooling import CoolingKind
from repro.hardware.gpu import H100, LITE
from repro.network.links import COPPER_NVLINK, CPO_OPTICS


class TestRackPlanning:
    def test_h100_rack_is_power_limited(self):
        plan = plan_racks(H100, 128)
        # 40 kW air budget / 0.7 kW -> 57 air slots, but cooling model says
        # H100 packages cannot air-cool -> liquid rack at higher budget.
        assert plan.cooling is CoolingKind.LIQUID_COLD_PLATE

    def test_lite_rack_air_cooled(self):
        plan = plan_racks(LITE, 512)
        assert plan.cooling is CoolingKind.AIR
        # Smaller packages pack denser than H100 slots, capped by the 40 kW
        # air budget (228 x 175 W).
        assert 64 < plan.gpus_per_rack <= 256

    def test_rack_counts_cover_gpus(self):
        plan = plan_racks(LITE, 130)
        assert plan.n_racks * plan.gpus_per_rack >= 130

    def test_validation(self):
        with pytest.raises(SpecError):
            plan_racks(H100, 0)
        with pytest.raises(SpecError):
            RackSpec(max_power_kw=0)


class TestFloorPlan:
    def test_aggregation(self):
        plans = [plan_racks(H100, 64), plan_racks(LITE, 256)]
        summary = floor_plan(plans)
        assert summary["gpus"] == 320
        assert summary["racks"] == plans[0].n_racks + plans[1].n_racks
        assert 0.0 <= summary["liquid_fraction"] <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            floor_plan([])


class TestPaperClaims:
    def test_devices_up_energy_density_down(self):
        """'the number of devices per area is increased, however, the
        energy per unit area is decreased'."""
        comparison = lite_vs_h100_floor(64, H100, LITE)
        assert comparison["devices_per_m2_ratio"] > 1.0
        assert comparison["power_density_ratio"] < 1.0

    def test_liquid_racks_eliminated(self):
        comparison = lite_vs_h100_floor(64, H100, LITE)
        assert comparison["liquid_eliminated"]

    def test_reach_enables_flat_lite_clusters(self):
        """Copper covers a rack; CPO covers the whole Lite floor."""
        lite_plan = plan_racks(LITE, 2048)
        assert not reach_check(lite_plan, COPPER_NVLINK)
        assert reach_check(lite_plan, CPO_OPTICS)

    def test_small_deployment_within_copper(self):
        tiny = plan_racks(LITE, 4)
        assert reach_check(tiny, COPPER_NVLINK)
