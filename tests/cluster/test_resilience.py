"""Resilience-layer tests: retries, deadlines, checkpoints, brown-out.

The golden guard lives in :class:`TestGoldenDefaults` — an all-default
:class:`ResilienceConfig` must leave the event stream bit-identical to
``resilience=None`` across both engines and both metric modes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import replace

import pytest

from repro.cluster.policies import FrontOfQueueRequeue
from repro.cluster.resilience import (
    RESILIENCE_FIELDS,
    RETRY_POLICIES,
    BrownoutConfig,
    CheckpointWriteProvider,
    ExpJitterRetry,
    FixedRetry,
    NoRetry,
    ResilienceConfig,
    ResilienceRuntime,
    get_retry_policy,
    goodput_dip,
    wrap_checkpoint_writes,
)
from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig
from repro.errors import RegistryError, SpecError
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import Request, TraceConfig, generate_trace


def pools(n_prefill=1, n_decode=1, **kw) -> PhasePools:
    base = dict(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=n_prefill,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=n_decode,
        max_prefill_batch=4,
        max_decode_batch=64,
    )
    base.update(kw)
    return PhasePools(**base)


def colocated(n_instances=2, **kw) -> ColocatedPool:
    base = dict(
        instance=InstanceSpec(LLAMA3_8B, H100, 1),
        n_instances=n_instances,
        max_decode_batch=64,
    )
    base.update(kw)
    return ColocatedPool(**base)


def trace(rate=5.0, duration=10.0, seed=0, output_tokens=50):
    return generate_trace(
        TraceConfig(
            rate=rate, duration=duration, output_tokens=output_tokens, output_spread=0.3
        ),
        seed=seed,
    )


def request(request_id=0, arrival=0.0, prompt=64, output=32, **kw) -> Request:
    return Request(request_id, arrival, prompt, output, **kw)


def runtime(**kw) -> ResilienceRuntime:
    rt = ResilienceRuntime(ResilienceConfig(**kw))
    rt.fired = []
    rt.bind(lambda at, req: rt.fired.append((at, req)))
    return rt


# --- retry policies ---------------------------------------------------------


class TestRetryPolicies:
    def test_none_never_retries(self):
        assert NoRetry().next_delay(0, 1) is None

    def test_fixed_delay_until_cap(self):
        policy = FixedRetry(delay=2.0, max_attempts=3)
        assert [policy.next_delay(7, n) for n in (1, 2, 3)] == [2.0, 2.0, 2.0]
        assert policy.next_delay(7, 4) is None

    def test_exp_jitter_deterministic(self):
        a = ExpJitterRetry().next_delay(42, 2)
        b = ExpJitterRetry().next_delay(42, 2)
        assert a == b

    def test_exp_jitter_within_envelope(self):
        policy = ExpJitterRetry(base=0.5, factor=2.0, cap=30.0, max_attempts=4, jitter=0.5)
        for attempt in (1, 2, 3, 4):
            raw = min(30.0, 0.5 * 2.0 ** (attempt - 1))
            delay = policy.next_delay(11, attempt)
            assert raw * (1 - 0.5) <= delay <= raw
        assert policy.next_delay(11, 5) is None

    def test_exp_jitter_desynchronizes_clients(self):
        policy = ExpJitterRetry()
        delays = {policy.next_delay(rid, 1) for rid in range(16)}
        assert len(delays) > 1

    def test_exp_jitter_caps_at_cap(self):
        policy = ExpJitterRetry(base=1.0, factor=10.0, cap=5.0, max_attempts=8, jitter=0.0)
        assert policy.next_delay(0, 8) == 5.0

    def test_registry_names(self):
        assert {"none", "fixed", "exp_jitter"} <= set(RETRY_POLICIES.names())

    def test_lookup_is_spelling_insensitive(self):
        assert isinstance(get_retry_policy("EXP-JITTER"), ExpJitterRetry)
        assert isinstance(get_retry_policy("Fixed"), FixedRetry)

    def test_lookup_passthrough_and_none(self):
        policy = FixedRetry()
        assert get_retry_policy(policy) is policy
        assert isinstance(get_retry_policy(None), NoRetry)

    def test_lookup_rejects_garbage(self):
        with pytest.raises(RegistryError):
            get_retry_policy("banana")
        with pytest.raises(SpecError):
            get_retry_policy(3.5)

    def test_validation(self):
        with pytest.raises(SpecError):
            FixedRetry(delay=0.0)
        with pytest.raises(SpecError):
            FixedRetry(max_attempts=0)
        with pytest.raises(SpecError):
            ExpJitterRetry(jitter=1.0)
        with pytest.raises(SpecError):
            ExpJitterRetry(base=1.0, cap=0.5)
        with pytest.raises(SpecError):
            ExpJitterRetry(factor=0.5)


# --- configuration ----------------------------------------------------------


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"deadline_s": 0.0},
            {"queue_timeout_s": -1.0},
            {"retry": "banana"},
            {"max_pending_retries": 0},
            {"checkpoint_interval": 0},
            {"checkpoint_bandwidth": 0.0},
            {"slo_ttft_s": 0.0},
            {"slo_tbt_s": -0.1},
            {"slo_e2e_s": 0.0},
            {"sweep_interval": 0.0},
        ],
    )
    def test_bad_resilience_config(self, kw):
        with pytest.raises((SpecError, RegistryError)):
            ResilienceConfig(**kw)

    @pytest.mark.parametrize(
        "kw",
        [
            {"queue_depth_high": 0},
            {"queue_depth_low": 100, "queue_depth_high": 10},
            {"ttft_p99_high": 1.0},  # one bound without the other
            {"ttft_p99_high": 1.0, "ttft_p99_low": 2.0},
            {"truncate_output_to": 0},
            {"window": 4},
        ],
    )
    def test_bad_brownout_config(self, kw):
        with pytest.raises(SpecError):
            BrownoutConfig(**kw)

    def test_simconfig_rejects_non_config(self):
        with pytest.raises(SpecError):
            SimConfig(resilience="yes please")


# --- deadlines and timeouts --------------------------------------------------


class TestDeadlinesAndTimeouts:
    def test_fleet_deadline_and_per_request_override(self):
        rt = runtime(deadline_s=5.0)
        assert rt.deadline_at(request(arrival=2.0)) == 7.0
        assert rt.deadline_at(request(arrival=2.0, deadline=1.0)) == 3.0
        assert runtime().deadline_at(request()) == math.inf

    def test_expire_reasons(self):
        rt = runtime(deadline_s=1.0, queue_timeout_s=0.5)
        assert rt.expire(request(arrival=0.0), now=2.0) == "deadline"
        assert rt.expire(request(arrival=0.0), now=0.8) == "timeout"
        assert rt.expire(request(arrival=0.0), now=0.3) is None

    def test_sweep_sheds_expired_head_preserving_order(self):
        rt = runtime(deadline_s=1.0)
        keep_a = request(1, arrival=2.0)
        keep_b = request(2, arrival=2.5)
        queue = deque([request(0, arrival=0.0), keep_a, keep_b])
        rt.sweep_queue(queue, now=2.0)
        assert list(queue) == [keep_a, keep_b]
        assert rt.deadline_missed == 1

    def test_full_sweep_sheds_mid_queue(self):
        rt = runtime(deadline_s=1.0, sweep_interval=0.01)
        rt._next_sweep = 0.0
        fresh = request(0, arrival=2.0)
        stale = request(1, arrival=0.0)
        queue = deque([fresh, stale])  # stale is *not* at the head
        rt.sweep_queue(queue, now=2.0)
        assert list(queue) == [fresh]
        assert rt.deadline_missed == 1

    def test_timeout_consults_retry_policy(self):
        rt = runtime(queue_timeout_s=1.0, retry=FixedRetry(delay=0.5, max_attempts=2))
        req = request(9)
        rt.shed(req, now=1.5, reason="timeout")
        assert rt.timed_out == 1 and rt.pending_retries == 1
        assert rt.fired == [(2.0, req)]
        rt.on_retry_fired()
        assert rt.retries == 1 and rt.pending_retries == 0

    def test_retry_attempts_exhaust_to_abandoned(self):
        rt = runtime(queue_timeout_s=1.0, retry=FixedRetry(delay=0.5, max_attempts=1))
        req = request(9)
        rt.shed(req, now=1.0, reason="timeout")  # attempt 1: granted
        rt.on_retry_fired()
        rt.shed(req, now=2.0, reason="timeout")  # attempt 2: exhausted
        assert rt.abandoned == 1
        assert len(rt.fired) == 1

    def test_retry_never_outlives_deadline(self):
        rt = runtime(
            deadline_s=1.0, queue_timeout_s=0.5, retry=FixedRetry(delay=10.0)
        )
        rt.shed(request(arrival=0.0), now=0.6, reason="timeout")
        assert rt.abandoned == 1 and rt.fired == []

    def test_pending_retry_buffer_is_bounded(self):
        rt = runtime(
            queue_timeout_s=1.0, retry=FixedRetry(delay=1.0), max_pending_retries=2
        )
        for rid in range(4):
            rt.shed(request(rid), now=2.0, reason="timeout")
        assert rt.pending_retries == 2 == rt.peak_pending_retries
        assert rt.abandoned == 2
        assert len(rt.fired) == 2

    def test_deadline_shed_is_terminal(self):
        rt = runtime(deadline_s=1.0, retry=FixedRetry(delay=0.01, max_attempts=99))
        rt.shed(request(arrival=0.0), now=5.0, reason="deadline")
        assert rt.deadline_missed == 1 and rt.fired == []


# --- checkpointed restarts ---------------------------------------------------


class TestCheckpointing:
    def test_no_checkpoint_restarts_from_prefill(self):
        rt = runtime()
        req = request(output=512)
        assert rt.resume_request(req, generated=300) is req

    def test_resume_skips_checkpointed_prefix(self):
        rt = runtime(checkpoint_interval=64)
        req = request(prompt=100, output=512)
        resumed = rt.resume_request(req, generated=150)
        assert resumed.prompt_tokens == 100 + 128  # last multiple of 64
        assert resumed.output_tokens == 512 - 128
        assert rt._credit[req.request_id] == 128

    def test_below_first_interval_is_a_full_restart(self):
        rt = runtime(checkpoint_interval=64)
        req = request(output=512)
        assert rt.resume_request(req, generated=63) is req

    def test_credit_paid_exactly_once_at_completion(self):
        rt = runtime(checkpoint_interval=64)
        req = request(prompt=100, output=512)
        resumed = rt.resume_request(req, generated=150)
        credit = rt.on_complete(resumed, finish=9.0, ttft=0.1, mean_tbt=0.01)
        assert credit == 128
        assert rt.goodput_tokens == resumed.output_tokens + 128 == 512
        # Resolved: a second completion of the same id earns nothing extra.
        assert rt.on_complete(resumed, finish=9.0, ttft=0.1, mean_tbt=0.01) == 0

    def test_write_provider_prices_decode_only(self):
        class Inner:
            frequency = 1.0

            def set_frequency(self, scalar):
                self.frequency = scalar

            def prefill_time(self, batch, prompt_len, instance=0):
                return 1.0

            def decode_time(self, batch, context_len, instance=0):
                return 2.0

            def mixed_time(self, decode_batch, context_len, chunk, prompt_len, instance=0):
                return 3.0

            def cache_info(self):
                return {}

        provider = CheckpointWriteProvider(Inner(), write_s_per_token=0.5)
        assert provider.prefill_time(8, 512) == 1.0
        assert provider.decode_time(8, 512) == 2.0 + 8 * 0.5
        assert provider.mixed_time(4, 512, 128, 512) == 3.0 + 4 * 0.5
        provider.set_frequency(0.5)
        assert provider.frequency == 0.5
        with pytest.raises(SpecError):
            CheckpointWriteProvider(Inner(), write_s_per_token=-1.0)

    def test_wrap_is_noop_unless_enabled(self):
        spec = InstanceSpec(LLAMA3_8B, H100, 1)
        inner = object.__new__(CheckpointWriteProvider)  # any provider-ish object
        assert wrap_checkpoint_writes(inner, spec, None) is inner
        assert (
            wrap_checkpoint_writes(inner, spec, ResilienceConfig()) is inner
        )  # no interval -> no wrapper
        wrapped = wrap_checkpoint_writes(
            inner, spec, ResilienceConfig(checkpoint_interval=64, checkpoint_bandwidth=1e9)
        )
        assert isinstance(wrapped, CheckpointWriteProvider)
        expected = LLAMA3_8B.kv_bytes_per_token(spec.policy.kv_bytes) / 1e9
        assert wrapped.write_s_per_token == pytest.approx(expected)


# --- brown-out ---------------------------------------------------------------


class TestBrownout:
    def guard(self, **kw) -> ResilienceRuntime:
        base = dict(
            queue_depth_high=4,
            queue_depth_low=1,
            shed_priority_floor=1,
            truncate_output_to=16,
            window=8,
        )
        base.update(kw)
        return runtime(brownout=BrownoutConfig(**base))

    def test_healthy_admission_is_transparent(self):
        rt = self.guard()
        req = request(output=100)
        assert rt.admit(req, now=0.0, queue_depth=0) is req

    def test_trips_on_queue_depth_and_sheds_low_priority(self):
        rt = self.guard()
        shed_me = request(1, output=100, priority=1)
        assert rt.admit(shed_me, now=0.0, queue_depth=4) is None
        assert rt.load_shed == 1 and rt.brownouts == 1

    def test_tripped_mode_truncates_survivors(self):
        rt = self.guard()
        rt.admit(request(1, priority=1), now=0.0, queue_depth=4)  # trip
        kept = rt.admit(request(2, output=100, priority=0), now=0.1, queue_depth=4)
        assert kept.output_tokens == 16
        assert rt.truncated == 1

    def test_hysteresis_holds_then_clears(self):
        rt = self.guard()
        rt.admit(request(1, priority=1), now=0.0, queue_depth=4)  # trip
        assert rt.brownout_active
        rt.admit(request(2, priority=0), now=0.1, queue_depth=2)  # low < 2 < high
        assert rt.brownout_active
        req = request(3, output=100, priority=1)
        assert rt.admit(req, now=0.2, queue_depth=1) is req  # cleared at low
        assert not rt.brownout_active

    def test_ttft_window_trips_too(self):
        rt = self.guard(ttft_p99_high=1.0, ttft_p99_low=0.1)
        for _ in range(8):
            rt.note_ttft(5.0)
        assert rt.admit(request(1, priority=1), now=0.0, queue_depth=0) is None


# --- SLOs and goodput --------------------------------------------------------


class TestGoodput:
    def test_slo_classification(self):
        rt = runtime(slo_ttft_s=1.0, slo_tbt_s=0.05, slo_e2e_s=10.0)
        good = request(1, output=32)
        rt.on_complete(good, finish=5.0, ttft=0.5, mean_tbt=0.01)
        assert rt.slo_violations == 0 and rt.goodput_tokens == 32
        rt.on_complete(request(2, output=32), finish=5.0, ttft=2.0, mean_tbt=0.01)
        rt.on_complete(request(3, output=32), finish=5.0, ttft=0.5, mean_tbt=0.1)
        rt.on_complete(request(4, output=32), finish=11.0, ttft=0.5, mean_tbt=0.01)
        assert rt.slo_violations == 3 and rt.goodput_tokens == 32

    def test_deadline_late_completion_earns_no_goodput(self):
        rt = runtime(deadline_s=1.0)
        rt.on_complete(request(1, output=32), finish=5.0, ttft=0.1, mean_tbt=0.01)
        assert rt.goodput_tokens == 0 and rt.slo_violations == 0

    def test_goodput_dip(self):
        base = replace(
            ServingSimulator(pools(), SimConfig()).run([]),
            goodput_tokens_per_s=100.0,
        )
        faulted = replace(base, goodput_tokens_per_s=90.0)
        assert goodput_dip(base, faulted) == pytest.approx(0.1)
        assert goodput_dip(faulted, base) == 0.0  # improvements clamp to 0
        assert goodput_dip(replace(base, goodput_tokens_per_s=0.0), faulted) == 0.0


# --- requeue x deadline (satellite) -----------------------------------------


class TestRequeueDeadlineInteraction:
    def test_requeue_all_preserves_batch_order(self):
        a, b = request(10), request(11)
        v1, v2, v3 = request(1), request(2), request(3)
        queue = deque([a, b])
        FrontOfQueueRequeue().requeue_all([v1, v2, v3], queue)
        assert list(queue) == [v1, v2, v3, a, b]

    def test_requeue_single_jumps_queue(self):
        a, v = request(10), request(1)
        queue = deque([a])
        FrontOfQueueRequeue().requeue(v, queue)
        assert list(queue) == [v, a]

    def test_expired_victims_are_shed_not_requeued(self):
        """A failure victim with a spent deadline never re-enters the queue."""
        # One long request: decoding at t=5 when its instance dies, and
        # (in the tight run) minutes past its 1-second deadline by then.
        t = [request(0, arrival=0.0, prompt=64, output=5000)]
        failures = [(5.0, "decode", 0, 30.0)]
        no_deadline = ServingSimulator(
            pools(), SimConfig(resilience=ResilienceConfig()), failures=failures
        ).run(t)
        assert no_deadline.restarted_requests == 1  # victims normally requeue
        tight = ServingSimulator(
            pools(),
            SimConfig(resilience=ResilienceConfig(deadline_s=1.0)),
            failures=failures,
        ).run(t)
        assert tight.restarted_requests == 0
        assert tight.deadline_missed == 1


# --- golden guard (satellite) ------------------------------------------------


class TestGoldenDefaults:
    """All-default resilience knobs leave the simulation bit-identical."""

    DEFAULTS = dict(RESILIENCE_FIELDS)

    @pytest.mark.parametrize("fast", [True, False])
    @pytest.mark.parametrize("metrics", ["exact", "streaming"])
    def test_phase_split(self, fast, metrics):
        t = trace(rate=4.0, duration=8.0)
        golden = ServingSimulator(
            pools(), SimConfig(fast_engine=fast, metrics=metrics)
        ).run(t)
        report = ServingSimulator(
            pools(),
            SimConfig(fast_engine=fast, metrics=metrics, resilience=ResilienceConfig()),
        ).run(t)
        # With no deadline/SLO every completion is goodput: the only fields
        # allowed to differ are the goodput tallies themselves.
        assert replace(report, **self.DEFAULTS) == golden
        assert report.goodput_tokens_per_s == golden.output_tokens_per_s
        assert report.retries == report.timed_out == report.load_shed == 0
        assert report.deadline_missed == report.abandoned == 0
        assert report.availability == 1.0

    @pytest.mark.parametrize("fast", [True, False])
    @pytest.mark.parametrize("metrics", ["exact", "streaming"])
    def test_colocated(self, fast, metrics):
        t = trace(rate=4.0, duration=8.0)
        golden = ColocatedSimulator(
            colocated(), SimConfig(fast_engine=fast, metrics=metrics)
        ).run(t)
        report = ColocatedSimulator(
            colocated(),
            SimConfig(fast_engine=fast, metrics=metrics, resilience=ResilienceConfig()),
        ).run(t)
        assert replace(report, **self.DEFAULTS) == golden
        assert report.goodput_tokens_per_s == golden.output_tokens_per_s

    def test_default_simconfig_reports_inert_fields(self):
        report = ServingSimulator(pools(), SimConfig()).run(trace(rate=2.0, duration=4.0))
        for name, default in RESILIENCE_FIELDS:
            assert getattr(report, name) == default


# --- end-to-end smoke --------------------------------------------------------


class TestEndToEnd:
    def test_retries_recover_timed_out_work(self):
        t = trace(rate=6.0, duration=10.0, output_tokens=120)
        failures = [(3.0, "decode", 0, 10.0)]
        config = ResilienceConfig(queue_timeout_s=2.0, retry=FixedRetry(delay=1.0))
        report = ServingSimulator(
            pools(), SimConfig(resilience=config), failures=failures
        ).run(t)
        assert report.timed_out > 0
        assert report.retries > 0
        assert report.failure_hits >= 1
        assert report.availability < 1.0
        assert report.mttr_s > 0.0

    def test_colocated_failure_path(self):
        t = trace(rate=6.0, duration=10.0, output_tokens=120)
        config = ResilienceConfig(deadline_s=60.0, checkpoint_interval=16)
        report = ColocatedSimulator(
            colocated(), SimConfig(resilience=config), failures=[(3.0, "colocated", 0, 10.0)]
        ).run(t)
        assert report.failure_hits >= 1
        assert report.completed > 0
        assert report.goodput_tokens > 0

    def test_describe_mentions_resilience(self):
        t = trace(rate=6.0, duration=8.0, output_tokens=120)
        config = ResilienceConfig(queue_timeout_s=1.0, retry="fixed")
        report = ServingSimulator(
            pools(), SimConfig(resilience=config), failures=[(2.0, "decode", 0, 20.0)]
        ).run(t)
        assert "goodput" in report.describe()
