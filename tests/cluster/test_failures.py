"""Failure-model tests — blast radius and instance reliability."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.failures import (
    BlastRadius,
    ComponentFailure,
    ComponentFailureModel,
    FailureModel,
    InstanceReliability,
    affected_gpus,
    component_blast_radius,
    fleet_available_capacity,
    link_inventory,
    resolve_component_failures,
    scaled_lite_failure_model,
    switch_inventory,
)
from repro.cluster.placement import Placement
from repro.errors import SpecError
from repro.network.topology import (
    DirectConnectTopology,
    FlatCircuitTopology,
    SwitchedTopology,
)
from repro.units import HOUR


class TestFailureModel:
    def test_availability_formula(self):
        model = FailureModel(mtbf=99 * HOUR, mttr=1 * HOUR)
        assert model.gpu_availability == pytest.approx(0.99)

    def test_failure_rate(self):
        model = FailureModel(mtbf=100.0)
        assert model.failure_rate == pytest.approx(0.01)

    def test_sample_lifetimes_mean(self):
        model = FailureModel(mtbf=1000.0)
        rng = np.random.default_rng(0)
        samples = model.sample_lifetimes(20000, rng)
        assert samples.mean() == pytest.approx(1000.0, rel=0.05)

    def test_weibull_shape_changes_distribution(self):
        rng = np.random.default_rng(0)
        exp = FailureModel(mtbf=1000.0, weibull_shape=1.0).sample_lifetimes(10000, rng)
        rng = np.random.default_rng(0)
        wearout = FailureModel(mtbf=1000.0, weibull_shape=3.0).sample_lifetimes(10000, rng)
        # Same mean, very different spread.
        assert wearout.std() < exp.std()

    def test_validation(self):
        with pytest.raises(SpecError):
            FailureModel(mtbf=0.0)
        with pytest.raises(SpecError):
            FailureModel(weibull_shape=0.0)


class TestBlastRadius:
    def test_sms_per_failure(self):
        assert BlastRadius(gpus_per_failure=1, sms_per_gpu=33).sms_per_failure == 33
        assert BlastRadius(gpus_per_failure=1, sms_per_gpu=132).sms_per_failure == 132

    def test_lite_blast_radius_quarter_of_h100(self):
        """Section 3: reducing GPU size reduces the hardware blast radius."""
        h100 = BlastRadius(1, 132)
        lite = BlastRadius(1, 33)
        assert lite.sms_per_failure * 4 == h100.sms_per_failure

    def test_capacity_fraction(self):
        assert BlastRadius(1, 132).capacity_fraction(8) == pytest.approx(1 / 8)
        assert BlastRadius(1, 33).capacity_fraction(32) == pytest.approx(1 / 32)

    def test_validation(self):
        with pytest.raises(SpecError):
            BlastRadius(0, 33)
        with pytest.raises(SpecError):
            BlastRadius(1, 33).capacity_fraction(0)


class TestInstanceReliability:
    def test_series_mtbf(self):
        model = FailureModel(mtbf=800 * HOUR)
        inst = InstanceReliability(8, model)
        assert inst.instance_mtbf == pytest.approx(100 * HOUR)

    def test_bigger_instances_fail_more(self):
        model = FailureModel()
        small = InstanceReliability(8, model)
        big = InstanceReliability(32, model)
        assert big.instance_availability < small.instance_availability

    def test_expected_failures_linear_in_horizon(self):
        inst = InstanceReliability(8, FailureModel(mtbf=100.0))
        assert inst.expected_failures(200.0) == pytest.approx(2 * inst.expected_failures(100.0))


class TestLiteScaling:
    def test_area_scaled_mtbf(self):
        parent = FailureModel(mtbf=1000.0)
        lite = scaled_lite_failure_model(parent, 4)
        assert lite.mtbf == 4000.0

    def test_equal_silicon_reliability_balances_fleets(self):
        """With area-scaled failure rates, a 4x-larger fleet of 4x-more-
        reliable GPUs has the same instance availability: the Lite fleet
        does not lose on availability even before hot spares."""
        parent = FailureModel()
        lite = scaled_lite_failure_model(parent, 4)
        h100_fleet = fleet_available_capacity(8, 8, parent)
        lite_fleet = fleet_available_capacity(32, 32, lite)
        # Equal to first order (exact only in the exp(-k*MTTR/MTBF) limit).
        assert lite_fleet == pytest.approx(h100_fleet, rel=1e-4)

    def test_unscaled_lite_fleet_worse(self):
        """If Lite GPUs kept the parent's per-device failure rate, the
        bigger instance would fail more — the paper's caveat about
        'different failure frequencies and profiles'."""
        parent = FailureModel()
        h100_fleet = fleet_available_capacity(8, 8, parent)
        naive_lite = fleet_available_capacity(32, 32, parent)
        assert naive_lite < h100_fleet


class TestProperties:
    @given(k=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_availability_decreasing_in_k(self, k):
        model = FailureModel()
        a_k = InstanceReliability(k, model).instance_availability
        a_k1 = InstanceReliability(k + 1, model).instance_availability
        assert a_k1 < a_k

    @given(
        mtbf_h=st.floats(100.0, 10000.0),
        mttr_h=st.floats(0.5, 100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_availability_bounded(self, mtbf_h, mttr_h):
        model = FailureModel(mtbf=mtbf_h * HOUR, mttr=mttr_h * HOUR)
        assert 0.0 < model.gpu_availability < 1.0


class TestFailureSchedule:
    def test_deterministic_and_sorted(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=100.0, mttr=20.0)
        a = sample_failure_schedule(model, "decode", 3, horizon=2000.0, seed=2)
        b = sample_failure_schedule(model, "decode", 3, horizon=2000.0, seed=2)
        assert a == b
        assert a == sorted(a)
        assert a, "short MTBF over a long horizon must produce failures"

    def test_tuple_shape_and_bounds(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=100.0, mttr=20.0)
        for time, pool, index, duration in sample_failure_schedule(
            model, "prefill", 2, horizon=1000.0, seed=0
        ):
            assert pool == "prefill"
            assert 0 <= index < 2
            assert 0 < time < 1000.0
            assert duration == model.mttr

    def test_bigger_instances_fail_more(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=500.0, mttr=10.0)
        small = sample_failure_schedule(model, "p", 4, horizon=20000.0, seed=1)
        big = sample_failure_schedule(
            model, "p", 4, horizon=20000.0, seed=1, gpus_per_instance=8
        )
        assert len(big) > len(small)

    def test_validation(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel()
        with pytest.raises(SpecError):
            sample_failure_schedule(model, "p", 0, horizon=100.0)
        with pytest.raises(SpecError):
            sample_failure_schedule(model, "p", 1, horizon=-1.0)


class TestScheduleMemo:
    def test_seeded_sampling_is_memoized(self):
        from repro.cluster.failures import sample_failure_schedule, schedule_cache_info

        model = FailureModel(mtbf=321.0, mttr=12.0)
        before = schedule_cache_info()
        first = sample_failure_schedule(model, "memo", 3, horizon=5000.0, seed=42)
        second = sample_failure_schedule(model, "memo", 3, horizon=5000.0, seed=42)
        after = schedule_cache_info()
        assert first == second
        assert after.hits >= before.hits + 1

    def test_memoized_result_is_mutation_safe(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=222.0, mttr=11.0)
        first = sample_failure_schedule(model, "memo2", 2, horizon=5000.0, seed=7)
        first.append(("garbage",))
        second = sample_failure_schedule(model, "memo2", 2, horizon=5000.0, seed=7)
        assert ("garbage",) not in second

    def test_explicit_rng_bypasses_memo(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=50.0, mttr=5.0)
        rng = np.random.default_rng(0)
        first = sample_failure_schedule(model, "rngpath", 2, horizon=2000.0, rng=rng)
        # The same generator has advanced: a second draw must differ.
        second = sample_failure_schedule(model, "rngpath", 2, horizon=2000.0, rng=rng)
        assert first != second

    def test_distinct_parameters_distinct_entries(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=80.0, mttr=8.0)
        a = sample_failure_schedule(model, "distinct", 2, horizon=3000.0, seed=1)
        b = sample_failure_schedule(model, "distinct", 2, horizon=3000.0, seed=2)
        assert a != b


# --- component-level faults ---------------------------------------------------


def _direct_topo():
    return DirectConnectTopology(n_gpus=16, group=4)


def _placement16():
    # Four 4-GPU instances packed onto the four mesh groups.
    return Placement(
        16,
        (
            ("prefill", ((0, 1, 2, 3), (4, 5, 6, 7))),
            ("decode", ((8, 9, 10, 11), (12, 13, 14, 15))),
        ),
    )


class TestAffectedGpus:
    def test_gpu_is_itself(self):
        assert affected_gpus(_direct_topo(), "gpu", 5) == (5,)

    def test_link_hits_its_gpu_endpoints(self):
        topo = _direct_topo()
        links = link_inventory(topo)
        for index, edge in enumerate(links):
            gpus = affected_gpus(topo, "link", index)
            expected = tuple(sorted(n[1] for n in edge if n[0] == "gpu"))
            assert gpus == expected
        # Direct-connect: a mesh link has two GPU endpoints, an uplink one.
        sizes = {len(affected_gpus(topo, "link", i)) for i in range(len(links))}
        assert sizes == {1, 2}

    def test_switch_hits_attached_gpus(self):
        # The direct topology's hub fronts every group's uplink holder.
        assert affected_gpus(_direct_topo(), "switch", 0) == (0, 4, 8, 12)
        # A flat packet switch fronts every GPU.
        flat = SwitchedTopology(n_gpus=8)
        assert affected_gpus(flat, "switch", 0) == tuple(range(8))

    def test_rack_is_a_contiguous_power_domain(self):
        assert affected_gpus(_direct_topo(), "rack", 1, rack_size=8) == tuple(range(8, 16))
        assert affected_gpus(FlatCircuitTopology(n_gpus=10), "rack", 1, rack_size=8) == (8, 9)

    def test_out_of_range_components(self):
        topo = _direct_topo()
        with pytest.raises(SpecError):
            affected_gpus(topo, "gpu", 99)
        with pytest.raises(SpecError):
            affected_gpus(topo, "link", 10_000)
        with pytest.raises(SpecError):
            affected_gpus(topo, "switch", 99)
        with pytest.raises(SpecError):
            affected_gpus(topo, "rack", 99)
        with pytest.raises(SpecError):
            affected_gpus(topo, "psu", 0)

    def test_inventories_are_deterministic(self):
        topo = SwitchedTopology(n_gpus=256)
        assert link_inventory(topo) == link_inventory(topo)
        assert switch_inventory(topo) == switch_inventory(topo)
        assert len(switch_inventory(topo)) == topo.n_switches


class TestComponentBlastRadius:
    def test_switch_blast_radius(self):
        br = component_blast_radius(SwitchedTopology(n_gpus=8), "switch", 0, sms_per_gpu=10)
        assert br.gpus_per_failure == 8
        assert br.sms_per_failure == 80

    def test_uplink_loss_has_unit_radius_floor(self):
        # A switch-to-switch link strands no GPU; radius floors at 1.
        topo = SwitchedTopology(n_gpus=256)
        links = link_inventory(topo)
        uplink = next(
            i for i, e in enumerate(links) if e[0][0] == "sw" and e[1][0] == "sw"
        )
        assert affected_gpus(topo, "link", uplink) == ()
        assert component_blast_radius(topo, "link", uplink, 10).gpus_per_failure == 1


class TestResolveComponentFailures:
    def test_rack_failure_maps_to_both_pool_instances(self):
        events = [ComponentFailure(30.0, "rack", 0, 60.0)]
        resolved = resolve_component_failures(events, _direct_topo(), _placement16(), rack_size=8)
        assert resolved == [(30.0, "prefill", 0, 60.0), (30.0, "prefill", 1, 60.0)]

    def test_link_failure_maps_to_one_instance(self):
        topo = _direct_topo()
        links = link_inventory(topo)
        # Find a mesh link inside group 2 (GPUs 8..11) -> decode instance 0.
        mesh = next(
            i for i, e in enumerate(links)
            if e[0][0] == "gpu" and e[1][0] == "gpu" and 8 <= e[0][1] <= 11
        )
        resolved = resolve_component_failures(
            [ComponentFailure(5.0, "link", mesh, 42.0)], topo, _placement16()
        )
        assert resolved == [(5.0, "decode", 0, 42.0)]

    def test_switch_failure_fans_out_to_every_group(self):
        resolved = resolve_component_failures(
            [ComponentFailure(1.0, "switch", 0, 10.0)], _direct_topo(), _placement16()
        )
        # The hub touches one GPU of every instance: all four go down once.
        assert resolved == [
            (1.0, "decode", 0, 10.0),
            (1.0, "decode", 1, 10.0),
            (1.0, "prefill", 0, 10.0),
            (1.0, "prefill", 1, 10.0),
        ]

    def test_event_hitting_two_gpus_of_one_instance_downs_it_once(self):
        resolved = resolve_component_failures(
            [ComponentFailure(2.0, "rack", 0, 9.0)], _direct_topo(), _placement16(),
            rack_size=4,
        )
        assert resolved == [(2.0, "prefill", 0, 9.0)]


class TestComponentFailureModel:
    def test_sampling_is_deterministic(self):
        model = ComponentFailureModel(
            gpu=FailureModel(mtbf=200.0, mttr=20.0),
            link=FailureModel(mtbf=400.0, mttr=10.0),
            switch=FailureModel(mtbf=800.0, mttr=30.0),
        )
        topo = _direct_topo()
        a = model.sample_component_schedule(topo, horizon=2000.0, seed=5)
        b = model.sample_component_schedule(topo, horizon=2000.0, seed=5)
        c = model.sample_component_schedule(topo, horizon=2000.0, seed=6)
        assert a == b
        assert a != c
        kinds = {e.component for e in a}
        assert kinds <= {"gpu", "link", "switch"}
        assert all(e.time < 2000.0 and e.duration > 0 for e in a)

    def test_disabled_classes_draw_nothing(self):
        model = ComponentFailureModel(rack=FailureModel(mtbf=100.0, mttr=10.0), rack_size=4)
        schedule = model.sample_component_schedule(_direct_topo(), horizon=1000.0, seed=0)
        assert schedule and all(e.component == "rack" for e in schedule)
        assert max(e.index for e in schedule) <= 3

    def test_validation(self):
        with pytest.raises(SpecError):
            ComponentFailureModel(rack_size=0)
        with pytest.raises(SpecError):
            ComponentFailure(0.0, "gpu", 0, 0.0)
        with pytest.raises(SpecError):
            ComponentFailure(0.0, "bogus", 0, 1.0)
        with pytest.raises(SpecError):
            ComponentFailure(0.0, "gpu", -1, 1.0)
