"""Failure-model tests — blast radius and instance reliability."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.failures import (
    BlastRadius,
    FailureModel,
    InstanceReliability,
    fleet_available_capacity,
    scaled_lite_failure_model,
)
from repro.errors import SpecError
from repro.units import HOUR


class TestFailureModel:
    def test_availability_formula(self):
        model = FailureModel(mtbf=99 * HOUR, mttr=1 * HOUR)
        assert model.gpu_availability == pytest.approx(0.99)

    def test_failure_rate(self):
        model = FailureModel(mtbf=100.0)
        assert model.failure_rate == pytest.approx(0.01)

    def test_sample_lifetimes_mean(self):
        model = FailureModel(mtbf=1000.0)
        rng = np.random.default_rng(0)
        samples = model.sample_lifetimes(20000, rng)
        assert samples.mean() == pytest.approx(1000.0, rel=0.05)

    def test_weibull_shape_changes_distribution(self):
        rng = np.random.default_rng(0)
        exp = FailureModel(mtbf=1000.0, weibull_shape=1.0).sample_lifetimes(10000, rng)
        rng = np.random.default_rng(0)
        wearout = FailureModel(mtbf=1000.0, weibull_shape=3.0).sample_lifetimes(10000, rng)
        # Same mean, very different spread.
        assert wearout.std() < exp.std()

    def test_validation(self):
        with pytest.raises(SpecError):
            FailureModel(mtbf=0.0)
        with pytest.raises(SpecError):
            FailureModel(weibull_shape=0.0)


class TestBlastRadius:
    def test_sms_per_failure(self):
        assert BlastRadius(gpus_per_failure=1, sms_per_gpu=33).sms_per_failure == 33
        assert BlastRadius(gpus_per_failure=1, sms_per_gpu=132).sms_per_failure == 132

    def test_lite_blast_radius_quarter_of_h100(self):
        """Section 3: reducing GPU size reduces the hardware blast radius."""
        h100 = BlastRadius(1, 132)
        lite = BlastRadius(1, 33)
        assert lite.sms_per_failure * 4 == h100.sms_per_failure

    def test_capacity_fraction(self):
        assert BlastRadius(1, 132).capacity_fraction(8) == pytest.approx(1 / 8)
        assert BlastRadius(1, 33).capacity_fraction(32) == pytest.approx(1 / 32)

    def test_validation(self):
        with pytest.raises(SpecError):
            BlastRadius(0, 33)
        with pytest.raises(SpecError):
            BlastRadius(1, 33).capacity_fraction(0)


class TestInstanceReliability:
    def test_series_mtbf(self):
        model = FailureModel(mtbf=800 * HOUR)
        inst = InstanceReliability(8, model)
        assert inst.instance_mtbf == pytest.approx(100 * HOUR)

    def test_bigger_instances_fail_more(self):
        model = FailureModel()
        small = InstanceReliability(8, model)
        big = InstanceReliability(32, model)
        assert big.instance_availability < small.instance_availability

    def test_expected_failures_linear_in_horizon(self):
        inst = InstanceReliability(8, FailureModel(mtbf=100.0))
        assert inst.expected_failures(200.0) == pytest.approx(2 * inst.expected_failures(100.0))


class TestLiteScaling:
    def test_area_scaled_mtbf(self):
        parent = FailureModel(mtbf=1000.0)
        lite = scaled_lite_failure_model(parent, 4)
        assert lite.mtbf == 4000.0

    def test_equal_silicon_reliability_balances_fleets(self):
        """With area-scaled failure rates, a 4x-larger fleet of 4x-more-
        reliable GPUs has the same instance availability: the Lite fleet
        does not lose on availability even before hot spares."""
        parent = FailureModel()
        lite = scaled_lite_failure_model(parent, 4)
        h100_fleet = fleet_available_capacity(8, 8, parent)
        lite_fleet = fleet_available_capacity(32, 32, lite)
        # Equal to first order (exact only in the exp(-k*MTTR/MTBF) limit).
        assert lite_fleet == pytest.approx(h100_fleet, rel=1e-4)

    def test_unscaled_lite_fleet_worse(self):
        """If Lite GPUs kept the parent's per-device failure rate, the
        bigger instance would fail more — the paper's caveat about
        'different failure frequencies and profiles'."""
        parent = FailureModel()
        h100_fleet = fleet_available_capacity(8, 8, parent)
        naive_lite = fleet_available_capacity(32, 32, parent)
        assert naive_lite < h100_fleet


class TestProperties:
    @given(k=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_availability_decreasing_in_k(self, k):
        model = FailureModel()
        a_k = InstanceReliability(k, model).instance_availability
        a_k1 = InstanceReliability(k + 1, model).instance_availability
        assert a_k1 < a_k

    @given(
        mtbf_h=st.floats(100.0, 10000.0),
        mttr_h=st.floats(0.5, 100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_availability_bounded(self, mtbf_h, mttr_h):
        model = FailureModel(mtbf=mtbf_h * HOUR, mttr=mttr_h * HOUR)
        assert 0.0 < model.gpu_availability < 1.0


class TestFailureSchedule:
    def test_deterministic_and_sorted(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=100.0, mttr=20.0)
        a = sample_failure_schedule(model, "decode", 3, horizon=2000.0, seed=2)
        b = sample_failure_schedule(model, "decode", 3, horizon=2000.0, seed=2)
        assert a == b
        assert a == sorted(a)
        assert a, "short MTBF over a long horizon must produce failures"

    def test_tuple_shape_and_bounds(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=100.0, mttr=20.0)
        for time, pool, index, duration in sample_failure_schedule(
            model, "prefill", 2, horizon=1000.0, seed=0
        ):
            assert pool == "prefill"
            assert 0 <= index < 2
            assert 0 < time < 1000.0
            assert duration == model.mttr

    def test_bigger_instances_fail_more(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=500.0, mttr=10.0)
        small = sample_failure_schedule(model, "p", 4, horizon=20000.0, seed=1)
        big = sample_failure_schedule(
            model, "p", 4, horizon=20000.0, seed=1, gpus_per_instance=8
        )
        assert len(big) > len(small)

    def test_validation(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel()
        with pytest.raises(SpecError):
            sample_failure_schedule(model, "p", 0, horizon=100.0)
        with pytest.raises(SpecError):
            sample_failure_schedule(model, "p", 1, horizon=-1.0)


class TestScheduleMemo:
    def test_seeded_sampling_is_memoized(self):
        from repro.cluster.failures import sample_failure_schedule, schedule_cache_info

        model = FailureModel(mtbf=321.0, mttr=12.0)
        before = schedule_cache_info()
        first = sample_failure_schedule(model, "memo", 3, horizon=5000.0, seed=42)
        second = sample_failure_schedule(model, "memo", 3, horizon=5000.0, seed=42)
        after = schedule_cache_info()
        assert first == second
        assert after.hits >= before.hits + 1

    def test_memoized_result_is_mutation_safe(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=222.0, mttr=11.0)
        first = sample_failure_schedule(model, "memo2", 2, horizon=5000.0, seed=7)
        first.append(("garbage",))
        second = sample_failure_schedule(model, "memo2", 2, horizon=5000.0, seed=7)
        assert ("garbage",) not in second

    def test_explicit_rng_bypasses_memo(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=50.0, mttr=5.0)
        rng = np.random.default_rng(0)
        first = sample_failure_schedule(model, "rngpath", 2, horizon=2000.0, rng=rng)
        # The same generator has advanced: a second draw must differ.
        second = sample_failure_schedule(model, "rngpath", 2, horizon=2000.0, rng=rng)
        assert first != second

    def test_distinct_parameters_distinct_entries(self):
        from repro.cluster.failures import sample_failure_schedule

        model = FailureModel(mtbf=80.0, mttr=8.0)
        a = sample_failure_schedule(model, "distinct", 2, horizon=3000.0, seed=1)
        b = sample_failure_schedule(model, "distinct", 2, horizon=3000.0, seed=2)
        assert a != b
