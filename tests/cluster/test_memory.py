"""Memory-system tests — disaggregated pools and KV placement."""

from __future__ import annotations

import pytest

from repro.cluster.memory import (
    DisaggregatedPool,
    KVPlacementPolicy,
    MemorySystem,
    pool_batch_gain,
)
from repro.errors import SpecError
from repro.hardware.gpu import LITE
from repro.units import GB


class TestPool:
    def test_validation(self):
        with pytest.raises(SpecError):
            DisaggregatedPool(capacity=0)
        with pytest.raises(SpecError):
            DisaggregatedPool(latency=-1.0)


class TestMemorySystem:
    def test_total_capacity(self):
        system = MemorySystem(LITE, pool=DisaggregatedPool(), pool_share=40 * GB)
        assert system.total_capacity == LITE.mem_capacity + 40 * GB

    def test_pool_share_requires_pool(self):
        with pytest.raises(SpecError):
            MemorySystem(LITE, pool=None, pool_share=1 * GB)

    def test_max_kv_bytes_grows_with_pool(self):
        local = MemorySystem(LITE)
        pooled = MemorySystem(LITE, pool=DisaggregatedPool(), pool_share=40 * GB)
        weights = 10 * GB
        assert pooled.max_kv_bytes(weights) == pytest.approx(
            local.max_kv_bytes(weights) + 40 * GB
        )

    def test_max_kv_zero_when_weights_exceed_hbm(self):
        system = MemorySystem(LITE)
        assert system.max_kv_bytes(25 * GB) == 0.0


class TestPlacement:
    WEIGHTS = 10 * GB

    def test_local_only_within_hbm(self):
        system = MemorySystem(LITE)
        local, pooled = system.placement_split(5 * GB, self.WEIGHTS, KVPlacementPolicy.LOCAL_ONLY)
        assert (local, pooled) == (5 * GB, 0.0)

    def test_local_only_overflow_rejected(self):
        system = MemorySystem(LITE)
        with pytest.raises(SpecError):
            system.placement_split(15 * GB, self.WEIGHTS, KVPlacementPolicy.LOCAL_ONLY)

    def test_spill_splits_at_hbm_boundary(self):
        system = MemorySystem(LITE, pool=DisaggregatedPool(), pool_share=40 * GB)
        local, pooled = system.placement_split(
            20 * GB, self.WEIGHTS, KVPlacementPolicy.SPILL_TO_POOL
        )
        assert local == pytest.approx(LITE.mem_capacity * 0.95 - self.WEIGHTS)
        assert pooled == pytest.approx(20 * GB - local)

    def test_pool_only(self):
        system = MemorySystem(LITE, pool=DisaggregatedPool(), pool_share=40 * GB)
        local, pooled = system.placement_split(30 * GB, self.WEIGHTS, KVPlacementPolicy.POOL_ONLY)
        assert local == 0.0 and pooled == 30 * GB

    def test_pool_overflow_rejected(self):
        system = MemorySystem(LITE, pool=DisaggregatedPool(), pool_share=5 * GB)
        with pytest.raises(SpecError):
            system.placement_split(20 * GB, self.WEIGHTS, KVPlacementPolicy.SPILL_TO_POOL)


class TestBandwidth:
    WEIGHTS = 10 * GB

    def test_all_local_full_bandwidth(self):
        system = MemorySystem(LITE, pool=DisaggregatedPool(), pool_share=40 * GB)
        bw = system.effective_kv_bandwidth(5 * GB, self.WEIGHTS, KVPlacementPolicy.SPILL_TO_POOL)
        assert bw == pytest.approx(LITE.mem_bandwidth)

    def test_spill_lowers_bandwidth(self):
        system = MemorySystem(LITE, pool=DisaggregatedPool(), pool_share=40 * GB)
        bw = system.effective_kv_bandwidth(20 * GB, self.WEIGHTS, KVPlacementPolicy.SPILL_TO_POOL)
        assert bw < LITE.mem_bandwidth

    def test_slowdown_at_least_one(self):
        system = MemorySystem(LITE, pool=DisaggregatedPool(), pool_share=40 * GB)
        for kv in (1 * GB, 10 * GB, 30 * GB):
            slowdown = system.decode_slowdown(kv, self.WEIGHTS, KVPlacementPolicy.SPILL_TO_POOL)
            assert slowdown >= 1.0

    def test_slowdown_grows_with_spill(self):
        system = MemorySystem(LITE, pool=DisaggregatedPool(), pool_share=40 * GB)
        small = system.decode_slowdown(12 * GB, self.WEIGHTS, KVPlacementPolicy.SPILL_TO_POOL)
        large = system.decode_slowdown(30 * GB, self.WEIGHTS, KVPlacementPolicy.SPILL_TO_POOL)
        assert large > small

    def test_zero_kv_full_bandwidth(self):
        system = MemorySystem(LITE)
        assert system.effective_kv_bandwidth(0.0, self.WEIGHTS, KVPlacementPolicy.LOCAL_ONLY) == LITE.mem_bandwidth


class TestPoolBatchGain:
    def test_pool_grows_batch_with_bounded_slowdown(self):
        """The compute-to-memory flexibility claim, quantified."""
        gain = pool_batch_gain(
            LITE,
            weight_bytes=10 * GB,
            kv_bytes_per_seq=50e6,
            pool_share=40 * GB,
        )
        assert gain["pooled_batch"] > 4 * gain["local_batch"]
        assert gain["slowdown"] >= 1.0

    def test_validation(self):
        with pytest.raises(SpecError):
            pool_batch_gain(LITE, 1 * GB, 0.0, 1 * GB)
