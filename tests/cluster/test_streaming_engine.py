"""Streaming-vs-exact engine parity and iterator trace feeding.

``metrics="exact"`` bit-identity to the seed goldens is pinned separately
in ``benchmarks/test_serving_simulation.py``; this file pins what the
streaming mode promises instead: exact counters, ≤1% p50/p99 latency
quantiles, bounded state, and identical behaviour for list and iterator
traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.scheduler import ColocatedPool, InstanceSpec, PhasePools
from repro.cluster.simulator import ColocatedSimulator, ServingSimulator, SimConfig
from repro.errors import SpecError
from repro.hardware.gpu import H100
from repro.workloads.models import LLAMA3_8B
from repro.workloads.traces import TraceConfig, generate_trace, iter_trace


def _pools(n_prefill=2, n_decode=2):
    return PhasePools(
        prefill=InstanceSpec(LLAMA3_8B, H100, 1),
        n_prefill=n_prefill,
        decode=InstanceSpec(LLAMA3_8B, H100, 1),
        n_decode=n_decode,
        max_prefill_batch=4,
        max_decode_batch=64,
    )


def _colocated(n_instances=2):
    return ColocatedPool(
        instance=InstanceSpec(LLAMA3_8B, H100, 1),
        n_instances=n_instances,
        max_decode_batch=64,
    )


def _trace(rate=40.0, duration=60.0, seed=3):
    return generate_trace(
        TraceConfig(rate=rate, duration=duration, output_tokens=60, output_spread=0.5),
        seed=seed,
    )


def _rel(a, b):
    return abs(a - b) / max(abs(b), 1e-12)


class TestStreamingParity:
    @pytest.mark.parametrize("shape", ["phase-split", "colocated"])
    def test_counters_exact_and_quantiles_within_one_percent(self, shape):
        trace = _trace()
        if shape == "phase-split":
            exact = ServingSimulator(_pools(), SimConfig(max_sim_time=600)).run(trace)
            stream = ServingSimulator(
                _pools(), SimConfig(max_sim_time=600, metrics="streaming")
            ).run(trace)
        else:
            exact = ColocatedSimulator(_colocated(), SimConfig(max_sim_time=600)).run(trace)
            stream = ColocatedSimulator(
                _colocated(), SimConfig(max_sim_time=600, metrics="streaming")
            ).run(trace)
        # Counters, throughput, utilization, and economics are exact sums
        # over the same event sequence: identical, not approximate.
        assert stream.completed == exact.completed == len(trace)
        assert stream.dropped == exact.dropped
        assert stream.duration == exact.duration
        assert stream.output_tokens_per_s == exact.output_tokens_per_s
        assert stream.prefill_utilization == exact.prefill_utilization
        assert stream.decode_utilization == exact.decode_utilization
        assert stream.usd_cost == exact.usd_cost
        # The mean folds through the sketch's exact running sum.
        assert stream.tbt_mean == pytest.approx(exact.tbt_mean, rel=1e-12)
        # Percentiles are sketch estimates: the acceptance bar is 1% on
        # TTFT p50/p99 (measured ≤0.6% at ~2.4k requests); E2E gets the
        # same bar at p50 and 2% slack at p99, where a few-sample tail
        # makes the interpolation noisier.
        assert _rel(stream.ttft_p50, exact.ttft_p50) <= 0.01
        assert _rel(stream.ttft_p99, exact.ttft_p99) <= 0.01
        assert _rel(stream.e2e_p50, exact.e2e_p50) <= 0.01
        assert _rel(stream.e2e_p99, exact.e2e_p99) <= 0.02
        assert _rel(stream.tbt_p99, exact.tbt_p99) <= 0.01

    def test_streaming_keeps_no_completion_list(self):
        trace = _trace(rate=8, duration=20)
        sim = ColocatedSimulator(
            _colocated(), SimConfig(max_sim_time=600, metrics="streaming")
        )
        report = sim.run(trace)
        assert report.completed == len(trace)
        assert sim.last_metrics is not None
        assert sim.last_metrics.completed == len(trace)
        # The constant-memory contract: sketch state, not per-request rows.
        assert sim.last_metrics.ttft.centroid_count() <= 4 * 200

    def test_exact_mode_has_no_metrics_object(self):
        sim = ColocatedSimulator(_colocated(), SimConfig(max_sim_time=600))
        sim.run(_trace(rate=4, duration=10))
        assert sim.last_metrics is None

    def test_rejects_unknown_metrics_mode(self):
        with pytest.raises(SpecError):
            SimConfig(metrics="approximate")


class TestIteratorTraces:
    @pytest.mark.parametrize("shape", ["phase-split", "colocated"])
    def test_iterator_trace_matches_list_trace(self, shape):
        trace = _trace(rate=10, duration=25)
        config = SimConfig(max_sim_time=600, metrics="streaming")
        if shape == "phase-split":
            from_list = ServingSimulator(_pools(), config).run(trace)
            from_iter = ServingSimulator(_pools(), config).run(iter(trace))
        else:
            from_list = ColocatedSimulator(_colocated(), config).run(trace)
            from_iter = ColocatedSimulator(_colocated(), config).run(iter(trace))
        assert from_iter == from_list

    def test_lazy_trace_runs_end_to_end(self):
        config = TraceConfig(rate=10, duration=30, output_tokens=50)
        lazy = iter_trace(config, seed=7, window=10.0)
        report = ColocatedSimulator(
            _colocated(), SimConfig(max_sim_time=600, metrics="streaming")
        ).run(lazy)
        assert report.completed == len(list(iter_trace(config, seed=7, window=10.0)))
        assert report.dropped == 0
        assert np.isfinite(report.ttft_p99)

    def test_exact_mode_accepts_iterators_too(self):
        trace = _trace(rate=6, duration=15)
        config = SimConfig(max_sim_time=600)
        from_list = ColocatedSimulator(_colocated(), config).run(trace)
        from_iter = ColocatedSimulator(_colocated(), config).run(iter(trace))
        assert from_iter == from_list
