"""Phase-split scheduler tests."""

from __future__ import annotations

import pytest

from repro.cluster.scheduler import InstanceSpec, PhasePools, PhaseSplitScheduler
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE, LITE_MEMBW, LITE_NETBW_FLOPS
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B, LLAMA3_405B


def small_pools(**overrides) -> PhasePools:
    base = dict(
        prefill=InstanceSpec(LLAMA3_70B, H100, 2),
        n_prefill=2,
        decode=InstanceSpec(LLAMA3_70B, H100, 2),
        n_decode=2,
        max_prefill_batch=4,
        max_decode_batch=64,
    )
    base.update(overrides)
    return PhasePools(**base)


class TestInstanceSpec:
    def test_rejects_models_that_do_not_fit(self):
        with pytest.raises(SpecError):
            InstanceSpec(LLAMA3_405B, H100, 2)

    def test_performance_envelope(self):
        inst = InstanceSpec(LLAMA3_70B, H100, 2)
        assert inst.prefill_time(4, 1500) > inst.prefill_time(1, 1500)
        assert inst.decode_time(64, 1750) > inst.decode_time(1, 1750)
        assert inst.kv_token_capacity() > 0

    def test_phase_specialized_gpus(self):
        """Splitwise-style: prefill on +FLOPS, decode on +MemBW."""
        prefill = InstanceSpec(LLAMA3_8B, LITE_NETBW_FLOPS, 2)
        decode = InstanceSpec(LLAMA3_8B, LITE_MEMBW, 2)
        generic = InstanceSpec(LLAMA3_8B, LITE, 2)
        assert prefill.prefill_time(4, 1500) < generic.prefill_time(4, 1500)
        assert decode.decode_time(32, 1750) < generic.decode_time(32, 1750)


class TestPhasePools:
    def test_totals(self):
        pools = small_pools()
        assert pools.total_gpus == 8
        assert pools.total_sms == 8 * 132

    def test_same_model_enforced(self):
        with pytest.raises(SpecError):
            small_pools(decode=InstanceSpec(LLAMA3_8B, H100, 1))

    def test_describe(self):
        assert "prefill" in small_pools().describe()


class TestScheduler:
    def test_prefill_batching_bounded(self):
        scheduler = PhaseSplitScheduler(small_pools())
        assert scheduler.form_prefill_batch(10) == 4
        assert scheduler.form_prefill_batch(2) == 2
        assert scheduler.form_prefill_batch(0) == 0

    def test_decode_admission_slots(self):
        scheduler = PhaseSplitScheduler(small_pools(max_decode_batch=3))
        admitted = scheduler.decode_admission([2000] * 8, occupied_slots=1, occupied_tokens=0)
        assert admitted == 2

    def test_decode_admission_kv_budget(self):
        scheduler = PhaseSplitScheduler(small_pools())
        capacity = scheduler.decode_kv_capacity
        admitted = scheduler.decode_admission(
            [capacity // 2, capacity // 2, capacity // 2], 0, 0
        )
        assert admitted == 2

    def test_admission_stops_at_first_misfit(self):
        """FIFO: a huge head-of-line request blocks (no reordering)."""
        scheduler = PhaseSplitScheduler(small_pools())
        capacity = scheduler.decode_kv_capacity
        admitted = scheduler.decode_admission([capacity + 1, 10], 0, 0)
        assert admitted == 0

    def test_validation(self):
        scheduler = PhaseSplitScheduler(small_pools())
        with pytest.raises(SpecError):
            scheduler.form_prefill_batch(-1)
        with pytest.raises(SpecError):
            scheduler.decode_admission([10], -1, 0)
