"""ClusterSpec rollup tests — the Figure 2 cluster-level comparison."""

from __future__ import annotations

import pytest

from repro.cluster.spec import ClusterSpec, lite_equivalent
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE
from repro.hardware.scaling import LiteScaling


class TestAggregates:
    def test_totals(self):
        cluster = ClusterSpec(H100, 8)
        assert cluster.total_flops == 8 * H100.peak_flops
        assert cluster.total_mem_capacity == 8 * H100.mem_capacity
        assert cluster.total_sms == 8 * 132
        assert cluster.gpu_power == 8 * H100.tdp

    def test_validation(self):
        with pytest.raises(SpecError):
            ClusterSpec(H100, 0)
        with pytest.raises(SpecError):
            ClusterSpec(H100, 8, topology_kind="token-ring")


class TestTopologies:
    def test_materialization(self):
        assert ClusterSpec(H100, 8, "switched").topology().n_gpus == 8
        assert ClusterSpec(LITE, 32, "circuit").topology().n_gpus == 32
        assert ClusterSpec(LITE, 32, "direct", group=4).topology().n_groups == 8

    def test_direct_requires_divisibility(self):
        with pytest.raises(SpecError):
            ClusterSpec(LITE, 30, "direct", group=4).topology()

    def test_fabric_report(self):
        report = ClusterSpec(LITE, 32, "circuit").fabric_report()
        assert report.n_gpus == 32
        assert report.capex_usd > 0


class TestEconomics:
    def test_total_power_includes_network(self):
        cluster = ClusterSpec(LITE, 32, "circuit")
        assert cluster.total_power() > cluster.gpu_power

    def test_gpu_capex_positive(self):
        assert ClusterSpec(H100, 8).gpu_capex() > 0

    def test_lite_cluster_cheaper_gpus_at_equal_compute(self):
        """The Section 2 economics at cluster level: 32 Lite packages cost
        less than 8 H100 packages (yield + packaging)."""
        h100 = ClusterSpec(H100, 8)
        lite = lite_equivalent(h100)
        assert lite.gpu_capex() < h100.gpu_capex()

    def test_network_cost_fraction_small_for_h100_larger_for_lite(self):
        """Section 2: networking is 'a small fraction compared to the GPU
        costs today' (H100 clusters) — and Section 4's caveat: for Lite
        clusters the fraction grows, though it stays bounded."""
        h100 = ClusterSpec(H100, 512, "circuit")
        h100_fraction = h100.fabric_report().capex_usd / h100.gpu_capex(price_multiplier=4.0)
        assert h100_fraction < 0.15
        lite = ClusterSpec(LITE, 2048, "circuit")
        lite_fraction = lite.fabric_report().capex_usd / lite.gpu_capex(price_multiplier=4.0)
        assert h100_fraction < lite_fraction < 0.50


class TestLiteEquivalent:
    def test_counts_and_compute_conserved(self):
        base = ClusterSpec(H100, 8)
        lite = lite_equivalent(base)
        assert lite.n_gpus == 32
        assert lite.total_flops == pytest.approx(base.total_flops)
        assert lite.total_mem_capacity == pytest.approx(base.total_mem_capacity)
        assert lite.total_sms == base.total_sms

    def test_custom_scaling(self):
        base = ClusterSpec(H100, 4)
        lite = lite_equivalent(base, LiteScaling(split=2))
        assert lite.n_gpus == 8

    def test_describe(self):
        assert "H100" in ClusterSpec(H100, 8).describe()
