"""Allocator tests — the finer-granularity resource-management claim."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.allocator import (
    AllocationRequest,
    ResourceAllocator,
    quantization_waste,
)
from repro.errors import AllocationError, SpecError
from repro.hardware.gpu import H100, LITE


class TestRequests:
    def test_gpus_needed_rounds_up(self):
        req = AllocationRequest("job", demand_sms=133.0)
        assert req.gpus_needed(H100) == 2
        assert req.gpus_needed(LITE) == 5

    def test_validation(self):
        with pytest.raises(SpecError):
            AllocationRequest("", 10.0)
        with pytest.raises(SpecError):
            AllocationRequest("job", 0.0)


class TestAllocator:
    def test_allocate_and_release_conserve_gpus(self):
        alloc = ResourceAllocator(H100, 8)
        a = alloc.allocate(AllocationRequest("a", 200.0))
        assert alloc.free_gpus == 6
        assert len(a.gpu_indices) == 2
        alloc.release("a")
        assert alloc.free_gpus == 8

    def test_double_allocate_rejected(self):
        alloc = ResourceAllocator(H100, 8)
        alloc.allocate(AllocationRequest("a", 100.0))
        with pytest.raises(AllocationError):
            alloc.allocate(AllocationRequest("a", 100.0))

    def test_insufficient_capacity(self):
        alloc = ResourceAllocator(H100, 2)
        with pytest.raises(AllocationError):
            alloc.allocate(AllocationRequest("big", 1000.0))

    def test_release_unknown(self):
        with pytest.raises(AllocationError):
            ResourceAllocator(H100, 2).release("ghost")

    def test_utilization_and_waste(self):
        alloc = ResourceAllocator(H100, 8)
        alloc.allocate(AllocationRequest("a", 66.0))  # wastes half a GPU
        assert alloc.utilization == pytest.approx(1 / 8)
        assert alloc.quantization_waste_fraction() == pytest.approx(0.5)

    def test_get(self):
        alloc = ResourceAllocator(H100, 8)
        alloc.allocate(AllocationRequest("a", 66.0))
        assert alloc.get("a") is not None
        assert alloc.get("b") is None


class TestFailureHandling:
    def test_fail_free_gpu_removes_it(self):
        alloc = ResourceAllocator(H100, 4)
        assert alloc.fail_gpu(3) is None
        assert alloc.free_gpus == 3

    def test_fail_allocated_gpu_degrades_job(self):
        alloc = ResourceAllocator(H100, 4)
        allocation = alloc.allocate(AllocationRequest("a", 264.0))
        victim = allocation.gpu_indices[0]
        assert alloc.fail_gpu(victim) == "a"
        assert len(alloc.get("a").gpu_indices) == 1

    def test_fail_out_of_range(self):
        with pytest.raises(SpecError):
            ResourceAllocator(H100, 4).fail_gpu(9)


class TestGranularityClaim:
    def test_lite_strands_less_capacity(self):
        """Core Section 3 claim: smaller allocation units waste less."""
        rng = np.random.default_rng(42)
        demands = list(rng.uniform(1.0, 132.0, size=500))
        h100_waste = quantization_waste(demands, H100)
        lite_waste = quantization_waste(demands, LITE)
        assert lite_waste < h100_waste / 2

    def test_exact_fit_wastes_nothing(self):
        assert quantization_waste([132.0, 264.0], H100) == pytest.approx(0.0)

    def test_empty_demands(self):
        assert quantization_waste([], H100) == 0.0

    def test_invalid_demand(self):
        with pytest.raises(SpecError):
            quantization_waste([0.0], H100)

    @given(
        demands=st.lists(st.floats(1.0, 500.0), min_size=1, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_lite_never_wastes_more(self, demands):
        """Unit size 33 divides 132, so Lite rounding never exceeds H100's."""
        assert quantization_waste(demands, LITE) <= quantization_waste(demands, H100) + 1e-12
