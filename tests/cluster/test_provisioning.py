"""Pool-provisioning tests."""

from __future__ import annotations

import pytest

from repro.cluster.provisioning import (
    ProvisioningPlan,
    WorkloadForecast,
    phase_gpu_ratio,
    provision_pools,
)
from repro.cluster.simulator import ServingSimulator, SimConfig
from repro.errors import SpecError
from repro.hardware.gpu import H100, LITE_MEMBW, LITE_NETBW_FLOPS
from repro.workloads.models import LLAMA3_8B, LLAMA3_70B
from repro.workloads.traces import TraceConfig, generate_trace


class TestForecast:
    def test_token_rates(self):
        f = WorkloadForecast(rate=10.0, prompt_tokens=1500, output_tokens=250)
        assert f.prefill_tokens_per_s == 15000
        assert f.decode_tokens_per_s == 2500

    def test_validation(self):
        with pytest.raises(SpecError):
            WorkloadForecast(rate=0.0)


class TestProvisioning:
    def test_utilization_within_headroom(self):
        plan = provision_pools(
            LLAMA3_8B, H100, H100, WorkloadForecast(rate=20.0), headroom=0.7
        )
        assert plan.prefill_utilization <= 0.7 + 1e-9
        assert plan.decode_utilization <= 0.7 + 1e-9

    def test_higher_rate_more_instances(self):
        low = provision_pools(LLAMA3_8B, H100, H100, WorkloadForecast(rate=5.0))
        high = provision_pools(LLAMA3_8B, H100, H100, WorkloadForecast(rate=100.0))
        assert high.pools.n_prefill >= low.pools.n_prefill
        assert high.pools.n_decode > low.pools.n_decode

    def test_prompt_heavy_mix_shifts_ratio(self):
        """More prompt tokens per request -> relatively more prefill GPUs
        (at rates high enough that instance-count quantization is small)."""
        chatty = provision_pools(
            LLAMA3_8B, H100, H100,
            WorkloadForecast(rate=400.0, prompt_tokens=500, output_tokens=500),
        )
        coding = provision_pools(
            LLAMA3_8B, H100, H100,
            WorkloadForecast(rate=400.0, prompt_tokens=4000, output_tokens=100),
        )
        assert phase_gpu_ratio(coding) > phase_gpu_ratio(chatty)

    def test_headroom_validation(self):
        with pytest.raises(SpecError):
            provision_pools(LLAMA3_8B, H100, H100, WorkloadForecast(rate=1.0), headroom=0.0)

    def test_specialized_pools(self):
        plan = provision_pools(
            LLAMA3_70B, LITE_NETBW_FLOPS, LITE_MEMBW, WorkloadForecast(rate=4.0)
        )
        assert plan.pools.prefill.gpu is LITE_NETBW_FLOPS
        assert plan.pools.decode.gpu is LITE_MEMBW


class TestClosedLoop:
    def test_provisioned_deployment_meets_slos_in_simulation(self):
        """The loop: forecast -> provision -> simulate -> SLOs hold."""
        forecast = WorkloadForecast(rate=8.0, prompt_tokens=1500, output_tokens=150)
        plan = provision_pools(LLAMA3_8B, H100, H100, forecast, headroom=0.6)
        trace = generate_trace(
            TraceConfig(rate=forecast.rate, duration=30.0,
                        output_tokens=forecast.output_tokens, output_spread=0.3),
            seed=21,
        )
        report = ServingSimulator(plan.pools, SimConfig(max_sim_time=300.0)).run(trace)
        assert report.completed == len(trace)
        assert report.ttft_p99 <= 1.5  # SLO plus queueing slack
        assert report.tbt_mean <= 0.050
