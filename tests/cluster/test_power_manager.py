"""Cluster power-management tests — Section 3's down/up-clock arguments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.power_manager import ClusterPowerManager, PeakStrategy, granularity_gain
from repro.errors import SpecError
from repro.hardware.cooling import CoolingModel
from repro.hardware.gpu import H100, LITE
from repro.hardware.power import ClockPolicy, diurnal_load_profile


class TestPolicies:
    def test_savings_reported_for_all_policies(self):
        mgr = ClusterPowerManager(LITE, 32)
        loads = diurnal_load_profile()
        savings = mgr.policy_savings(loads, 900.0)
        assert set(savings) == {"uniform", "gate", "gate+dvfs"}
        assert all(0.0 <= s < 1.0 for s in savings.values())

    def test_gating_beats_uniform_dvfs_on_diurnal_load(self):
        mgr = ClusterPowerManager(LITE, 32)
        loads = diurnal_load_profile(low=0.15, high=0.7)
        savings = mgr.policy_savings(loads, 900.0)
        assert savings["gate+dvfs"] >= savings["uniform"]

    def test_energy_over_profile_positive(self):
        mgr = ClusterPowerManager(LITE, 8)
        loads = np.array([0.5, 0.6])
        assert mgr.energy_over_profile(loads, 60.0, ClockPolicy.ALWAYS_BASE) > 0


class TestPeakServing:
    def test_lite_can_overclock_through_peak(self):
        """Small dies have cooling headroom: 10-20% peaks absorbed in place."""
        mgr = ClusterPowerManager(LITE, 32)
        power = mgr.overclock_power(1.15)
        assert power > mgr._power_model().peak_power

    def test_h100_cannot_overclock_on_air(self):
        mgr = ClusterPowerManager(H100, 8)
        with pytest.raises(SpecError, match="cooling"):
            mgr.overclock_power(1.15, CoolingModel())

    def test_more_gpus_power_counts_network(self):
        mgr = ClusterPowerManager(LITE, 32, net_power_per_gpu=30.0)
        power, extra = mgr.more_gpus_power(1.25)
        assert extra == 8
        assert power == pytest.approx(40 * LITE.tdp + 8 * 30.0)

    def test_best_strategy_picks_cheaper(self):
        mgr = ClusterPowerManager(LITE, 32)
        strategy, power = mgr.best_peak_strategy(1.1)
        oc = mgr.overclock_power(1.1)
        more, _ = mgr.more_gpus_power(1.1)
        assert power == pytest.approx(min(oc, more))
        assert strategy in (PeakStrategy.OVERCLOCK, PeakStrategy.MORE_GPUS)

    def test_h100_falls_back_to_more_gpus(self):
        mgr = ClusterPowerManager(H100, 8)
        strategy, _ = mgr.best_peak_strategy(1.2, CoolingModel())
        assert strategy is PeakStrategy.MORE_GPUS

    def test_small_peaks_favor_overclocking(self):
        """Just above 1.0, activating a whole extra GPU is wasteful; a tiny
        overclock wins."""
        mgr = ClusterPowerManager(LITE, 4)
        strategy, _ = mgr.best_peak_strategy(1.05)
        assert strategy is PeakStrategy.OVERCLOCK

    def test_validation(self):
        mgr = ClusterPowerManager(LITE, 4)
        with pytest.raises(SpecError):
            mgr.overclock_power(0.0)
        with pytest.raises(SpecError):
            ClusterPowerManager(LITE, 0)


class TestGranularityGain:
    def test_lite_granularity_saves_energy(self):
        """Section 3: per-Lite-GPU gating beats whole-H100 gating."""
        loads = diurnal_load_profile(low=0.2, high=0.85)
        gain = granularity_gain(H100, LITE, loads, 900.0, big_count=8)
        assert gain > 0.0

    def test_gain_shrinks_for_large_fleets(self):
        """Quantization error amortizes: 64 H100s are already fine-grained
        relative to demand, so the Lite edge narrows."""
        loads = diurnal_load_profile(low=0.2, high=0.85)
        small_fleet = granularity_gain(H100, LITE, loads, 900.0, big_count=2)
        large_fleet = granularity_gain(H100, LITE, loads, 900.0, big_count=64)
        assert small_fleet > large_fleet


class TestCapClock:
    def test_generous_cap_is_full_clock(self):
        from repro.cluster.power_manager import ClusterPowerManager
        from repro.hardware.gpu import LITE

        manager = ClusterPowerManager(LITE, 16)
        assert manager.cap_clock(16 * LITE.tdp) == 1.0

    def test_tight_cap_throttles(self):
        from repro.cluster.power_manager import ClusterPowerManager
        from repro.hardware.gpu import LITE

        manager = ClusterPowerManager(LITE, 16)
        clock = manager.cap_clock(16 * LITE.tdp * 0.6)
        assert 0.0 < clock < 1.0
        assert 16 * LITE.tdp * manager.curve.power_ratio(clock) <= 16 * LITE.tdp * 0.6 + 1e-9

    def test_impossible_cap_signals_gating(self):
        from repro.cluster.power_manager import ClusterPowerManager
        from repro.hardware.gpu import LITE

        manager = ClusterPowerManager(LITE, 16)
        floor = manager.curve.power_ratio(manager.curve.min_clock_ratio)
        assert manager.cap_clock(16 * LITE.tdp * floor * 0.5) == 0.0

    def test_active_subset(self):
        from repro.cluster.power_manager import ClusterPowerManager
        from repro.hardware.gpu import LITE

        manager = ClusterPowerManager(LITE, 16)
        # The same wattage goes further when only half the fleet is active.
        assert manager.cap_clock(8 * LITE.tdp, active=8) == 1.0

    def test_validation(self):
        import pytest

        from repro.cluster.power_manager import ClusterPowerManager
        from repro.errors import SpecError
        from repro.hardware.gpu import LITE

        manager = ClusterPowerManager(LITE, 16)
        with pytest.raises(SpecError):
            manager.cap_clock(0.0)
        with pytest.raises(SpecError):
            manager.cap_clock(100.0, active=0)
