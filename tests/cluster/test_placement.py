"""Placement layer: placers, validation, blast-radius resolution."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import (
    PLACERS,
    Placement,
    PoolShape,
    get_placer,
    place,
    placement_hop_stats,
)
from repro.errors import SpecError
from repro.network.topology import (
    DirectConnectTopology,
    FlatCircuitTopology,
    SwitchedTopology,
)


def _topo(n: int):
    return FlatCircuitTopology(n_gpus=n)


class TestPlacementDataclass:
    def test_lookups(self):
        p = Placement(8, (("prefill", ((0, 1),)), ("decode", ((2, 3), (4, 5)))))
        assert p.pools == ("prefill", "decode")
        assert p.gpus("decode", 1) == (4, 5)
        assert p.total_gpus_used == 6

    def test_rejects_overlap(self):
        with pytest.raises(SpecError):
            Placement(8, (("a", ((0, 1),)), ("b", ((1, 2),))))

    def test_rejects_out_of_range(self):
        with pytest.raises(SpecError):
            Placement(4, (("a", ((0, 7),)),))

    def test_rejects_unknown_pool(self):
        p = Placement(4, (("a", ((0, 1),)),))
        with pytest.raises(SpecError):
            p.groups("missing")
        with pytest.raises(SpecError):
            p.gpus("a", 5)

    def test_affected_instances(self):
        p = Placement(8, (("prefill", ((0, 1),)), ("decode", ((2, 3), (4, 5)))))
        assert p.affected_instances([3]) == (("decode", 0),)
        assert p.affected_instances([0, 4]) == (("prefill", 0), ("decode", 1))
        assert p.affected_instances([6, 7]) == ()

    def test_hashable_for_cache_keys(self):
        p = Placement(8, (("decode", ((0, 1),)),))
        assert hash(p) == hash(Placement(8, (("decode", ((0, 1),)),)))


class TestPlacers:
    SHAPES = [PoolShape("prefill", 2, 4), PoolShape("decode", 2, 4)]

    def test_packed_is_contiguous(self):
        p = place(_topo(16), self.SHAPES, placer="packed")
        assert p.gpus("prefill", 0) == (0, 1, 2, 3)
        assert p.gpus("decode", 1) == (12, 13, 14, 15)

    def test_scattered_is_strided(self):
        p = place(_topo(16), self.SHAPES, placer="scattered")
        # 4 instances total: instance j holds j, j+4, j+8, j+12.
        assert p.gpus("prefill", 0) == (0, 4, 8, 12)
        assert p.gpus("decode", 1) == (3, 7, 11, 15)

    def test_scattered_needs_room(self):
        with pytest.raises(SpecError):
            place(_topo(17), [PoolShape("a", 3, 5), PoolShape("b", 1, 2)], "scattered")

    def test_random_is_seed_deterministic(self):
        a = place(_topo(16), self.SHAPES, placer="random", seed=3)
        b = place(_topo(16), self.SHAPES, placer="random", seed=3)
        c = place(_topo(16), self.SHAPES, placer="random", seed=4)
        assert a == b
        assert a != c

    def test_greedy_minimizes_hops_on_direct(self):
        topo = DirectConnectTopology(n_gpus=16, group=4)
        greedy = place(topo, self.SHAPES, placer="greedy")
        scattered = place(topo, self.SHAPES, placer="scattered")
        g = placement_hop_stats(topo, greedy)
        s = placement_hop_stats(topo, scattered)
        assert g["mean_hops"] < s["mean_hops"]
        # Greedy keeps each TP group inside one mesh group: all 1-hop pairs.
        assert g["max_hops"] == 1.0

    def test_capacity_check(self):
        with pytest.raises(SpecError):
            place(_topo(4), self.SHAPES, placer="packed")

    def test_unknown_placer(self):
        with pytest.raises(SpecError):
            get_placer("nope")


@settings(max_examples=40, deadline=None)
@given(
    placer=st.sampled_from(sorted(PLACERS)),
    n_instances=st.integers(1, 4),
    width=st.integers(1, 4),
    spare=st.integers(0, 9),
    seed=st.integers(0, 5),
)
def test_every_placer_returns_disjoint_in_range_groups(placer, n_instances, width, spare, seed):
    """Satellite property: disjoint, in-range GPU sets from every placer."""
    if placer == "scattered":
        n_gpus = n_instances * width + spare  # stride needs uniform room
    else:
        n_gpus = n_instances * width + spare
    topo = _topo(max(1, n_gpus))
    shapes = [PoolShape("pool", n_instances, width)]
    placement = place(topo, shapes, placer=placer, seed=seed)
    seen = set()
    for index in range(n_instances):
        group = placement.gpus("pool", index)
        assert len(group) == width
        for gpu in group:
            assert 0 <= gpu < topo.n_gpus
            assert gpu not in seen
            seen.add(gpu)


@settings(max_examples=20, deadline=None)
@given(
    placer=st.sampled_from(sorted(PLACERS)),
    seed=st.integers(0, 3),
)
def test_placers_handle_multi_pool_shapes(placer, seed):
    topo = SwitchedTopology(n_gpus=24)
    shapes = [PoolShape("prefill", 2, 3), PoolShape("decode", 3, 4)]
    placement = place(topo, shapes, placer=placer, seed=seed)
    all_gpus = [g for pool in placement.pools for grp in placement.groups(pool) for g in grp]
    assert len(all_gpus) == len(set(all_gpus)) == 18
    assert all(0 <= g < 24 for g in all_gpus)
